"""Ablation: phase barriers (DESIGN.md design choice).

FDW phases run sequentially per DAGMan (A -> B -> C), so concurrent
DAGMans multiply barrier stalls — one of the mechanisms behind the
Fig 3 partitioning penalty. This ablation compares the real FDW DAG
against a hypothetical barrier-free DAG in which C jobs only depend on
the B job (not transitively on *all* A jobs), i.e. Phase A and Phase B/C
pipelines overlap.

(The barrier-free variant is NOT a correct FakeQuakes execution — C
consumes A's ruptures — but it isolates how much makespan the barrier
itself costs.)
"""

from __future__ import annotations

import pytest

from _common import FULL_INPUT, fdw_config, header, scaled
from repro.condor.dagfile import DagDescription
from repro.core.phases import plan_phases
from repro.core.submit_osg import run_fdw_batch
from repro.core.workflow import build_fdw_dag
from repro.osg.pool import OSPoolSimulator
from repro.rng import derive_seed
from repro.units import to_hours

WAVEFORMS = 4000


def build_barrier_free_dag(config) -> DagDescription:
    """FDW plan wired without the A->B barrier."""
    plan = plan_phases(config)
    dag = DagDescription(name=config.name)
    for spec in plan.a_jobs:
        dag.add_job(spec.name, spec, retries=config.retries)
    dag.add_job(plan.b_job.name, plan.b_job, retries=config.retries)
    for spec in plan.c_jobs:
        dag.add_job(spec.name, spec, retries=config.retries)
        dag.add_edge(plan.b_job.name, spec.name)
    dag.validate()
    return dag


def _run(barrier: bool) -> float:
    config = fdw_config(scaled(WAVEFORMS), FULL_INPUT, f"abl_barrier_{barrier}")
    dag = build_fdw_dag(config) if barrier else build_barrier_free_dag(config)
    pool = OSPoolSimulator(seed=derive_seed(12, barrier))
    pool.submit_dagman(dag, name=config.name)
    metrics = pool.run()
    return metrics.dagmans[config.name].runtime_s


@pytest.mark.benchmark(group="ablation")
def test_ablation_phase_barriers(benchmark):
    with_barrier, without_barrier = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    header(
        "Ablation - A->B phase barrier (4,000 waveforms, full input)",
        f"{'configuration':<18} {'runtime_h':>10}",
    )
    print(f"{'sequential phases':<18} {to_hours(with_barrier):10.2f}")
    print(f"{'overlapped phases':<18} {to_hours(without_barrier):10.2f}")
    cost = 100.0 * (with_barrier / without_barrier - 1.0)
    print(f"barrier cost: {cost:.1f}% of makespan")
    # The barrier can only delay the B job (and hence all of C); the
    # overlapped variant must not be slower by more than noise.
    assert without_barrier < with_barrier * 1.05
