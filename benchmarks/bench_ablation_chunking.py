"""Ablation: FDW job chunking (DESIGN.md design choice).

The FDW packs 16 ruptures per A job and 2 ruptures per C job — fitted
from the paper's job counts and per-job wall times. This ablation sweeps
``chunk_c`` to show the trade-off: tiny chunks multiply scheduling and
staging overhead (every job re-stages the GF archive); huge chunks lose
parallelism and lengthen the straggler tail.
"""

from __future__ import annotations

import dataclasses

import pytest

from _common import FULL_INPUT, fdw_config, header, scaled
from repro.core.submit_osg import run_fdw_batch
from repro.rng import derive_seed
from repro.units import to_hours

WAVEFORMS = 4000
CHUNKS_C = [1, 2, 8, 32, 128]


def _run(chunk_c: int) -> tuple[float, int]:
    config = dataclasses.replace(
        fdw_config(scaled(WAVEFORMS), FULL_INPUT, f"abl_chunk{chunk_c}"),
        chunk_c=chunk_c,
    )
    result = run_fdw_batch(config, seed=derive_seed(10, chunk_c))
    name = result.dagman_names[0]
    return result.runtime_s(name), result.metrics.dagmans[name].n_jobs


@pytest.mark.benchmark(group="ablation")
def test_ablation_chunking(benchmark):
    rows = benchmark.pedantic(
        lambda: {c: _run(c) for c in CHUNKS_C}, rounds=1, iterations=1
    )
    header(
        "Ablation - Phase C chunk size (4,000 waveforms, full input)",
        f"{'chunk_c':>8} {'jobs':>7} {'runtime_h':>10}",
    )
    for c in CHUNKS_C:
        runtime, jobs = rows[c]
        print(f"{c:>8} {jobs:>7} {to_hours(runtime):10.2f}")

    runtimes = {c: rows[c][0] for c in CHUNKS_C}
    # Oversized chunks lose parallelism: with 128 ruptures per job the
    # workload degenerates toward a handful of multi-hour jobs.
    assert runtimes[128] > runtimes[2]
    # The default (2) must be competitive with every alternative —
    # within 35% of the best observed runtime.
    best = min(runtimes.values())
    assert runtimes[2] < 1.35 * best
