"""Figure 2: increasing earthquake simulation quantities.

Reproduces the paper's §4.1/§5.1 experiment: FDW runs at six waveform
quantities {1,024, 2,000, 5,120, 10,000, 24,960, 50,000}, each with the
small (2-station) and full (121-station) Chilean input, three DAGMans
per point; reports average total runtime (eq. 1) and average total
throughput (eq. 2) with standard deviations.

Paper values for comparison:
  small input: runtime 0.8 h -> 2.7 h; throughput 14.6 -> 185 JPM
  full input:  runtime 3.3 h (2,000) -> 34.8 h; throughput 3.3 -> 18.8
               JPM with a dip to 16.6 at 50,000
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import (
    FULL_INPUT,
    N_REPEATS,
    SMALL_INPUT,
    fmt_hours,
    header,
    run_single,
    scaled,
)
from repro.core.stats import average_total_runtime, average_total_throughput, summarize
from repro.units import to_hours

QUANTITIES = [1024, 2000, 5120, 10000, 24960, 50000]

#: Paper-reported (runtime hours, throughput JPM) anchors, where stated.
PAPER = {
    (SMALL_INPUT, 1024): (0.8, 14.6),
    (SMALL_INPUT, 50000): (2.7, 185.0),
    (FULL_INPUT, 2000): (3.3, None),
    (FULL_INPUT, 1024): (None, 3.3),
    (FULL_INPUT, 24960): (12.5, 18.8),
    (FULL_INPUT, 50000): (34.8, 16.6),
}


def _sweep(n_stations: int, label: str) -> dict[int, tuple[float, float, float, float]]:
    out = {}
    for quantity in QUANTITIES:
        n = scaled(quantity)
        runtimes, throughputs, jobs = [], [], []
        for repeat in range(N_REPEATS):
            result = run_single(n, n_stations, f"fig2_{label}_{quantity}", repeat)
            name = result.dagman_names[0]
            runtimes.append(result.runtime_s(name))
            throughputs.append(result.throughput_jpm(name))
            jobs.append(result.metrics.dagmans[name].n_jobs)
        alpha = average_total_runtime(runtimes)  # eq. (1)
        beta = average_total_throughput(jobs, runtimes)  # eq. (2)
        out[quantity] = (
            alpha,
            summarize([to_hours(r) for r in runtimes]).sd,
            beta,
            summarize(throughputs).sd,
        )
    return out


def _report(label: str, n_stations: int, rows: dict) -> None:
    header(
        f"Fig 2 - {label} Chilean input ({n_stations} stations)",
        f"{'waveforms':>10} {'runtime_h':>10} {'sd_h':>7} {'jpm':>8} "
        f"{'sd_jpm':>7} {'paper_h':>8} {'paper_jpm':>10}",
    )
    for quantity in QUANTITIES:
        alpha, sd_h, beta, sd_jpm = rows[quantity]
        paper_h, paper_jpm = PAPER.get((n_stations, quantity), (None, None))
        print(
            f"{quantity:>10} {fmt_hours(alpha):>10} {sd_h:7.2f} {beta:8.1f} "
            f"{sd_jpm:7.2f} "
            f"{paper_h if paper_h is not None else '-':>8} "
            f"{paper_jpm if paper_jpm is not None else '-':>10}"
        )


@pytest.mark.benchmark(group="fig2")
def test_fig2_small_input(benchmark):
    rows = benchmark.pedantic(
        lambda: _sweep(SMALL_INPUT, "small"), rounds=1, iterations=1
    )
    _report("small", SMALL_INPUT, rows)
    # Shape assertions (paper 5.1.2: small-input throughput rose
    # 1,165.5% from 1,024 to 50,000): throughput grows severalfold with
    # quantity while runtime grows far slower than the 49x workload.
    assert rows[50000][2] > 3 * rows[1024][2]
    assert to_hours(rows[50000][0]) < 12 * to_hours(rows[1024][0])


@pytest.mark.benchmark(group="fig2")
def test_fig2_full_input(benchmark):
    rows = benchmark.pedantic(
        lambda: _sweep(FULL_INPUT, "full"), rounds=1, iterations=1
    )
    _report("full", FULL_INPUT, rows)
    runtimes_h = {q: to_hours(rows[q][0]) for q in QUANTITIES}
    throughputs = {q: rows[q][2] for q in QUANTITIES}
    # Shape: runtime increases with quantity but sub-proportionally
    # until the largest point (paper: 178% step 24,960 -> 50,000).
    assert runtimes_h[50000] > runtimes_h[2000]
    assert runtimes_h[50000] / runtimes_h[2000] < 50000 / 2000
    # Shape: throughput rises from the smallest to the mid quantities.
    assert throughputs[24960] > 2 * throughputs[1024]
    # Full input is far slower than small input would be (seen in the
    # small benchmark); here just sanity-check the magnitudes.
    assert throughputs[1024] < 10.0
    assert np.isfinite(list(throughputs.values())).all()
