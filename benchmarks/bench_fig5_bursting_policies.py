"""Figure 5: VDC bursting — average instant throughput and VDC usage.

Reproduces §4.3/§5.3.1-5.3.2: two real 16,000-waveform DAGMan batches
are traced, then replayed under Policy 1 probe times {1, 2, 5, 10, 30,
60, 120} s against a 34 jobs/minute threshold, combined with Policy 2
maximum queue times {90, 120} minutes; controls replay with no policy.

Paper anchors: control AIT 14.1 (Batch 1) / 8.6 (Batch 2) JPM; maxima
31.7 / 32.4 JPM at 1 s probe with 90 min queue cap; VDC usage 19.1-52.8%
(B1) and 22.9-85.6% (B2), driven by the probe time, with the shorter
queue cap adding slightly more bursts but <1 JPM of AIT.
"""

from __future__ import annotations

import pytest

from _common import FULL_INPUT, bench_scale, fdw_config, header, scaled
from repro.bursting import BurstingSimulator, LowThroughputPolicy, QueueTimePolicy
from repro.core.submit_osg import run_fdw_batch
from repro.core.traces import BatchTrace, JobTrace
from repro.rng import derive_seed
from repro.units import minutes

TOTAL_WAVEFORMS = 16000
PROBE_TIMES_S = [1, 2, 5, 10, 30, 60, 120]
QUEUE_CAPS_MIN = [90, 120]
THRESHOLD_JPM = 34.0

PAPER_CONTROL_AIT = {1: 14.1, 2: 8.6}
PAPER_MAX_AIT = {1: 31.7, 2: 32.4}


def make_batch_trace(batch_id: int) -> BatchTrace:
    """Trace one real (simulated-OSG) 16,000-waveform DAGMan."""
    config = fdw_config(scaled(TOTAL_WAVEFORMS), FULL_INPUT, f"fig5_batch{batch_id}")
    result = run_fdw_batch(config, seed=derive_seed(5, batch_id))
    name = result.dagman_names[0]
    summary = result.metrics.dagmans[name]
    records = sorted(
        (r for r in result.metrics.for_dagman(name) if r.success),
        key=lambda r: r.submit_time,
    )
    jobs = tuple(
        JobTrace(
            node=r.node_name,
            phase=r.phase,
            submit_s=r.submit_time,
            start_s=r.start_time,
            end_s=r.end_time,
        )
        for r in records
    )
    return BatchTrace(
        dagman=name,
        submit_s=summary.submit_time,
        first_execute_s=min(r.start_time for r in records),
        end_s=summary.end_time,
        jobs=jobs,
    )


def effective_threshold(control) -> float:
    """Policy-1 threshold: the paper's 34 JPM at paper scale; at reduced
    FDW_BENCH_SCALE the trace's throughput never reaches 34, so the
    threshold is set to 60% of the control's peak to keep the policy
    meaningful."""
    if bench_scale() == 1.0:
        return THRESHOLD_JPM
    peak = float(control.throughput_series_jpm.max())
    return max(0.5, 0.6 * peak)


def sweep(trace: BatchTrace) -> dict:
    out: dict = {"control": BurstingSimulator(trace, policies=[]).run()}
    threshold = effective_threshold(out["control"])
    for queue_min in QUEUE_CAPS_MIN:
        for probe in PROBE_TIMES_S:
            result = BurstingSimulator(
                trace,
                policies=[
                    LowThroughputPolicy(probe_s=float(probe), threshold_jpm=threshold),
                    QueueTimePolicy(max_queue_s=minutes(queue_min)),
                ],
            ).run()
            out[(queue_min, probe)] = result
    return out


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("batch_id", [1, 2])
def test_fig5_bursting_policies(benchmark, batch_id):
    trace = make_batch_trace(batch_id)
    results = benchmark.pedantic(lambda: sweep(trace), rounds=1, iterations=1)

    control = results["control"]
    header(
        f"Fig 5 - Batch {batch_id}: AIT and VDC usage vs probe time "
        f"(threshold {THRESHOLD_JPM} JPM)",
        f"{'queue_min':>9} {'probe_s':>8} {'ait_jpm':>8} {'vdc_%':>7} "
        f"{'runtime_h':>10}",
    )
    print(
        f"{'control':>9} {'-':>8} {control.average_instant_throughput_jpm:8.1f} "
        f"{control.vdc_usage_percent:7.1f} {control.runtime_s / 3600:10.2f}"
        f"   (paper control AIT {PAPER_CONTROL_AIT[batch_id]} JPM)"
    )
    for queue_min in QUEUE_CAPS_MIN:
        for probe in PROBE_TIMES_S:
            r = results[(queue_min, probe)]
            print(
                f"{queue_min:>9} {probe:>8} "
                f"{r.average_instant_throughput_jpm:8.1f} "
                f"{r.vdc_usage_percent:7.1f} {r.runtime_s / 3600:10.2f}"
            )
    print(f"(paper max AIT for batch {batch_id}: {PAPER_MAX_AIT[batch_id]} JPM at 1 s/90 min)")

    # Shape: every policy combination improves AIT over the control.
    for key, r in results.items():
        if key == "control":
            continue
        assert (
            r.average_instant_throughput_jpm
            >= control.average_instant_throughput_jpm - 1e-9
        )
    # Shape: faster probing -> more VDC usage and higher AIT (paper
    # 5.3.2: "when the probe time shortens ... higher VDC utilization").
    for queue_min in QUEUE_CAPS_MIN:
        usages = [results[(queue_min, p)].vdc_usage_percent for p in PROBE_TIMES_S]
        assert usages[0] >= usages[-1]
        aits = [
            results[(queue_min, p)].average_instant_throughput_jpm
            for p in PROBE_TIMES_S
        ]
        assert aits[0] >= aits[-1] - 1e-9
    # Shape: queue-cap choice matters far less than probe time (paper:
    # never more than ~1 JPM of AIT between 90 and 120 min).
    for probe in PROBE_TIMES_S:
        delta = abs(
            results[(90, probe)].average_instant_throughput_jpm
            - results[(120, probe)].average_instant_throughput_jpm
        )
        assert delta < 5.0
