"""Benchmark suite configuration.

``pytest benchmarks/ --benchmark-only`` runs every figure reproduction
once (rounds=1) — these are simulations whose *output tables* are the
deliverable; the benchmark timings record how long each reproduction
takes to regenerate.
"""

import sys
from pathlib import Path

# Make the sibling `_common` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
