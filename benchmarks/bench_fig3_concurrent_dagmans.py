"""Figure 3: concurrent HTCondor DAGMans.

Reproduces §4.2/§5.2: 16,000 waveforms (full Chilean input) produced by
1, 2, 4, or 8 simultaneously launched DAGMans, three batches per
concurrency level; reports per-DAGMan average total runtime (eq. 3) and
average total throughput (eq. 4).

Paper values: throughput 10.7 / 6.5 / 3.7 / 2.2 JPM for 1/2/4/8
DAGMans (a >=39.5% drop per doubling; 381.3% single-vs-eight); runtime
14.1 (SD 1.3) / 11.9 (SD 1.8) / 12.5 (SD 7) / 15.7 (SD 12) hours — i.e.
partitioning does NOT reduce runtime, and SDs grow with concurrency.
"""

from __future__ import annotations

import pytest

from _common import FULL_INPUT, N_REPEATS, fdw_config, fmt_hours, header, scaled
from repro.core.partition import partition_config
from repro.core.stats import summarize
from repro.core.submit_osg import run_fdw_batch
from repro.rng import derive_seed
from repro.units import to_hours

TOTAL_WAVEFORMS = 16000
CONCURRENCY = [1, 2, 4, 8]

PAPER_JPM = {1: 10.7, 2: 6.5, 4: 3.7, 8: 2.2}
PAPER_HOURS = {1: 14.1, 2: 11.9, 4: 12.5, 8: 15.7}


def _run_level(k: int) -> tuple[float, float, float, float]:
    """Mean per-DAGMan runtime/throughput over N_REPEATS batches."""
    runtimes, throughputs = [], []
    for repeat in range(N_REPEATS):
        config = fdw_config(scaled(TOTAL_WAVEFORMS), FULL_INPUT, f"fig3_k{k}")
        parts = partition_config(config, k)
        result = run_fdw_batch(parts, seed=derive_seed(3, k, repeat))
        for name in result.dagman_names:
            runtimes.append(to_hours(result.runtime_s(name)))
            throughputs.append(result.throughput_jpm(name))
    r = summarize(runtimes)
    t = summarize(throughputs)
    return r.mean, r.sd, t.mean, t.sd


@pytest.mark.benchmark(group="fig3")
def test_fig3_concurrent_dagmans(benchmark):
    rows = benchmark.pedantic(
        lambda: {k: _run_level(k) for k in CONCURRENCY}, rounds=1, iterations=1
    )
    header(
        "Fig 3 - concurrent DAGMans producing 16,000 waveforms (full input)",
        f"{'dagmans':>8} {'runtime_h':>10} {'sd_h':>7} {'jpm':>7} {'sd_jpm':>7} "
        f"{'paper_h':>8} {'paper_jpm':>10}",
    )
    for k in CONCURRENCY:
        mean_h, sd_h, mean_jpm, sd_jpm = rows[k]
        print(
            f"{k:>8} {mean_h:10.2f} {sd_h:7.2f} {mean_jpm:7.2f} {sd_jpm:7.2f} "
            f"{PAPER_HOURS[k]:8.1f} {PAPER_JPM[k]:10.1f}"
        )

    # Shape: per-DAGMan throughput decreases monotonically with k...
    jpms = [rows[k][2] for k in CONCURRENCY]
    assert jpms[0] > jpms[1] > jpms[2] > jpms[3]
    # ... roughly halving per doubling (paper: >=39.5% drops).
    for a, b in zip(jpms, jpms[1:]):
        assert b < 0.75 * a
    # Shape: runtime does NOT shrink proportionally — 8 DAGMans each
    # doing 1/8 of the work take comparable (not 8x smaller) time.
    hours = [rows[k][0] for k in CONCURRENCY]
    assert hours[3] > 0.5 * hours[0]
