"""Benchmarks of the multi-tenant portal service (``portal-service`` group).

What the service layer is for, measured:

* **Coalescing hit rate** — N tenants submitting from a shared pool of
  distinct scenarios must execute each scenario far fewer times than it
  was requested; the hit rate and execution count land in
  ``extra_info`` (and are asserted, so a regression that silently stops
  coalescing fails the bench, not just the trend line).
* **Queue-wait distribution** — p50/p99 virtual queue wait across all
  tickets at N simulated tenants, the fair-share/backpressure health
  numbers a gateway operator watches.
* **Service overhead** — the benchmark timing itself: everything but
  the (virtual-cost) backend, i.e. the queueing, negotiation,
  coalescing, and deposit machinery at community scale.

Run: ``PYTHONPATH=src pytest benchmarks/bench_portal_service.py -q
--benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.obs.stats import percentiles
from repro.service import SimulatedRunner, run_service_demo

#: Community-scale session: tenants x submissions per benchmark round.
N_TENANTS = 24
N_SUBMISSIONS = 192
N_DISTINCT = 8
N_WORKERS = 4


def _session(seed: int):
    return run_service_demo(
        n_tenants=N_TENANTS,
        n_submissions=N_SUBMISSIONS,
        n_distinct=N_DISTINCT,
        seed=seed,
        n_workers=N_WORKERS,
        runner=SimulatedRunner(),
    )


@pytest.mark.benchmark(group="portal-service")
def test_service_session_throughput(benchmark):
    """One full session: submission through deposit for every ticket."""
    report = benchmark(_session, 11)
    stats = report.stats
    assert stats.n_submitted == N_SUBMISSIONS
    assert stats.n_executed + stats.n_failed <= N_SUBMISSIONS
    # Coalescing must actually dedupe a shared-scenario community.
    assert stats.n_executed < N_SUBMISSIONS
    assert stats.coalescing_hit_rate > 0.0
    benchmark.extra_info["n_tenants"] = N_TENANTS
    benchmark.extra_info["n_submissions"] = N_SUBMISSIONS
    benchmark.extra_info["n_executed"] = stats.n_executed
    benchmark.extra_info["coalescing_hit_rate"] = round(
        stats.coalescing_hit_rate, 4
    )
    p50, p99 = percentiles(stats.queue_waits_s, (50.0, 99.0))
    benchmark.extra_info["queue_wait_p50_s"] = round(p50, 2)
    benchmark.extra_info["queue_wait_p99_s"] = round(p99, 2)


@pytest.mark.benchmark(group="portal-service")
def test_service_submission_fanin(benchmark):
    """Hot path in isolation: all tenants submit one identical scenario.

    The steady-state cost of a submission that coalesces — content
    digest, quota check, ticket fan-in — with exactly one execution at
    the end. The canonical "identical concurrent submissions" case.
    """
    report = benchmark(
        run_service_demo,
        n_tenants=16,
        n_submissions=128,
        n_distinct=1,
        seed=5,
        n_workers=2,
        runner=SimulatedRunner(),
    )
    stats = report.stats
    assert stats.n_submitted == 128
    # One distinct scenario: every submission that lands while a prior
    # identical one is still queued or running must fan in, so the
    # execution count stays well below the ticket count.
    assert stats.n_executed < stats.n_submitted
    assert stats.coalescing_hit_rate > 0.25
    benchmark.extra_info["n_executed"] = stats.n_executed
    benchmark.extra_info["coalescing_hit_rate"] = round(
        stats.coalescing_hit_rate, 4
    )
