"""Headline claims: FDW vs a single machine, and throughput scaling.

Reproduces the numbers quoted in §1/§6:

* "a 56.8% decrease in runtime when simulating 1,024 earthquakes in
  Chile using parallel computation on OSG versus on a single machine";
* "throughput ... increases by approximately five times when running
  50,000 simulations compared to 1,024";
* "in contrast to their over-20-day generation of 36,800 waveforms
  [Lin et al.], we produced, on average, 24,960 in 12.5 hours and
  50,000 in under 35 hours".

The single-machine control sums the calibrated per-job costs of the
identical workload executed back-to-back — the role the paper's AWS
instance plays.
"""

from __future__ import annotations

import pytest

from _common import FULL_INPUT, N_REPEATS, fdw_config, header, run_single, scaled
from repro.core.local import estimate_sequential_runtime_s
from repro.core.stats import average_total_runtime, average_total_throughput
from repro.units import to_hours

PAPER_REDUCTION_PERCENT = 56.8
PAPER_THROUGHPUT_RATIO = 5.0


def _avg_osg(n_waveforms: int, label: str) -> tuple[float, float]:
    runtimes, jobs = [], []
    for repeat in range(N_REPEATS):
        result = run_single(n_waveforms, FULL_INPUT, label, repeat)
        name = result.dagman_names[0]
        runtimes.append(result.runtime_s(name))
        jobs.append(result.metrics.dagmans[name].n_jobs)
    return (
        average_total_runtime(runtimes),
        average_total_throughput(jobs, runtimes),
    )


@pytest.mark.benchmark(group="headline")
def test_single_machine_vs_osg(benchmark):
    def run():
        n1024 = scaled(1024)
        osg_runtime, _ = _avg_osg(n1024, "headline_1024")
        single = estimate_sequential_runtime_s(fdw_config(n1024, FULL_INPUT, "sm"))
        return osg_runtime, single

    osg_runtime, single = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = 100.0 * (1.0 - osg_runtime / single)
    header(
        "Headline - 1,024 full-input waveforms: OSG vs single machine",
        f"{'target':<16} {'hours':>8}",
    )
    print(f"{'single machine':<16} {to_hours(single):8.1f}")
    print(f"{'FDW on OSG':<16} {to_hours(osg_runtime):8.1f}")
    print(f"runtime reduction: {reduction:.1f}%  (paper: {PAPER_REDUCTION_PERCENT}%)")

    # The paper reports a >50% reduction; parallel execution must win
    # decisively (we accept anything in the 40-99% band as same-shape).
    assert reduction > 40.0


@pytest.mark.benchmark(group="headline")
def test_throughput_scales_5x(benchmark):
    def run():
        _, small_beta = _avg_osg(scaled(1024), "headline_tp_1024")
        _, big_beta = _avg_osg(scaled(50000), "headline_tp_50000")
        return small_beta, big_beta

    small_beta, big_beta = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = big_beta / small_beta
    header(
        "Headline - throughput at 50,000 vs 1,024 waveforms (full input)",
        f"{'quantity':>10} {'jpm':>8}",
    )
    print(f"{1024:>10} {small_beta:8.2f}")
    print(f"{50000:>10} {big_beta:8.2f}")
    print(f"ratio: {ratio:.1f}x  (paper: ~{PAPER_THROUGHPUT_RATIO}x)")
    assert ratio > 3.0


@pytest.mark.benchmark(group="headline")
def test_catalog_generation_beats_lin_et_al(benchmark):
    def run():
        runtime_24960, _ = _avg_osg(scaled(24960), "headline_24960")
        runtime_50000, _ = _avg_osg(scaled(50000), "headline_50000")
        return runtime_24960, runtime_50000

    r24960, r50000 = benchmark.pedantic(run, rounds=1, iterations=1)
    header(
        "Headline - large catalogs vs Lin et al.'s 20+ days for 36,800",
        f"{'quantity':>10} {'hours':>8} {'paper':>10}",
    )
    print(f"{24960:>10} {to_hours(r24960):8.1f} {'12.5 h':>10}")
    print(f"{50000:>10} {to_hours(r50000):8.1f} {'<35 h':>10}")
    # Shape: both complete in hours (not days), and 50k > 24,960.
    import os

    if os.environ.get("FDW_BENCH_SCALE", "1.0") == "1.0":
        assert to_hours(r24960) < 24.0
        assert to_hours(r50000) < 48.0
    assert r50000 > r24960
