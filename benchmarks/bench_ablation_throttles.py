"""Ablation: DAGMan idle throttle and negotiator match limit.

Two scheduling knobs shape the paper's wait-time and ramp-up behaviour:

* ``max_idle`` — DAGMan keeps at most this many jobs idle; larger
  windows mean earlier submission timestamps and hence longer recorded
  queue waits (the 70 vs 189 min effect has this flavour);
* ``match_limit_per_cycle`` — bounds how fast the negotiator can ramp
  claims, shaping the instant-throughput onset.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from _common import FULL_INPUT, fdw_config, header, scaled
from repro.core.submit_osg import run_fdw_batch
from repro.osg.negotiator import NegotiatorConfig
from repro.osg.pool import OSPoolConfig
from repro.rng import derive_seed
from repro.units import to_hours, to_minutes

WAVEFORMS = 4000
MAX_IDLE = [50, 500, 5000]
MATCH_LIMITS = [20, 150, 1000]


def _run_idle(max_idle: int) -> tuple[float, float]:
    config = dataclasses.replace(
        fdw_config(scaled(WAVEFORMS), FULL_INPUT, f"abl_idle{max_idle}"),
        max_idle=max_idle,
    )
    result = run_fdw_batch(config, seed=derive_seed(13, max_idle))
    name = result.dagman_names[0]
    waits = result.metrics.wait_times_s(phase="C")
    return result.runtime_s(name), float(np.mean(waits))


def _run_match(limit: int) -> tuple[float, float]:
    config = fdw_config(scaled(WAVEFORMS), FULL_INPUT, f"abl_match{limit}")
    pool_config = OSPoolConfig(
        negotiator=NegotiatorConfig(match_limit_per_cycle=limit)
    )
    result = run_fdw_batch(config, pool_config=pool_config, seed=derive_seed(14, limit))
    name = result.dagman_names[0]
    omega = result.metrics.instant_throughput_jpm(name)
    # Time (s) to reach half the series' final throughput: the ramp.
    target = omega[-1] * 0.5
    ramp = float(np.argmax(omega >= target)) if np.any(omega >= target) else float("inf")
    return result.runtime_s(name), ramp


@pytest.mark.benchmark(group="ablation")
def test_ablation_max_idle(benchmark):
    rows = benchmark.pedantic(
        lambda: {m: _run_idle(m) for m in MAX_IDLE}, rounds=1, iterations=1
    )
    header(
        "Ablation - DAGMan max_idle (4,000 waveforms)",
        f"{'max_idle':>9} {'runtime_h':>10} {'mean_wait_min':>14}",
    )
    for m in MAX_IDLE:
        runtime, wait = rows[m]
        print(f"{m:>9} {to_hours(runtime):10.2f} {to_minutes(wait):14.1f}")
    # Larger idle windows record longer queue waits (jobs sit visible in
    # the queue instead of unreleased in DAGMan).
    assert rows[5000][1] > rows[50][1]
    # But makespan is dominated by pool capacity, not the throttle.
    runtimes = [rows[m][0] for m in MAX_IDLE]
    assert max(runtimes) < 1.5 * min(runtimes)


@pytest.mark.benchmark(group="ablation")
def test_ablation_match_limit(benchmark):
    rows = benchmark.pedantic(
        lambda: {m: _run_match(m) for m in MATCH_LIMITS}, rounds=1, iterations=1
    )
    header(
        "Ablation - negotiator match limit per cycle (4,000 waveforms)",
        f"{'limit':>7} {'runtime_h':>10} {'ramp_to_half_s':>15}",
    )
    for m in MATCH_LIMITS:
        runtime, ramp = rows[m]
        print(f"{m:>7} {to_hours(runtime):10.2f} {ramp:15.0f}")
    # A starved matchmaker must visibly slow the ramp versus the most
    # permissive setting.
    assert rows[20][1] >= rows[1000][1]
