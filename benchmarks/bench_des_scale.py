"""Million-job DES scaling: vectorized pool engine vs. the reference loop.

The ``bench-des-scale`` group tracks the struct-of-arrays event core at
the scales the paper's cyberinfrastructure argument actually needs:

* a 100k-task instance (generated from the bundled FDW pattern with the
  WfChef-style scaler) replayed in trace mode under both pool engines on
  a pool wide enough to run a whole DAG level concurrently — the design
  point where the reference loop's per-completion running-list rebuild
  turns quadratic, and
* a million-task instance replayed in model mode under the vectorized
  engine — the "does a week of OSPool fit in a coffee break" headline.

Both arms record jobs/sec and peak RSS in the pytest-benchmark
``extra_info`` (archived as the BENCH_kernels artifact). The >=20x
speedup acceptance gate is asserted only at full scale
(``FDW_BENCH_SCALE=1``): at smoke scale the concurrent level width —
and with it the reference engine's quadratic term — shrinks linearly,
so the ratio there is a trend signal, not the acceptance number.

Instance generation and WfFormat import happen in module fixtures; the
timed region is submit + run only.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

import pytest

from _common import bench_scale
from repro.condor.dagman import DagmanOptions
from repro.osg.capacity import FixedCapacity
from repro.osg.negotiator import NegotiatorConfig
from repro.osg.pool import OSPoolConfig
from repro.wf import generate_instance, import_instance, load_instance, replay_instance

N_100K = max(1_000, round(100_000 * bench_scale()))
N_1M = max(2_000, round(1_000_000 * bench_scale()))

#: Slots in the million-task model-mode arm: a large opportunistic pool,
#: deliberately far below the task count so negotiation cycles, claim
#: reuse, and the DAGMan throttles all stay on the hot path.
MODEL_POOL_SLOTS = 20_000

#: Cross-arm results: elapsed seconds and makespans, keyed by arm name.
RESULTS: dict[str, dict[str, float]] = {}


def peak_rss_mb() -> float:
    """Peak RSS of this process so far, in MB (Linux: ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def wide_pool_config(n_slots: int) -> OSPoolConfig:
    """A pool that can start a whole submit cycle's worth of jobs."""
    return OSPoolConfig(
        negotiator=NegotiatorConfig(cycle_s=60.0, match_limit_per_cycle=n_slots),
    )


def wide_options(n_tasks: int) -> DagmanOptions:
    return DagmanOptions(max_idle=0, submit_batch=max(1, n_tasks))


@pytest.fixture(scope="module")
def fdw64():
    path = Path(__file__).resolve().parents[1] / "examples" / "fdw64_wfformat.json"
    return load_instance(path)


@pytest.fixture(scope="module")
def imported_100k(fdw64):
    return import_instance(generate_instance(fdw64, N_100K, seed=1))


@pytest.fixture(scope="module")
def imported_1m(fdw64):
    return import_instance(generate_instance(fdw64, N_1M, seed=2))


def timed_replay(arm, workflow, n_tasks, engine, runtime, n_slots):
    start = time.perf_counter()
    result = replay_instance(
        workflow,
        seed=0,
        runtime=runtime,
        config=wide_pool_config(n_slots),
        capacity=FixedCapacity(n_slots),
        options=wide_options(n_tasks),
        engine=engine,
    )
    elapsed = time.perf_counter() - start
    RESULTS[arm] = {
        "elapsed_s": elapsed,
        "jobs_per_s": len(result.metrics.records) / elapsed,
        "makespan_s": result.makespan_s,
    }
    return result


def run_arm(benchmark, arm, workflow, n_tasks, engine, runtime, n_slots):
    result = benchmark.pedantic(
        timed_replay,
        args=(arm, workflow, n_tasks, engine, runtime, n_slots),
        rounds=1,
        iterations=1,
    )
    assert len(result.metrics.records) >= n_tasks  # every task completed
    benchmark.extra_info["n_tasks"] = n_tasks
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["runtime_mode"] = runtime
    benchmark.extra_info["jobs_per_s"] = round(RESULTS[arm]["jobs_per_s"], 1)
    benchmark.extra_info["makespan_s"] = RESULTS[arm]["makespan_s"]
    benchmark.extra_info["peak_rss_mb"] = round(peak_rss_mb(), 1)
    return result


@pytest.mark.benchmark(group="bench-des-scale")
def test_100k_trace_reference_engine(benchmark, imported_100k):
    """Baseline: the seed's one-object-per-job loop at 100k tasks."""
    run_arm(
        benchmark, "100k-reference", imported_100k, N_100K,
        engine="reference", runtime="trace", n_slots=N_100K,
    )


@pytest.mark.benchmark(group="bench-des-scale")
def test_100k_trace_vector_engine(benchmark, imported_100k):
    """The struct-of-arrays engine on the identical workload."""
    run_arm(
        benchmark, "100k-vector", imported_100k, N_100K,
        engine="vector", runtime="trace", n_slots=N_100K,
    )
    # Bit-identity at scale: same makespan as the reference arm.
    if "100k-reference" in RESULTS:
        assert (
            RESULTS["100k-vector"]["makespan_s"]
            == RESULTS["100k-reference"]["makespan_s"]
        )


@pytest.mark.benchmark(group="bench-des-scale")
def test_million_model_vector_engine(benchmark, imported_1m):
    """A million model-mode jobs through the vectorized engine."""
    run_arm(
        benchmark, "1m-vector", imported_1m, N_1M,
        engine="vector", runtime="model", n_slots=MODEL_POOL_SLOTS,
    )


def test_des_scale_speedup_report(capsys):
    """Speedup table; asserts the >=20x acceptance gate at full scale."""
    if "100k-reference" not in RESULTS or "100k-vector" not in RESULTS:
        pytest.skip("run together with the bench-des-scale benchmarks")
    ref, vec = RESULTS["100k-reference"], RESULTS["100k-vector"]
    speedup = ref["elapsed_s"] / vec["elapsed_s"]
    with capsys.disabled():
        print()
        print("### DES scaling: reference vs. vectorized pool engine")
        print(f"{'arm':<18}{'tasks':>10}{'elapsed':>10}{'jobs/s':>12}")
        print("-" * 50)
        for arm, n in (
            ("100k-reference", N_100K),
            ("100k-vector", N_100K),
            ("1m-vector", N_1M),
        ):
            if arm in RESULTS:
                r = RESULTS[arm]
                print(
                    f"{arm:<18}{n:>10}{r['elapsed_s']:>9.2f}s"
                    f"{r['jobs_per_s']:>12,.0f}"
                )
        print(f"100k trace-mode speedup: {speedup:.1f}x (peak RSS {peak_rss_mb():.0f} MB)")
    assert vec["makespan_s"] == ref["makespan_s"]
    if bench_scale() >= 1.0:
        assert speedup >= 20.0
