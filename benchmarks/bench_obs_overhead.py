"""Observability overhead budget (the ``obs-overhead`` group).

The obs subsystem's whole contract is that it is safe to leave the
instrumentation sites in every hot path:

* **Disabled, the hooks are a no-op** — one global load and a ``None``
  check per site. ``test_disabled_pool_replay`` archives the
  un-observed baseline.
* **Enabled, a fully observed pool replay must stay under 5% overhead**
  (counters per negotiation cycle, per-DAGMan spans, vectorized
  wait/exec histograms, transfer byte counters).
  ``test_enabled_overhead_budget`` measures both arms inline (median of
  per-pair ratios over interleaved rounds, medianed again across
  independent blocks) so the assertion holds inside one test run, then
  puts the observed arm's full distribution through the ``benchmark``
  fixture with the measured overhead in ``extra_info``.

Run: ``PYTHONPATH=src pytest benchmarks/bench_obs_overhead.py -q
--benchmark-only``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from _common import bench_scale
from repro import obs
from repro.condor.dagman import DagmanOptions
from repro.osg.capacity import FixedCapacity
from repro.osg.negotiator import NegotiatorConfig
from repro.osg.pool import OSPoolConfig
from repro.wf import generate_instance, import_instance, load_instance, replay_instance

#: Tasks in the replayed instance: large enough that one replay takes a
#: measurable fraction of a second (timing noise well under the 5%
#: budget), small enough for the CI smoke run.
N_TASKS = max(1_000, round(10_000 * bench_scale()))
POOL_SLOTS = 500


@pytest.fixture(scope="module")
def workflow():
    path = Path(__file__).resolve().parents[1] / "examples" / "fdw64_wfformat.json"
    return import_instance(generate_instance(load_instance(path), N_TASKS, seed=3))


def replay_once(workflow):
    result = replay_instance(
        workflow,
        seed=0,
        runtime="model",
        config=OSPoolConfig(
            negotiator=NegotiatorConfig(cycle_s=60.0, match_limit_per_cycle=POOL_SLOTS)
        ),
        capacity=FixedCapacity(POOL_SLOTS),
        options=DagmanOptions(max_idle=0, submit_batch=N_TASKS),
    )
    assert len(result.metrics.records) >= N_TASKS
    return result


def observed_replay(workflow):
    with obs.observe() as session:
        result = replay_once(workflow)
    # The observed arm must actually have observed something.
    assert session.registry.counter_total("repro_pool_negotiation_cycles_total") > 0
    assert any(ev.phase == "X" for ev in session.tracer.events)
    return result


def _overhead_block(workflow, rounds=9):
    """One block's enabled-over-disabled overhead estimate.

    The arms are sampled alternately and compared *pairwise*: each
    round's baseline and observed replay run back to back, so slow
    machine-state drift (turbo, cache warmth, noisy neighbours) hits
    both sides of a ratio equally, and the median over the block's
    per-pair ratios discards rounds where a scheduling spike hit one
    side only.
    """
    ratios = []
    for _ in range(rounds):
        start = time.perf_counter()
        replay_once(workflow)
        base = time.perf_counter() - start
        start = time.perf_counter()
        observed_replay(workflow)
        ratios.append((time.perf_counter() - start) / base)
    ratios.sort()
    return ratios[len(ratios) // 2] - 1.0


def _measured_overhead(workflow, blocks=3):
    """Median overhead across independent measurement blocks.

    A single block is still vulnerable to noise bursts that outlast
    it; blocks run seconds apart, so their errors decorrelate and the
    median across them is stable even on a heavily shared box.
    """
    return sorted(_overhead_block(workflow) for _ in range(blocks))[blocks // 2]


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_pool_replay(benchmark, workflow):
    """Baseline arm: the replay with no observation session installed."""
    assert not obs.enabled()
    result = benchmark(replay_once, workflow)
    benchmark.extra_info["n_tasks"] = N_TASKS
    benchmark.extra_info["n_records"] = len(result.metrics.records)


@pytest.mark.benchmark(group="obs-overhead")
def test_enabled_overhead_budget(benchmark, workflow):
    """Observed arm + acceptance: full instrumentation costs < 5%."""
    overhead = _measured_overhead(workflow)
    if overhead >= 0.05:
        # One full re-measure before declaring a regression: a CI noise
        # episode must not fail the budget, a real hot-path regression
        # will fail both measurements.
        overhead = _measured_overhead(workflow)

    benchmark(observed_replay, workflow)

    benchmark.extra_info["n_tasks"] = N_TASKS
    benchmark.extra_info["obs_overhead_pct"] = round(overhead * 100.0, 3)
    assert overhead < 0.05
