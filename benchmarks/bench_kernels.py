"""Micro-benchmarks of the real seismic kernels.

These time the actual numerical phases (not the pool simulation):
distance matrices, stochastic rupture generation, GF computation and
waveform synthesis — the costs that anchor the OSG runtime model via
:meth:`repro.osg.runtimes.RuntimeModel.calibrate_from_kernels`.

The ``gf-cache`` and ``phase-c-pool`` groups track the GF reuse
subsystem: cold vs. warm :class:`~repro.core.gfcache.GFCache` lookups,
batched vs. per-rupture Phase-C synthesis, and the seed pool path
(every worker rebuilds the bank per chunk) against the shared-memory
pool. ``FDW_BENCH_SCALE`` shrinks the workload for smoke runs; pass
``--benchmark-json BENCH_kernels.json`` to persist the numbers (the CI
smoke job archives that artifact).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from _common import bench_scale
from repro.core.config import FdwConfig
from repro.core.gfcache import GFCache
from repro.core.local import LocalRunner, _fakequakes_for, _run_c_chunk
from repro.core.phases import chunk_bounds
from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import build_chile_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.ruptures import RuptureGenerator
from repro.seismo.stations import chilean_network
from repro.seismo.waveforms import WaveformSynthesizer


@pytest.fixture(scope="module")
def geometry():
    return build_chile_slab(n_strike=20, n_dip=10)


@pytest.fixture(scope="module")
def distances(geometry):
    return DistanceMatrices.from_geometry(geometry)


@pytest.fixture(scope="module")
def network():
    return chilean_network(24)


@pytest.fixture(scope="module")
def gf_bank(geometry, network):
    return compute_gf_bank(geometry, network)


@pytest.fixture(scope="module")
def generator(geometry, distances):
    return RuptureGenerator(geometry, distances=distances)


@pytest.mark.benchmark(group="kernels")
def test_kernel_distance_matrices(benchmark, geometry):
    result = benchmark(DistanceMatrices.from_geometry, geometry)
    assert result.n_subfaults == geometry.n_subfaults


@pytest.mark.benchmark(group="kernels")
def test_kernel_rupture_generation(benchmark, generator):
    rng = np.random.default_rng(0)
    rupture = benchmark(generator.generate, rng, "bench.000000", 8.5)
    assert rupture.n_subfaults > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_greens_functions(benchmark, geometry, network):
    bank = benchmark(compute_gf_bank, geometry, network)
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="kernels")
def test_kernel_waveform_synthesis(benchmark, gf_bank, generator):
    rupture = generator.generate(np.random.default_rng(1), "bench.000001", 8.5)
    synth = WaveformSynthesizer(gf_bank)
    ws = benchmark(synth.synthesize, rupture)
    assert ws.n_stations == gf_bank.n_stations


# -- GF cache: cold vs warm ---------------------------------------------------


@pytest.fixture(scope="module")
def ruptures(generator):
    n = max(4, int(round(16 * bench_scale())))
    return [
        generator.generate(np.random.default_rng(100 + i), f"bench.{i:06d}", 8.5)
        for i in range(n)
    ]


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_cold(benchmark, geometry, network, tmp_path):
    """Cold lookup: every round computes the bank and stores it."""

    def cold():
        cache = GFCache(cache_dir=tmp_path / "cold")
        bank = cache.get_or_compute(geometry, network)
        cache.clear(disk=True)
        return bank

    bank = benchmark(cold)
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_warm_disk(benchmark, geometry, network, tmp_path):
    """Warm disk hit: memory level dropped, bank reloaded from .npz."""
    cache = GFCache(cache_dir=tmp_path / "warm")
    cache.get_or_compute(geometry, network)

    def warm():
        cache.clear()  # keep the disk store, drop memory
        return cache.get_or_compute(geometry, network)

    bank = benchmark(warm)
    assert cache.stats.disk_hits >= 1
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_warm_memory(benchmark, geometry, network):
    """Warm memory hit: the LRU returns the resident bank."""
    cache = GFCache()
    cache.get_or_compute(geometry, network)
    bank = benchmark(cache.get_or_compute, geometry, network)
    assert bank.n_stations == len(network)


# -- Phase C: batched vs per-rupture -----------------------------------------


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_per_rupture(benchmark, gf_bank, ruptures):
    synth = WaveformSynthesizer(gf_bank)
    sets = benchmark(lambda: [synth.synthesize(r) for r in ruptures])
    assert len(sets) == len(ruptures)


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_batched(benchmark, gf_bank, ruptures):
    synth = WaveformSynthesizer(gf_bank)
    sets = benchmark(synth.synthesize_batch, ruptures)
    assert len(sets) == len(ruptures)
    reference = [synth.synthesize(r) for r in ruptures]
    for ws, ref in zip(sets, reference):
        assert np.array_equal(ws.data, ref.data)  # bit-identical products


# -- Phase C pool: seed path vs shared-memory bank ----------------------------

POOL_WORKERS = 4


@pytest.fixture(scope="module")
def pool_config():
    s = bench_scale()
    return FdwConfig(
        name="bench_pool",
        n_waveforms=max(8, int(round(16 * s))),
        n_stations=max(4, int(round(121 * s))),
        mesh=(max(8, int(round(30 * s))), max(5, int(round(15 * s)))),
        chunk_a=8,
        chunk_c=2,
        seed=7,
    )


def _seed_c_chunk(args: tuple[FdwConfig, int, int]) -> list[float]:
    """Faithful reproduction of the seed repo's pool worker: rebuild
    geometry, distances, the rupture chunk and the full GF bank, then
    synthesize one rupture at a time (the pre-batching scalar loop)."""
    config, start, count = args
    fq = _fakequakes_for(config)
    fq.phase_a_distances()
    ruptures = fq.phase_a_ruptures(start, count)
    bank = fq.phase_b_greens_functions()
    synth = WaveformSynthesizer(bank, dt_s=fq.params.dt_s)
    return [float(synth.synthesize(r).pgd_m().max()) for r in ruptures]


def _seed_c_phase(config: FdwConfig) -> list[float]:
    """The seed pool path for the whole C phase (pool created per run,
    as the seed `LocalRunner.run` did)."""
    chunks = [
        (config, start, count)
        for start, count in chunk_bounds(config.n_waveforms, config.chunk_c)
    ]
    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:
        rows = list(pool.map(_seed_c_chunk, chunks))
    return [value for row in rows for value in row]


@pytest.mark.benchmark(group="phase-c-pool")
def test_phase_c_pool_seed_path(benchmark, pool_config):
    maxima = benchmark(_seed_c_phase, pool_config)
    assert len(maxima) == pool_config.n_waveforms


@pytest.mark.benchmark(group="phase-c-pool")
def test_phase_c_pool_shared_bank(benchmark, pool_config, tmp_path):
    """Persistent pool + shared-memory bank + warm GF cache (full run:
    the dist/A/B phases it still performs are cache hits / parent-side
    work shared with the seed arm)."""
    with LocalRunner(
        n_workers=POOL_WORKERS, gf_cache=GFCache(cache_dir=tmp_path / "gf")
    ) as runner:
        runner.run(pool_config)  # warm the cache, spin the pool up
        result = benchmark(runner.run, pool_config)
    assert result.n_waveform_sets == pool_config.n_waveforms
    # Numerically identical products to the seed pool path.
    seed_maxima = _seed_c_phase(pool_config)
    new_maxima = [
        result.pgd_by_rupture[f"chile_slab.{i:06d}"]
        for i in range(pool_config.n_waveforms)
    ]
    assert new_maxima == seed_maxima


def test_phase_c_pool_speedup_report(pool_config, tmp_path, capsys):
    """One-shot before/after comparison printed as a table (not a
    pytest-benchmark timing; runs even with --benchmark-disable)."""
    t0 = time.perf_counter()
    seed_maxima = _seed_c_phase(pool_config)
    seed_s = time.perf_counter() - t0

    with LocalRunner(
        n_workers=POOL_WORKERS, gf_cache=GFCache(cache_dir=tmp_path / "gf")
    ) as runner:
        runner.run(pool_config)  # warm
        t0 = time.perf_counter()
        result = runner.run(pool_config)
        full_s = time.perf_counter() - t0
    c_s = result.phase_seconds["C"]

    new_maxima = [
        result.pgd_by_rupture[f"chile_slab.{i:06d}"]
        for i in range(pool_config.n_waveforms)
    ]
    assert new_maxima == seed_maxima
    with capsys.disabled():
        print(
            f"\n### Phase-C pool ({pool_config.n_waveforms} waveforms, "
            f"{pool_config.n_stations} stations, {POOL_WORKERS} workers)\n"
            f"seed C phase (rebuild per chunk, scalar) : {seed_s:8.3f} s\n"
            f"shared-bank C phase (warm cache, batch)  : {c_s:8.3f} s\n"
            f"C-phase speedup                          : {seed_s / c_s:8.2f}x\n"
            f"(full warm run incl. dist/A/B            : {full_s:8.3f} s)"
        )
