"""Micro-benchmarks of the real seismic kernels.

These time the actual numerical phases (not the pool simulation):
distance matrices, stochastic rupture generation, GF computation and
waveform synthesis — the costs that anchor the OSG runtime model via
:meth:`repro.osg.runtimes.RuntimeModel.calibrate_from_kernels`.

The ``gf-cache`` and ``phase-c-pool`` groups track the GF reuse
subsystem: cold vs. warm :class:`~repro.core.gfcache.GFCache` lookups,
batched vs. per-rupture Phase-C synthesis, and the seed pool path
(every worker rebuilds the bank per chunk) against the shared-memory
pool. The ``phase-a-kernel`` / ``phase-a-cache`` / ``phase-a-pool``
groups track the Phase-A acceleration stack the same way: the dense
von Kármán evaluation against the unique-lag kernel, cold vs. warm
:class:`~repro.seismo.klcache.KLCache` lookups, and the seed sequential
rupture sweep (dense kernel, no cache) against the pooled + memoized
fan-out. ``phase-b-batch`` compares the per-pair ``okada85`` reference
loop against the vectorized Chinnery-corner bank build (bit-identical
products) and the opt-in float32 bank, whose error budget lands in the
bench JSON ``extra_info``. ``FDW_BENCH_SCALE`` shrinks the workload for smoke runs; pass
``--benchmark-json BENCH_kernels.json`` to persist the numbers (the CI
smoke job archives that artifact).
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from unittest import mock

import numpy as np
import pytest

from _common import bench_scale
from repro.core.config import FdwConfig
from repro.core.gfcache import GFCache
from repro.core.local import LocalRunner, _fakequakes_for, _run_c_chunk
from repro.core.phases import chunk_bounds
import repro.seismo.ruptures as ruptures_mod
from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import build_chile_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.klcache import KLCache
from repro.seismo.okada import compute_okada_gf_bank
from repro.seismo.ruptures import Rupture, RuptureGenerator
from repro.seismo.spectra import von_karman_correlation
from repro.seismo.stations import chilean_network
from repro.seismo.waveforms import WaveformSynthesizer


@pytest.fixture(scope="module")
def geometry():
    return build_chile_slab(n_strike=20, n_dip=10)


@pytest.fixture(scope="module")
def distances(geometry):
    return DistanceMatrices.from_geometry(geometry)


@pytest.fixture(scope="module")
def network():
    return chilean_network(24)


@pytest.fixture(scope="module")
def gf_bank(geometry, network):
    return compute_gf_bank(geometry, network)


@pytest.fixture(scope="module")
def generator(geometry, distances):
    return RuptureGenerator(geometry, distances=distances)


@pytest.mark.benchmark(group="kernels")
def test_kernel_distance_matrices(benchmark, geometry):
    result = benchmark(DistanceMatrices.from_geometry, geometry)
    assert result.n_subfaults == geometry.n_subfaults


@pytest.mark.benchmark(group="kernels")
def test_kernel_rupture_generation(benchmark, generator):
    rng = np.random.default_rng(0)
    rupture = benchmark(generator.generate, rng, "bench.000000", 8.5)
    assert rupture.n_subfaults > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_greens_functions(benchmark, geometry, network):
    bank = benchmark(compute_gf_bank, geometry, network)
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="kernels")
def test_kernel_waveform_synthesis(benchmark, gf_bank, generator):
    rupture = generator.generate(np.random.default_rng(1), "bench.000001", 8.5)
    synth = WaveformSynthesizer(gf_bank)
    ws = benchmark(synth.synthesize, rupture)
    assert ws.n_stations == gf_bank.n_stations


# -- GF cache: cold vs warm ---------------------------------------------------


@pytest.fixture(scope="module")
def ruptures(generator):
    n = max(4, int(round(16 * bench_scale())))
    return [
        generator.generate(np.random.default_rng(100 + i), f"bench.{i:06d}", 8.5)
        for i in range(n)
    ]


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_cold(benchmark, geometry, network, tmp_path):
    """Cold lookup: every round computes the bank and stores it."""

    def cold():
        cache = GFCache(cache_dir=tmp_path / "cold")
        bank = cache.get_or_compute(geometry, network)
        cache.clear(disk=True)
        return bank

    bank = benchmark(cold)
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_warm_disk(benchmark, geometry, network, tmp_path):
    """Warm disk hit: memory level dropped, bank reloaded from .npz."""
    cache = GFCache(cache_dir=tmp_path / "warm")
    cache.get_or_compute(geometry, network)

    def warm():
        cache.clear()  # keep the disk store, drop memory
        return cache.get_or_compute(geometry, network)

    bank = benchmark(warm)
    assert cache.stats.disk_hits >= 1
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="gf-cache")
def test_gf_cache_warm_memory(benchmark, geometry, network):
    """Warm memory hit: the LRU returns the resident bank."""
    cache = GFCache()
    cache.get_or_compute(geometry, network)
    bank = benchmark(cache.get_or_compute, geometry, network)
    assert bank.n_stations == len(network)


# -- Phase C: batched vs per-rupture -----------------------------------------


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_per_rupture(benchmark, gf_bank, ruptures):
    synth = WaveformSynthesizer(gf_bank)
    sets = benchmark(lambda: [synth.synthesize(r) for r in ruptures])
    assert len(sets) == len(ruptures)


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_batched(benchmark, gf_bank, ruptures):
    synth = WaveformSynthesizer(gf_bank)
    sets = benchmark(synth.synthesize_batch, ruptures)
    assert len(sets) == len(ruptures)
    reference = [synth.synthesize(r) for r in ruptures]
    for ws, ref in zip(sets, reference):
        assert np.array_equal(ws.data, ref.data)  # bit-identical products


def _max_rel_pgd_dev(sets, reference) -> float:
    """Largest relative deviation in per-rupture peak PGD."""
    worst = 0.0
    for ws, ref in zip(sets, reference):
        pgd = float(ref.pgd_m().max())
        worst = max(worst, abs(float(ws.pgd_m().max()) - pgd) / pgd)
    return worst


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_batched_float32(benchmark, gf_bank, ruptures):
    """Opt-in float32 bank: half the bank bytes, single-precision BLAS in
    the batched matmul; waveform error budget goes into ``extra_info``."""
    synth32 = WaveformSynthesizer(gf_bank.astype("float32"))
    sets = benchmark(synth32.synthesize_batch, ruptures)
    reference = WaveformSynthesizer(gf_bank).synthesize_batch(ruptures)
    dev = _max_rel_pgd_dev(sets, reference)
    benchmark.extra_info["max_rel_pgd_dev"] = dev
    benchmark.extra_info["bank_nbytes_ratio"] = (
        synth32.gf_bank.nbytes / gf_bank.nbytes
    )
    assert all(ws.data.dtype == np.float32 for ws in sets)
    assert dev < 1e-5


@pytest.mark.benchmark(group="phase-c-batch")
def test_phase_c_batched_fft(benchmark, gf_bank, ruptures):
    """Opt-in FFT-domain synthesis: one shared ramp spectrum delayed by
    per-pair phase factors instead of per-subfault time-domain ramps."""
    synth = WaveformSynthesizer(gf_bank, method="fft")
    sets = benchmark(synth.synthesize_batch, ruptures)
    reference = WaveformSynthesizer(gf_bank).synthesize_batch(ruptures)
    dev = _max_rel_pgd_dev(sets, reference)
    benchmark.extra_info["max_rel_pgd_dev"] = dev
    assert dev < 1e-3


# -- Phase B kernel: reference Okada loop vs vectorized bank ------------------


@pytest.fixture(scope="module")
def paper_geometry():
    """The paper-scale 30x15 Chilean slab mesh (450 subfaults)."""
    return build_chile_slab(n_strike=30, n_dip=15)


@pytest.fixture(scope="module")
def paper_network():
    """Full 121-station Chilean input at scale 1, shrunk for smoke runs."""
    return chilean_network(max(12, int(round(121 * bench_scale()))))


@pytest.mark.benchmark(group="phase-b-batch")
def test_phase_b_reference(benchmark, paper_geometry, paper_network):
    """Seed evaluation: one ``okada85`` call per (station, subfault) pair."""
    bank = benchmark(
        compute_okada_gf_bank, paper_geometry, paper_network, engine="reference"
    )
    assert bank.n_stations == len(paper_network)


@pytest.mark.benchmark(group="phase-b-batch")
def test_phase_b_vector(benchmark, paper_geometry, paper_network):
    """Batched evaluation: one Chinnery corner tensor for the whole bank."""
    bank = benchmark(compute_okada_gf_bank, paper_geometry, paper_network)
    reference = compute_okada_gf_bank(
        paper_geometry, paper_network, engine="reference"
    )
    assert np.array_equal(bank.statics, reference.statics)  # bit-identical
    assert np.array_equal(bank.travel_time_s, reference.travel_time_s)


@pytest.mark.benchmark(group="phase-b-batch")
def test_phase_b_vector_float32(benchmark, paper_geometry, paper_network):
    """Opt-in float32 bank build; bank-level error budget in ``extra_info``."""
    bank32 = benchmark(
        compute_okada_gf_bank, paper_geometry, paper_network, dtype="float32"
    )
    bank64 = compute_okada_gf_bank(paper_geometry, paper_network)
    scale = float(np.abs(bank64.statics).max())
    dev = float(np.abs(bank32.statics.astype(np.float64) - bank64.statics).max())
    benchmark.extra_info["nbytes_ratio"] = bank32.nbytes / bank64.nbytes
    benchmark.extra_info["max_rel_statics_dev"] = dev / scale
    assert bank32.nbytes * 2 == bank64.nbytes
    assert dev / scale < 1e-6


def test_phase_b_speedup_report(paper_geometry, paper_network, capsys):
    """One-shot reference-vs-vector comparison of the Okada bank build
    (not a pytest-benchmark timing; runs even with --benchmark-disable)."""
    t0 = time.perf_counter()
    reference = compute_okada_gf_bank(
        paper_geometry, paper_network, engine="reference"
    )
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vector = compute_okada_gf_bank(paper_geometry, paper_network)
    vec_s = time.perf_counter() - t0
    assert np.array_equal(vector.statics, reference.statics)
    assert np.array_equal(vector.travel_time_s, reference.travel_time_s)

    with capsys.disabled():
        print(
            f"\n### Phase-B Okada bank ({paper_geometry.n_subfaults} subfaults x "
            f"{len(paper_network)} stations)\n"
            f"reference loop : {ref_s:8.3f} s\n"
            f"vector engine  : {vec_s:8.3f} s ({ref_s / vec_s:5.2f}x)"
        )


# -- Phase C pool: seed path vs shared-memory bank ----------------------------

POOL_WORKERS = 4


@pytest.fixture(scope="module")
def pool_config():
    s = bench_scale()
    return FdwConfig(
        name="bench_pool",
        n_waveforms=max(8, int(round(16 * s))),
        n_stations=max(4, int(round(121 * s))),
        mesh=(max(8, int(round(30 * s))), max(5, int(round(15 * s)))),
        chunk_a=8,
        chunk_c=2,
        seed=7,
    )


def _seed_c_chunk(args: tuple[FdwConfig, int, int]) -> list[float]:
    """Faithful reproduction of the seed repo's pool worker: rebuild
    geometry, distances, the rupture chunk and the full GF bank, then
    synthesize one rupture at a time (the pre-batching scalar loop)."""
    config, start, count = args
    fq = _fakequakes_for(config)
    fq.phase_a_distances()
    ruptures = fq.phase_a_ruptures(start, count)
    bank = fq.phase_b_greens_functions()
    synth = WaveformSynthesizer(bank, dt_s=fq.params.dt_s)
    return [float(synth.synthesize(r).pgd_m().max()) for r in ruptures]


def _seed_c_phase(config: FdwConfig) -> list[float]:
    """The seed pool path for the whole C phase (pool created per run,
    as the seed `LocalRunner.run` did)."""
    chunks = [
        (config, start, count)
        for start, count in chunk_bounds(config.n_waveforms, config.chunk_c)
    ]
    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:
        rows = list(pool.map(_seed_c_chunk, chunks))
    return [value for row in rows for value in row]


@pytest.mark.benchmark(group="phase-c-pool")
def test_phase_c_pool_seed_path(benchmark, pool_config):
    maxima = benchmark(_seed_c_phase, pool_config)
    assert len(maxima) == pool_config.n_waveforms


@pytest.mark.benchmark(group="phase-c-pool")
def test_phase_c_pool_shared_bank(benchmark, pool_config, tmp_path):
    """Persistent pool + shared-memory bank + warm GF cache (full run:
    the dist/A/B phases it still performs are cache hits / parent-side
    work shared with the seed arm)."""
    with LocalRunner(
        n_workers=POOL_WORKERS, gf_cache=GFCache(cache_dir=tmp_path / "gf")
    ) as runner:
        runner.run(pool_config)  # warm the cache, spin the pool up
        result = benchmark(runner.run, pool_config)
    assert result.n_waveform_sets == pool_config.n_waveforms
    # Numerically identical products to the seed pool path.
    seed_maxima = _seed_c_phase(pool_config)
    new_maxima = [
        result.pgd_by_rupture[f"chile_slab.{i:06d}"]
        for i in range(pool_config.n_waveforms)
    ]
    assert new_maxima == seed_maxima


# -- Phase A kernel: dense vs unique-lag von Kármán ---------------------------


@pytest.fixture(scope="module")
def paper_distances():
    """Distance matrices of the paper-scale 30x15 mesh (450 subfaults)."""
    return DistanceMatrices.from_geometry(build_chile_slab(n_strike=30, n_dip=15))


@pytest.mark.benchmark(group="phase-a-kernel")
def test_phase_a_kernel_dense(benchmark, paper_distances):
    """Seed evaluation: one ``kv`` call per matrix element (p^2)."""
    corr = benchmark(
        von_karman_correlation,
        paper_distances.along_strike,
        paper_distances.down_dip,
        60.0,
        30.0,
        0.75,
        False,
    )
    assert corr.shape == (450, 450)


@pytest.mark.benchmark(group="phase-a-kernel")
def test_phase_a_kernel_unique_lag(benchmark, paper_distances):
    """Unique-lag evaluation: one ``kv`` call per distinct separation."""
    corr = benchmark(
        von_karman_correlation,
        paper_distances.along_strike,
        paper_distances.down_dip,
        60.0,
        30.0,
        0.75,
        True,
    )
    dense = von_karman_correlation(
        paper_distances.along_strike,
        paper_distances.down_dip,
        60.0,
        30.0,
        unique_lags=False,
    )
    assert np.array_equal(corr, dense)  # bit-identical products


# -- Phase A cache: cold vs warm K-L basis lookups ----------------------------


@pytest.fixture(scope="module")
def kl_patch(paper_distances):
    """A 20x10 rupture-patch window on the 30x15 mesh."""
    strike_rows = np.arange(4, 24)
    dip_cols = np.arange(2, 12)
    return (strike_rows[:, None] * 15 + dip_cols[None, :]).ravel()


@pytest.mark.benchmark(group="phase-a-cache")
def test_kl_cache_cold(benchmark, paper_distances, kl_patch):
    """Cold lookup: every round builds the correlation and eigensolves."""

    def cold():
        cache = KLCache()
        return cache.get_or_compute(paper_distances, kl_patch, 60.0, 30.0, n_modes=64)

    basis = benchmark(cold)
    assert basis.n_points == kl_patch.size


@pytest.mark.benchmark(group="phase-a-cache")
def test_kl_cache_warm_disk(benchmark, paper_distances, kl_patch, tmp_path):
    """Warm disk hit: memory level dropped, basis reloaded from .npz."""
    cache = KLCache(cache_dir=tmp_path / "kl")
    cache.get_or_compute(paper_distances, kl_patch, 60.0, 30.0, n_modes=64)

    def warm():
        cache.clear()  # keep the disk store, drop memory
        return cache.get_or_compute(paper_distances, kl_patch, 60.0, 30.0, n_modes=64)

    basis = benchmark(warm)
    assert cache.stats.disk_hits >= 1
    assert basis.n_modes == 64


@pytest.mark.benchmark(group="phase-a-cache")
def test_kl_cache_warm_memory(benchmark, paper_distances, kl_patch):
    """Warm memory hit: the LRU returns the resident basis."""
    cache = KLCache()
    cache.get_or_compute(paper_distances, kl_patch, 60.0, 30.0, n_modes=64)
    basis = benchmark(
        cache.get_or_compute, paper_distances, kl_patch, 60.0, 30.0, 0.75, 64
    )
    assert basis.n_modes == 64


# -- Phase A pool: seed sequential sweep vs pooled + memoized -----------------


@pytest.fixture(scope="module")
def a_pool_config():
    s = bench_scale()
    return FdwConfig(
        name="bench_a_pool",
        n_waveforms=max(16, int(round(64 * s))),
        n_stations=4,
        mesh=(max(8, int(round(30 * s))), max(5, int(round(15 * s)))),
        chunk_a=4,
        chunk_c=8,
        seed=7,
    )


def _seed_a_phase(config: FdwConfig) -> list[Rupture]:
    """Faithful reproduction of the seed Phase-A path: dense von Kármán
    kernel (one ``kv`` call per matrix element), no K-L cache, strictly
    sequential chunk loop."""
    fq = _fakequakes_for(config)
    fq.phase_a_distances()
    dense = partial(von_karman_correlation, unique_lags=False)
    with mock.patch.object(ruptures_mod, "von_karman_correlation", dense):
        ruptures: list[Rupture] = []
        for start, count in chunk_bounds(config.n_waveforms, config.chunk_a):
            ruptures.extend(fq.phase_a_ruptures(start, count))
    return ruptures


def _assert_same_catalog(actual: list[Rupture], expected: list[Rupture]) -> None:
    """Rupture-for-rupture bit-identity: ids, slip, kinematics."""
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert a.rupture_id == b.rupture_id
        assert np.array_equal(a.subfault_indices, b.subfault_indices)
        assert np.array_equal(a.slip_m, b.slip_m)
        assert np.array_equal(a.rise_time_s, b.rise_time_s)
        assert np.array_equal(a.onset_time_s, b.onset_time_s)
        assert a.hypocenter_index == b.hypocenter_index


@pytest.mark.benchmark(group="phase-a-pool")
def test_phase_a_pool_seed_path(benchmark, a_pool_config):
    ruptures = benchmark(_seed_a_phase, a_pool_config)
    assert len(ruptures) == a_pool_config.n_waveforms


@pytest.mark.benchmark(group="phase-a-pool")
def test_phase_a_pool_memoized(benchmark, a_pool_config, tmp_path):
    """Persistent pool + per-worker sessions + shared disk K-L store
    (warm: the sweep's bases were eigensolved on the first pass)."""
    from repro.core.local import _run_a_chunk

    params = _fakequakes_for(a_pool_config).params
    kl_dir = str(tmp_path / "kl")
    tasks = [
        (params, start, count, kl_dir)
        for start, count in chunk_bounds(a_pool_config.n_waveforms, a_pool_config.chunk_a)
    ]

    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:

        def pooled():
            return [r for chunk in pool.map(_run_a_chunk, tasks) for r in chunk]

        pooled()  # warm the worker sessions and the disk K-L store
        ruptures = benchmark(pooled)
    # Rupture-for-rupture identical to the seed sequential sweep.
    _assert_same_catalog(ruptures, _seed_a_phase(a_pool_config))


def test_phase_a_speedup_report(a_pool_config, tmp_path, capsys):
    """One-shot before/after comparison of the Phase-A sweep (not a
    pytest-benchmark timing; runs even with --benchmark-disable)."""
    t0 = time.perf_counter()
    seed_ruptures = _seed_a_phase(a_pool_config)
    seed_s = time.perf_counter() - t0

    with LocalRunner(
        n_workers=POOL_WORKERS, kl_cache=KLCache(cache_dir=tmp_path / "kl")
    ) as runner:
        cold = runner.run(a_pool_config)  # fills the shared disk K-L store
        warm = runner.run(a_pool_config)
    cold_a_s = cold.phase_seconds["A"]
    warm_a_s = warm.phase_seconds["A"]
    assert len(warm.pgd_by_rupture) == len(seed_ruptures)

    with capsys.disabled():
        print(
            f"\n### Phase-A sweep ({a_pool_config.n_waveforms} ruptures, "
            f"{a_pool_config.mesh[0]}x{a_pool_config.mesh[1]} mesh, "
            f"{POOL_WORKERS} workers)\n"
            f"seed A phase (dense kernel, sequential)  : {seed_s:8.3f} s\n"
            f"pooled A phase (cold K-L store)          : {cold_a_s:8.3f} s "
            f"({seed_s / cold_a_s:5.2f}x)\n"
            f"pooled A phase (warm K-L store)          : {warm_a_s:8.3f} s "
            f"({seed_s / warm_a_s:5.2f}x)"
        )


# -- Recovery: checkpoint overhead, resume, rescue, log parsing ---------------


@pytest.fixture(scope="module")
def recovery_config():
    s = bench_scale()
    return FdwConfig(
        name="bench_recovery",
        n_waveforms=max(8, int(round(16 * s))),
        n_stations=4,
        mesh=(8, 5),
        chunk_a=2,
        chunk_c=2,
        seed=7,
    )


@pytest.mark.benchmark(group="bench-recovery")
def test_recovery_plain_run(benchmark, recovery_config, tmp_path):
    """Baseline: archive directly, no checkpoint manifest."""
    dirs = (tmp_path / f"plain{i}" for i in itertools.count())
    with LocalRunner() as runner:
        result = benchmark(lambda: runner.run(recovery_config, next(dirs)))
    assert result.n_waveform_sets == recovery_config.n_waveforms


@pytest.mark.benchmark(group="bench-recovery")
def test_recovery_checkpointed_run(benchmark, recovery_config, tmp_path):
    """Same run with chunk-granular checkpointing + archive reassembly —
    the overhead budget of crash consistency."""
    dirs = (tmp_path / f"ck{i}" for i in itertools.count())
    with LocalRunner() as runner:
        result = benchmark(
            lambda: runner.run(recovery_config, next(dirs), checkpoint=True)
        )
    assert result.n_waveform_sets == recovery_config.n_waveforms
    assert result.chunks_skipped == {"A": 0, "C": 0}


@pytest.mark.benchmark(group="bench-recovery")
def test_recovery_resume_after_crash(benchmark, recovery_config, tmp_path):
    """Resume cost after a mid-Phase-A crash: skipped chunks reload from
    the checkpoint instead of recomputing."""
    from repro.core.checkpoint import RunCheckpoint
    from repro.faults import ChunkCrash, FaultInjected, FaultPlan

    runner = LocalRunner()
    n_a = len(chunk_bounds(recovery_config.n_waveforms, recovery_config.chunk_a))
    crashed = iter(range(10**6))

    def crash_once():
        d = tmp_path / f"crash{next(crashed)}"
        try:
            runner.run(
                recovery_config,
                d,
                checkpoint=True,
                faults=FaultPlan(crashes=(ChunkCrash("A", max(1, n_a - 1)),)),
            )
        except FaultInjected:
            pass
        return (d,), {}

    def resume(d):
        return runner.run(recovery_config, d, resume=True)

    result = benchmark.pedantic(resume, setup=crash_once, rounds=3, iterations=1)
    assert result.chunks_skipped["A"] == max(1, n_a - 1)
    assert not (result.archive_root / RunCheckpoint.DIRNAME).exists()


@pytest.mark.benchmark(group="bench-recovery")
def test_recovery_rescue_roundtrip(benchmark, tmp_path):
    """Pool-level rescue at scale: snapshot a half-done engine, read the
    file back, fast-forward a fresh engine."""
    from repro.condor.dagfile import DagDescription
    from repro.condor.dagman import DagmanEngine
    from repro.condor.jobs import JobPayload, JobSpec
    from repro.condor.rescue import apply_rescue, read_rescue_file, write_rescue_file

    n_nodes = max(500, int(round(16000 * bench_scale())))
    dag = DagDescription("bench_rescue")
    for i in range(n_nodes):
        dag.add_job(
            f"n{i}",
            JobSpec(name=f"n{i}", payload=JobPayload(phase="A", n_items=1, n_stations=2)),
        )
    done_engine = DagmanEngine(dag)
    for i in range(0, n_nodes, 2):
        done_engine.mark_done(f"n{i}")

    def roundtrip():
        path = write_rescue_file(done_engine, tmp_path / "bench.dag.rescue001")
        done = read_rescue_file(path)
        return apply_rescue(DagmanEngine(dag), done)

    applied = benchmark(roundtrip)
    assert applied == n_nodes // 2 + n_nodes % 2


@pytest.mark.benchmark(group="bench-recovery")
def test_recovery_log_parse_16k(benchmark):
    """Parsing a 16k-job user log (the paper's DAG size) stays linear —
    the quadratic list-scan this replaced made monitoring the bottleneck."""
    from repro.condor.events import parse_user_log

    n_jobs = max(2000, int(round(16000 * bench_scale())))
    lines = []
    for i in range(n_jobs):
        cluster = f"{i + 1:04d}.000.000"
        lines += [
            f"000 ({cluster}) 2023-01-01+0 00:00:01 Job submitted",
            "...",
            f"001 ({cluster}) 2023-01-01+0 00:00:02 Job executing",
            "...",
            f"005 ({cluster}) 2023-01-01+0 00:10:00 Job terminated.",
            "\t(1) Normal termination (return value 0)",
            "...",
        ]
    text = "\n".join(lines) + "\n"

    events = benchmark(parse_user_log, text)
    assert len(events) == 3 * n_jobs
    assert all(e.return_value == 0 for e in events if e.event_type.value == 5)


def test_phase_c_pool_speedup_report(pool_config, tmp_path, capsys):
    """One-shot before/after comparison printed as a table (not a
    pytest-benchmark timing; runs even with --benchmark-disable)."""
    t0 = time.perf_counter()
    seed_maxima = _seed_c_phase(pool_config)
    seed_s = time.perf_counter() - t0

    with LocalRunner(
        n_workers=POOL_WORKERS, gf_cache=GFCache(cache_dir=tmp_path / "gf")
    ) as runner:
        runner.run(pool_config)  # warm
        t0 = time.perf_counter()
        result = runner.run(pool_config)
        full_s = time.perf_counter() - t0
    c_s = result.phase_seconds["C"]

    new_maxima = [
        result.pgd_by_rupture[f"chile_slab.{i:06d}"]
        for i in range(pool_config.n_waveforms)
    ]
    assert new_maxima == seed_maxima
    with capsys.disabled():
        print(
            f"\n### Phase-C pool ({pool_config.n_waveforms} waveforms, "
            f"{pool_config.n_stations} stations, {POOL_WORKERS} workers)\n"
            f"seed C phase (rebuild per chunk, scalar) : {seed_s:8.3f} s\n"
            f"shared-bank C phase (warm cache, batch)  : {c_s:8.3f} s\n"
            f"C-phase speedup                          : {seed_s / c_s:8.2f}x\n"
            f"(full warm run incl. dist/A/B            : {full_s:8.3f} s)"
        )


# --------------------------------------------------------------------------
# wf-replay: WfFormat interchange + universal replay
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def wf_example_instance():
    from pathlib import Path

    from repro.wf import load_instance

    path = Path(__file__).resolve().parents[1] / "examples" / "fdw64_wfformat.json"
    return load_instance(path)


@pytest.mark.benchmark(group="wf-replay")
def test_wf_json_round_trip(benchmark, wf_example_instance):
    """Serialize + reparse the bundled FDW instance — the interchange
    hot path used by ``wf export`` / ``wf import --reexport``."""
    from repro.wf import dumps_instance, loads_instance

    text = benchmark(lambda: dumps_instance(loads_instance(dumps_instance(wf_example_instance))))
    assert text == dumps_instance(wf_example_instance)


@pytest.mark.benchmark(group="wf-replay")
def test_wf_import_rebuilds_dag(benchmark, wf_example_instance):
    from repro.wf import import_instance

    imported = benchmark(import_instance, wf_example_instance)
    assert imported.n_tasks == wf_example_instance.n_tasks


@pytest.mark.benchmark(group="wf-replay")
def test_wf_generate_scaled_instance(benchmark, wf_example_instance):
    """WfChef-style scale-up to a few hundred tasks from the example."""
    from repro.wf import generate_instance

    n_tasks = max(64, int(round(512 * bench_scale())))
    gen = benchmark(generate_instance, wf_example_instance, n_tasks, seed=0)
    assert gen.n_tasks == n_tasks


@pytest.mark.benchmark(group="wf-replay")
def test_wf_trace_replay(benchmark, wf_example_instance):
    """Replay the bundled instance through the pool simulator with the
    recorded runtimes (trace mode)."""
    from repro.wf import replay_instance

    result = benchmark(replay_instance, wf_example_instance, seed=1)
    assert result.makespan_s > 0
    assert len(result.metrics.records) == wf_example_instance.n_tasks


@pytest.mark.benchmark(group="wf-replay")
def test_wf_replay_multi_dagman(benchmark, wf_example_instance):
    """The 2-DAGMan partitioned replay from the paper's scaling study."""
    from repro.wf import replay_instance

    result = benchmark(replay_instance, wf_example_instance, n_dagmans=2, seed=1)
    assert result.n_dagmans == 2
