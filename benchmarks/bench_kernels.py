"""Micro-benchmarks of the real seismic kernels.

These time the actual numerical phases (not the pool simulation):
distance matrices, stochastic rupture generation, GF computation and
waveform synthesis — the costs that anchor the OSG runtime model via
:meth:`repro.osg.runtimes.RuntimeModel.calibrate_from_kernels`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import build_chile_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.ruptures import RuptureGenerator
from repro.seismo.stations import chilean_network
from repro.seismo.waveforms import WaveformSynthesizer


@pytest.fixture(scope="module")
def geometry():
    return build_chile_slab(n_strike=20, n_dip=10)


@pytest.fixture(scope="module")
def distances(geometry):
    return DistanceMatrices.from_geometry(geometry)


@pytest.fixture(scope="module")
def network():
    return chilean_network(24)


@pytest.fixture(scope="module")
def gf_bank(geometry, network):
    return compute_gf_bank(geometry, network)


@pytest.fixture(scope="module")
def generator(geometry, distances):
    return RuptureGenerator(geometry, distances=distances)


@pytest.mark.benchmark(group="kernels")
def test_kernel_distance_matrices(benchmark, geometry):
    result = benchmark(DistanceMatrices.from_geometry, geometry)
    assert result.n_subfaults == geometry.n_subfaults


@pytest.mark.benchmark(group="kernels")
def test_kernel_rupture_generation(benchmark, generator):
    rng = np.random.default_rng(0)
    rupture = benchmark(generator.generate, rng, "bench.000000", 8.5)
    assert rupture.n_subfaults > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_greens_functions(benchmark, geometry, network):
    bank = benchmark(compute_gf_bank, geometry, network)
    assert bank.n_stations == len(network)


@pytest.mark.benchmark(group="kernels")
def test_kernel_waveform_synthesis(benchmark, gf_bank, generator):
    rupture = generator.generate(np.random.default_rng(1), "bench.000001", 8.5)
    synth = WaveformSynthesizer(gf_bank)
    ws = benchmark(synth.synthesize, rupture)
    assert ws.n_stations == gf_bank.n_stations
