"""Ablation: the Stash/OSDF cache (DESIGN.md design choice).

Phase C jobs stage a multi-hundred-MB GF archive plus the 928 MB
Singularity image; the paper distributes both through Stash Cache. This
ablation disables the warm path (cache bandwidth = origin bandwidth)
under identical pool randomness and reports two effects:

* the *aggregate transfer time* across all jobs — where the cache wins
  by an order of magnitude (this is origin egress, the quantity Stash
  Cache exists to protect), and
* the *makespan* — a smaller effect, since transfers overlap across
  hundreds of slots.
"""

from __future__ import annotations

import dataclasses

import pytest

from _common import FULL_INPUT, fdw_config, header, scaled
from repro.core.workflow import build_fdw_dag
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.osg.transfer import TransferConfig
from repro.rng import derive_seed
from repro.units import to_hours

WAVEFORMS = 4000


def _run(cached: bool) -> tuple[float, float]:
    """Return (makespan_s, aggregate_transfer_s) for one configuration."""
    transfer = TransferConfig()
    if not cached:
        transfer = dataclasses.replace(
            transfer, cache_mb_per_s=transfer.origin_mb_per_s
        )
    config = fdw_config(scaled(WAVEFORMS), FULL_INPUT, "abl_cache")
    pool = OSPoolSimulator(
        config=OSPoolConfig(transfer=transfer),
        seed=derive_seed(11, "cache"),  # identical randomness both ways
    )
    pool.submit_dagman(build_fdw_dag(config), name=config.name)
    metrics = pool.run()
    return metrics.dagmans[config.name].runtime_s, pool.cache.total_transfer_seconds


@pytest.mark.benchmark(group="ablation")
def test_ablation_stash_cache(benchmark):
    (cached_mk, cached_xfer), (origin_mk, origin_xfer) = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    header(
        "Ablation - Stash cache for input delivery (4,000 waveforms)",
        f"{'configuration':<14} {'makespan_h':>11} {'transfer_cpu_h':>15}",
    )
    print(f"{'with cache':<14} {to_hours(cached_mk):11.2f} {to_hours(cached_xfer):15.1f}")
    print(f"{'origin only':<14} {to_hours(origin_mk):11.2f} {to_hours(origin_xfer):15.1f}")
    print(
        f"aggregate transfer time saved: "
        f"{100.0 * (1.0 - cached_xfer / origin_xfer):.1f}%  "
        f"(makespan delta {100.0 * (origin_mk / cached_mk - 1.0):+.1f}%)"
    )
    # The cache must slash aggregate transfer time (most deliveries hit
    # a warm regional cache at 10x bandwidth)...
    assert cached_xfer < 0.3 * origin_xfer
    # ...and never hurt the makespan beyond noise.
    assert cached_mk <= origin_mk * 1.05
