"""Figure 6: simulated bursting cost and throughput-over-time overlays.

Reproduces §5.3.3-5.3.4: the same two traced batches replayed with the
paper's 30% bursted-job cap, reporting the cost (eq. 7 at $0.0017 per
cloud minute), runtime reductions, and the instant-throughput series of
control vs bursted runs.

Paper anchors: cost up to $11 (Batch 1) and $13.9 (Batch 2) with <=30%
of jobs bursted; Batch 1 best case 38.7% runtime reduction; Batch 2
nearly flat runtime once the burst cap binds.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_fig5_bursting_policies import effective_threshold, make_batch_trace
from _common import header
from repro.bursting import BurstingSimulator, LowThroughputPolicy, QueueTimePolicy
from repro.units import minutes

PROBES = [1, 10, 60]
QUEUE_CAPS_MIN = [90, 120]
MAX_BURST_FRACTION = 0.30

PAPER_MAX_COST = {1: 11.0, 2: 13.9}


def sweep(trace):
    out = {"control": BurstingSimulator(trace, policies=[]).run()}
    threshold = effective_threshold(out["control"])
    for queue_min in QUEUE_CAPS_MIN:
        for probe in PROBES:
            out[(queue_min, probe)] = BurstingSimulator(
                trace,
                policies=[
                    LowThroughputPolicy(probe_s=float(probe), threshold_jpm=threshold),
                    QueueTimePolicy(max_queue_s=minutes(queue_min)),
                ],
                max_burst_fraction=MAX_BURST_FRACTION,
            ).run()
    return out


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("batch_id", [1, 2])
def test_fig6_bursting_cost(benchmark, batch_id):
    trace = make_batch_trace(batch_id)
    results = benchmark.pedantic(lambda: sweep(trace), rounds=1, iterations=1)

    control = results["control"]
    header(
        f"Fig 6 - Batch {batch_id}: cost and runtime with <=30% bursted",
        f"{'queue_min':>9} {'probe_s':>8} {'bursted_%':>10} {'cost_$':>8} "
        f"{'runtime_h':>10} {'reduction_%':>12}",
    )
    print(
        f"{'control':>9} {'-':>8} {0.0:10.1f} {0.0:8.2f} "
        f"{control.runtime_s / 3600:10.2f} {0.0:12.1f}"
    )
    for queue_min in QUEUE_CAPS_MIN:
        for probe in PROBES:
            r = results[(queue_min, probe)]
            print(
                f"{queue_min:>9} {probe:>8} {r.vdc_usage_percent:10.1f} "
                f"{r.cost_usd:8.2f} {r.runtime_s / 3600:10.2f} "
                f"{r.runtime_reduction_percent:12.1f}"
            )
    print(f"(paper max cost for batch {batch_id}: ${PAPER_MAX_COST[batch_id]})")

    # Throughput-over-time overlay (right panel of Fig 6): report the
    # series means for control vs the most aggressive bursting.
    aggressive = results[(90, 1)]
    print(
        f"omega-over-time: control mean "
        f"{float(np.mean(control.throughput_series_jpm)):.1f} JPM, "
        f"bursted mean {float(np.mean(aggressive.throughput_series_jpm)):.1f} JPM"
    )

    # Invariants: the cap held everywhere, costs stay in the paper's
    # order of magnitude (dollars, not hundreds), runtime never regresses.
    for key, r in results.items():
        if key == "control":
            continue
        assert r.vdc_usage_percent <= MAX_BURST_FRACTION * 100.0 + 1e-9
        assert r.cost_usd < 100.0
        assert r.runtime_s <= control.runtime_s + 1.0
    # The aggressive setting must actually burst and reduce runtime.
    assert aggressive.n_bursted > 0
    assert aggressive.runtime_reduction_percent > 0.0
