"""Benchmarks of the resilience layer (the ``bench-resilience`` group).

Two budgets from the PR's acceptance criteria:

* **Digest overhead on warm cache hits < 5%** — every disk load of a
  GF bank is sha256-verified against its sidecar; the per-process
  verification memo (stat-fingerprint quick check, see
  :func:`repro.integrity.read_verified`) means the hash runs once per
  file version, so steady-state warm hits pay only two extra ``stat``
  calls. ``test_digest_overhead_budget`` measures the verified and
  unverified arms back to back and asserts the ratio; the two
  ``benchmark``-fixture arms archive the absolute numbers in the CI
  artifact.
* **Retry-path throughput** — the deterministic backoff machinery
  (:func:`repro.resilience.retry_call` and schedule derivation) sits on
  every chunk execution and transfer; it must be cheap enough to wrap
  hot paths unconditionally.

Run: ``PYTHONPATH=src pytest benchmarks/bench_resilience.py -q
--benchmark-only``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.gfcache import GFCache, gf_bank_key
from repro.errors import TransferError
from repro.resilience import RetryPolicy, retry_call
from repro.seismo.geometry import build_chile_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.stations import chilean_network


@pytest.fixture(scope="module")
def bank_inputs():
    geometry = build_chile_slab(n_strike=30, n_dip=15)
    network = chilean_network(30)
    bank = compute_gf_bank(geometry, network)
    key = gf_bank_key(geometry, network)
    return bank, key


def disk_cache(tmp_path, bank, key, verify):
    cache = GFCache(cache_dir=tmp_path, verify_digests=verify)
    cache.put(key, bank)
    cache.clear()  # keep only the disk level
    cache.get(key)  # prime: the verified arm hashes once here
    return cache


def warm_hit(cache, key):
    cache.clear()  # drop memory so every call is a disk hit
    bank = cache.get(key)
    assert bank is not None
    return bank


# -- digest verification overhead ---------------------------------------------


def _median_hit_seconds(cache, key, rounds=7, iterations=20):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            warm_hit(cache, key)
        samples.append((time.perf_counter() - start) / iterations)
    return statistics.median(samples)


@pytest.mark.benchmark(group="bench-resilience")
def test_warm_disk_hit_unverified(benchmark, tmp_path, bank_inputs):
    """Baseline arm: the warm disk hit with the hash comparison skipped."""
    bank, key = bank_inputs
    cache = disk_cache(tmp_path, bank, key, verify=False)
    benchmark(warm_hit, cache, key)


@pytest.mark.benchmark(group="bench-resilience")
def test_warm_disk_hit_verified_overhead_budget(benchmark, tmp_path, bank_inputs):
    """Verified arm + acceptance: warm hits cost < 5% over unverified.

    The baseline is measured inline (median of manual timing rounds)
    so the assertion holds inside one test run; the verified arm's full
    distribution goes through the ``benchmark`` fixture into the CI
    artifact, with the measured overhead in ``extra_info``.
    """
    bank, key = bank_inputs
    baseline_cache = disk_cache(tmp_path / "baseline", bank, key, verify=False)
    baseline = _median_hit_seconds(baseline_cache, key)

    cache = disk_cache(tmp_path / "verified", bank, key, verify=True)
    benchmark(warm_hit, cache, key)
    assert cache.stats.integrity_failures == 0

    verified = benchmark.stats.stats.median
    overhead = verified / baseline - 1.0
    benchmark.extra_info["digest_overhead_pct"] = round(overhead * 100.0, 3)
    benchmark.extra_info["baseline_ms"] = round(baseline * 1e3, 4)
    assert overhead < 0.05


# -- retry-path throughput ----------------------------------------------------


@pytest.mark.benchmark(group="bench-resilience")
def test_retry_call_success_path(benchmark):
    """The wrapper's cost when nothing fails — what every healthy chunk
    and transfer pays for being retryable at all."""
    policy = RetryPolicy()

    def thousand_calls():
        for i in range(1000):
            retry_call(lambda: i, policy=policy, seed=0, keys=("bench", i))
        return 1000

    n = benchmark(thousand_calls)
    assert n == 1000


@pytest.mark.benchmark(group="bench-resilience")
def test_retry_call_backoff_path(benchmark):
    """Throughput with every call failing twice before succeeding —
    schedule derivation plus the retry loop, no sleeping."""
    policy = RetryPolicy(max_attempts=4)

    def flaky_hundred():
        total_backoff = 0.0
        for i in range(100):
            attempts = [0]

            def fn():
                attempts[0] += 1
                if attempts[0] <= 2:
                    raise TransferError("injected glitch")
                return attempts[0]

            out = retry_call(fn, policy=policy, seed=0, keys=("bench", i))
            total_backoff += out.total_delay_s
        return total_backoff

    total = benchmark(flaky_hundred)
    assert total > 0.0
