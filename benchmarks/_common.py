"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures (or headline
numbers) at the paper's own workload scale and prints the same
rows/series the paper reports, alongside the published values. The
``FDW_BENCH_SCALE`` environment variable (a float in (0, 1]) scales the
waveform counts down for quick smoke runs; 1.0 (default) is paper scale.

Seeds: each (experiment, repeat) pair derives its pool seed from the
experiment name, so benchmarks are independent and reproducible.
"""

from __future__ import annotations

import os

from repro.core.config import FdwConfig
from repro.core.submit_osg import FdwBatchResult, run_fdw_batch
from repro.rng import derive_seed
from repro.units import to_hours

#: The paper's three-run averaging (Section 4.1: "running three DAGMans
#: for each quantity").
N_REPEATS = 3

#: Full and small Chilean inputs (121 / 2 stations).
FULL_INPUT = 121
SMALL_INPUT = 2


def bench_scale() -> float:
    """Workload scale factor from FDW_BENCH_SCALE (default: paper scale)."""
    raw = os.environ.get("FDW_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"FDW_BENCH_SCALE must be a float, got {raw!r}") from exc
    if not (0.0 < scale <= 1.0):
        raise ValueError(f"FDW_BENCH_SCALE must be in (0, 1], got {scale}")
    return scale


def scaled(n_waveforms: int) -> int:
    """Scale a paper waveform count, keeping at least one chunk."""
    return max(16, int(round(n_waveforms * bench_scale())))


def fdw_config(n_waveforms: int, n_stations: int, name: str) -> FdwConfig:
    """Standard experiment configuration (paper defaults)."""
    return FdwConfig(
        n_waveforms=n_waveforms, n_stations=n_stations, name=name, seed=derive_seed(0, name)
    )


def run_single(
    n_waveforms: int, n_stations: int, name: str, repeat: int
) -> FdwBatchResult:
    """One single-DAGMan pool run with a derived seed."""
    config = fdw_config(n_waveforms, n_stations, name)
    return run_fdw_batch(config, seed=derive_seed(1, name, repeat))


def fmt_hours(seconds: float) -> str:
    """Render seconds as fixed-point hours."""
    return f"{to_hours(seconds):6.2f}"


def header(title: str, columns: str) -> None:
    """Print a benchmark table header."""
    print()
    print(f"### {title}")
    print(columns)
    print("-" * len(columns))
