"""Figure 4: per-job timings, instant throughput and running jobs.

Reproduces the per-workflow views of §5.2.3/§5.2.4 for 1/2/4/8
concurrent DAGMans: sorted job execution and wait time curves, the
per-second instant-throughput series (eq. 5), and the running-job count
series.

Paper anchors: full-input waveform jobs execute 15-20 min; rupture jobs
~2.5 min; average waveform wait 70.1 min with one DAGMan vs 189.2 min
with four; single-DAGMan instant-throughput peaks >35 JPM vs rarely >6
with four; running-job peaks exceed 400 at every concurrency.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import FULL_INPUT, fdw_config, header, scaled
from repro.core.partition import partition_config
from repro.core.submit_osg import run_fdw_batch
from repro.rng import derive_seed
from repro.units import to_minutes

TOTAL_WAVEFORMS = 16000
CONCURRENCY = [1, 2, 4, 8]


def _quantiles(values_s: np.ndarray) -> str:
    if values_s.size == 0:
        return "(none)"
    q = np.percentile(values_s / 60.0, [10, 50, 90])
    return f"p10 {q[0]:6.1f}  p50 {q[1]:6.1f}  p90 {q[2]:6.1f} min"


def _run_all() -> dict[int, dict[str, object]]:
    out: dict[int, dict[str, object]] = {}
    for k in CONCURRENCY:
        config = fdw_config(scaled(TOTAL_WAVEFORMS), FULL_INPUT, f"fig4_k{k}")
        parts = partition_config(config, k)
        result = run_fdw_batch(parts, seed=derive_seed(4, k))
        metrics = result.metrics
        first = parts[0].name
        out[k] = {
            "exec_C": metrics.exec_times_s(phase="C"),
            "exec_A": metrics.exec_times_s(phase="A"),
            "wait_C": metrics.wait_times_s(phase="C"),
            "omega": metrics.instant_throughput_jpm(first),
            "running": metrics.running_jobs(),  # across the whole batch
        }
    return out


@pytest.mark.benchmark(group="fig4")
def test_fig4_job_timelines(benchmark):
    data = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    header(
        "Fig 4 - job execution/wait distributions and per-second series",
        f"{'dagmans':>8}  {'series':<12} {'summary'}",
    )
    for k in CONCURRENCY:
        d = data[k]
        print(f"{k:>8}  exec A      {_quantiles(d['exec_A'])}")
        print(f"{'':>8}  exec C      {_quantiles(d['exec_C'])}")
        print(f"{'':>8}  wait C      {_quantiles(d['wait_C'])}  "
              f"(mean {to_minutes(float(np.mean(d['wait_C']))):6.1f} min)")
        omega = d["omega"]
        running = d["running"]
        print(
            f"{'':>8}  omega       peak {float(omega.max()):6.1f} JPM, "
            f"mean {float(omega.mean()):5.1f} JPM over {omega.size} s"
        )
        print(
            f"{'':>8}  running     peak {int(running.max()):4d} jobs, "
            f"mean {float(running.mean()):6.1f}"
        )

    # Paper 5.2.3: execution times consistent across concurrency levels;
    # full-input waveform jobs 15-20 min, rupture jobs ~2.5 min.
    for k in CONCURRENCY:
        c_med = np.median(data[k]["exec_C"]) / 60.0
        a_med = np.median(data[k]["exec_A"]) / 60.0
        assert 10.0 < c_med < 25.0
        assert 1.5 < a_med < 4.5
    # The queueing-shape assertions need the paper's workload scale —
    # at reduced FDW_BENCH_SCALE the queues drain instantly.
    from _common import bench_scale

    if bench_scale() == 1.0:
        # Paper: wait times inflate with concurrency (70 -> 189 min at 4).
        assert np.mean(data[4]["wait_C"]) > 1.5 * np.mean(data[1]["wait_C"])
        # Paper: single-DAGMan instant-throughput peaks far exceed the
        # per-DAGMan peaks at higher concurrency.
        assert data[1]["omega"].max() > 2.0 * data[4]["omega"].max()
        # Paper: running jobs peak above 400 at batch level.
        assert data[1]["running"].max() > 300
