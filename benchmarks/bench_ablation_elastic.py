"""Ablation: elastic bursting vs the paper's fixed policies.

The paper's §6 outlook asks for an elastic algorithm that scales VDC
usage to OSG conditions. This bench pits :class:`ElasticPolicy` against
Policy 1 at its most aggressive probe (1 s) on a traced batch, under the
30% cost cap: the elastic policy should achieve a comparable runtime
reduction while consuming *fewer* cloud dollars, because it stands down
whenever OSG keeps up.
"""

from __future__ import annotations

import pytest

from bench_fig5_bursting_policies import effective_threshold, make_batch_trace
from _common import header
from repro.bursting import (
    BurstingSimulator,
    ElasticPolicy,
    LowThroughputPolicy,
)

MAX_BURST_FRACTION = 0.30


@pytest.mark.benchmark(group="ablation")
def test_ablation_elastic_policy(benchmark):
    trace = make_batch_trace(1)

    def run():
        control = BurstingSimulator(trace, policies=[]).run()
        threshold = effective_threshold(control)
        fixed = BurstingSimulator(
            trace,
            policies=[LowThroughputPolicy(probe_s=1.0, threshold_jpm=threshold)],
            max_burst_fraction=MAX_BURST_FRACTION,
        ).run()
        elastic = BurstingSimulator(
            trace,
            policies=[ElasticPolicy(target_jpm=threshold, smoothing=0.2)],
            max_burst_fraction=MAX_BURST_FRACTION,
        ).run()
        return control, fixed, elastic

    control, fixed, elastic = benchmark.pedantic(run, rounds=1, iterations=1)
    header(
        "Ablation - elastic vs fixed Policy 1 (30% cap, Batch 1 trace)",
        f"{'policy':<12} {'ait_jpm':>8} {'vdc_%':>7} {'cost_$':>8} "
        f"{'runtime_h':>10} {'reduction_%':>12}",
    )
    for label, r in (("control", control), ("policy1@1s", fixed), ("elastic", elastic)):
        print(
            f"{label:<12} {r.average_instant_throughput_jpm:8.1f} "
            f"{r.vdc_usage_percent:7.1f} {r.cost_usd:8.2f} "
            f"{r.runtime_s / 3600:10.2f} {r.runtime_reduction_percent:12.1f}"
        )

    # Both policies must beat the control; elastic must not spend more
    # than the fixed fast probe.
    assert fixed.runtime_s <= control.runtime_s
    assert elastic.runtime_s <= control.runtime_s
    assert elastic.cost_usd <= fixed.cost_usd + 1e-9
    assert elastic.n_bursted > 0
