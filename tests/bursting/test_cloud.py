"""Tests for repro.bursting.cloud."""

import pytest

from repro.bursting.cloud import (
    RUPTURE_CLOUD_SECONDS,
    WAVEFORM_CLOUD_SECONDS,
    CloudJobModel,
)
from repro.errors import PolicyError


def test_paper_constants():
    # Paper section 3.1.1: 287 s and 144 s, kept verbatim.
    assert RUPTURE_CLOUD_SECONDS == 287.0
    assert WAVEFORM_CLOUD_SECONDS == 144.0


def test_durations_by_phase():
    model = CloudJobModel()
    assert model.duration_s("A") == 287.0
    assert model.duration_s("C") == 144.0


def test_non_burstable_phase_rejected():
    model = CloudJobModel()
    with pytest.raises(PolicyError):
        model.duration_s("B")
    with pytest.raises(PolicyError):
        model.duration_s("dist")


def test_is_burstable():
    model = CloudJobModel()
    assert model.is_burstable("A")
    assert model.is_burstable("C")
    assert not model.is_burstable("B")
    assert not model.is_burstable("dist")


def test_cost_uses_paper_price():
    model = CloudJobModel()
    # 1000 minutes at $0.0017/min.
    assert model.cost_usd(60000.0) == pytest.approx(1.7)


def test_custom_price():
    model = CloudJobModel(usd_per_minute=0.01)
    assert model.cost_usd(600.0) == pytest.approx(0.1)


def test_validation():
    with pytest.raises(PolicyError):
        CloudJobModel(rupture_seconds=0.0)
    with pytest.raises(PolicyError):
        CloudJobModel(usd_per_minute=-1.0)
    with pytest.raises(PolicyError):
        CloudJobModel(burstable_phases=())
