"""Tests for repro.bursting.report."""

import numpy as np
import pytest

from repro.bursting.report import (
    read_throughput_csv,
    render_report,
    write_throughput_csv,
)
from repro.bursting.simulator import BurstingResult
from repro.errors import TraceError


@pytest.fixture()
def result():
    return BurstingResult(
        batch="b1",
        runtime_s=1800.0,
        original_runtime_s=3600.0,
        n_jobs=100,
        n_bursted=25,
        bursts_by_policy={"policy1": 20, "policy2": 5},
        cloud_seconds=25 * 144.0,
        cost_usd=25 * 144.0 / 60.0 * 0.0017,
        throughput_series_jpm=np.linspace(0.0, 30.0, 1800),
    )


def test_derived_metrics(result):
    assert result.vdc_usage_percent == pytest.approx(25.0)
    assert result.runtime_reduction_percent == pytest.approx(50.0)
    assert result.average_instant_throughput_jpm == pytest.approx(15.0, rel=1e-3)


def test_render_report_contents(result):
    text = render_report(result)
    assert "b1" in text
    assert "25 bursted" in text
    assert "policy1=20" in text
    assert "policy2=5" in text
    assert "-50" not in text.split("reduction")[0]  # reduction is positive
    assert "+50.0% reduction" in text
    assert "$" in text


def test_render_control_report():
    control = BurstingResult(
        batch="c",
        runtime_s=100.0,
        original_runtime_s=100.0,
        n_jobs=10,
        n_bursted=0,
        bursts_by_policy={},
        cloud_seconds=0.0,
        cost_usd=0.0,
        throughput_series_jpm=np.ones(100),
    )
    assert "none (control)" in render_report(control)


def test_csv_roundtrip(tmp_path, result):
    path = write_throughput_csv(result, tmp_path / "omega.csv")
    series = read_throughput_csv(path)
    np.testing.assert_allclose(series, result.throughput_series_jpm, atol=1e-6)


def test_read_missing_csv(tmp_path):
    with pytest.raises(TraceError):
        read_throughput_csv(tmp_path / "nope.csv")


def test_read_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("wrong,cols\n1,2\n")
    with pytest.raises(TraceError):
        read_throughput_csv(path)


def test_read_empty_csv(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("second,instant_throughput_jpm\n")
    with pytest.raises(TraceError):
        read_throughput_csv(path)


def test_read_non_numeric_value_reports_line(tmp_path):
    path = tmp_path / "bad_value.csv"
    path.write_text(
        "second,instant_throughput_jpm\n1,2.5\n2,not-a-number\n3,4.0\n"
    )
    with pytest.raises(TraceError) as excinfo:
        read_throughput_csv(path)
    message = str(excinfo.value)
    assert str(path) in message
    assert "line 3" in message
    assert "not-a-number" in message


def test_read_short_row_reports_line(tmp_path):
    path = tmp_path / "bad_row.csv"
    path.write_text("second,instant_throughput_jpm\n1,2.5\n2\n")
    with pytest.raises(TraceError, match="line 3"):
        read_throughput_csv(path)
