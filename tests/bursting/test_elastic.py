"""Tests for the elastic bursting policy (paper §6 outlook)."""

import pytest

from repro.bursting.policies import ElasticPolicy
from repro.bursting.simulator import BurstingSimulator
from repro.errors import PolicyError
from tests.bursting.test_policies import FakeView
from tests.bursting.test_simulator import synthetic_trace


def armed_policy(**kwargs):
    policy = ElasticPolicy(**kwargs)
    policy._armed = True
    policy._ewma = policy.target_jpm
    return policy


def test_disarmed_until_target_reached():
    policy = ElasticPolicy(target_jpm=10.0, smoothing=1.0)
    assert policy.evaluate(FakeView(now_s=1.0, instant_throughput_jpm=2.0)) is None
    # Reaching the target arms without bursting.
    assert policy.evaluate(FakeView(now_s=2.0, instant_throughput_jpm=12.0)) is None
    # A subsequent dip bursts.
    req = policy.evaluate(FakeView(now_s=400.0, instant_throughput_jpm=1.0))
    assert req is not None and req.kind == "tail" and req.policy == "elastic"


def test_no_burst_on_target():
    policy = armed_policy(target_jpm=10.0, smoothing=1.0)
    assert policy.evaluate(FakeView(now_s=5.0, instant_throughput_jpm=10.0)) is None


def test_rate_adapts_to_deficit():
    """A deep deficit bursts at ~min_interval; a shallow one far slower."""

    def bursts_in(window_s: float, omega: float) -> int:
        policy = armed_policy(
            target_jpm=10.0, smoothing=1.0, min_interval_s=5.0, max_interval_s=100.0
        )
        count = 0
        for t in range(1, int(window_s) + 1):
            if policy.evaluate(FakeView(now_s=float(t), instant_throughput_jpm=omega)):
                count += 1
        return count

    deep = bursts_in(400.0, omega=0.5)  # ~95% deficit
    shallow = bursts_in(400.0, omega=9.0)  # 10% deficit
    assert deep > 3 * shallow
    assert shallow >= 1


def test_no_candidates_no_burst():
    policy = armed_policy(target_jpm=10.0, smoothing=1.0)
    view = FakeView(
        now_s=5.0, instant_throughput_jpm=1.0, has_unsubmitted_burstable=False
    )
    assert policy.evaluate(view) is None


def test_validation():
    with pytest.raises(PolicyError):
        ElasticPolicy(target_jpm=0.0)
    with pytest.raises(PolicyError):
        ElasticPolicy(smoothing=0.0)
    with pytest.raises(PolicyError):
        ElasticPolicy(min_interval_s=10.0, max_interval_s=5.0)


def test_elastic_in_replay_improves_runtime():
    trace = synthetic_trace(n_jobs=60, stagger_s=60.0, exec_s=400.0)
    control = BurstingSimulator(trace, policies=[]).run()
    elastic = BurstingSimulator(
        trace,
        policies=[ElasticPolicy(target_jpm=0.8, smoothing=0.5, min_interval_s=2.0)],
    ).run()
    assert elastic.n_bursted > 0
    assert elastic.runtime_s < control.runtime_s
    assert elastic.bursts_by_policy == {"elastic": elastic.n_bursted}


def test_elastic_bursts_less_than_fixed_fast_probe_when_healthy():
    """On a healthy batch the elastic policy stands down; a 1 s fixed
    probe with the same threshold keeps bursting on every dip."""
    from repro.bursting.policies import LowThroughputPolicy

    trace = synthetic_trace(n_jobs=60, stagger_s=60.0, exec_s=400.0)
    target = 0.8
    elastic = BurstingSimulator(
        trace, policies=[ElasticPolicy(target_jpm=target, smoothing=0.2)]
    ).run()
    fixed = BurstingSimulator(
        trace, policies=[LowThroughputPolicy(probe_s=1.0, threshold_jpm=target)]
    ).run()
    assert elastic.n_bursted <= fixed.n_bursted
