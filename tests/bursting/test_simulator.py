"""Tests for repro.bursting.simulator."""

import numpy as np
import pytest

from repro.bursting.cloud import CloudJobModel
from repro.bursting.policies import (
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.bursting.simulator import BurstingSimulator, _ReplayState
from repro.core.traces import BatchTrace, JobTrace
from repro.errors import PolicyError, TraceError


def synthetic_trace(n_jobs=40, exec_s=300.0, stagger_s=60.0, phase="C"):
    """Jobs submitted every `stagger_s`, each executing `exec_s` after a
    60 s queue wait — a clean, fully controlled replay input."""
    jobs = []
    for i in range(n_jobs):
        submit = i * stagger_s
        start = submit + 60.0
        jobs.append(
            JobTrace(
                node=f"j{i:03d}",
                phase=phase,
                submit_s=submit,
                start_s=start,
                end_s=start + exec_s,
            )
        )
    end = max(j.end_s for j in jobs)
    return BatchTrace(dagman="synth", submit_s=0.0, first_execute_s=60.0, end_s=end, jobs=jobs)


def test_control_reproduces_original_runtime():
    trace = synthetic_trace()
    result = BurstingSimulator(trace, policies=[]).run()
    assert result.runtime_s == pytest.approx(trace.runtime_s, abs=1.0)
    assert result.n_bursted == 0
    assert result.cost_usd == 0.0
    assert result.vdc_usage_percent == 0.0


def test_control_throughput_series_matches_eq5():
    trace = synthetic_trace(n_jobs=5, stagger_s=10.0, exec_s=100.0)
    result = BurstingSimulator(trace, policies=[]).run()
    series = result.throughput_series_jpm
    # First completion at t=160: before that, omega == 0.
    assert np.all(series[:159] == 0.0)
    # At t=160 s: 1 job / (160/60) min.
    assert series[159] == pytest.approx(1.0 / (160.0 / 60.0))
    assert len(series) == int(result.runtime_s)


def test_advance_to_zero_raises_trace_error():
    """Regression: advance_to(0) divided by zero computing instant
    throughput; it must raise TraceError instead."""
    state = _ReplayState(synthetic_trace(n_jobs=3), CloudJobModel())
    with pytest.raises(TraceError, match="now > 0"):
        state.advance_to(0.0)
    with pytest.raises(TraceError):
        state.advance_to(-1.0)
    state.advance_to(1.0)  # the run loop's first second is valid
    assert state.now_s == 1.0


def test_queue_policy_bursts_waiting_jobs():
    # One job stuck in the queue for hours.
    jobs = [
        JobTrace(node="fast", phase="C", submit_s=0.0, start_s=10.0, end_s=100.0),
        JobTrace(node="stuck", phase="C", submit_s=0.0, start_s=20000.0, end_s=20100.0),
    ]
    trace = BatchTrace(dagman="d", submit_s=0.0, first_execute_s=10.0, end_s=20100.0, jobs=jobs)
    result = BurstingSimulator(trace, policies=[QueueTimePolicy(max_queue_s=600.0)]).run()
    assert result.n_bursted == 1
    assert result.bursts_by_policy["policy2"] == 1
    # The stuck job completes on VDC at ~601+144 instead of 20100.
    assert result.runtime_s < 1000.0
    assert result.runtime_reduction_percent > 90.0


def test_tail_burst_shortens_makespan():
    # Steady-state omega approaches 0.5 from below; a 0.45 threshold
    # arms late in the run and every inter-completion dip then bursts a
    # tail job.
    trace = synthetic_trace(n_jobs=30, stagger_s=120.0, exec_s=200.0)
    policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=0.45)
    result = BurstingSimulator(trace, policies=[policy]).run()
    assert result.n_bursted > 0
    assert result.runtime_s < trace.runtime_s


def test_faster_probe_bursts_more():
    usages = []
    for probe in (1.0, 30.0, 120.0):
        # omega asymptotes toward 1.0; a 0.8 threshold arms mid-run.
        trace = synthetic_trace(n_jobs=60, stagger_s=60.0, exec_s=400.0)
        policy = LowThroughputPolicy(probe_s=probe, threshold_jpm=0.8)
        result = BurstingSimulator(trace, policies=[policy]).run()
        usages.append(result.vdc_usage_percent)
    assert usages[0] >= usages[1] >= usages[2]
    assert usages[0] > usages[2]


def test_burst_fraction_cap_enforced():
    trace = synthetic_trace(n_jobs=50, stagger_s=60.0, exec_s=400.0)
    policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=100.0)
    policy._armed = True  # force aggressive bursting
    result = BurstingSimulator(trace, policies=[policy], max_burst_fraction=0.3).run()
    assert result.n_bursted <= int(0.3 * 50)
    assert result.vdc_usage_percent <= 30.0


def test_non_burstable_phases_stay_on_osg():
    jobs = [
        JobTrace(node="b", phase="B", submit_s=0.0, start_s=10.0, end_s=5000.0),
        JobTrace(node="c", phase="C", submit_s=0.0, start_s=5000.0, end_s=5200.0),
    ]
    trace = BatchTrace(dagman="d", submit_s=0.0, first_execute_s=10.0, end_s=5200.0, jobs=jobs)
    policy = QueueTimePolicy(max_queue_s=60.0)
    result = BurstingSimulator(trace, policies=[policy]).run()
    # Only the C job is burstable; B runs to completion on OSG.
    assert result.n_bursted <= 1
    assert result.runtime_s >= 5000.0


def test_cost_accounts_cloud_seconds():
    trace = synthetic_trace(n_jobs=20, stagger_s=300.0, exec_s=600.0)
    policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=0.15)
    result = BurstingSimulator(trace, policies=[policy]).run()
    assert result.n_bursted > 0
    assert result.cloud_seconds == pytest.approx(result.n_bursted * 144.0)
    assert result.cost_usd == pytest.approx(result.cloud_seconds / 60.0 * 0.0017)


def test_rupture_jobs_use_287s():
    trace = synthetic_trace(n_jobs=20, stagger_s=300.0, exec_s=600.0, phase="A")
    policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=0.15)
    result = BurstingSimulator(trace, policies=[policy]).run()
    assert result.n_bursted > 0
    assert result.cloud_seconds == pytest.approx(result.n_bursted * 287.0)


def test_all_policies_compose():
    trace = synthetic_trace(n_jobs=40, stagger_s=90.0, exec_s=500.0)
    result = BurstingSimulator(
        trace,
        policies=[
            LowThroughputPolicy(probe_s=5.0, threshold_jpm=1.0),
            QueueTimePolicy(max_queue_s=30.0),
            SubmissionGapPolicy(max_gap_s=30.0, probe_s=10.0),
        ],
    ).run()
    assert set(result.bursts_by_policy) == {"policy1", "policy2", "policy3"}
    assert result.n_bursted == sum(result.bursts_by_policy.values())
    assert result.n_bursted <= trace.n_jobs


def test_duplicate_policy_names_rejected():
    trace = synthetic_trace(n_jobs=3)
    with pytest.raises(PolicyError):
        BurstingSimulator(
            trace,
            policies=[LowThroughputPolicy(), LowThroughputPolicy()],
        )


def test_bad_burst_fraction_rejected():
    trace = synthetic_trace(n_jobs=3)
    with pytest.raises(PolicyError):
        BurstingSimulator(trace, max_burst_fraction=1.5)


def test_average_instant_throughput_increases_with_bursting():
    trace = synthetic_trace(n_jobs=60, stagger_s=60.0, exec_s=400.0)
    control = BurstingSimulator(trace, policies=[]).run()
    bursty = BurstingSimulator(
        trace, policies=[LowThroughputPolicy(probe_s=1.0, threshold_jpm=1.2)]
    ).run()
    assert (
        bursty.average_instant_throughput_jpm
        >= control.average_instant_throughput_jpm
    )


def test_custom_cloud_model():
    trace = synthetic_trace(n_jobs=20, stagger_s=300.0, exec_s=600.0)
    cloud = CloudJobModel(waveform_seconds=10.0, usd_per_minute=1.0)
    policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=0.15)
    result = BurstingSimulator(trace, policies=[policy], cloud=cloud).run()
    assert result.n_bursted > 0
    assert result.cloud_seconds == pytest.approx(result.n_bursted * 10.0)
    assert result.cost_usd == pytest.approx(result.cloud_seconds / 60.0)


# -- event-driven replay regression ------------------------------------------


def _result_fields(result):
    return (
        result.batch,
        result.runtime_s,
        result.original_runtime_s,
        result.n_jobs,
        result.n_bursted,
        result.bursts_by_policy,
        result.cloud_seconds,
        result.cost_usd,
    )


@pytest.mark.parametrize(
    "make_policies,cap",
    [
        (lambda: [], None),
        (lambda: [QueueTimePolicy(max_queue_s=120.0)], None),
        (
            lambda: [
                LowThroughputPolicy(),
                QueueTimePolicy(max_queue_s=120.0),
                SubmissionGapPolicy(),
            ],
            0.3,
        ),
    ],
    ids=["control", "queue", "all-capped"],
)
def test_event_driven_bit_identical_to_per_second(make_policies, cap):
    """The event-driven loop must reproduce the per-second reference
    loop exactly — including every float of the throughput series.
    Policies are stateful, so each arm gets fresh instances."""
    trace = synthetic_trace(n_jobs=25, exec_s=130.5, stagger_s=17.0)
    reference = BurstingSimulator(
        trace, policies=make_policies(), max_burst_fraction=cap
    ).run(event_driven=False)
    fast = BurstingSimulator(
        trace, policies=make_policies(), max_burst_fraction=cap
    ).run(event_driven=True)
    assert _result_fields(fast) == _result_fields(reference)
    assert len(fast.throughput_series_jpm) == len(reference.throughput_series_jpm)
    assert np.array_equal(
        fast.throughput_series_jpm, reference.throughput_series_jpm
    )


def test_event_driven_bit_identical_when_bursting_fires():
    """A trace with stuck jobs actually bursts; skip-ahead must engage
    only after the cap is reached and stay bit-identical."""
    jobs = [JobTrace(node="fast", phase="C", submit_s=0.0, start_s=10.0, end_s=100.0)]
    for i in range(8):
        jobs.append(
            JobTrace(
                node=f"stuck{i}",
                phase="C",
                submit_s=5.0 + i,
                start_s=7000.0,
                end_s=7400.0 + 10 * i,
            )
        )
    trace = BatchTrace(
        dagman="stuck", submit_s=0.0, first_execute_s=10.0, end_s=7480.0, jobs=jobs
    )
    for cap in (None, 0.25):
        reference = BurstingSimulator(
            trace,
            policies=[QueueTimePolicy(max_queue_s=600.0)],
            max_burst_fraction=cap,
        ).run(event_driven=False)
        fast = BurstingSimulator(
            trace,
            policies=[QueueTimePolicy(max_queue_s=600.0)],
            max_burst_fraction=cap,
        ).run(event_driven=True)
        assert _result_fields(fast) == _result_fields(reference)
        assert np.array_equal(
            fast.throughput_series_jpm, reference.throughput_series_jpm
        )
        if cap is None:
            assert fast.n_bursted == 8  # the scenario really bursts
