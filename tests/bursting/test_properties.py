"""Property-based tests for the bursting replay invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bursting.cloud import CloudJobModel
from repro.bursting.policies import (
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.bursting.simulator import BurstingSimulator
from repro.core.traces import BatchTrace, JobTrace


@st.composite
def traces(draw):
    """Random but valid batch traces (monotone per-job times)."""
    n_jobs = draw(st.integers(min_value=2, max_value=25))
    jobs = []
    for i in range(n_jobs):
        submit = draw(st.floats(min_value=0.0, max_value=2000.0))
        wait = draw(st.floats(min_value=1.0, max_value=1500.0))
        exec_s = draw(st.floats(min_value=5.0, max_value=1500.0))
        phase = draw(st.sampled_from(["A", "C", "B"]))
        start = submit + wait
        jobs.append(
            JobTrace(
                node=f"j{i:03d}",
                phase=phase,
                submit_s=submit,
                start_s=start,
                end_s=start + exec_s,
            )
        )
    jobs.sort(key=lambda j: j.submit_s)
    first_exec = min(j.start_s for j in jobs)
    end = max(j.end_s for j in jobs)
    return BatchTrace(
        dagman="h", submit_s=0.0, first_execute_s=first_exec, end_s=end, jobs=tuple(jobs)
    )


def policy_set(seedling: int):
    """A deterministic mix of the three policies."""
    return [
        LowThroughputPolicy(probe_s=1.0 + (seedling % 5), threshold_jpm=0.5 + seedling % 3),
        QueueTimePolicy(max_queue_s=60.0 * (1 + seedling % 20)),
        SubmissionGapPolicy(max_gap_s=30.0 * (1 + seedling % 10)),
    ]


@given(traces())
@settings(max_examples=30, deadline=None)
def test_control_replay_reproduces_original(trace):
    control = BurstingSimulator(trace, policies=[]).run()
    assert control.n_bursted == 0
    assert control.cost_usd == 0.0
    assert control.runtime_s == pytest.approx(trace.runtime_s, abs=1.5)
    # Instant-throughput series: one sample per second, final value is
    # eq. (5) at completion.
    assert len(control.throughput_series_jpm) == int(control.runtime_s)
    final = control.throughput_series_jpm[-1]
    assert final == pytest.approx(trace.n_jobs / (control.runtime_s / 60.0), rel=1e-6)


@given(traces(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_bursting_never_regresses_and_conserves_jobs(trace, seedling):
    control = BurstingSimulator(trace, policies=[]).run()
    bursty = BurstingSimulator(trace, policies=policy_set(seedling)).run()
    # Makespan regression is bounded: a bursted job is taken while idle
    # or unsubmitted (before its traced start), so it completes no later
    # than its traced end plus one cloud duration. (Bursting CAN slow a
    # batch when it steals a job that OSG would have finished quickly —
    # the reason the paper gates Policy 1 behind a throughput threshold.)
    cloud = CloudJobModel()
    bound = control.runtime_s + max(cloud.rupture_seconds, cloud.waveform_seconds)
    assert bursty.runtime_s <= bound + 1.0
    # Job conservation: everything completes exactly once.
    assert bursty.n_jobs == trace.n_jobs
    assert bursty.n_bursted == sum(bursty.bursts_by_policy.values())
    assert bursty.n_bursted <= trace.n_jobs
    # Only burstable phases ever burst, so cloud seconds decompose into
    # the two constants.
    cloud = CloudJobModel()
    max_cloud = bursty.n_bursted * max(cloud.rupture_seconds, cloud.waveform_seconds)
    min_cloud = bursty.n_bursted * min(cloud.rupture_seconds, cloud.waveform_seconds)
    assert min_cloud - 1e-6 <= bursty.cloud_seconds <= max_cloud + 1e-6


@given(traces(), st.floats(min_value=0.05, max_value=0.9))
@settings(max_examples=30, deadline=None)
def test_burst_cap_always_respected(trace, cap):
    sim = BurstingSimulator(
        trace,
        policies=[QueueTimePolicy(max_queue_s=1.0)],  # burst aggressively
        max_burst_fraction=cap,
    )
    result = sim.run()
    assert result.n_bursted <= int(np.floor(cap * trace.n_jobs))


@given(traces())
@settings(max_examples=20, deadline=None)
def test_throughput_series_scaled_by_completions(trace):
    result = BurstingSimulator(trace, policies=policy_set(7)).run()
    series = result.throughput_series_jpm
    # omega[t] * minutes(t) is the cumulative completion count: integer,
    # non-decreasing, ending at n_jobs.
    minutes = (np.arange(1, series.size + 1)) / 60.0
    completions = series * minutes
    assert np.all(np.diff(np.round(completions, 6)) >= -1e-6)
    assert completions[-1] == pytest.approx(trace.n_jobs, abs=1e-6)
