"""Tests for repro.bursting.policies."""

from dataclasses import dataclass

import pytest

from repro.bursting.policies import (
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.errors import PolicyError


@dataclass
class FakeView:
    now_s: float = 0.0
    instant_throughput_jpm: float = 0.0
    oldest_queued_wait_s: float | None = None
    last_submission_age_s: float | None = None
    has_unsubmitted_burstable: bool = True


class TestPolicy1:
    def test_disarmed_until_threshold_reached(self):
        policy = LowThroughputPolicy(probe_s=10.0, threshold_jpm=34.0)
        # Low throughput during ramp-up: no bursting yet.
        assert policy.evaluate(FakeView(now_s=10.0, instant_throughput_jpm=1.0)) is None
        assert policy.evaluate(FakeView(now_s=20.0, instant_throughput_jpm=5.0)) is None
        # Threshold reached: arms but does not burst.
        assert policy.evaluate(FakeView(now_s=30.0, instant_throughput_jpm=40.0)) is None
        # Now a dip triggers a burst.
        req = policy.evaluate(FakeView(now_s=40.0, instant_throughput_jpm=20.0))
        assert req is not None and req.kind == "tail" and req.policy == "policy1"

    def test_probe_interval_respected(self):
        policy = LowThroughputPolicy(probe_s=30.0, threshold_jpm=10.0)
        policy._armed = True
        assert policy.evaluate(FakeView(now_s=30.0, instant_throughput_jpm=1.0)) is not None
        # Next probe only at t >= 60.
        assert policy.evaluate(FakeView(now_s=45.0, instant_throughput_jpm=1.0)) is None
        assert policy.evaluate(FakeView(now_s=60.0, instant_throughput_jpm=1.0)) is not None

    def test_no_burst_without_candidates(self):
        policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=10.0)
        policy._armed = True
        view = FakeView(now_s=5.0, instant_throughput_jpm=1.0, has_unsubmitted_burstable=False)
        assert policy.evaluate(view) is None

    def test_no_burst_above_threshold(self):
        policy = LowThroughputPolicy(probe_s=1.0, threshold_jpm=10.0)
        policy._armed = True
        assert policy.evaluate(FakeView(now_s=5.0, instant_throughput_jpm=50.0)) is None

    def test_validation(self):
        with pytest.raises(PolicyError):
            LowThroughputPolicy(probe_s=0.5)
        with pytest.raises(PolicyError):
            LowThroughputPolicy(threshold_jpm=0.0)


class TestPolicy2:
    def test_bursts_long_waiting_job(self):
        policy = QueueTimePolicy(max_queue_s=5400.0)
        req = policy.evaluate(FakeView(oldest_queued_wait_s=6000.0))
        assert req is not None and req.kind == "queued" and req.policy == "policy2"

    def test_tolerates_short_waits(self):
        policy = QueueTimePolicy(max_queue_s=5400.0)
        assert policy.evaluate(FakeView(oldest_queued_wait_s=5000.0)) is None

    def test_empty_queue(self):
        policy = QueueTimePolicy()
        assert policy.evaluate(FakeView(oldest_queued_wait_s=None)) is None

    def test_validation(self):
        with pytest.raises(PolicyError):
            QueueTimePolicy(max_queue_s=0.0)


class TestPolicy3:
    def test_bursts_on_submission_gap(self):
        policy = SubmissionGapPolicy(max_gap_s=600.0, probe_s=30.0)
        req = policy.evaluate(FakeView(now_s=1000.0, last_submission_age_s=700.0))
        assert req is not None and req.kind == "tail" and req.policy == "policy3"

    def test_periodic_not_every_second(self):
        policy = SubmissionGapPolicy(max_gap_s=600.0, probe_s=30.0)
        assert policy.evaluate(FakeView(now_s=1000.0, last_submission_age_s=700.0)) is not None
        assert policy.evaluate(FakeView(now_s=1010.0, last_submission_age_s=710.0)) is None
        assert policy.evaluate(FakeView(now_s=1030.0, last_submission_age_s=730.0)) is not None

    def test_no_gap_no_burst(self):
        policy = SubmissionGapPolicy(max_gap_s=600.0)
        assert policy.evaluate(FakeView(now_s=100.0, last_submission_age_s=30.0)) is None

    def test_no_submissions_yet(self):
        policy = SubmissionGapPolicy()
        assert policy.evaluate(FakeView(now_s=100.0, last_submission_age_s=None)) is None

    def test_no_candidates(self):
        policy = SubmissionGapPolicy(max_gap_s=10.0)
        view = FakeView(
            now_s=100.0, last_submission_age_s=50.0, has_unsubmitted_burstable=False
        )
        assert policy.evaluate(view) is None

    def test_validation(self):
        with pytest.raises(PolicyError):
            SubmissionGapPolicy(max_gap_s=0.0)
        with pytest.raises(PolicyError):
            SubmissionGapPolicy(probe_s=0.0)
