"""Property-based round-trip tests for every file format in the library.

Each format (submit files, DAG files, configs, station files, rupt
files, traces) must survive write -> read unchanged for arbitrary valid
content — the property that makes the on-disk artifacts trustworthy
hand-off points between workflow phases.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.condor.jobs import JobPayload, JobSpec
from repro.condor.submit import SubmitDescription
from repro.core.config import FdwConfig

names = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789_"),
    min_size=1,
    max_size=12,
)


@st.composite
def job_specs(draw):
    phase = draw(st.sampled_from(["A", "B", "C", "dist"]))
    n_files = draw(st.integers(min_value=0, max_value=3))
    files = {
        f"file_{i}.npy": draw(st.floats(min_value=0.0, max_value=1e4))
        for i in range(n_files)
    }
    return JobSpec(
        name=draw(names),
        arguments=f"--phase {phase}",
        request_cpus=draw(st.integers(min_value=1, max_value=64)),
        request_memory_mb=draw(st.integers(min_value=1, max_value=65536)),
        request_disk_mb=draw(st.integers(min_value=1, max_value=10**6)),
        input_files=files,
        payload=JobPayload(
            phase=phase,
            n_items=draw(st.integers(min_value=1, max_value=1000)),
            n_stations=draw(st.integers(min_value=1, max_value=500)),
        ),
    )


@given(job_specs())
@settings(max_examples=50, deadline=None)
def test_submit_description_roundtrip(spec):
    sub = SubmitDescription.from_job_spec(spec)
    back = SubmitDescription.parse(sub.render()).to_job_spec(spec.name)
    assert back.request_cpus == spec.request_cpus
    assert back.request_memory_mb == spec.request_memory_mb
    assert back.payload == spec.payload
    assert set(back.input_files) == set(spec.input_files)
    assert back.arguments == spec.arguments


@st.composite
def fdw_configs(draw):
    return FdwConfig(
        n_waveforms=draw(st.integers(min_value=1, max_value=100000)),
        n_stations=draw(st.integers(min_value=1, max_value=500)),
        chunk_a=draw(st.integers(min_value=1, max_value=64)),
        chunk_c=draw(st.integers(min_value=1, max_value=64)),
        recycle_distances=draw(st.booleans()),
        mesh=(
            draw(st.integers(min_value=2, max_value=60)),
            draw(st.integers(min_value=2, max_value=30)),
        ),
        mw_range=(7.5, 9.2),
        retries=draw(st.integers(min_value=0, max_value=9)),
        max_idle=draw(st.integers(min_value=0, max_value=5000)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        name=draw(names),
    )


@given(fdw_configs())
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_fdw_config_roundtrip(tmp_path_factory, config):
    path = tmp_path_factory.mktemp("cfg") / "fdw.cfg"
    config.write(path)
    assert FdwConfig.read(path) == config


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_station_file_roundtrip(tmp_path_factory, n, seed):
    from repro.seismo.stations import StationNetwork, chilean_network

    net = chilean_network(n, seed=seed)
    path = tmp_path_factory.mktemp("sta") / "net.gflist"
    net.write_station_file(path)
    back = StationNetwork.read_station_file(path)
    assert back.names == net.names
    np.testing.assert_allclose(back.lons, net.lons, atol=1e-5)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    mw=st.floats(min_value=7.5, max_value=9.2),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_rupt_roundtrip_property(tmp_path_factory, rupture_generator,
                                 small_geometry, seed, mw):
    from repro.seismo.mudpy_io import read_rupt, write_rupt

    rupture = rupture_generator.generate(np.random.default_rng(seed), target_mw=mw)
    path = tmp_path_factory.mktemp("rupt") / "r.rupt"
    write_rupt(rupture, small_geometry, path)
    back = read_rupt(path)
    np.testing.assert_array_equal(back.subfault_indices, rupture.subfault_indices)
    np.testing.assert_allclose(back.slip_m, rupture.slip_m, atol=1e-6)
    assert back.target_mw == pytest.approx(rupture.target_mw, abs=1e-4)


def test_cli_figures_subcommand(tmp_path):
    from repro.cli import main

    out = tmp_path / "figs"
    assert main(["figures", "-o", str(out), "--scale", "0.01"]) == 0
    csvs = list(out.glob("*.csv"))
    assert len(csvs) >= 4
