"""Tests for repro.service — the multi-tenant portal service layer."""

import asyncio

import pytest

from repro.core.config import FdwConfig
from repro.errors import (
    BackpressureError,
    QuotaExceededError,
    ServiceError,
)
from repro.osg.capacity import FixedCapacity
from repro.service import (
    PoolRunner,
    PortalService,
    RunnerOutcome,
    ServiceQuota,
    ServiceStats,
    SimulatedRunner,
    VirtualClock,
    run_service_demo,
)
from repro.vdc.portal import Portal


class CountingRunner:
    """Stub backend that counts executions (the exactly-once probe)."""

    name = "stub"

    def __init__(self, elapsed_s=60.0):
        self.elapsed_s = elapsed_s
        self.calls = []

    def execute(self, config, seed):
        self.calls.append((config.name, seed))
        return RunnerOutcome(
            backend=self.name,
            elapsed_s=self.elapsed_s,
            n_jobs=1,
            report=f"stub run {config.name}",
        )


class FailingRunner:
    name = "boom"

    def execute(self, config, seed):
        raise RuntimeError(f"backend lost {config.name}")


def config(name="svc", n_waveforms=8):
    return FdwConfig(
        n_waveforms=n_waveforms, n_stations=2, mesh=(8, 5), name=name
    )


# -- coalescing ---------------------------------------------------------------


def test_identical_submissions_execute_exactly_once():
    """Acceptance: N identical concurrent submissions from distinct
    tenants run once, and every tenant gets byte-identical products."""
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=4) as service:
            tickets = [
                await service.submit(f"tenant-{i:02d}", config())
                for i in range(6)
            ]
            return [await t for t in tickets]

    results = asyncio.run(scenario())
    assert len(runner.calls) == 1  # exactly one execution
    assert results[0].coalesced is False
    assert all(r.coalesced for r in results[1:])
    # Byte-identical product sets: same run, same ids, for every tenant.
    assert len({r.run_id for r in results}) == 1
    assert len({r.product_ids for r in results}) == 1
    assert results[0].product_ids
    # Each result still belongs to its own tenant.
    assert [r.tenant for r in results] == [f"tenant-{i:02d}" for i in range(6)]


def test_different_configs_do_not_coalesce():
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=2) as service:
            a = await service.submit("alice", config("one"))
            b = await service.submit("alice", config("two"))
            return await a, await b

    ra, rb = asyncio.run(scenario())
    assert len(runner.calls) == 2
    assert ra.run_id != rb.run_id
    assert set(ra.product_ids).isdisjoint(rb.product_ids)


def test_different_seeds_do_not_coalesce():
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=2) as service:
            a = await service.submit("alice", config(), seed=1)
            b = await service.submit("alice", config(), seed=2)
            await a, await b

    asyncio.run(scenario())
    assert len(runner.calls) == 2


def test_resubmit_after_completion_reexecutes():
    """Coalescing only spans queued/running entries: once a run has
    finished, an identical submission is a fresh execution with a fresh
    monotonic run id."""
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=1) as service:
            first = await (await service.submit("alice", config()))
            second = await (await service.submit("alice", config()))
            return first, second

    first, second = asyncio.run(scenario())
    assert len(runner.calls) == 2
    assert first.run_id != second.run_id
    assert second.coalesced is False


# -- fair share ---------------------------------------------------------------


def test_fair_share_interleaves_unequal_tenants():
    """Acceptance: with one worker and a heavy plus a light tenant, the
    queue trace shows starts interleaving, not heavy-then-light."""
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=1) as service:
            tickets = []
            for i in range(4):
                tickets.append(
                    await service.submit("heavy", config(f"h{i}"))
                )
            for i in range(2):
                tickets.append(
                    await service.submit("light", config(f"l{i}"))
                )
            for t in tickets:
                await t
            return service.queue_trace()

    trace = asyncio.run(scenario())
    starts = [e.tenant for e in trace if e.event == "start"]
    assert len(starts) == 6
    # Round-robin across tenants while both have queued work, then the
    # heavy tenant's backlog drains.
    assert starts == ["heavy", "light", "heavy", "light", "heavy", "heavy"]


def test_trace_records_all_lifecycle_events():
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=1) as service:
            await (await service.submit("alice", config()))
            return service.queue_trace()

    trace = asyncio.run(scenario())
    assert [e.event for e in trace] == ["submit", "start", "finish"]
    assert [e.seq for e in trace] == [0, 1, 2]
    assert trace[-1].time >= trace[0].time


# -- quotas and backpressure --------------------------------------------------


def test_quota_rejects_over_pending_cap():
    runner = CountingRunner()
    quota = ServiceQuota(max_pending_per_tenant=1, max_queue_depth=64)

    async def scenario():
        async with PortalService(
            Portal(), runner, n_workers=1, quota=quota
        ) as service:
            first = await service.submit("alice", config("one"))
            with pytest.raises(QuotaExceededError) as excinfo:
                await service.submit("alice", config("two"))
            assert excinfo.value.retryable is False
            assert "alice" in str(excinfo.value)
            # Another tenant is unaffected by alice's quota.
            other = await service.submit("bob", config("three"))
            await first, await other
            # Once alice's ticket resolved, she can submit again.
            await (await service.submit("alice", config("two")))
            return service.stats

    stats = asyncio.run(scenario())
    assert stats.n_quota_rejected == 1
    assert stats.n_executed == 3


def test_backpressure_rejects_full_queue():
    runner = CountingRunner()
    quota = ServiceQuota(max_pending_per_tenant=100, max_queue_depth=1)

    async def scenario():
        async with PortalService(
            Portal(), runner, n_workers=1, quota=quota
        ) as service:
            first = await service.submit("alice", config("one"))
            with pytest.raises(BackpressureError) as excinfo:
                await service.submit("bob", config("two"))
            assert excinfo.value.retryable is True
            # A coalesced subscription never consumes a queue slot.
            joined = await service.submit("carol", config("one"))
            await first, await joined
            # After the drain the queue has room again.
            await (await service.submit("bob", config("two")))
            return service.stats

    stats = asyncio.run(scenario())
    assert stats.n_backpressure_rejected == 1
    assert stats.n_coalesced == 1


def test_quota_validation():
    with pytest.raises(ServiceError):
        ServiceQuota(max_pending_per_tenant=0)
    with pytest.raises(ServiceError):
        ServiceQuota(max_queue_depth=0)


# -- failure handling ---------------------------------------------------------


def test_failure_propagates_to_all_subscribers():
    async def scenario():
        async with PortalService(
            Portal(), FailingRunner(), n_workers=1
        ) as service:
            a = await service.submit("alice", config())
            b = await service.submit("bob", config())
            with pytest.raises(RuntimeError, match="backend lost"):
                await a
            with pytest.raises(RuntimeError, match="backend lost"):
                await b
            return service.stats, service.queue_trace()

    stats, trace = asyncio.run(scenario())
    assert stats.n_failed == 1
    assert stats.n_executed == 0
    assert [e.event for e in trace] == ["submit", "coalesce", "start", "fail"]


def test_failed_entry_leaves_no_products():
    portal = Portal()

    async def scenario():
        async with PortalService(portal, FailingRunner(), n_workers=1) as service:
            with pytest.raises(RuntimeError):
                await (await service.submit("alice", config()))
            return service.runs()

    runs = asyncio.run(scenario())
    assert runs == []
    assert len(portal.catalog) == 0


def test_close_fails_outstanding_tickets():
    async def scenario():
        service = PortalService(Portal(), CountingRunner(), n_workers=1)
        async with service:
            ticket = await service.submit("alice", config())
            await service.aclose()
            with pytest.raises(ServiceError, match="closed"):
                await ticket
            with pytest.raises(ServiceError, match="closed"):
                await service.submit("alice", config("late"))

    asyncio.run(scenario())


def test_subscriber_cancellation_does_not_kill_shared_run():
    runner = CountingRunner()

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=1) as service:
            a = await service.submit("alice", config())
            b = await service.submit("bob", config())
            waiter = asyncio.ensure_future(a.result())
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            # Bob's ticket still resolves off the shared execution.
            result = await b
            return result

    result = asyncio.run(scenario())
    assert result.product_ids
    assert len(runner.calls) == 1


# -- determinism --------------------------------------------------------------


def test_demo_deterministic_under_seed():
    """Acceptance: same seed, same submission trace -> same placement,
    timestamps, run ids, and products."""
    kwargs = dict(n_tenants=3, n_submissions=12, n_distinct=3, seed=42, n_workers=2)
    first = run_service_demo(**kwargs)
    second = run_service_demo(**kwargs)
    assert first.trace == second.trace
    assert first.summary() == second.summary()
    assert [r.run_id for r in first.results] == [r.run_id for r in second.results]
    assert [r.product_ids for r in first.results] == [
        r.product_ids for r in second.results
    ]


def test_demo_seed_changes_trace():
    base = dict(n_tenants=3, n_submissions=12, n_distinct=3, n_workers=2)
    assert (
        run_service_demo(seed=1, **base).trace
        != run_service_demo(seed=2, **base).trace
    )


def test_demo_report_accounting():
    report = run_service_demo(
        n_tenants=4, n_submissions=24, n_distinct=2, seed=9, n_workers=2
    )
    stats = report.stats
    assert stats.n_submitted == 24
    assert stats.n_executed + stats.n_coalesced == 24
    assert stats.n_executed < 24  # shared scenarios must coalesce
    assert len(report.results) == 24
    assert sum(report.starts_by_tenant().values()) == stats.n_executed
    assert "coalescing hit rate" in report.summary()


def test_demo_validation():
    with pytest.raises(ServiceError):
        run_service_demo(n_tenants=0)


# -- virtual clock and waits --------------------------------------------------


def test_virtual_clock_monotonic():
    clock = VirtualClock()
    assert clock.now() == 0.0
    clock.advance_to(5.0)
    assert clock.now() == 5.0
    with pytest.raises(ServiceError):
        clock.advance_to(4.0)


def test_queue_waits_follow_virtual_time():
    """With one worker and fixed 60s executions, the k-th distinct
    submission waits exactly k*60 virtual seconds."""
    runner = CountingRunner(elapsed_s=60.0)

    async def scenario():
        async with PortalService(Portal(), runner, n_workers=1) as service:
            tickets = [
                await service.submit("alice", config(f"c{i}")) for i in range(3)
            ]
            return [await t for t in tickets]

    results = asyncio.run(scenario())
    assert [r.queue_wait_s for r in results] == [0.0, 60.0, 120.0]
    assert [r.turnaround_s for r in results] == [60.0, 120.0, 180.0]


def test_stats_percentiles():
    stats = ServiceStats(queue_waits_s=[0.0, 10.0, 20.0, 30.0, 100.0])
    assert stats.wait_percentile(0) == 0.0
    assert stats.wait_percentile(50) == 20.0
    assert stats.wait_percentile(100) == 100.0
    with pytest.raises(ServiceError):
        stats.wait_percentile(101)
    assert ServiceStats().wait_percentile(99) == 0.0


def test_service_validation():
    with pytest.raises(ServiceError):
        PortalService(n_workers=0)

    async def bad_tenant():
        async with PortalService(Portal(), CountingRunner()) as service:
            with pytest.raises(ServiceError):
                await service.submit("", config())

    asyncio.run(bad_tenant())


# -- portal integration -------------------------------------------------------


def test_service_deposit_matches_direct_launch():
    """A service-run submission deposits the same catalog records a
    direct Portal.launch produces on a fresh portal."""
    cfg = config("par")
    direct = Portal(capacity=FixedCapacity(8))
    run = direct.launch(cfg, user="alice", seed=0)

    portal = Portal(capacity=FixedCapacity(8))

    async def scenario():
        service = PortalService(
            portal,
            PoolRunner(capacity=portal.capacity),
            n_workers=1,
        )
        async with service:
            return await (await service.submit("alice", cfg, seed=0))

    result = asyncio.run(scenario())
    assert result.run_id == run.run_id
    assert result.product_ids == tuple(run.product_ids)
    for pid in run.product_ids:
        assert portal.catalog.get(pid) == direct.catalog.get(pid)
    assert result.backend == "pool"
    assert "jobs/min" in result.report


def test_async_results_api():
    portal = Portal()

    async def scenario():
        async with PortalService(
            portal, CountingRunner(), n_workers=1
        ) as service:
            result = await (await service.submit("alice", config()))
            hits = await service.discover(
                home_site="vdc-psu", kind="waveforms", tags={"fdw"}
            )
            assert [r.product_id for r in hits] == [result.product_ids[0]]
            elapsed = await service.retrieve(result.product_ids[0], "vdc-psu")
            assert elapsed > 0
            # The discovery above landed in the prefetch trace.
            assert portal.prefetcher.trace_for("vdc-psu")
            assert service.runs() == [result.run_id]

    asyncio.run(scenario())
