"""Tests for repro.service.runner — the backend protocol."""

import pytest

from repro.core.config import FdwConfig
from repro.core.phases import plan_phases
from repro.errors import ServiceError
from repro.osg.capacity import FixedCapacity
from repro.service.runner import (
    PoolRunner,
    Runner,
    RunnerOutcome,
    SimulatedRunner,
)


@pytest.fixture()
def config():
    return FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="rn")


def test_backends_satisfy_protocol():
    for backend in (PoolRunner(), SimulatedRunner()):
        assert isinstance(backend, Runner)
        assert backend.name


def test_outcome_is_frozen():
    outcome = RunnerOutcome(backend="x", elapsed_s=1.0, n_jobs=1, report="r")
    with pytest.raises(AttributeError):
        outcome.elapsed_s = 2.0


def test_simulated_runner_deterministic(config):
    runner = SimulatedRunner()
    first = runner.execute(config, seed=7)
    second = runner.execute(config, seed=7)
    assert first == second
    assert first.backend == "sim"
    assert first.elapsed_s > 0
    assert first.n_jobs == plan_phases(config).n_jobs


def test_simulated_runner_seed_sensitive(config):
    runner = SimulatedRunner()
    assert runner.execute(config, 1).elapsed_s != runner.execute(config, 2).elapsed_s


def test_simulated_runner_validation():
    with pytest.raises(ServiceError):
        SimulatedRunner(base_s=0.0)
    with pytest.raises(ServiceError):
        SimulatedRunner(jitter=1.0)


def test_pool_runner_matches_batch_metrics(config):
    runner = PoolRunner(capacity=FixedCapacity(8))
    outcome = runner.execute(config, seed=3)
    assert outcome.backend == "pool"
    summary = outcome.details.metrics.dagmans[config.name]
    assert outcome.elapsed_s == summary.runtime_s
    assert outcome.n_jobs == summary.n_jobs
    assert config.name in outcome.report


def test_pool_runner_engines_agree(config):
    vector = PoolRunner(capacity=FixedCapacity(8), engine="vector")
    reference = PoolRunner(capacity=FixedCapacity(8), engine="reference")
    assert (
        vector.execute(config, seed=5).elapsed_s
        == reference.execute(config, seed=5).elapsed_s
    )
