"""Cross-module integration tests.

These exercise the full pipelines the paper describes:

1. FDW on the simulated OSG -> user log -> monitoring stats,
2. OSG run -> trace CSVs -> bursting simulator -> policy effects,
3. local (single-machine) run equals the OSG-produced catalog,
4. the complete Fig 7 flow: portal -> catalog -> discovery -> retrieval.
"""

import numpy as np
import pytest

from repro.bursting import BurstingSimulator, LowThroughputPolicy, QueueTimePolicy
from repro.core.config import FdwConfig
from repro.core.local import LocalRunner
from repro.core.monitor import DagmanStats
from repro.core.partition import partition_config
from repro.core.phases import chunk_bounds
from repro.core.submit_osg import run_fdw_batch
from repro.core.traces import export_traces, read_traces
from repro.osg.capacity import FixedCapacity
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters


class TestFdwToMonitoring:
    def test_log_pipeline_matches_recorder(self, tiny_batch_result, tiny_fdw_config):
        name = tiny_fdw_config.name
        stats = DagmanStats.from_log_text(tiny_batch_result.user_logs[name])
        summary = tiny_batch_result.metrics.dagmans[name]
        assert stats.n_completed + stats.n_failed == len(
            tiny_batch_result.metrics.for_dagman(name)
        )
        assert stats.runtime_s() == pytest.approx(summary.runtime_s, abs=2.0)

    def test_phase_ordering_in_log(self, tiny_batch_result, tiny_fdw_config):
        records = tiny_batch_result.metrics.for_dagman(tiny_fdw_config.name)
        a_end = max(r.end_time for r in records if r.phase == "A")
        b = [r for r in records if r.phase == "B"][0]
        c_start = min(r.start_time for r in records if r.phase == "C")
        assert a_end <= b.start_time
        assert b.end_time <= c_start


class TestTraceToBursting:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory, tiny_batch_result, tiny_fdw_config):
        d = tmp_path_factory.mktemp("traces")
        batch_csv, jobs_csv = export_traces(tiny_batch_result, tiny_fdw_config.name, d)
        return read_traces(batch_csv, jobs_csv)

    def test_control_matches_osg_runtime(self, trace):
        control = BurstingSimulator(trace, policies=[]).run()
        assert control.runtime_s == pytest.approx(trace.runtime_s, abs=1.5)
        assert control.n_bursted == 0

    def test_bursting_never_slower_than_control(self, trace):
        control = BurstingSimulator(trace, policies=[]).run()
        bursty = BurstingSimulator(
            trace,
            policies=[
                LowThroughputPolicy(probe_s=5.0, threshold_jpm=8.0),
                QueueTimePolicy(max_queue_s=120.0),
            ],
        ).run()
        assert bursty.runtime_s <= control.runtime_s + 1.0
        assert (
            bursty.average_instant_throughput_jpm
            >= control.average_instant_throughput_jpm - 1e-9
        )


class TestLocalVsOsgProducts:
    def test_chunking_invariance_means_identical_catalogs(self):
        """The rupture catalog is identical however the work is split.

        This is the property that makes the FDW's parallelization
        correct: OSG A-phase jobs each compute a chunk with the same
        deterministic per-rupture RNG that the sequential runner uses.
        """
        params = FakeQuakesParameters(n_ruptures=8, n_stations=3, mesh=(8, 5), seed=13)
        sequential = FakeQuakes.from_parameters(params)
        seq_ruptures = sequential.phase_a_ruptures(0, 8)

        parallel = FakeQuakes.from_parameters(params)
        par_ruptures = []
        for start, count in chunk_bounds(8, 3):  # a different chunking
            par_ruptures.extend(parallel.phase_a_ruptures(start, count))

        assert len(seq_ruptures) == len(par_ruptures)
        for a, b in zip(seq_ruptures, par_ruptures):
            assert a.rupture_id == b.rupture_id
            np.testing.assert_array_equal(a.slip_m, b.slip_m)
            np.testing.assert_array_equal(a.onset_time_s, b.onset_time_s)

    def test_local_runner_executes_same_config_shape(self):
        config = FdwConfig(
            n_waveforms=4, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="eq"
        )
        local = LocalRunner().run(config)
        osg = run_fdw_batch(config, capacity=FixedCapacity(8), seed=0)
        # Same work decomposition: local produced all waveforms; the OSG
        # DAG contains exactly the planned jobs for the same config.
        assert local.n_waveform_sets == config.n_waveforms
        from repro.core.phases import plan_phases

        assert osg.metrics.dagmans["eq"].n_jobs == plan_phases(config).n_jobs


class TestPartitionedBatches:
    def test_partitions_jointly_cover_workload(self):
        config = FdwConfig(n_waveforms=48, n_stations=4, mesh=(8, 5), name="joint")
        parts = partition_config(config, 3)
        result = run_fdw_batch(parts, capacity=FixedCapacity(16), seed=4)
        total_c_nodes = sum(
            len(
                {
                    r.node_name
                    for r in result.metrics.phase_records("C", dagman=p.name)
                    if r.success
                }
            )
            for p in parts
        )
        # chunk_c=2: 48 waveforms -> 24 distinct C nodes across the
        # partitions (failed attempts retry as extra records).
        assert total_c_nodes == 24
        for p in parts:
            assert result.metrics.dagmans[p.name].end_time is not None


class TestPortalFlow:
    def test_fig7_end_to_end(self):
        from repro.osg.capacity import FixedCapacity
        from repro.vdc.portal import Portal

        portal = Portal(capacity=FixedCapacity(12))
        config = FdwConfig(n_waveforms=8, n_stations=3, mesh=(8, 5), name="fig7")
        run = portal.launch(config, user="researcher", seed=1)
        assert run.succeeded
        # An EEW modeller discovers the waveform product and pulls it to
        # their home site; the second pull is cache-fast.
        hits = portal.discover(kind="waveforms", ranges={"n_waveforms": (1, 100)})
        assert hits
        t1 = portal.retrieve(hits[0].product_id, "vdc-psu")
        t2 = portal.retrieve(hits[0].product_id, "vdc-psu")
        assert t2 < t1
