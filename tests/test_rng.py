"""Tests for repro.rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngFactory, derive_seed


def test_same_key_same_seed():
    assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)


def test_different_root_different_seed():
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_different_keys_different_seed():
    assert derive_seed(7, "a") != derive_seed(7, "b")


def test_key_path_not_concat_ambiguous():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_generator_reproducible():
    a = RngFactory(3).generator("x").random(5)
    b = RngFactory(3).generator("x").random(5)
    np.testing.assert_array_equal(a, b)


def test_generators_independent_streams():
    f = RngFactory(3)
    a = f.generator("x").random(100)
    b = f.generator("y").random(100)
    assert not np.allclose(a, b)


def test_spawn_matches_child_seed():
    f = RngFactory(9)
    child = f.spawn("sub")
    assert child.seed == f.child_seed("sub")
    # Keys under the spawned factory match a full path from the root.
    np.testing.assert_array_equal(
        child.generator("k").random(3),
        RngFactory(f.child_seed("sub")).generator("k").random(3),
    )


def test_generators_list():
    gens = RngFactory(1).generators("worker", 4)
    assert len(gens) == 4
    draws = [g.random() for g in gens]
    assert len(set(draws)) == 4


def test_generators_negative_count_rejected():
    with pytest.raises(ValueError):
        RngFactory(1).generators("w", -1)


def test_independent_from_explicit_seeds():
    gens = RngFactory.independent([5, 5])
    assert gens[0].random() == gens[1].random()


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
def test_derive_seed_in_64bit_range(root, key):
    seed = derive_seed(root, key)
    assert 0 <= seed < 2**64
