"""Tests for repro.reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.reporting import render_table, series_summary_row, sparkline


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_constant_zero_blank(self):
        assert sparkline([0.0, 0.0, 0.0]) == "   "

    def test_peak_is_darkest(self):
        line = sparkline([0.0, 1.0, 10.0, 1.0], width=4)
        assert line[2] == "@"
        assert line[0] == " "

    def test_width_respected(self):
        assert len(sparkline(np.arange(1000.0), width=32)) == 32

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=48)) == 2

    def test_nan_tolerated(self):
        line = sparkline([np.nan, 1.0, np.inf])
        assert len(line) == 3

    def test_bad_width(self):
        with pytest.raises(ReproError):
            sparkline([1.0], width=0)

    def test_negative_values_no_palette_wrap(self):
        # Regression: top-scaling mapped negative means to negative
        # palette indexes, which wrapped into arbitrary characters.
        line = sparkline([-1.0, 0.0, 1.0], width=3)
        assert line[0] == " " and line[2] == "@"

    def test_constant_negative_flat_line(self):
        # Regression: constant negative series rendered all-blank,
        # indistinguishable from "no signal".
        assert sparkline([-5.0, -5.0, -5.0]) == "---"

    def test_constant_positive_unchanged(self):
        assert sparkline([3.0, 3.0]) == "@@"

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_characters(self, values):
        line = sparkline(values)
        assert set(line) <= set(" .:-=+*#%@")
        assert 1 <= len(line) <= 48


class TestRenderTable:
    def test_alignment_and_precision(self):
        out = render_table(["name", "value"], [["x", 1.23456], ["longer", 2.0]],
                           precision=3)
        lines = out.splitlines()
        assert lines[0].endswith("value")
        assert "1.235" in out
        assert "2.000" in out
        # All lines equal width.
        assert len({len(l) for l in lines}) == 1

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "-" in out

    def test_ragged_rejected(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [["only one"]])

    def test_bad_precision(self):
        with pytest.raises(ReproError):
            render_table(["a"], [], precision=-1)

    def test_non_numeric_cells(self):
        out = render_table(["k", "v"], [["flag", True], ["n", 7]])
        assert "True" in out and "7" in out


class TestSummaryRow:
    def test_contents(self):
        row = series_summary_row("waits", [1.0, 2.0, 3.0])
        assert row.startswith("waits:")
        assert "mean=2.00" in row
        assert "n=3" in row

    def test_empty_renders_explicit_row(self):
        # Regression: empty series used to raise, so one sample-free
        # tenant/run broke whole-report rendering (and the naive fix of
        # np.mean([]) would have emitted NaN + RuntimeWarning).
        row = series_summary_row("x", [])
        assert row == "x: (no samples, n=0)"

    def test_constant_series_no_artifacts(self):
        row = series_summary_row("flat", [7.0, 7.0, 7.0])
        assert "mean=7.00" in row and "sd=0.00" in row
        assert "nan" not in row.lower()
