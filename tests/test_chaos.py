"""Tests for repro.chaos (seeded chaos campaigns)."""

import pytest

from repro.chaos import ChaosConfig, ChaosReport, archive_bytes, run_chaos_campaign
from repro.core.config import FdwConfig
from repro.core.submit_osg import run_fdw_batch
from repro.faults import TransferFaults


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One full three-stage campaign, shared by the assertions below."""
    workdir = tmp_path_factory.mktemp("chaos")
    return run_chaos_campaign(workdir, ChaosConfig(seed=7)), workdir


def test_campaign_archive_bit_identical(campaign):
    """Acceptance: corruption + flakes + transfer faults + an outage
    window, and the final archive still matches the fault-free run."""
    report, _ = campaign
    assert report.bit_identical
    assert report.n_products > 0


def test_campaign_quarantined_evidence_preserved(campaign):
    report, workdir = campaign
    # The storm corrupted a checkpoint chunk, a GF bank, a K-L basis,
    # and the VDC's cached bank copy — all quarantined, none deleted.
    assert len(report.quarantined) >= 4
    kinds = "\n".join(report.quarantined)
    assert "A_" in kinds and "gf_" in kinds and "kl_" in kinds
    for rel in report.quarantined:
        assert (workdir / rel).exists()


def test_campaign_retries_and_backoff_accounted(campaign):
    report, _ = campaign
    assert sum(report.chunk_retries.values()) >= 1  # the injected flakes
    assert report.retry_backoff_s > 0.0
    assert report.n_transfer_faults >= 1
    assert report.n_transfer_retries >= report.n_degraded_transfers
    assert report.pool_makespan_faulted_s >= report.pool_makespan_s


def test_campaign_breaker_lifecycle(campaign):
    report, _ = campaign
    snaps = {s["name"]: s for s in report.breaker_snapshots}
    assert set(snaps) == {"gateway", "origin", "mirror"}
    origin = snaps["origin"]
    assert origin["n_opens"] >= 1  # the outage tripped it
    assert origin["n_rejected"] >= 1  # fail-fast while open
    assert origin["state"] == "closed"  # and the probe healed it
    assert report.n_failovers >= 1  # mirror served the dark window
    assert report.n_rebuilds == 1  # the corrupted bytes were rebuilt


def test_campaign_summary_renders(campaign):
    report, _ = campaign
    text = report.summary()
    assert "BIT-IDENTICAL" in text
    assert "failover" in text and "breaker origin" in text


def test_report_summary_diverged_verdict():
    assert "DIVERGED" in ChaosReport(seed=0, bit_identical=False, n_products=0).summary()


# -- helpers ------------------------------------------------------------------


def test_archive_bytes_excludes_operational_dirs(tmp_path):
    (tmp_path / "waveforms").mkdir()
    (tmp_path / "waveforms" / "w.npz").write_bytes(b"data")
    (tmp_path / "_checkpoint").mkdir()
    (tmp_path / "_checkpoint" / "manifest.json").write_bytes(b"state")
    (tmp_path / "_quarantine").mkdir()
    (tmp_path / "_quarantine" / "bad.pkl").write_bytes(b"evidence")
    assert archive_bytes(tmp_path) == {"waveforms/w.npz": b"data"}


# -- satellite (d): determinism under injected transfer faults ----------------


def _faulted_batch(seed):
    config = FdwConfig(
        n_waveforms=4, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="det"
    )
    faults = TransferFaults(failure_prob=0.2, slow_prob=0.1, seed=seed)
    result = run_fdw_batch(config, seed=seed, transfer_faults=faults)
    return result, faults


def test_same_seed_same_products_under_transfer_faults():
    """Two runs with the same seed see the same fault draws, the same
    retry schedules, and finish at the identical makespan."""
    a, fa = _faulted_batch(11)
    b, fb = _faulted_batch(11)
    assert fa.n_failures == fb.n_failures and fa.n_failures >= 1
    assert fa.n_slow == fb.n_slow
    assert a.batch_makespan_s() == b.batch_makespan_s()
    assert a.runtime_s("det") == b.runtime_s("det")
    assert a.user_logs == b.user_logs
