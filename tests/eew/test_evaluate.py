"""Tests for repro.eew.evaluate."""

import numpy as np
import pytest

from repro.eew.evaluate import train_test_evaluate
from repro.errors import WaveformError
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters


@pytest.fixture(scope="module")
def catalog():
    params = FakeQuakesParameters(n_ruptures=16, n_stations=10, mesh=(12, 7), seed=6)
    fq = FakeQuakes.from_parameters(params)
    sets = fq.run_sequential()
    return fq, fq.phase_a_ruptures(), sets


def test_evaluation_accuracy(catalog):
    fq, ruptures, sets = catalog
    ev = train_test_evaluate(fq, ruptures, sets, train_fraction=0.7)
    assert ev.n_events == 5
    # Clean synthetics + the true generating physics: tight recovery.
    assert ev.mean_absolute_error < 0.25
    assert abs(ev.bias) < 0.25
    assert np.isfinite(ev.median_convergence_s)


def test_coefficients_physical(catalog):
    fq, ruptures, sets = catalog
    ev = train_test_evaluate(fq, ruptures, sets)
    a, b, c = ev.coefficients
    assert b > 0 and c < 0


def test_report_contents(catalog):
    fq, ruptures, sets = catalog
    ev = train_test_evaluate(fq, ruptures, sets)
    text = ev.report()
    assert "EEW magnitude evaluation" in text
    assert "mean |error|" in text
    assert "test events: 5" in text


def test_validation(catalog):
    fq, ruptures, sets = catalog
    with pytest.raises(WaveformError):
        train_test_evaluate(fq, ruptures[:-1], sets)
    with pytest.raises(WaveformError):
        train_test_evaluate(fq, ruptures, sets, train_fraction=1.5)
    with pytest.raises(WaveformError):
        train_test_evaluate(fq, ruptures[:3], sets[:3], train_fraction=0.9)


def test_convergence_metric_positive(catalog):
    fq, ruptures, sets = catalog
    ev = train_test_evaluate(fq, ruptures, sets, tolerance=0.3)
    finite = np.isfinite(ev.convergence_s)
    assert np.all(ev.convergence_s[finite] >= 0)
