"""Tests for repro.eew.features."""

import numpy as np
import pytest

from repro.eew.features import detection_times, evolving_pgd
from repro.errors import WaveformError
from repro.seismo.waveforms import WaveformSet


def make_ws(data: np.ndarray, dt: float = 1.0) -> WaveformSet:
    names = tuple(f"S{i:03d}" for i in range(data.shape[0]))
    return WaveformSet(rupture_id="t", data=data, dt_s=dt, station_names=names)


def test_evolving_pgd_monotone():
    rng = np.random.default_rng(0)
    data = rng.normal(0, 0.1, (3, 3, 50))
    pgd = evolving_pgd(make_ws(data))
    assert pgd.shape == (3, 50)
    assert np.all(np.diff(pgd, axis=1) >= -1e-15)


def test_evolving_pgd_final_equals_pgd():
    rng = np.random.default_rng(1)
    data = rng.normal(0, 0.1, (2, 3, 30))
    ws = make_ws(data)
    np.testing.assert_allclose(evolving_pgd(ws)[:, -1], ws.pgd_m())


def test_evolving_pgd_simple_ramp():
    data = np.zeros((1, 3, 5))
    data[0, 0] = [0.0, 1.0, 0.5, 2.0, 1.0]  # east component only
    pgd = evolving_pgd(make_ws(data))
    np.testing.assert_allclose(pgd[0], [0.0, 1.0, 1.0, 2.0, 2.0])


def test_detection_times():
    data = np.zeros((2, 3, 10))
    data[0, 2, 4:] = 0.05  # station 0 triggers at t=4
    ws = make_ws(data)
    times = detection_times(ws, threshold_m=0.01)
    assert times[0] == 4.0
    assert np.isinf(times[1])


def test_detection_respects_dt():
    data = np.zeros((1, 3, 10))
    data[0, 2, 3:] = 1.0
    ws = make_ws(data, dt=5.0)
    assert detection_times(ws)[0] == 15.0


def test_detection_threshold_validation():
    data = np.zeros((1, 3, 4))
    with pytest.raises(WaveformError):
        detection_times(make_ws(data), threshold_m=0.0)


def test_closer_stations_trigger_earlier(small_gf_bank, sample_rupture):
    from repro.seismo.waveforms import WaveformSynthesizer

    ws = WaveformSynthesizer(small_gf_bank).synthesize(sample_rupture)
    times = detection_times(ws, threshold_m=1e-4)
    patch = sample_rupture.subfault_indices
    tt_min = small_gf_bank.travel_time_s[:, patch].min(axis=1)
    finite = np.isfinite(times)
    assert finite.sum() >= 2
    # Detection can never precede the earliest possible arrival.
    assert np.all(times[finite] >= tt_min[finite] - ws.dt_s)
