"""Tests for repro.eew.magnitude."""

import numpy as np
import pytest

from repro.eew.magnitude import PgdMagnitudeEstimator, hypocentral_distances_km
from repro.errors import WaveformError
from repro.seismo.validation import PgdFit

#: A physically-shaped coefficient set for closed-form tests.
COEFS = dict(a=-5.0, b=1.2, c=-0.2)


def synth_pgd(mw: float, r_km: np.ndarray) -> np.ndarray:
    """PGD exactly on the scaling law."""
    return 10.0 ** (COEFS["a"] + COEFS["b"] * mw + COEFS["c"] * mw * np.log10(r_km))


def test_exact_inversion():
    est = PgdMagnitudeEstimator(**COEFS, min_pgd_m=1e-12)
    r = np.array([50.0, 120.0, 400.0])
    pgd = synth_pgd(8.2, r)
    mw = est.station_magnitudes(pgd, r)
    np.testing.assert_allclose(mw, 8.2, rtol=1e-9)
    assert est.estimate(pgd, r) == pytest.approx(8.2)


def test_below_floor_ignored():
    est = PgdMagnitudeEstimator(**COEFS, min_pgd_m=0.01)
    r = np.array([50.0, 100.0])
    pgd = np.array([0.5, 1e-5])
    mw = est.station_magnitudes(pgd, r)
    assert np.isfinite(mw[0])
    assert np.isnan(mw[1])


def test_all_below_floor_gives_nan():
    est = PgdMagnitudeEstimator(**COEFS, min_pgd_m=0.01)
    assert np.isnan(est.estimate(np.array([1e-5]), np.array([50.0])))


def test_shape_mismatch_rejected():
    est = PgdMagnitudeEstimator(**COEFS)
    with pytest.raises(WaveformError):
        est.station_magnitudes(np.ones(3), np.ones(2))


def test_from_fit():
    fit = PgdFit(a=-5.0, b=1.2, c=-0.2, residual_std=0.1, n_points=100)
    est = PgdMagnitudeEstimator.from_fit(fit)
    assert est.a == fit.a and est.b == fit.b and est.c == fit.c


def test_validation():
    with pytest.raises(WaveformError):
        PgdMagnitudeEstimator(a=0.0, b=-1.0, c=-0.2)
    with pytest.raises(WaveformError):
        PgdMagnitudeEstimator(a=0.0, b=1.0, c=-0.2, min_pgd_m=0.0)


def test_hypocentral_distances(small_geometry, small_network, sample_rupture):
    r = hypocentral_distances_km(sample_rupture, small_geometry, small_network)
    assert r.shape == (len(small_network),)
    hypo = sample_rupture.subfault_indices[sample_rupture.hypocenter_index]
    assert np.all(r >= small_geometry.depth_km[hypo] - 1e-9)


def test_time_to_within():
    est = PgdMagnitudeEstimator(**COEFS)
    evolving = np.array([np.nan, 5.0, 7.9, 8.1, 8.05, 8.02])
    t = est.time_to_within(evolving, true_mw=8.0, tolerance=0.3, dt_s=2.0)
    assert t == 4.0  # index 2, dt 2 s


def test_time_to_within_requires_staying():
    est = PgdMagnitudeEstimator(**COEFS)
    # Dips into the band then leaves: convergence only at the final entry.
    evolving = np.array([8.0, 9.5, 8.1, 8.1])
    t = est.time_to_within(evolving, 8.0, 0.3, dt_s=1.0)
    assert t == 2.0


def test_time_to_within_never():
    est = PgdMagnitudeEstimator(**COEFS)
    assert est.time_to_within(np.array([5.0, 5.0]), 8.0, 0.3, 1.0) == np.inf


def test_time_to_within_validation():
    est = PgdMagnitudeEstimator(**COEFS)
    with pytest.raises(WaveformError):
        est.time_to_within(np.array([8.0]), 8.0, 0.0, 1.0)


def test_evolving_estimate_converges_to_truth(small_geometry, small_network,
                                              small_gf_bank, rupture_generator):
    """End-to-end: fit on a small catalog, then the evolving estimate of
    a fresh event must converge near its true magnitude."""
    from repro.eew.magnitude import PgdMagnitudeEstimator
    from repro.seismo.validation import pgd_regression
    from repro.seismo.waveforms import WaveformSynthesizer

    rng = np.random.default_rng(3)
    synth = WaveformSynthesizer(small_gf_bank)
    train_r = [rupture_generator.generate(rng, f"tr.{i}") for i in range(6)]
    train_w = [synth.synthesize(r) for r in train_r]
    fit = pgd_regression(train_w, train_r, small_geometry, small_network,
                         min_pgd_m=1e-4)
    est = PgdMagnitudeEstimator.from_fit(fit, min_pgd_m=1e-3)

    test_rupture = rupture_generator.generate(rng, "test", target_mw=8.6)
    ws = synth.synthesize(test_rupture)
    evolving = est.evolving_estimate(ws, test_rupture, small_geometry, small_network)
    final = evolving[np.isfinite(evolving)][-1]
    assert final == pytest.approx(8.6, abs=0.5)
    # Estimates grow toward the truth as PGD accumulates (no wild
    # overshoot at the end of the record).
    assert est.time_to_within(evolving, 8.6, 0.6, ws.dt_s) < np.inf
