"""Tests for repro.integrity (digests, verified reads, quarantine)."""

import pytest

from repro.errors import IntegrityError
from repro.integrity import (
    DIGEST_SUFFIX,
    QUARANTINE_DIRNAME,
    digest_path,
    quarantine_artifact,
    read_digest,
    read_verified,
    sha256_bytes,
    verify_artifact,
    write_digest,
)


def artifact(tmp_path, data=b"payload bytes", name="bank.npz"):
    path = tmp_path / name
    path.write_bytes(data)
    return path


# -- digests ------------------------------------------------------------------


def test_write_and_read_digest_roundtrip(tmp_path):
    path = artifact(tmp_path)
    side = write_digest(path)
    assert side == digest_path(path)
    assert side.name == "bank.npz" + DIGEST_SUFFIX
    assert read_digest(path) == sha256_bytes(b"payload bytes")
    # sha256sum format: "<hex>  <name>".
    hexdigest, name = side.read_text().split()
    assert (hexdigest, name) == (read_digest(path), "bank.npz")


def test_write_digest_accepts_precomputed(tmp_path):
    path = artifact(tmp_path)
    write_digest(path, digest=sha256_bytes(b"payload bytes"))
    assert read_verified(path) == b"payload bytes"


def test_read_digest_without_sidecar(tmp_path):
    assert read_digest(artifact(tmp_path)) is None


def test_malformed_sidecar_is_corruption(tmp_path):
    path = artifact(tmp_path)
    for junk in ("", "nothex" * 12, "deadbeef  bank.npz"):
        digest_path(path).write_text(junk)
        with pytest.raises(IntegrityError, match="malformed"):
            read_digest(path)
        with pytest.raises(IntegrityError):
            read_verified(path)


# -- verified reads -----------------------------------------------------------


def test_read_verified_happy_path(tmp_path):
    path = artifact(tmp_path)
    write_digest(path)
    assert read_verified(path) == b"payload bytes"


def test_read_verified_trust_on_first_use(tmp_path):
    # No sidecar: legacy entry, returned unverified.
    assert read_verified(artifact(tmp_path)) == b"payload bytes"


def test_read_verified_detects_bitflip_and_truncation(tmp_path):
    path = artifact(tmp_path)
    write_digest(path)
    path.write_bytes(b"payload byteX")
    with pytest.raises(IntegrityError, match="digest mismatch"):
        read_verified(path)
    path.write_bytes(b"payload")
    with pytest.raises(IntegrityError, match="digest mismatch"):
        read_verified(path)


def test_read_verified_missing_artifact(tmp_path):
    with pytest.raises(IntegrityError, match="unreadable"):
        read_verified(tmp_path / "gone.npz")


def test_verify_false_skips_hash_only(tmp_path):
    path = artifact(tmp_path)
    write_digest(path)
    path.write_bytes(b"tampered bytes")
    # verify=False reads through the same path but skips the comparison —
    # the bench-resilience baseline arm.
    assert read_verified(path, verify=False) == b"tampered bytes"
    with pytest.raises(IntegrityError):
        read_verified(path)


def test_verify_artifact(tmp_path):
    path = artifact(tmp_path)
    assert verify_artifact(path) is False  # no sidecar
    write_digest(path)
    assert verify_artifact(path) is True
    path.write_bytes(b"x")
    with pytest.raises(IntegrityError):
        verify_artifact(path)


# -- quarantine ---------------------------------------------------------------


def test_quarantine_moves_artifact_and_sidecar(tmp_path):
    path = artifact(tmp_path)
    write_digest(path)
    target = quarantine_artifact(path, reason="digest mismatch")
    assert not path.exists() and not digest_path(path).exists()
    assert target.parent == tmp_path / QUARANTINE_DIRNAME
    assert target.read_bytes() == b"payload bytes"  # preserved, not deleted
    assert target.with_name(target.name + DIGEST_SUFFIX).exists()
    reason = target.with_name(target.name + ".reason")
    assert reason.read_text() == "digest mismatch\n"


def test_quarantine_uniquifies_repeat_names(tmp_path):
    first = quarantine_artifact(artifact(tmp_path, b"one"))
    second = quarantine_artifact(artifact(tmp_path, b"two"))
    assert first.name == "bank.npz"
    assert second.name == "bank.npz.1"
    assert first.read_bytes() == b"one" and second.read_bytes() == b"two"


def test_quarantine_explicit_dir_and_no_reason(tmp_path):
    qdir = tmp_path / "elsewhere"
    target = quarantine_artifact(artifact(tmp_path), quarantine_dir=qdir)
    assert target.parent == qdir
    assert not target.with_name(target.name + ".reason").exists()


def test_verification_memo_hashes_once_per_file_version(tmp_path, monkeypatch):
    """Warm re-reads of an unmodified artifact skip the sha256 pass;
    any rewrite invalidates the stat fingerprint and re-verifies."""
    import repro.integrity as integrity

    hashed = []
    real = integrity.sha256_bytes
    monkeypatch.setattr(
        integrity, "sha256_bytes", lambda b: (hashed.append(None), real(b))[1]
    )
    path = artifact(tmp_path)
    write_digest(path)
    assert read_verified(path) == b"payload bytes"
    n_cold = len(hashed)
    assert read_verified(path) == b"payload bytes"
    assert read_verified(path) == b"payload bytes"
    assert len(hashed) == n_cold  # memoized: no re-hash
    path.write_bytes(b"tampered but same-ish")
    with pytest.raises(IntegrityError):
        read_verified(path)
    assert len(hashed) > n_cold  # the rewrite forced a fresh hash
