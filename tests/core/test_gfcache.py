"""Tests for repro.core.gfcache."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.gfcache import (
    CACHE_DIR_ENV,
    GFCache,
    attach_shared_bank,
    detach_shared_banks,
    gf_bank_key,
    publish_shared_bank,
)
from repro.errors import CacheError
from repro.seismo.geometry import build_chile_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.stations import chilean_network


# -- content-addressed keys ---------------------------------------------------


def test_key_deterministic(small_geometry, small_network):
    assert gf_bank_key(small_geometry, small_network) == gf_bank_key(
        small_geometry, small_network
    )


def test_key_invalidates_on_geometry_change(small_geometry, small_network):
    other = build_chile_slab(n_strike=11, n_dip=6)
    assert gf_bank_key(small_geometry, small_network) != gf_bank_key(
        other, small_network
    )


def test_key_invalidates_on_station_change(small_geometry, small_network):
    other = chilean_network(9)
    assert gf_bank_key(small_geometry, small_network) != gf_bank_key(
        small_geometry, other
    )


def test_key_invalidates_on_model_params(small_geometry, small_network):
    base = gf_bank_key(small_geometry, small_network)
    assert base != gf_bank_key(small_geometry, small_network, gf_method="okada")
    assert base != gf_bank_key(small_geometry, small_network, rake_deg=45.0)
    assert base != gf_bank_key(
        small_geometry, small_network, shear_velocity_kms=4.0
    )
    assert base != gf_bank_key(small_geometry, small_network, min_distance_km=2.0)


# -- two-level cache ----------------------------------------------------------


def test_warm_memory_hit_bit_identical(small_geometry, small_network):
    cache = GFCache(cache_dir=None)
    cold = cache.get_or_compute(small_geometry, small_network)
    warm = cache.get_or_compute(small_geometry, small_network)
    reference = compute_gf_bank(small_geometry, small_network)
    assert np.array_equal(warm.statics, reference.statics)
    assert np.array_equal(warm.travel_time_s, reference.travel_time_s)
    assert warm is cold  # memory level returns the resident object
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_warm_disk_hit_bit_identical(tmp_path, small_geometry, small_network):
    cache = GFCache(cache_dir=tmp_path)
    cold = cache.get_or_compute(small_geometry, small_network)
    cache.clear()  # drop memory, keep disk
    warm = cache.get_or_compute(small_geometry, small_network)
    assert warm is not cold
    assert np.array_equal(warm.statics, cold.statics)
    assert np.array_equal(warm.travel_time_s, cold.travel_time_s)
    assert warm.station_names == cold.station_names
    assert cache.stats.disk_hits == 1
    assert len(cache.disk_keys()) == 1


def test_invalidation_recomputes(small_geometry, small_network):
    calls = []
    cache = GFCache()

    def computing(geometry):
        def compute():
            calls.append(geometry.name)
            return compute_gf_bank(geometry, small_network)

        return compute

    cache.get_or_compute(
        small_geometry, small_network, compute=computing(small_geometry)
    )
    cache.get_or_compute(
        small_geometry, small_network, compute=computing(small_geometry)
    )
    assert len(calls) == 1  # warm hit, no recompute
    other = build_chile_slab(n_strike=12, n_dip=6)
    cache.get_or_compute(other, small_network, compute=computing(other))
    assert len(calls) == 2  # different geometry -> different key -> recompute


def test_lru_eviction_survives_on_disk(tmp_path, small_geometry, small_network):
    cache = GFCache(cache_dir=tmp_path, max_memory_entries=1)
    cache.get_or_compute(small_geometry, small_network)
    other = build_chile_slab(n_strike=12, n_dip=6)
    cache.get_or_compute(other, small_network)
    assert cache.stats.evictions == 1
    assert len(cache.memory_keys()) == 1
    assert len(cache.disk_keys()) == 2
    # The evicted bank comes back from disk, not a recompute.
    cache.get_or_compute(small_geometry, small_network)
    assert cache.stats.disk_hits == 1


def test_cache_dir_from_environment(tmp_path, monkeypatch, small_geometry, small_network):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envstore"))
    cache = GFCache()
    cache.get_or_compute(small_geometry, small_network)
    assert len(list((tmp_path / "envstore").glob("gf_*.npz"))) == 1


def test_clear_disk(tmp_path, small_geometry, small_network):
    cache = GFCache(cache_dir=tmp_path)
    cache.get_or_compute(small_geometry, small_network)
    cache.clear(disk=True)
    assert cache.memory_keys() == []
    assert cache.disk_keys() == []


def test_validation_errors():
    with pytest.raises(CacheError):
        GFCache(max_memory_entries=0)
    with pytest.raises(CacheError):
        GFCache().put("", None)


# -- shared-memory publishing -------------------------------------------------


def _reader_checksum(handle):
    """Worker: attach the shared bank and checksum its arrays."""
    bank = attach_shared_bank(handle)
    return (
        float(np.sum(bank.statics)),
        float(np.sum(bank.travel_time_s)),
        bank.statics.flags.writeable,
    )


def test_publish_attach_roundtrip(small_gf_bank, small_geometry, small_network):
    key = gf_bank_key(small_geometry, small_network)
    handle, segments = publish_shared_bank(small_gf_bank, key)
    try:
        attached = attach_shared_bank(handle)
        assert np.array_equal(attached.statics, small_gf_bank.statics)
        assert np.array_equal(attached.travel_time_s, small_gf_bank.travel_time_s)
        assert attached.station_names == small_gf_bank.station_names
        assert not attached.statics.flags.writeable
        assert not attached.travel_time_s.flags.writeable
        # Idempotent per key: second attach returns the cached mapping.
        assert attach_shared_bank(handle) is attached
    finally:
        detach_shared_banks()
        for shm in segments:
            shm.close()
            shm.unlink()


def test_concurrent_readers_see_identical_bytes(small_gf_bank):
    """Many processes reading the same segments observe the same data —
    read-only views cannot corrupt the shared bank."""
    handle, segments = publish_shared_bank(small_gf_bank, "concurrent-test")
    expected = (
        float(np.sum(small_gf_bank.statics)),
        float(np.sum(small_gf_bank.travel_time_s)),
    )
    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=4, mp_context=ctx) as pool:
            results = list(pool.map(_reader_checksum, [handle] * 12))
        for statics_sum, travel_sum, writeable in results:
            assert (statics_sum, travel_sum) == expected
            assert not writeable
        # The parent's copy is untouched after all that reading.
        assert float(np.sum(small_gf_bank.statics)) == expected[0]
    finally:
        detach_shared_banks()
        for shm in segments:
            shm.close()
            shm.unlink()


def test_attach_after_unlink_raises(small_gf_bank):
    handle, segments = publish_shared_bank(small_gf_bank, "gone-test")
    for shm in segments:
        shm.close()
        shm.unlink()
    with pytest.raises(CacheError):
        attach_shared_bank(handle)


# -- dtype keying (no silent cross-dtype hits) --------------------------------


def test_key_invalidates_on_dtype(small_geometry, small_network):
    base = gf_bank_key(small_geometry, small_network)
    assert gf_bank_key(small_geometry, small_network, dtype="float64") == base
    assert gf_bank_key(small_geometry, small_network, dtype="float32") != base


def test_get_or_compute_keeps_dtypes_separate(small_geometry, small_network):
    cache = GFCache()
    full = cache.get_or_compute(small_geometry, small_network)
    half = cache.get_or_compute(small_geometry, small_network, dtype="float32")
    assert full.dtype == np.float64
    assert half.dtype == np.float32
    assert cache.stats.misses == 2  # float32 never hits the float64 entry
    # Both entries are warm now.
    again = cache.get_or_compute(small_geometry, small_network, dtype="float32")
    assert again is half
    assert cache.stats.memory_hits == 1


def test_get_or_compute_okada_dtype(small_geometry, small_network):
    cache = GFCache()
    bank = cache.get_or_compute(
        small_geometry, small_network, gf_method="okada", dtype="float32"
    )
    assert bank.dtype == np.float32


def test_publish_attach_float32_roundtrip(small_gf_bank):
    half = small_gf_bank.astype("float32")
    handle, segments = publish_shared_bank(half, "f32key")
    try:
        attached = attach_shared_bank(handle)
        assert attached.dtype == np.float32
        assert np.array_equal(attached.statics, half.statics)
    finally:
        detach_shared_banks()
        for shm in segments:
            shm.close()
            shm.unlink()


# -- integrity: corrupt disk entries degrade to a recompute -------------------


def test_truncated_disk_entry_is_quarantined_miss(tmp_path, small_geometry,
                                                  small_network):
    """Regression: a truncated ``.npz`` used to leak zipfile.BadZipFile
    out of get(); now it is an IntegrityError handled as a cache miss."""
    cache = GFCache(cache_dir=tmp_path)
    cold = cache.get_or_compute(small_geometry, small_network)
    path = next(tmp_path.glob("gf_*.npz"))
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    cache.clear()  # force the disk path
    recomputed = cache.get_or_compute(small_geometry, small_network)
    assert np.array_equal(recomputed.statics, cold.statics)
    assert cache.stats.integrity_failures == 1
    assert cache.stats.misses == 2  # the corrupt lookup counted as a miss
    assert len(cache.quarantined) == 1
    quarantined = cache.quarantined[0]
    assert quarantined.parent == tmp_path / "quarantine"
    assert quarantined.with_name(quarantined.name + ".reason").exists()
    # The store healed itself: the recompute rewrote the disk entry.
    cache.clear()
    again = cache.get_or_compute(small_geometry, small_network)
    assert np.array_equal(again.statics, cold.statics)
    assert cache.stats.disk_hits == 1


def test_bitflipped_disk_entry_fails_digest(tmp_path, small_geometry,
                                            small_network):
    cache = GFCache(cache_dir=tmp_path)
    cache.get_or_compute(small_geometry, small_network)
    path = next(tmp_path.glob("gf_*.npz"))
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))
    cache.clear()
    cache.get_or_compute(small_geometry, small_network)
    assert cache.stats.integrity_failures == 1
    assert len(cache.quarantined) == 1


def test_clear_disk_leaves_quarantine_untouched(tmp_path, small_geometry,
                                                small_network):
    cache = GFCache(cache_dir=tmp_path)
    cache.get_or_compute(small_geometry, small_network)
    path = next(tmp_path.glob("gf_*.npz"))
    path.write_bytes(b"not a zip")
    cache.clear()
    assert cache.get(
        # the key of the only disk entry
        cache.disk_keys()[0] if cache.disk_keys() else "gone"
    ) is None
    assert len(cache.quarantined) == 1
    cache.clear(disk=True)
    assert cache.quarantined[0].exists()  # evidence outlives cache resets
