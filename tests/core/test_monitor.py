"""Tests for repro.core.monitor — log-derived statistics."""

import numpy as np
import pytest

from repro.condor.events import JobEventType, UserLog
from repro.core.monitor import DagmanStats
from repro.errors import LogParseError


def build_log():
    log = UserLog()
    # Job 1: normal life cycle.
    log.record(JobEventType.SUBMIT, 1, 0.0)
    log.record(JobEventType.EXECUTE, 1, 100.0, host="slot-1")
    log.record(JobEventType.TERMINATED, 1, 400.0, return_value=0)
    # Job 2: evicted once, then completes.
    log.record(JobEventType.SUBMIT, 2, 10.0)
    log.record(JobEventType.EXECUTE, 2, 60.0, host="slot-2")
    log.record(JobEventType.EVICTED, 2, 90.0)
    log.record(JobEventType.EXECUTE, 2, 200.0, host="slot-3")
    log.record(JobEventType.TERMINATED, 2, 500.0, return_value=0)
    # Job 3: fails.
    log.record(JobEventType.SUBMIT, 3, 20.0)
    log.record(JobEventType.EXECUTE, 3, 120.0, host="slot-4")
    log.record(JobEventType.TERMINATED, 3, 220.0, return_value=1)
    # Job 4: still idle (no execute).
    log.record(JobEventType.SUBMIT, 4, 30.0)
    return log


@pytest.fixture()
def parsed():
    return DagmanStats.from_log_text(build_log().render())


def test_job_counts(parsed):
    assert parsed.n_jobs == 4
    assert parsed.n_completed == 2
    assert parsed.n_failed == 1


def test_eviction_counted_and_last_execute_used(parsed):
    job2 = parsed.jobs[2]
    assert job2.n_evictions == 1
    assert job2.start_time == 200.0
    assert job2.exec_s == 300.0
    assert job2.wait_s == 190.0  # last execute - submit


def test_runtime_first_submit_to_last_termination(parsed):
    assert parsed.runtime_s() == 500.0


def test_total_throughput(parsed):
    # 2 completed over 500 s.
    assert parsed.total_throughput_jpm() == pytest.approx(2.0 / (500.0 / 60.0))


def test_wait_and_exec_arrays(parsed):
    waits = parsed.wait_times_s()
    assert list(waits) == sorted(waits)
    assert len(waits) == 3  # job 4 never started
    execs = parsed.exec_times_s()
    assert len(execs) == 3
    assert np.all(execs > 0)


def test_idle_job_timing(parsed):
    job4 = parsed.jobs[4]
    assert job4.start_time is None
    assert job4.wait_s is None
    assert not job4.completed and not job4.failed


def test_report_contains_headlines(parsed):
    report = parsed.report("demo")
    assert "demo" in report
    assert "4 submitted" in report
    assert "2 completed" in report
    assert "1 failed" in report
    assert "jobs/min" in report


def test_unknown_return_value_counts_as_failed():
    """Regression: TERMINATED with a missing/unparseable detail line
    (return_value None) was neither completed nor failed, silently
    deflating both counters."""
    text = (
        "000 (0005.000.000) 2023-01-01+0 00:00:00 Job submitted from host: <s>\n"
        "...\n"
        "001 (0005.000.000) 2023-01-01+0 00:01:00 Job executing on host: <w>\n"
        "...\n"
        "005 (0005.000.000) 2023-01-01+0 00:02:00 Job terminated.\n"
        "...\n"
    )
    stats = DagmanStats.from_log_text(text)
    job = stats.jobs[5]
    assert job.return_value is None
    assert job.failed
    assert not job.completed
    assert stats.n_failed == 1
    assert stats.n_completed == 0


def test_held_events_counted():
    log = UserLog()
    log.record(JobEventType.SUBMIT, 1, 0.0)
    log.record(JobEventType.EXECUTE, 1, 10.0, host="slot-1")
    log.record(JobEventType.HELD, 1, 20.0)
    log.record(JobEventType.RELEASED, 1, 80.0)
    log.record(JobEventType.EXECUTE, 1, 90.0, host="slot-2")
    log.record(JobEventType.TERMINATED, 1, 200.0, return_value=0)
    stats = DagmanStats.from_log_text(log.render())
    assert stats.jobs[1].n_holds == 1
    assert stats.jobs[1].completed


def test_duplicate_submit_rejected():
    log = UserLog()
    log.record(JobEventType.SUBMIT, 1, 0.0)
    log.record(JobEventType.SUBMIT, 1, 5.0)
    with pytest.raises(LogParseError):
        DagmanStats.from_log_text(log.render())


def test_empty_log_runtime_rejected():
    stats = DagmanStats.from_log_text("")
    with pytest.raises(LogParseError):
        stats.runtime_s()


def test_from_log_file(tmp_path, parsed):
    path = build_log().write(tmp_path / "dag.log")
    stats = DagmanStats.from_log_file(path)
    assert stats.n_jobs == parsed.n_jobs


def test_missing_log_file(tmp_path):
    with pytest.raises(LogParseError):
        DagmanStats.from_log_file(tmp_path / "nope.log")


def test_log_derived_stats_match_simulator(tiny_batch_result, tiny_fdw_config):
    """The monitoring path (text only) agrees with the recorder."""
    name = tiny_fdw_config.name
    stats = DagmanStats.from_log_text(tiny_batch_result.user_logs[name])
    summary = tiny_batch_result.metrics.dagmans[name]
    assert stats.n_completed == sum(
        1 for r in tiny_batch_result.metrics.for_dagman(name) if r.success
    )
    assert stats.runtime_s() == pytest.approx(summary.runtime_s, abs=2.0)
    assert stats.total_throughput_jpm() == pytest.approx(
        summary.throughput_jpm, rel=0.02
    )
