"""Tests for repro.core.phases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FdwConfig
from repro.core.phases import chunk_bounds, gf_archive_mb, plan_phases
from repro.errors import ConfigError


def test_chunk_bounds_exact_division():
    assert chunk_bounds(8, 4) == [(0, 4), (4, 4)]


def test_chunk_bounds_remainder():
    assert chunk_bounds(10, 4) == [(0, 4), (4, 4), (8, 2)]


def test_chunk_bounds_single():
    assert chunk_bounds(3, 10) == [(0, 3)]


def test_chunk_bounds_validation():
    with pytest.raises(ConfigError):
        chunk_bounds(0, 4)
    with pytest.raises(ConfigError):
        chunk_bounds(4, 0)


@given(st.integers(min_value=1, max_value=10**5), st.integers(min_value=1, max_value=500))
@settings(max_examples=60, deadline=None)
def test_chunk_bounds_cover_exactly(total, chunk):
    bounds = chunk_bounds(total, chunk)
    assert sum(c for _, c in bounds) == total
    assert bounds[0][0] == 0
    for (s1, c1), (s2, _) in zip(bounds, bounds[1:]):
        assert s1 + c1 == s2
    assert all(1 <= c <= chunk for _, c in bounds)


def test_paper_job_count_16000():
    # 16,000 waveforms with default chunking: 1000 A + 1 B + 8000 C =
    # 9001 jobs (matches the ~9000 implied by the paper's Fig 3 numbers).
    plan = plan_phases(FdwConfig(n_waveforms=16000))
    assert len(plan.a_jobs) == 1000
    assert len(plan.c_jobs) == 8000
    assert plan.n_jobs == 9001
    assert plan.dist_job is None  # recycled by default


def test_bootstrap_job_when_not_recycled():
    plan = plan_phases(FdwConfig(n_waveforms=64, recycle_distances=False))
    assert plan.dist_job is not None
    assert plan.dist_job.payload.phase == "dist"
    assert plan.n_jobs == len(plan.a_jobs) + len(plan.c_jobs) + 2


def test_payloads_carry_station_count():
    plan = plan_phases(FdwConfig(n_waveforms=32, n_stations=2))
    assert all(j.payload.n_stations == 2 for j in plan.a_jobs)
    assert plan.b_job.payload.n_stations == 2
    assert all(j.payload.n_stations == 2 for j in plan.c_jobs)


def test_last_chunks_may_be_short():
    plan = plan_phases(FdwConfig(n_waveforms=18, chunk_a=16, chunk_c=4))
    assert [j.payload.n_items for j in plan.a_jobs] == [16, 2]
    assert [j.payload.n_items for j in plan.c_jobs] == [4, 4, 4, 4, 2]


def test_gf_archive_size_full_input_near_paper():
    # 121 stations x 450 subfaults: should land in the >0.5 GB class the
    # paper stages via Stash Cache.
    mb = gf_archive_mb(FdwConfig(n_waveforms=1024, n_stations=121))
    assert 500.0 < mb < 2000.0


def test_gf_archive_scales_with_stations():
    full = gf_archive_mb(FdwConfig(n_stations=121))
    small = gf_archive_mb(FdwConfig(n_stations=2))
    assert full / small == pytest.approx(121 / 2)


def test_c_jobs_stage_the_archive():
    config = FdwConfig(n_waveforms=8, name="w")
    plan = plan_phases(config)
    for job in plan.c_jobs:
        assert "w_gf.mseed.npz" in job.input_files
        assert job.input_files["w_gf.mseed.npz"] == pytest.approx(gf_archive_mb(config))


def test_a_jobs_stage_distance_matrices():
    plan = plan_phases(FdwConfig(n_waveforms=8, name="w"))
    for job in plan.a_jobs:
        assert "w_distances_strike.npy" in job.input_files
        assert "w_distances_dip.npy" in job.input_files


def test_all_specs_order():
    plan = plan_phases(FdwConfig(n_waveforms=8, recycle_distances=False, name="w"))
    specs = plan.all_specs()
    assert specs[0].payload.phase == "dist"
    assert specs[1].payload.phase == "A"
    assert specs[-1].payload.phase == "C"
    assert len(specs) == plan.n_jobs


def test_requests_match_paper_resources():
    plan = plan_phases(FdwConfig(n_waveforms=8))
    # "4 CPU cores ... up to 16GB" (paper section 3).
    assert all(j.request_cpus == 4 for j in plan.all_specs())
    assert plan.b_job.request_memory_mb == 16384


def test_gf_product_id_names_the_c_job_input():
    from repro.core.phases import gf_product_id

    config = FdwConfig(n_waveforms=8, n_stations=4, mesh=(8, 5), name="w")
    assert gf_product_id(config) == "w_gf.mseed.npz"
    plan = plan_phases(config)
    for job in plan.c_jobs:
        assert gf_product_id(config) in job.input_files
