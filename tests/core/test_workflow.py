"""Tests for repro.core.workflow."""

import pytest

from repro.condor.dagfile import DagDescription
from repro.core.config import FdwConfig
from repro.core.phases import plan_phases
from repro.core.workflow import build_fdw_dag


@pytest.fixture(scope="module")
def dag():
    return build_fdw_dag(FdwConfig(n_waveforms=32, name="w"))


def test_structure_counts(dag):
    # 2 A jobs (chunk 16) + 1 B + 16 C jobs (chunk 2).
    assert len(dag) == 19


def test_a_jobs_are_roots_when_recycled(dag):
    roots = dag.roots()
    assert sorted(roots) == ["w_A_00000", "w_A_00001"]


def test_b_depends_on_all_a(dag):
    assert dag.parents("w_B") == ["w_A_00000", "w_A_00001"]


def test_c_depends_on_b(dag):
    for name in dag.node_names:
        if "_C_" in name:
            assert dag.parents(name) == ["w_B"]


def test_bootstrap_is_root_when_not_recycled():
    dag = build_fdw_dag(FdwConfig(n_waveforms=32, recycle_distances=False, name="w"))
    assert dag.roots() == ["w_dist"]
    assert dag.children("w_dist") == ["w_A_00000", "w_A_00001"]


def test_retries_propagated():
    dag = build_fdw_dag(FdwConfig(n_waveforms=32, retries=5, name="w"))
    assert dag.node("w_B").retries == 5
    assert dag.node("w_A_00000").retries == 5


def test_topological_order_is_phased(dag):
    order = dag.topological_order()
    b_pos = order.index("w_B")
    for name in order[:b_pos]:
        assert "_A_" in name
    for name in order[b_pos + 1 :]:
        assert "_C_" in name


def test_accepts_precomputed_plan():
    config = FdwConfig(n_waveforms=32, name="w")
    plan = plan_phases(config)
    dag = build_fdw_dag(config, plan=plan)
    assert len(dag) == plan.n_jobs


def test_dag_writes_and_reads_back(tmp_path):
    config = FdwConfig(n_waveforms=8, name="rt")
    dag = build_fdw_dag(config)
    dag_path = dag.write(tmp_path)
    back = DagDescription.read(dag_path)
    assert sorted(back.node_names) == sorted(dag.node_names)
    assert back.parents("rt_B") == dag.parents("rt_B")
    assert back.node("rt_C_00000").spec.payload.phase == "C"
