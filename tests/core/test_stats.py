"""Tests for repro.core.stats — the paper's equations (1)-(7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import stats
from repro.errors import SimulationError


def test_eq1_average_total_runtime():
    # (r1 + r2 + r3) / 3
    assert stats.average_total_runtime([3600.0, 7200.0, 10800.0]) == 7200.0


def test_eq2_average_total_throughput():
    # ((j1/r1) + (j2/r2) + (j3/r3)) / 3, in jobs/minute.
    beta = stats.average_total_throughput([60, 120], [3600.0, 3600.0])
    assert beta == pytest.approx((1.0 + 2.0) / 2.0)


def test_eq5_instant_throughput():
    # omega = j / m with m in minutes.
    assert stats.instant_throughput(30, 120.0) == pytest.approx(15.0)


def test_eq6_average_instant_throughput():
    series = np.array([0.0, 10.0, 20.0])
    assert stats.average_instant_throughput(series) == pytest.approx(10.0)


def test_eq7_cost():
    # delta = C_m * c with the paper's EC2 price.
    assert stats.bursting_cost_usd(1000.0) == pytest.approx(1.7)
    assert stats.bursting_cost_usd(100.0, usd_per_minute=0.01) == pytest.approx(1.0)


def test_ec2_price_constant():
    assert stats.EC2_A1_XLARGE_USD_PER_MINUTE == 0.0017


def test_validation():
    with pytest.raises(SimulationError):
        stats.average_total_runtime([])
    with pytest.raises(SimulationError):
        stats.average_total_runtime([-1.0])
    with pytest.raises(SimulationError):
        stats.average_total_throughput([1, 2], [100.0])
    with pytest.raises(SimulationError):
        stats.instant_throughput(-1, 60.0)
    with pytest.raises(SimulationError):
        stats.average_instant_throughput(np.array([]))
    with pytest.raises(SimulationError):
        stats.average_instant_throughput(np.array([-1.0]))
    with pytest.raises(SimulationError):
        stats.bursting_cost_usd(-1.0)


def test_summarize():
    s = stats.summarize([1.0, 2.0, 3.0, 4.0])
    assert s.mean == 2.5
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.n == 4
    assert s.sd == pytest.approx(np.std([1, 2, 3, 4]))
    assert "mean=2.50" in str(s)


def test_summarize_empty():
    with pytest.raises(SimulationError):
        stats.summarize([])


@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_eq1_bounded_by_extremes(runtimes):
    alpha = stats.average_total_runtime(runtimes)
    # 1-ulp slack: np.mean of identical values can round past the bound.
    slack = 1e-9 * max(runtimes)
    assert min(runtimes) - slack <= alpha <= max(runtimes) + slack


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**5),
            st.floats(min_value=60.0, max_value=1e6),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_eq2_bounded_by_extreme_ratios(pairs):
    jobs = [j for j, _ in pairs]
    runtimes = [r for _, r in pairs]
    beta = stats.average_total_throughput(jobs, runtimes)
    ratios = [60.0 * j / r for j, r in pairs]
    assert min(ratios) - 1e-9 <= beta <= max(ratios) + 1e-9
