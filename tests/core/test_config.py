"""Tests for repro.core.config."""

import pytest

from repro.core.config import FdwConfig
from repro.errors import ConfigError


def test_defaults_valid():
    config = FdwConfig()
    assert config.n_waveforms == 1024
    assert config.n_stations == 121
    assert config.n_subfaults == 450


def test_validation():
    with pytest.raises(ConfigError):
        FdwConfig(n_waveforms=0)
    with pytest.raises(ConfigError):
        FdwConfig(n_stations=0)
    with pytest.raises(ConfigError):
        FdwConfig(chunk_a=0)
    with pytest.raises(ConfigError):
        FdwConfig(chunk_c=0)
    with pytest.raises(ConfigError):
        FdwConfig(mesh=(1, 5))
    with pytest.raises(ConfigError):
        FdwConfig(mw_range=(9.0, 8.0))
    with pytest.raises(ConfigError):
        FdwConfig(retries=-1)
    with pytest.raises(ConfigError):
        FdwConfig(max_idle=-1)
    with pytest.raises(ConfigError):
        FdwConfig(name="")


def test_with_waveforms():
    base = FdwConfig(n_waveforms=100, name="x")
    derived = base.with_waveforms(200)
    assert derived.n_waveforms == 200
    assert derived.name == "x"
    named = base.with_waveforms(300, name="y")
    assert named.name == "y"
    assert base.n_waveforms == 100  # immutable original


def test_file_roundtrip(tmp_path):
    config = FdwConfig(
        n_waveforms=2048,
        n_stations=2,
        chunk_a=8,
        chunk_c=4,
        recycle_distances=False,
        mesh=(20, 10),
        mw_range=(7.8, 9.0),
        retries=2,
        max_idle=300,
        seed=99,
        name="roundtrip",
    )
    path = config.write(tmp_path / "fdw.cfg")
    assert FdwConfig.read(path) == config


def test_read_partial_file_uses_defaults(tmp_path):
    path = tmp_path / "fdw.cfg"
    path.write_text("[fdw]\nn_waveforms = 512\n")
    config = FdwConfig.read(path)
    assert config.n_waveforms == 512
    assert config.n_stations == 121


def test_read_missing_file(tmp_path):
    with pytest.raises(ConfigError):
        FdwConfig.read(tmp_path / "nope.cfg")


def test_read_missing_section(tmp_path):
    path = tmp_path / "bad.cfg"
    path.write_text("[other]\nx = 1\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(path)


def test_read_unknown_key(tmp_path):
    path = tmp_path / "bad.cfg"
    path.write_text("[fdw]\nturbo = yes\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(path)


def test_read_bad_value(tmp_path):
    path = tmp_path / "bad.cfg"
    path.write_text("[fdw]\nn_waveforms = many\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(path)


def test_read_bad_mesh(tmp_path):
    path = tmp_path / "bad.cfg"
    path.write_text("[fdw]\nmesh = 30by15\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(path)


def test_read_validates_result(tmp_path):
    path = tmp_path / "bad.cfg"
    path.write_text("[fdw]\nn_waveforms = -5\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(path)


def test_gf_dtype_roundtrip_and_validation(tmp_path):
    config = FdwConfig(gf_dtype="float32", name="f32run")
    path = config.write(tmp_path / "f32.cfg")
    assert "gf_dtype = float32" in path.read_text()
    assert FdwConfig.read(path) == config
    with pytest.raises(ConfigError):
        FdwConfig(gf_dtype="float16")
    bad = tmp_path / "bad.cfg"
    bad.write_text("[fdw]\ngf_dtype = double\n")
    with pytest.raises(ConfigError):
        FdwConfig.read(bad)
