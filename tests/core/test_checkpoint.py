"""Crash-consistent checkpoint/resume for LocalRunner."""

import json

import pytest

from repro.core.checkpoint import RunCheckpoint, atomic_write_bytes, config_digest
from repro.core.config import FdwConfig
from repro.core.local import LocalRunner
from repro.errors import CheckpointError, ConfigError
from repro.faults import ChunkCrash, FaultInjected, FaultPlan
from repro.integrity import write_digest


@pytest.fixture(scope="module")
def ckpt_config():
    # 3 A chunks and 3 C chunks: every crash point leaves both completed
    # chunks to skip and pending chunks to run.
    return FdwConfig(
        n_waveforms=6, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="ckpt"
    )


def archive_bytes(root):
    """Every file in an archive tree, keyed by relative path."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


# -- RunCheckpoint unit behaviour ---------------------------------------------


def test_atomic_write_leaves_no_temp(tmp_path):
    target = tmp_path / "m.json"
    atomic_write_bytes(target, b"one")
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    assert list(tmp_path.iterdir()) == [target]


def test_fresh_checkpoint_discards_stale_state(tmp_path, ckpt_config):
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    ck.store_a_chunk(0, [])
    assert ck.n_done("A") == 1
    # resume=False wipes the old directory.
    ck2 = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    assert ck2.n_done("A") == 0
    assert not ck2._chunk_path("A", 0).exists()


def test_resume_validates_digest_and_plan(tmp_path, ckpt_config):
    RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    other = FdwConfig(
        n_waveforms=6, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="other"
    )
    assert config_digest(other) != config_digest(ckpt_config)
    with pytest.raises(CheckpointError, match="different configuration"):
        RunCheckpoint(tmp_path, other, n_a_chunks=3, n_c_chunks=3, resume=True)
    with pytest.raises(CheckpointError, match="chunk plan"):
        RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=2, n_c_chunks=3, resume=True)


def test_resume_rejects_bad_manifest(tmp_path, ckpt_config):
    # Validation errors need a *validly signed* manifest — a bad digest
    # is corruption (quarantined, covered below), not a user mistake.
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    manifest = json.loads(ck.manifest_path.read_text())
    manifest["version"] = 99
    ck.manifest_path.write_text(json.dumps(manifest))
    write_digest(ck.manifest_path)
    with pytest.raises(CheckpointError, match="version"):
        RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)
    manifest = json.loads(ck.manifest_path.read_text())
    manifest["version"] = RunCheckpoint.VERSION
    manifest["done_a"] = [7]
    ck.manifest_path.write_text(json.dumps(manifest))
    write_digest(ck.manifest_path)
    with pytest.raises(CheckpointError, match="out of range"):
        RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)


def test_resume_quarantines_corrupt_manifest(tmp_path, ckpt_config):
    """A manifest that fails its digest check (tampered bytes) or no
    longer parses degrades the resume to a fresh start — and the
    damaged manifest is preserved in quarantine, not deleted."""
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    ck.store_a_chunk(0, [])
    ck.manifest_path.write_text("{not json")
    write_digest(ck.manifest_path)
    ck2 = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)
    assert ck2.n_done("A") == 0
    assert len(ck2.quarantined) == 1
    assert ck2.quarantined[0].parent == tmp_path / RunCheckpoint.QUARANTINE_DIRNAME
    assert ck2.quarantined[0].read_text() == "{not json"

    # Tampered bytes under the original sidecar: digest mismatch.
    ck2.store_a_chunk(0, [])
    text = ck2.manifest_path.read_text()
    ck2.manifest_path.write_text(text.replace('"done_a"', '"done_x"'))
    ck3 = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)
    assert ck3.n_done("A") == 0 and len(ck3.quarantined) == 1


def test_corrupt_chunk_quarantined_and_redone(tmp_path, ckpt_config):
    """A damaged chunk file is quarantined, un-marked done, and
    reported as None so the runner re-executes just that chunk."""
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    ck.store_a_chunk(0, [])
    ck.store_a_chunk(1, [])
    path = ck._chunk_path("A", 1)
    path.write_bytes(path.read_bytes()[:-1])  # truncation
    assert ck.try_load_a_chunk(0) == []
    assert ck.try_load_a_chunk(1) is None
    assert not ck.is_done("A", 1) and ck.is_done("A", 0)
    assert len(ck.quarantined) == 1 and not path.exists()
    # The discard is durable: a resume sees the chunk as pending too.
    ck2 = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)
    assert ck2.done["A"] == {0}


def test_resume_without_manifest_starts_fresh(tmp_path, ckpt_config):
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3, resume=True)
    assert ck.n_done("A") == 0 and ck.n_done("C") == 0


def test_load_requires_done_and_products(tmp_path, ckpt_config):
    ck = RunCheckpoint(tmp_path, ckpt_config, n_a_chunks=3, n_c_chunks=3)
    with pytest.raises(CheckpointError, match="not checkpointed"):
        ck.load_a_chunk(0)
    ck.store_c_chunk(1, [("r1", 0.5, 7.0, "r1.npz")])
    with pytest.raises(CheckpointError, match="waveform missing"):
        ck.load_c_chunk(1)  # row recorded, product never landed
    (ck.waveforms_dir / "r1.npz").write_bytes(b"x")
    rows = ck.load_c_chunk(1)
    assert rows == [("r1", 0.5, 7.0, str(ck.waveforms_dir / "r1.npz"))]


def test_checkpoint_requires_archive_dir(ckpt_config):
    with pytest.raises(ConfigError, match="archive_dir"):
        LocalRunner().run(ckpt_config, checkpoint=True)


# -- end-to-end crash / resume ------------------------------------------------


def test_uninterrupted_checkpoint_run_matches_plain(tmp_path, ckpt_config):
    plain = LocalRunner().run(ckpt_config, archive_dir=tmp_path / "plain")
    ck = LocalRunner().run(ckpt_config, archive_dir=tmp_path / "ck", checkpoint=True)
    assert archive_bytes(tmp_path / "plain") == archive_bytes(tmp_path / "ck")
    assert ck.pgd_by_rupture == plain.pgd_by_rupture
    assert ck.chunks_executed == {"A": 3, "C": 3}
    assert ck.chunks_skipped == {"A": 0, "C": 0}
    assert not (tmp_path / "ck" / RunCheckpoint.DIRNAME).exists()


def test_crash_resume_yields_identical_archive(tmp_path, ckpt_config):
    """Acceptance: a run killed mid-Phase-A and again mid-Phase-C,
    resumed each time, produces a byte-identical archive to an
    uninterrupted run — with zero completed chunks re-executed."""
    plain = LocalRunner().run(ckpt_config, archive_dir=tmp_path / "plain")
    crash_dir = tmp_path / "crashed"

    with pytest.raises(FaultInjected, match="2 completed A chunk"):
        LocalRunner().run(
            ckpt_config,
            archive_dir=crash_dir,
            checkpoint=True,
            faults=FaultPlan(crashes=(ChunkCrash("A", 2),)),
        )
    # The crash left no product archive, only the checkpoint.
    assert not (crash_dir / "manifest.json").exists()

    with pytest.raises(FaultInjected, match="1 completed C chunk"):
        LocalRunner().run(
            ckpt_config,
            archive_dir=crash_dir,
            resume=True,
            faults=FaultPlan(crashes=(ChunkCrash("C", 1),)),
        )

    result = LocalRunner().run(ckpt_config, archive_dir=crash_dir, resume=True)
    # Manifest accounting: the final leg re-ran nothing already done
    # (2 A chunks before crash 1, the 3rd A chunk + 1 C chunk before
    # crash 2), and the three legs sum to the full chunk plan.
    assert result.chunks_skipped == {"A": 3, "C": 1}
    assert result.chunks_executed == {"A": 0, "C": 2}

    assert archive_bytes(tmp_path / "plain") == archive_bytes(crash_dir)
    assert result.pgd_by_rupture == plain.pgd_by_rupture
    assert result.n_waveform_sets == ckpt_config.n_waveforms
    assert not (crash_dir / RunCheckpoint.DIRNAME).exists()


def test_pooled_crash_resume_matches_sequential(tmp_path, ckpt_config):
    """The pooled paths checkpoint per chunk too: a pooled run crashed in
    both fanned-out phases and resumed pooled matches the sequential
    uninterrupted archive."""
    plain = LocalRunner().run(ckpt_config, archive_dir=tmp_path / "plain")
    crash_dir = tmp_path / "pooled"
    plan = FaultPlan.seeded(11, n_a_chunks=3, n_c_chunks=3)
    assert [c.phase for c in plan.crashes] == ["A", "C"]

    with LocalRunner(n_workers=2) as runner:
        with pytest.raises(FaultInjected):
            runner.run(
                ckpt_config, archive_dir=crash_dir, checkpoint=True, faults=plan
            )
        with pytest.raises(FaultInjected):
            runner.run(ckpt_config, archive_dir=crash_dir, resume=True, faults=plan)
        result = runner.run(ckpt_config, archive_dir=crash_dir, resume=True)

    assert sum(result.chunks_skipped.values()) + sum(
        result.chunks_executed.values()
    ) == 6
    assert result.pgd_by_rupture == plain.pgd_by_rupture
    plain_files = archive_bytes(tmp_path / "plain")
    pooled_files = archive_bytes(crash_dir)
    assert set(plain_files) == set(pooled_files)
    # .rupt and manifest bytes are exactly reproducible across the pool
    # boundary; .npz products are compared by bytes too (np.savez is
    # deterministic for identical arrays).
    assert plain_files == pooled_files
