"""Tests for repro.core.local."""

import pytest

from repro.core.config import FdwConfig
from repro.core.local import LocalRunner, estimate_sequential_runtime_s
from repro.errors import ConfigError
from repro.osg.runtimes import RuntimeModel
from repro.seismo.mudpy_io import ProductArchive


@pytest.fixture(scope="module")
def tiny_config():
    return FdwConfig(
        n_waveforms=4, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="local"
    )


@pytest.fixture(scope="module")
def run_result(tiny_config):
    return LocalRunner().run(tiny_config)


def test_produces_all_waveform_sets(run_result, tiny_config):
    assert run_result.n_waveform_sets == tiny_config.n_waveforms
    assert len(run_result.pgd_by_rupture) == tiny_config.n_waveforms


def test_phase_timings_recorded(run_result):
    assert set(run_result.phase_seconds) == {"dist", "A", "B", "C"}
    assert all(t >= 0 for t in run_result.phase_seconds.values())
    assert run_result.total_seconds > 0


def test_pgds_positive(run_result):
    assert all(v > 0 for v in run_result.pgd_by_rupture.values())


def test_archiving(tmp_path, tiny_config):
    result = LocalRunner().run(tiny_config, archive_dir=tmp_path / "arch")
    archive = ProductArchive(tmp_path / "arch")
    assert sorted(archive.kinds()) == ["ruptures", "waveforms"]
    assert len(archive.find(kind="waveforms")) == tiny_config.n_waveforms
    assert len(archive.find(kind="ruptures")) == tiny_config.n_waveforms
    assert result.archive_root == archive.root
    # No temp files left behind.
    assert not list(archive.root.glob("_tmp_*"))


def test_deterministic_products(tiny_config):
    a = LocalRunner().run(tiny_config)
    b = LocalRunner().run(tiny_config)
    assert a.pgd_by_rupture == b.pgd_by_rupture


def test_worker_validation():
    with pytest.raises(ConfigError):
        LocalRunner(n_workers=0)


def test_estimate_uses_aws_per_item_costs():
    # 1,024 full-input waveforms on the 4-CPU AWS control: the measured
    # per-chunk costs (287 s / 16 ruptures, 144 s / 2 waveforms) plus
    # one GF build and one distance-matrix build, MPI-spread over 4
    # cores — about 6.9 hours.
    config = FdwConfig(n_waveforms=1024, n_stations=121)
    model = RuntimeModel()
    total = estimate_sequential_runtime_s(config, model)
    expected = (
        1024 * (287.0 / 16.0 + 144.0 / 2.0)
        + model.b_base_s
        + 121 * model.b_per_station_s
        + model.dist_base_s
    ) / 4.0
    assert total == pytest.approx(expected)
    assert 5.0 * 3600 < total < 9.0 * 3600


def test_estimate_scales_with_cpus():
    config = FdwConfig(n_waveforms=256, n_stations=121)
    one = estimate_sequential_runtime_s(config, n_cpus=1)
    four = estimate_sequential_runtime_s(config, n_cpus=4)
    assert one == pytest.approx(4.0 * four)
    with pytest.raises(ConfigError):
        estimate_sequential_runtime_s(config, n_cpus=0)


def test_estimate_counts_distance_build_once():
    recycled = FdwConfig(n_waveforms=64, recycle_distances=True)
    explicit = FdwConfig(n_waveforms=64, recycle_distances=False)
    model = RuntimeModel()
    assert estimate_sequential_runtime_s(recycled, model) == pytest.approx(
        estimate_sequential_runtime_s(explicit, model)
    )


def test_estimate_small_input_faster():
    model = RuntimeModel()
    full = estimate_sequential_runtime_s(FdwConfig(n_waveforms=2048, n_stations=121), model)
    small = estimate_sequential_runtime_s(FdwConfig(n_waveforms=2048, n_stations=2), model)
    # The waveform-synthesis term scales with the station list; the
    # rupture term does not, so the gap is large but bounded.
    assert full > 3 * small
