"""Tests for repro.core.local."""

import pytest

from repro.core.config import FdwConfig
from repro.core.local import LocalRunner, estimate_sequential_runtime_s
from repro.errors import ConfigError
from repro.osg.runtimes import RuntimeModel
from repro.seismo.mudpy_io import ProductArchive


@pytest.fixture(scope="module")
def tiny_config():
    return FdwConfig(
        n_waveforms=4, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="local"
    )


@pytest.fixture(scope="module")
def run_result(tiny_config):
    return LocalRunner().run(tiny_config)


def test_produces_all_waveform_sets(run_result, tiny_config):
    assert run_result.n_waveform_sets == tiny_config.n_waveforms
    assert len(run_result.pgd_by_rupture) == tiny_config.n_waveforms


def test_phase_timings_recorded(run_result):
    assert set(run_result.phase_seconds) == {"dist", "A", "B", "C"}
    assert all(t >= 0 for t in run_result.phase_seconds.values())
    assert run_result.total_seconds > 0


def test_pgds_positive(run_result):
    assert all(v > 0 for v in run_result.pgd_by_rupture.values())


def test_archiving(tmp_path, tiny_config):
    result = LocalRunner().run(tiny_config, archive_dir=tmp_path / "arch")
    archive = ProductArchive(tmp_path / "arch")
    assert sorted(archive.kinds()) == ["ruptures", "waveforms"]
    assert len(archive.find(kind="waveforms")) == tiny_config.n_waveforms
    assert len(archive.find(kind="ruptures")) == tiny_config.n_waveforms
    assert result.archive_root == archive.root
    # No temp files left behind.
    assert not list(archive.root.glob("_tmp_*"))


def test_deterministic_products(tiny_config):
    a = LocalRunner().run(tiny_config)
    b = LocalRunner().run(tiny_config)
    assert a.pgd_by_rupture == b.pgd_by_rupture


def test_worker_validation():
    with pytest.raises(ConfigError):
        LocalRunner(n_workers=0)


def test_estimate_uses_aws_per_item_costs():
    # 1,024 full-input waveforms on the 4-CPU AWS control: the measured
    # per-chunk costs (287 s / 16 ruptures, 144 s / 2 waveforms) plus
    # one GF build and one distance-matrix build, MPI-spread over 4
    # cores — about 6.9 hours.
    config = FdwConfig(n_waveforms=1024, n_stations=121)
    model = RuntimeModel()
    total = estimate_sequential_runtime_s(config, model)
    expected = (
        1024 * (287.0 / 16.0 + 144.0 / 2.0)
        + model.b_base_s
        + 121 * model.b_per_station_s
        + model.dist_base_s
    ) / 4.0
    assert total == pytest.approx(expected)
    assert 5.0 * 3600 < total < 9.0 * 3600


def test_estimate_scales_with_cpus():
    config = FdwConfig(n_waveforms=256, n_stations=121)
    one = estimate_sequential_runtime_s(config, n_cpus=1)
    four = estimate_sequential_runtime_s(config, n_cpus=4)
    assert one == pytest.approx(4.0 * four)
    with pytest.raises(ConfigError):
        estimate_sequential_runtime_s(config, n_cpus=0)


def test_estimate_counts_distance_build_once():
    recycled = FdwConfig(n_waveforms=64, recycle_distances=True)
    explicit = FdwConfig(n_waveforms=64, recycle_distances=False)
    model = RuntimeModel()
    assert estimate_sequential_runtime_s(recycled, model) == pytest.approx(
        estimate_sequential_runtime_s(explicit, model)
    )


def test_estimate_small_input_faster():
    model = RuntimeModel()
    full = estimate_sequential_runtime_s(FdwConfig(n_waveforms=2048, n_stations=121), model)
    small = estimate_sequential_runtime_s(FdwConfig(n_waveforms=2048, n_stations=2), model)
    # The waveform-synthesis term scales with the station list; the
    # rupture term does not, so the gap is large but bounded.
    assert full > 3 * small


# -- shared-memory pool path --------------------------------------------------


def test_pool_path_matches_sequential(tiny_config, run_result):
    with LocalRunner(n_workers=2) as runner:
        pooled = runner.run(tiny_config)
    assert pooled.n_waveform_sets == tiny_config.n_waveforms
    # Bit-identical products: same rupture ids, same PGD floats.
    assert pooled.pgd_by_rupture == run_result.pgd_by_rupture


def test_pool_path_archives(tmp_path, tiny_config):
    """Regression: the seed pool path silently dropped archive_dir."""
    with LocalRunner(n_workers=2) as runner:
        result = runner.run(tiny_config, archive_dir=tmp_path / "arch")
    archive = ProductArchive(tmp_path / "arch")
    assert len(archive.find(kind="waveforms")) == tiny_config.n_waveforms
    assert len(archive.find(kind="ruptures")) == tiny_config.n_waveforms
    assert result.archive_root == archive.root
    # No spool or temp files left behind.
    assert not list(archive.root.glob("_tmp_*"))
    assert not (archive.root / "_spool").exists()


def test_pool_archive_matches_sequential_archive(tmp_path, tiny_config):
    import numpy as np

    LocalRunner().run(tiny_config, archive_dir=tmp_path / "seq")
    with LocalRunner(n_workers=2) as runner:
        runner.run(tiny_config, archive_dir=tmp_path / "pool")
    seq_files = sorted((tmp_path / "seq").rglob("*.npz"))
    assert seq_files
    for seq_path in seq_files:
        pool_path = next((tmp_path / "pool").rglob(seq_path.name))
        with np.load(seq_path) as a, np.load(pool_path) as b:
            assert set(a.files) == set(b.files)
            for field in a.files:
                assert np.array_equal(a[field], b[field])


def test_pool_reuses_published_bank(tiny_config):
    with LocalRunner(n_workers=2) as runner:
        first = runner.run(tiny_config)
        assert len(runner._published) == 1
        second = runner.run(tiny_config)
        assert len(runner._published) == 1  # same key, no republish
        assert first.pgd_by_rupture == second.pgd_by_rupture
        # Warm cache: the second run's Phase B is a pure lookup.
        assert runner.gf_cache.stats.hits >= 1


def test_close_is_idempotent(tiny_config):
    runner = LocalRunner(n_workers=2)
    runner.run(tiny_config)
    runner.close()
    runner.close()


def test_runners_share_gf_cache(tiny_config):
    from repro.core.gfcache import GFCache

    cache = GFCache()
    LocalRunner(gf_cache=cache).run(tiny_config)
    assert cache.stats.misses == 1
    LocalRunner(gf_cache=cache).run(tiny_config)
    assert cache.stats.misses == 1  # second runner hits the shared cache
    assert cache.stats.memory_hits >= 1


# -- pooled Phase A -----------------------------------------------------------


@pytest.fixture(scope="module")
def pooled_a_config():
    """Enough A chunks (4) that n_workers=2 really fans out."""
    return FdwConfig(
        n_waveforms=8, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=4, name="pool_a"
    )


def test_pooled_phase_a_matches_sequential(pooled_a_config):
    """Pooled Phase A must reproduce the sequential catalog rupture-for-
    rupture — same ids, slip and kinematics, hence identical archives."""
    import numpy as np

    from repro.core.local import _fakequakes_for, _run_a_chunk
    from repro.core.phases import chunk_bounds

    fq = _fakequakes_for(pooled_a_config)
    fq.phase_a_distances()
    reference = fq.phase_a_ruptures(0, pooled_a_config.n_waveforms)
    pooled = []
    for start, count in chunk_bounds(
        pooled_a_config.n_waveforms, pooled_a_config.chunk_a
    ):
        pooled.extend(_run_a_chunk((fq.params, start, count, None)))
    assert len(pooled) == len(reference)
    for a, b in zip(pooled, reference):
        assert a.rupture_id == b.rupture_id
        assert np.array_equal(a.subfault_indices, b.subfault_indices)
        assert np.array_equal(a.slip_m, b.slip_m)
        assert np.array_equal(a.rise_time_s, b.rise_time_s)
        assert np.array_equal(a.onset_time_s, b.onset_time_s)
        assert a.hypocenter_index == b.hypocenter_index


def test_pooled_run_matches_sequential_run(pooled_a_config):
    """End-to-end: a pooled run (A and C fan out over the pool) produces
    the sequential run's products."""
    sequential = LocalRunner().run(pooled_a_config)
    with LocalRunner(n_workers=2) as runner:
        pooled = runner.run(pooled_a_config)
    assert pooled.pgd_by_rupture == sequential.pgd_by_rupture


def test_pooled_a_rupt_archives_match(tmp_path, pooled_a_config):
    """The .rupt products (slip + kinematics serialized per subfault)
    are byte-identical between sequential and pooled Phase A."""
    LocalRunner().run(pooled_a_config, archive_dir=tmp_path / "seq")
    with LocalRunner(n_workers=2) as runner:
        runner.run(pooled_a_config, archive_dir=tmp_path / "pool")
    seq_files = sorted((tmp_path / "seq").rglob("*.rupt"))
    assert len(seq_files) == pooled_a_config.n_waveforms
    for seq_path in seq_files:
        pool_path = next((tmp_path / "pool").rglob(seq_path.name))
        assert pool_path.read_bytes() == seq_path.read_bytes()


def test_pooled_a_workers_share_disk_kl_store(tmp_path, pooled_a_config):
    """With a disk-backed KLCache, the pooled A phase persists bases the
    workers (and later runs) reuse."""
    from repro.seismo.klcache import KLCache

    cache = KLCache(cache_dir=tmp_path / "kl")
    with LocalRunner(n_workers=2, kl_cache=cache) as runner:
        first = runner.run(pooled_a_config)
        assert cache.disk_keys()  # workers populated the shared store
        second = runner.run(pooled_a_config)
    assert first.pgd_by_rupture == second.pgd_by_rupture


def test_single_chunk_a_stays_in_parent(tmp_path):
    """One A chunk -> no fan-out; the parent's own KLCache serves it."""
    from repro.seismo.klcache import KLCache

    config = FdwConfig(
        n_waveforms=2, n_stations=3, mesh=(8, 5), chunk_a=2, chunk_c=2, name="one_a"
    )
    cache = KLCache(cache_dir=tmp_path / "kl")
    with LocalRunner(n_workers=2, kl_cache=cache) as runner:
        runner.run(config)
    assert cache.stats.misses >= 1  # parent-side cache was exercised


# -- estimate_sequential_runtime_s validation ---------------------------------


class _FakeStationsConfig:
    """Duck-typed config: FdwConfig itself rejects n_stations < 1 at
    construction, so the estimator's own guard needs a stand-in."""

    def __init__(self, n_stations):
        self.n_stations = n_stations
        self.n_waveforms = 16
        self.n_subfaults = 450
        self.chunk_a = 16
        self.chunk_c = 2
        self.recycle_distances = True
        self.name = "fake"


@pytest.mark.parametrize("n_stations", [0, -3, None])
def test_estimate_rejects_nonpositive_stations(n_stations):
    with pytest.raises(ConfigError, match="n_stations"):
        estimate_sequential_runtime_s(_FakeStationsConfig(n_stations))


# -- retry path: flaky chunks are retried, products unchanged ------------------


def test_flaky_chunks_retried_to_identical_archive(tmp_path, tiny_config):
    """A retryable flake on one chunk per phase costs extra attempts and
    accounted backoff but changes no product byte."""
    from repro.faults import ChunkFlake, FaultPlan

    plain = LocalRunner().run(tiny_config, archive_dir=tmp_path / "plain")
    plan = FaultPlan(
        flakes=(ChunkFlake("A", 1, times=2), ChunkFlake("C", 0, times=1))
    )
    flaky = LocalRunner().run(
        tiny_config, archive_dir=tmp_path / "flaky", faults=plan
    )
    assert flaky.chunk_retries == {"A": 2, "C": 1}
    assert flaky.retry_backoff_s > 0.0
    assert flaky.pgd_by_rupture == plain.pgd_by_rupture
    plain_files = sorted(p.name for p in (tmp_path / "plain").rglob("*") if p.is_file())
    flaky_files = sorted(p.name for p in (tmp_path / "flaky").rglob("*") if p.is_file())
    assert plain_files == flaky_files
    for name in plain_files:
        a = next((tmp_path / "plain").rglob(name))
        b = next((tmp_path / "flaky").rglob(name))
        assert a.read_bytes() == b.read_bytes()


def test_pooled_flaky_chunks_match_sequential(tmp_path, tiny_config):
    """The pooled paths resubmit the flaked chunk to the pool and still
    produce the sequential archive."""
    from repro.faults import ChunkFlake, FaultPlan

    plain = LocalRunner().run(tiny_config)
    plan = FaultPlan(
        flakes=(ChunkFlake("A", 0, times=1), ChunkFlake("C", 1, times=1))
    )
    with LocalRunner(n_workers=2) as runner:
        flaky = runner.run(tiny_config, faults=plan)
    assert flaky.chunk_retries == {"A": 1, "C": 1}
    assert flaky.pgd_by_rupture == plain.pgd_by_rupture


def test_flake_exhaustion_raises_transient_fault(tiny_config):
    """A chunk that flakes more times than the policy retries surfaces
    the typed retryable error instead of looping forever."""
    from repro.faults import ChunkFlake, FaultPlan, TransientFault
    from repro.resilience import RetryPolicy

    plan = FaultPlan(flakes=(ChunkFlake("A", 0, times=99),))
    runner = LocalRunner(retry_policy=RetryPolicy(max_attempts=2))
    with pytest.raises(TransientFault):
        runner.run(tiny_config, faults=plan)


def test_no_faults_reports_zero_retries(run_result):
    assert run_result.chunk_retries == {"A": 0, "C": 0}
    assert run_result.retry_backoff_s == 0.0
