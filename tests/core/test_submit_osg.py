"""Tests for repro.core.submit_osg."""

import pytest

from repro.core.config import FdwConfig
from repro.core.partition import partition_config
from repro.core.submit_osg import run_fdw_batch
from repro.errors import SimulationError
from repro.osg.capacity import FixedCapacity


def test_single_dagman_result(tiny_batch_result, tiny_fdw_config):
    name = tiny_fdw_config.name
    assert tiny_batch_result.dagman_names == [name]
    assert tiny_batch_result.runtime_s(name) > 0
    assert tiny_batch_result.throughput_jpm(name) > 0
    assert name in tiny_batch_result.user_logs
    assert "000 (" in tiny_batch_result.user_logs[name]


def test_job_count_matches_plan(tiny_batch_result, tiny_fdw_config):
    from repro.core.phases import plan_phases

    plan = plan_phases(tiny_fdw_config)
    assert tiny_batch_result.metrics.dagmans[tiny_fdw_config.name].n_jobs == plan.n_jobs


def test_concurrent_partitions_complete():
    config = FdwConfig(n_waveforms=32, n_stations=4, mesh=(8, 5), name="multi")
    parts = partition_config(config, 2)
    result = run_fdw_batch(parts, capacity=FixedCapacity(12), seed=1)
    assert len(result.dagman_names) == 2
    assert result.batch_makespan_s() >= max(
        result.runtime_s(n) for n in result.dagman_names
    ) - 1e-6
    assert result.mean_runtime_s() > 0
    assert result.mean_throughput_jpm() > 0
    assert result.batch_throughput_jpm() > 0


def test_stagger_offsets_submissions():
    config = FdwConfig(n_waveforms=16, n_stations=4, mesh=(8, 5), name="stag")
    parts = partition_config(config, 2)
    result = run_fdw_batch(parts, capacity=FixedCapacity(8), seed=2, stagger_s=500.0)
    subs = sorted(d.submit_time for d in result.metrics.dagmans.values())
    assert subs == [0.0, 500.0]


def test_duplicate_names_rejected():
    config = FdwConfig(n_waveforms=8, name="dup")
    with pytest.raises(SimulationError):
        run_fdw_batch([config, config])


def test_empty_batch_rejected():
    with pytest.raises(SimulationError):
        run_fdw_batch([])


def test_negative_stagger_rejected():
    config = FdwConfig(n_waveforms=8, name="x")
    with pytest.raises(SimulationError):
        run_fdw_batch(config, stagger_s=-1.0)


def test_deterministic_given_seed():
    config = FdwConfig(n_waveforms=16, n_stations=4, mesh=(8, 5), name="det")
    a = run_fdw_batch(config, capacity=FixedCapacity(8), seed=5)
    b = run_fdw_batch(config, capacity=FixedCapacity(8), seed=5)
    assert a.runtime_s("det") == b.runtime_s("det")
    assert a.user_logs["det"] == b.user_logs["det"]
