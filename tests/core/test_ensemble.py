"""Tests for repro.core.ensemble."""

import pytest

from repro.core.config import FdwConfig
from repro.core.ensemble import run_repeated
from repro.errors import SimulationError
from repro.osg.capacity import FixedCapacity


@pytest.fixture(scope="module")
def point():
    config = FdwConfig(n_waveforms=32, n_stations=3, mesh=(8, 5), name="ens")
    return run_repeated(config, repeats=3, capacity=FixedCapacity(10))


def test_counts(point):
    assert point.n_repeats == 3
    assert len(point.runtimes_s) == 3  # one DAGMan per repeat
    assert all(r > 0 for r in point.runtimes_s)
    assert len(set(point.job_counts)) == 1  # same DAG every repeat


def test_statistics_consistent(point):
    alpha = point.average_total_runtime_s()
    assert min(point.runtimes_s) <= alpha <= max(point.runtimes_s)
    beta = point.average_total_throughput_jpm()
    assert beta == pytest.approx(point.throughput_summary_jpm().mean, rel=1e-9)


def test_row_shape(point):
    runtime_h, sd_h, jpm, sd_jpm = point.row()
    assert runtime_h > 0 and jpm > 0
    assert sd_h >= 0 and sd_jpm >= 0


def test_repeats_differ(point):
    # Different derived seeds => different realized runtimes.
    assert len(set(point.runtimes_s)) > 1


def test_reproducible():
    config = FdwConfig(n_waveforms=16, n_stations=3, mesh=(8, 5), name="rep")
    a = run_repeated(config, repeats=2, capacity=FixedCapacity(6))
    b = run_repeated(config, repeats=2, capacity=FixedCapacity(6))
    assert a.runtimes_s == b.runtimes_s


def test_seed_key_isolates_experiments():
    config = FdwConfig(n_waveforms=16, n_stations=3, mesh=(8, 5), name="iso")
    a = run_repeated(config, repeats=1, capacity=FixedCapacity(6), seed_key="x")
    b = run_repeated(config, repeats=1, capacity=FixedCapacity(6), seed_key="y")
    assert a.runtimes_s != b.runtimes_s


def test_partitioned_point():
    config = FdwConfig(n_waveforms=32, n_stations=3, mesh=(8, 5), name="ens2")
    point = run_repeated(config, repeats=2, n_dagmans=2, capacity=FixedCapacity(10))
    # 2 repeats x 2 DAGMans = 4 per-DAGMan samples.
    assert len(point.runtimes_s) == 4
    assert point.n_dagmans == 2


def test_validation():
    config = FdwConfig(n_waveforms=16, name="bad")
    with pytest.raises(SimulationError):
        run_repeated(config, repeats=0)
