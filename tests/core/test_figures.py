"""Tests for repro.core.figures — figure data exporters."""

import csv

import pytest

from repro.core.figures import (
    FigureSeries,
    export_all_figures,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
)
from repro.errors import ConfigError

#: Tiny scale keeps the whole module fast; generators accept any scale.
SCALE = 0.01


class TestFigureSeries:
    def test_csv_write(self, tmp_path):
        series = FigureSeries(
            name="demo", columns=("a", "b"), rows=((1, 2.5), (3, 4.0))
        )
        path = series.write_csv(tmp_path)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_ragged_rejected(self):
        with pytest.raises(ConfigError):
            FigureSeries(name="x", columns=("a", "b"), rows=((1,),))


class TestGenerators:
    def test_fig2(self):
        series = fig2_series(scale=SCALE, quantities=(1024, 2000), repeats=1)
        assert series.columns[0] == "input"
        assert len(series.rows) == 4  # 2 inputs x 2 quantities
        inputs = {row[0] for row in series.rows}
        assert inputs == {"small", "full"}
        for row in series.rows:
            assert row[2] > 0 and row[4] > 0  # runtime, jpm positive

    def test_fig3(self):
        series = fig3_series(scale=SCALE, total_waveforms=800, levels=(1, 2), repeats=1)
        assert [row[0] for row in series.rows] == [1, 2]
        # per-DAGMan throughput falls with concurrency.
        assert series.rows[0][3] > series.rows[1][3]

    def test_fig4(self):
        all_series = fig4_series(scale=SCALE, total_waveforms=800, concurrency=1,
                                 max_points=50)
        names = {s.name for s in all_series}
        assert names == {
            "fig4_k1_exec_sorted_s",
            "fig4_k1_wait_sorted_s",
            "fig4_k1_instant_throughput_jpm",
            "fig4_k1_running_jobs",
        }
        for s in all_series:
            assert 1 <= len(s.rows) <= 50

    def test_fig5(self):
        series = fig5_series(
            scale=SCALE, total_waveforms=800, probes=(1, 60), queue_caps_min=(90,)
        )
        # 2 batches x (1 control + 2 probes).
        assert len(series.rows) == 6
        controls = [row for row in series.rows if row[1] == "control"]
        assert len(controls) == 2

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            fig2_series(scale=0.0)
        with pytest.raises(ConfigError):
            fig3_series(scale=1.5)

    def test_export_all(self, tmp_path):
        paths = export_all_figures(tmp_path, scale=SCALE)
        assert len(paths) >= 4
        for path in paths:
            assert path.exists()
            assert path.suffix == ".csv"
