"""Tests for repro.core.partition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FdwConfig
from repro.core.partition import partition_config
from repro.errors import ConfigError


def test_single_partition_is_identity():
    config = FdwConfig(n_waveforms=100, name="x", seed=5)
    [only] = partition_config(config, 1)
    assert only == config


def test_even_split():
    parts = partition_config(FdwConfig(n_waveforms=16000, name="x"), 4)
    assert [p.n_waveforms for p in parts] == [4000] * 4
    assert [p.name for p in parts] == ["x_p00", "x_p01", "x_p02", "x_p03"]


def test_remainder_distributed_to_first():
    parts = partition_config(FdwConfig(n_waveforms=10, name="x"), 3)
    assert [p.n_waveforms for p in parts] == [4, 3, 3]


def test_seeds_distinct():
    parts = partition_config(FdwConfig(n_waveforms=100, name="x", seed=7), 4)
    seeds = [p.seed for p in parts]
    assert len(set(seeds)) == 4


def test_partition_deterministic():
    a = partition_config(FdwConfig(n_waveforms=100, seed=7), 4)
    b = partition_config(FdwConfig(n_waveforms=100, seed=7), 4)
    assert a == b


def test_other_fields_preserved():
    config = FdwConfig(n_waveforms=100, n_stations=2, chunk_c=4, name="x")
    for p in partition_config(config, 2):
        assert p.n_stations == 2
        assert p.chunk_c == 4


def test_validation():
    config = FdwConfig(n_waveforms=4)
    with pytest.raises(ConfigError):
        partition_config(config, 0)
    with pytest.raises(ConfigError):
        partition_config(config, 5)


@given(
    st.integers(min_value=1, max_value=50000),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_partition_conserves_waveforms(n, k):
    if k > n:
        k = n
    parts = partition_config(FdwConfig(n_waveforms=n, name="x"), k)
    assert sum(p.n_waveforms for p in parts) == n
    assert len(parts) == k
    assert max(p.n_waveforms for p in parts) - min(p.n_waveforms for p in parts) <= 1
