"""Tests for repro.core.traces."""

import pytest

from repro.core.traces import (
    BatchTrace,
    JobTrace,
    export_traces,
    read_traces,
    render_trace_csvs,
)
from repro.errors import TraceError


def test_export_and_read_roundtrip(tmp_path, tiny_batch_result, tiny_fdw_config):
    name = tiny_fdw_config.name
    batch_csv, jobs_csv = export_traces(tiny_batch_result, name, tmp_path)
    trace = read_traces(batch_csv, jobs_csv)
    summary = tiny_batch_result.metrics.dagmans[name]
    assert trace.dagman == name
    assert trace.n_jobs == len(
        [r for r in tiny_batch_result.metrics.for_dagman(name) if r.success]
    )
    assert trace.runtime_s == pytest.approx(summary.runtime_s, abs=0.01)
    assert all(j.submit_s <= j.start_s <= j.end_s for j in trace.jobs)


def test_exported_jobs_sorted_by_submit(tmp_path, tiny_batch_result, tiny_fdw_config):
    batch_csv, jobs_csv = export_traces(tiny_batch_result, tiny_fdw_config.name, tmp_path)
    trace = read_traces(batch_csv, jobs_csv)
    submits = [j.submit_s for j in trace.jobs]
    assert submits == sorted(submits)


def test_phase_jobs_filter(tmp_path, tiny_batch_result, tiny_fdw_config):
    batch_csv, jobs_csv = export_traces(tiny_batch_result, tiny_fdw_config.name, tmp_path)
    trace = read_traces(batch_csv, jobs_csv)
    phases = {j.phase for j in trace.jobs}
    assert phases == {"A", "B", "C"}
    assert len(trace.phase_jobs("B")) == 1


def test_first_execute_includes_failed_attempts(tmp_path):
    """Regression: the batch header's first_execute_s was min'd over
    successful records only; when the batch's earliest EXECUTE belonged
    to a failed attempt the exported header was wrong."""
    from repro.core.submit_osg import FdwBatchResult
    from repro.osg.metrics import DagmanSummary, JobRecord, PoolMetrics

    failed = JobRecord(
        node_name="n_A_0", dagman="d", phase="A", cluster_id=1,
        submit_time=0.0, start_time=5.0, end_time=20.0, success=False,
    )
    retry = JobRecord(
        node_name="n_A_0", dagman="d", phase="A", cluster_id=2,
        submit_time=25.0, start_time=30.0, end_time=60.0, success=True,
    )
    metrics = PoolMetrics(
        records=[failed, retry],
        dagmans={"d": DagmanSummary(name="d", submit_time=0.0, end_time=60.0, n_jobs=1)},
    )
    batch_csv, jobs_csv = export_traces(FdwBatchResult(metrics=metrics), "d", tmp_path)
    trace = read_traces(batch_csv, jobs_csv)
    assert trace.first_execute_s == 5.0  # the failed attempt's EXECUTE
    assert trace.n_jobs == 1  # jobs CSV still exports successes only
    assert trace.jobs[0].start_s == 30.0


def test_export_unknown_dagman(tmp_path, tiny_batch_result):
    with pytest.raises(TraceError):
        export_traces(tiny_batch_result, "nope", tmp_path)


def test_job_trace_validation():
    with pytest.raises(TraceError):
        JobTrace(node="x", phase="A", submit_s=10.0, start_s=5.0, end_s=20.0)


def test_batch_trace_validation():
    job = JobTrace(node="x", phase="A", submit_s=0.0, start_s=1.0, end_s=2.0)
    with pytest.raises(TraceError):
        BatchTrace(dagman="d", submit_s=0.0, first_execute_s=1.0, end_s=2.0, jobs=())
    with pytest.raises(TraceError):
        BatchTrace(dagman="d", submit_s=5.0, first_execute_s=1.0, end_s=2.0, jobs=(job,))


def test_read_missing_files(tmp_path):
    with pytest.raises(TraceError):
        read_traces(tmp_path / "a.csv", tmp_path / "b.csv")


def test_read_bad_header(tmp_path):
    batch = tmp_path / "b.csv"
    jobs = tmp_path / "j.csv"
    batch.write_text("wrong,header\n1,2\n")
    jobs.write_text("node,phase,submit_s,start_s,end_s\nx,A,0,1,2\n")
    with pytest.raises(TraceError):
        read_traces(batch, jobs)


def test_read_job_count_mismatch(tmp_path):
    batch = tmp_path / "b.csv"
    jobs = tmp_path / "j.csv"
    batch.write_text("dagman,submit_s,first_execute_s,end_s,n_jobs\nd,0,1,10,2\n")
    jobs.write_text("node,phase,submit_s,start_s,end_s\nx,A,0,1,2\n")
    with pytest.raises(TraceError):
        read_traces(batch, jobs)


def test_read_malformed_row(tmp_path):
    batch = tmp_path / "b.csv"
    jobs = tmp_path / "j.csv"
    batch.write_text("dagman,submit_s,first_execute_s,end_s,n_jobs\nd,0,1,10,1\n")
    jobs.write_text("node,phase,submit_s,start_s,end_s\nx,A,zero,1,2\n")
    with pytest.raises(TraceError):
        read_traces(batch, jobs)


def test_render_trace_csvs_roundtrip(tmp_path):
    jobs = tuple(
        JobTrace(node=f"n{i}", phase="C", submit_s=i * 1.0, start_s=i + 1.0, end_s=i + 5.0)
        for i in range(3)
    )
    trace = BatchTrace(dagman="d", submit_s=0.0, first_execute_s=1.0, end_s=7.0, jobs=jobs)
    batch_text, jobs_text = render_trace_csvs(trace)
    b = tmp_path / "b.csv"
    j = tmp_path / "j.csv"
    b.write_text(batch_text)
    j.write_text(jobs_text)
    back = read_traces(b, j)
    assert back == trace
