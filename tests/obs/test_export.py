"""Exporter round-trips: Chrome trace JSON, Prometheus text, summary."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    chrome_trace,
    dump_chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    render_summary,
    service_timeline,
    validate_chrome_trace,
)


def _sample_tracer():
    tracer = Tracer()
    tracer.complete("phase:A", ts=0.5, dur=2.0, category="local",
                    track="runner", args={"executed": 3})
    tracer.complete("dagman:demo", ts=0.0, dur=3600.0, category="pool",
                    track="dagman:demo")
    tracer.instant("checkpoint", ts=1.0, category="local", track="runner")
    return tracer


class TestChromeTrace:
    def test_structure_and_validation(self):
        doc = chrome_trace(_sample_tracer())
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        # Metadata: one process_name + one thread_name per track.
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"repro", "runner", "dagman:demo"} <= names

    def test_tracks_become_stable_tids(self):
        doc = chrome_trace(_sample_tracer())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
        # runner appeared first -> tid 1; dagman second -> tid 2.
        assert by_name["phase:A"]["tid"] == 1
        assert by_name["dagman:demo"]["tid"] == 2
        assert by_name["checkpoint"]["tid"] == 1

    def test_times_exported_in_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        ev = next(e for e in doc["traceEvents"] if e["name"] == "phase:A")
        assert ev["ts"] == pytest.approx(0.5e6)
        assert ev["dur"] == pytest.approx(2.0e6)

    def test_dump_round_trips_and_is_byte_stable(self):
        tracer = _sample_tracer()
        text = dump_chrome_trace(tracer)
        assert text == dump_chrome_trace(tracer)
        assert validate_chrome_trace(json.loads(text)) > 0

    def test_validate_rejects_malformed(self):
        with pytest.raises(ObsError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ObsError, match="unknown phase"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "?", "pid": 1, "tid": 1}
                ]}
            )
        with pytest.raises(ObsError, match="missing 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}
                ]}
            )


class TestPrometheusText:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter_add("repro_jobs_total", 37.0, {"outcome": "success"})
        reg.counter_add("repro_jobs_total", 2.0, {"outcome": "failed"})
        reg.gauge_set("repro_queue_depth", 5.0)
        reg.declare_histogram("repro_wait_seconds", buckets=(1.0, 60.0))
        reg.histogram_observe("repro_wait_seconds", 0.5)
        reg.histogram_observe("repro_wait_seconds", 30.0)
        reg.histogram_observe("repro_wait_seconds", 3000.0)
        return reg

    def test_round_trip(self):
        reg = self._registry()
        parsed = parse_prometheus_text(prometheus_text(reg))
        assert parsed["types"] == {
            "repro_jobs_total": "counter",
            "repro_queue_depth": "gauge",
            "repro_wait_seconds": "histogram",
        }
        samples = parsed["samples"]
        assert samples[("repro_jobs_total", (("outcome", "success"),))] == 37.0
        assert samples[("repro_queue_depth", ())] == 5.0
        # Cumulative le buckets + the +Inf bucket equal to _count.
        assert samples[("repro_wait_seconds_bucket", (("le", "1"),))] == 1.0
        assert samples[("repro_wait_seconds_bucket", (("le", "60"),))] == 2.0
        assert samples[("repro_wait_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("repro_wait_seconds_count", ())] == 3.0
        assert samples[("repro_wait_seconds_sum", ())] == pytest.approx(3030.5)

    def test_byte_stable(self):
        reg = self._registry()
        assert prometheus_text(reg) == prometheus_text(reg)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quote " backslash \\ newline \n end'
        reg.counter_add("repro_x_total", 1.0, {"site": tricky})
        parsed = parse_prometheus_text(prometheus_text(reg))
        assert parsed["samples"][("repro_x_total", (("site", tricky),))] == 1.0

    def test_parser_rejects_malformed(self):
        with pytest.raises(ObsError, match="malformed sample"):
            parse_prometheus_text("this is not a sample line\n")
        with pytest.raises(ObsError, match="bad value"):
            parse_prometheus_text("repro_x_total nope\n")
        with pytest.raises(ObsError, match="duplicate"):
            parse_prometheus_text("repro_x_total 1\nrepro_x_total 2\n")

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus_text("") == {"types": {}, "samples": {}}


class TestRenderSummary:
    def test_covers_spans_markers_and_metrics(self):
        doc = chrome_trace(_sample_tracer())
        reg = TestPrometheusText()._registry()
        out = render_summary(doc, prometheus_text(reg))
        assert "spans (durations in ms):" in out
        assert "phase:A" in out
        assert "instant markers:" in out
        assert "repro_jobs_total" in out
        assert "histograms" in out
        assert out.endswith("\n")

    def test_nothing_to_summarize(self):
        assert "nothing to summarize" in render_summary(None, None)


class TestServiceTimeline:
    def test_converts_seeded_demo_trace(self):
        from repro.service import SimulatedRunner, run_service_demo

        report = run_service_demo(
            n_tenants=3, n_submissions=12, n_distinct=2, seed=7,
            n_workers=2, runner=SimulatedRunner(),
        )
        tracer = service_timeline(report.trace, report.results)
        runs = [ev for ev in tracer.events if ev.phase == "X"]
        marks = [ev for ev in tracer.events if ev.phase == "i"]
        # Every distinct execution that finished becomes one span...
        finished = sum(1 for ev in report.trace if ev.event in ("finish", "fail"))
        assert len(runs) == finished > 0
        # ...on a tenant track, with the serving backend in args.
        assert all(ev.track.startswith("tenant:") for ev in tracer.events)
        assert all(ev.args.get("backend") for ev in runs)
        assert all(ev.dur >= 0.0 for ev in runs)
        # Submissions and coalescing hits are instant markers.
        submits = sum(1 for ev in report.trace if ev.event in ("submit", "coalesce"))
        assert len(marks) == submits

    def test_deterministic_for_fixed_seed(self):
        from repro.service import SimulatedRunner, run_service_demo

        def dump():
            report = run_service_demo(
                n_tenants=3, n_submissions=12, n_distinct=2, seed=7,
                n_workers=2, runner=SimulatedRunner(),
            )
            return dump_chrome_trace(service_timeline(report.trace, report.results))

        assert dump() == dump()

    def test_finish_without_start_raises(self):
        from repro.service.service import TraceEvent

        events = [
            TraceEvent(seq=0, time=1.0, event="finish", tenant="t0",
                       ticket_id="", entry_id="svc-00000"),
        ]
        with pytest.raises(ObsError, match="without a matching 'start'"):
            service_timeline(events)
