"""Tests for the metrics registry (repro.obs.registry)."""

import numpy as np
import pytest

from repro.errors import ObsError
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_add("repro_jobs_total", 2.0)
        reg.counter_add("repro_jobs_total", 3.0)
        assert reg.counter_value("repro_jobs_total") == 5.0

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter_add("repro_jobs_total", 1.0, {"outcome": "success"})
        reg.counter_add("repro_jobs_total", 4.0, {"outcome": "failed"})
        assert reg.counter_value("repro_jobs_total", {"outcome": "success"}) == 1.0
        assert reg.counter_value("repro_jobs_total", {"outcome": "failed"}) == 4.0
        assert reg.counter_total("repro_jobs_total") == 5.0

    def test_label_insertion_order_is_canonicalized(self):
        """The same label set in any insertion order is one series."""
        reg = MetricsRegistry()
        reg.counter_add("repro_x_total", 1.0, {"a": "1", "b": "2"})
        reg.counter_add("repro_x_total", 1.0, {"b": "2", "a": "1"})
        assert reg.counter_value("repro_x_total", {"a": "1", "b": "2"}) == 2.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="negative"):
            reg.counter_add("repro_x_total", -1.0)

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="invalid metric name"):
            reg.counter_add("bad name")

    def test_invalid_label_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="invalid label name"):
            reg.counter_add("repro_x_total", 1.0, {"bad-label": "v"})

    def test_missing_series_reads_zero(self):
        assert MetricsRegistry().counter_value("repro_nope_total") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("repro_depth", 3.0)
        reg.gauge_set("repro_depth", 7.0)
        assert reg.gauge_value("repro_depth") == 7.0


class TestTypeConflicts:
    def test_counter_then_gauge_raises(self):
        reg = MetricsRegistry()
        reg.counter_add("repro_x_total", 1.0)
        with pytest.raises(ObsError, match="already registered as counter"):
            reg.gauge_set("repro_x_total", 1.0)

    def test_gauge_then_histogram_raises(self):
        reg = MetricsRegistry()
        reg.gauge_set("repro_y", 1.0)
        with pytest.raises(ObsError, match="already registered as gauge"):
            reg.histogram_observe("repro_y", 1.0)


class TestHistograms:
    def test_le_bucket_semantics(self):
        """A value equal to a bound lands in that bound's bucket."""
        reg = MetricsRegistry()
        reg.declare_histogram("repro_wait_seconds", buckets=(1.0, 5.0))
        reg.histogram_observe("repro_wait_seconds", 1.0)   # <= 1.0
        reg.histogram_observe("repro_wait_seconds", 1.5)   # <= 5.0
        reg.histogram_observe("repro_wait_seconds", 100.0)  # +Inf
        state = reg.histogram_state("repro_wait_seconds")
        assert state.counts == [1, 1, 1]
        assert state.cumulative_counts() == [1, 2, 3]
        assert state.count == 3
        assert state.sum == pytest.approx(102.5)

    def test_observe_many_matches_scalar_loop(self):
        values = np.array([0.0001, 0.003, 0.5, 2.0, 59.0, 1e6])
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in values:
            a.histogram_observe("repro_h", v)
        b.histogram_observe_many("repro_h", values)
        sa, sb = a.histogram_state("repro_h"), b.histogram_state("repro_h")
        assert sa.counts == sb.counts
        assert sa.sum == pytest.approx(sb.sum)
        assert sa.count == sb.count

    def test_observe_many_empty_is_noop(self):
        reg = MetricsRegistry()
        reg.histogram_observe_many("repro_h", [])
        state = reg.histogram_state("repro_h")
        # First call binds the metric but records nothing.
        assert state is None or state.count == 0

    def test_default_buckets_bound_on_first_observe(self):
        reg = MetricsRegistry()
        reg.histogram_observe("repro_h", 0.01)
        assert reg.histogram_state("repro_h").buckets == DEFAULT_BUCKETS

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.declare_histogram("repro_h", buckets=(1.0, 2.0))
        reg.declare_histogram("repro_h", buckets=(1.0, 2.0))  # same: fine
        with pytest.raises(ObsError, match="conflicting"):
            reg.declare_histogram("repro_h", buckets=(1.0, 3.0))

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="ascending"):
            reg.declare_histogram("repro_h", buckets=(2.0, 1.0))

    def test_nonfinite_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="finite"):
            reg.declare_histogram("repro_h", buckets=(1.0, float("inf")))


class TestSnapshot:
    def test_shape_and_ordering(self):
        reg = MetricsRegistry()
        reg.counter_add("repro_b_total", 1.0, {"k": "z"})
        reg.counter_add("repro_b_total", 2.0, {"k": "a"})
        reg.gauge_set("repro_a", 5.0)
        reg.histogram_observe("repro_c_seconds", 0.2, {"phase": "A"})
        snap = reg.snapshot()
        assert list(snap) == ["repro_a", "repro_b_total", "repro_c_seconds"]
        assert snap["repro_b_total"]["type"] == "counter"
        # Series sorted by label items, not insertion order.
        assert [s["labels"] for s in snap["repro_b_total"]["series"]] == [
            {"k": "a"}, {"k": "z"},
        ]
        hist = snap["repro_c_seconds"]["series"][0]
        assert hist["labels"] == {"phase": "A"}
        assert len(hist["counts"]) == len(hist["buckets"]) + 1

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter_add("repro_x_total", 1.0, {"b": "2", "a": "1"})
            reg.histogram_observe("repro_h", 3.0)
            reg.gauge_set("repro_g", 9.0, {"site": "uw"})
            return reg.snapshot()

        assert build() == build()
