"""Tests for the deterministic tracer (repro.obs.trace) and runtime hooks."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.trace import PH_COMPLETE, PH_INSTANT, Tracer


class FakeClock:
    """Injected clock: returns scripted values in order."""

    def __init__(self, *values):
        self.values = list(values)

    def __call__(self):
        return self.values.pop(0)


class TestTracer:
    def test_span_samples_injected_clock(self):
        tracer = Tracer(clock=FakeClock(10.0, 12.5))
        with tracer.span("phase:A", category="local"):
            pass
        (ev,) = tracer.events
        assert (ev.phase, ev.name, ev.ts, ev.dur) == (PH_COMPLETE, "phase:A", 10.0, 2.5)

    def test_nested_spans_record_inner_first(self):
        """Spans close inner-out; containment is by time, not order."""
        tracer = Tracer(clock=FakeClock(0.0, 1.0, 3.0, 4.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert (inner.name, inner.ts, inner.dur) == ("inner", 1.0, 2.0)
        assert (outer.name, outer.ts, outer.dur) == ("outer", 0.0, 4.0)
        # Time containment: the viewer reconstructs inner under outer.
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_complete_carries_stated_virtual_time(self):
        tracer = Tracer()
        tracer.complete("job:1", ts=1234.5, dur=60.0, track="dagman:demo")
        (ev,) = tracer.events
        assert (ev.ts, ev.dur, ev.track) == (1234.5, 60.0, "dagman:demo")

    def test_negative_duration_rejected(self):
        with pytest.raises(ObsError, match="negative duration"):
            Tracer().complete("bad", ts=0.0, dur=-1.0)

    def test_instant_stated_and_sampled(self):
        tracer = Tracer(clock=FakeClock(7.0))
        tracer.instant("stated", ts=3.0)
        tracer.instant("sampled")
        stated, sampled = tracer.events
        assert (stated.phase, stated.ts, stated.dur) == (PH_INSTANT, 3.0, 0.0)
        assert sampled.ts == 7.0

    def test_tracks_first_appearance_order(self):
        tracer = Tracer()
        tracer.instant("a", ts=0.0, track="t2")
        tracer.instant("b", ts=1.0, track="t1")
        tracer.instant("c", ts=2.0, track="t2")
        assert tracer.tracks() == ["t2", "t1"]

    def test_args_copied_not_aliased(self):
        tracer = Tracer()
        args = {"k": 1}
        tracer.complete("x", ts=0.0, dur=1.0, args=args)
        args["k"] = 2
        assert tracer.events[0].args == {"k": 1}


class TestRuntimeHooks:
    def test_disabled_hooks_are_noops(self):
        assert not obs.enabled()
        assert obs.session() is None
        obs.counter_add("repro_x_total")
        obs.gauge_set("repro_g", 1.0)
        obs.histogram_observe("repro_h", 1.0)
        obs.complete("s", ts=0.0, dur=1.0)
        obs.instant("i", ts=0.0)
        with obs.span("noop"):
            pass  # shared nullcontext, no tracer involved

    def test_observe_installs_and_restores(self):
        assert not obs.enabled()
        with obs.observe() as session:
            assert obs.enabled()
            assert obs.session() is session
            obs.counter_add("repro_x_total", 2.0)
        assert not obs.enabled()
        assert session.registry.counter_value("repro_x_total") == 2.0

    def test_sessions_stack_innermost_wins(self):
        with obs.observe() as outer:
            obs.counter_add("repro_x_total")
            with obs.observe() as inner:
                obs.counter_add("repro_x_total")
            assert obs.session() is outer
            obs.counter_add("repro_x_total")
        assert outer.registry.counter_value("repro_x_total") == 2.0
        assert inner.registry.counter_value("repro_x_total") == 1.0

    def test_trace_hooks_route_to_session_tracer(self):
        with obs.observe(clock=FakeClock(1.0, 2.0)) as session:
            with obs.span("measured"):
                pass
            obs.complete("stated", ts=5.0, dur=1.0)
            obs.instant("mark", ts=6.0)
        names = [ev.name for ev in session.tracer.events]
        assert names == ["measured", "stated", "mark"]
        assert session.tracer.events[0].dur == 1.0
