"""Observation is strictly passive: products and traces are pinned here.

Two guarantees, each load-bearing for the whole subsystem:

* **Bit-identity of products** — running any simulator under
  ``obs.observe()`` must leave every domain output (job records, queue
  traces, service results) identical to the un-observed run. The hooks
  never touch an RNG or reorder an event.
* **Byte-identity of exports** — a fixed seed produces byte-identical
  Chrome-trace JSON and Prometheus text across repeated observed runs:
  simulators stamp events with their own virtual time, and every
  exporter is canonical.
"""

from pathlib import Path

import pytest

from repro import obs
from repro.condor.dagman import DagmanOptions
from repro.obs.export import dump_chrome_trace, prometheus_text, service_timeline
from repro.osg.capacity import FixedCapacity
from repro.service import SimulatedRunner, run_service_demo
from repro.wf import generate_instance, import_instance, load_instance, replay_instance

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "fdw64_wfformat.json"


@pytest.fixture(scope="module")
def small_workflow():
    instance = generate_instance(load_instance(EXAMPLE), 60, seed=3)
    return import_instance(instance)


def _replay(workflow, engine):
    return replay_instance(
        workflow,
        seed=0,
        runtime="model",
        capacity=FixedCapacity(32),
        options=DagmanOptions(max_idle=0, submit_batch=60),
        engine=engine,
    )


class TestPoolReplayIdentity:
    @pytest.mark.parametrize("engine", ["reference", "vector"])
    def test_records_bit_identical_with_obs_enabled(self, small_workflow, engine):
        bare = _replay(small_workflow, engine)
        with obs.observe() as session:
            observed = _replay(small_workflow, engine)
        assert observed.metrics.records == bare.metrics.records
        # And the run really was observed, not silently skipped.
        assert session.registry.counter_total("repro_pool_jobs_total") == len(
            bare.metrics.records
        )

    def test_exports_byte_identical_across_runs(self, small_workflow):
        def export_once():
            with obs.observe() as session:
                _replay(small_workflow, "vector")
            return (
                dump_chrome_trace(session.tracer),
                prometheus_text(session.registry),
            )

        assert export_once() == export_once()


class TestServeDemoIdentity:
    def _demo(self):
        return run_service_demo(
            n_tenants=3, n_submissions=12, n_distinct=2, seed=7,
            n_workers=2, runner=SimulatedRunner(),
        )

    def test_products_bit_identical_with_obs_enabled(self):
        bare = self._demo()
        with obs.observe() as session:
            observed = self._demo()
        assert observed.trace == bare.trace
        assert observed.results == bare.results
        assert observed.stats == bare.stats
        assert session.registry.counter_total("repro_service_admissions_total") > 0

    def test_exports_byte_identical_across_runs(self):
        def export_once():
            with obs.observe() as session:
                report = self._demo()
                service_timeline(
                    report.trace, report.results, tracer=session.tracer
                )
            return (
                dump_chrome_trace(session.tracer),
                prometheus_text(session.registry),
            )

        assert export_once() == export_once()
