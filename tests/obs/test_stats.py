"""Tests for the shared percentile helpers (repro.obs.stats)."""

import numpy as np
import pytest

from repro.errors import ObsError
from repro.obs.stats import percentile, percentiles


class TestPercentiles:
    def test_empty_returns_zero_per_request(self):
        assert percentiles([], (50.0, 99.0)) == [0.0, 0.0]
        assert percentile([], 50.0) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ObsError, match=r"\[0, 100\]"):
            percentiles([1.0], (101.0,))
        with pytest.raises(ObsError, match=r"\[0, 100\]"):
            percentile([1.0], -0.1)

    def test_nearest_rank_picks_observed_values(self):
        values = [4.0, 1.0, 3.0, 2.0]
        # Sorted: [1, 2, 3, 4]; index round(p/100 * 3).
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        # p50 of an even-sized sample: round(1.5) = 2 -> upper middle.
        assert percentile(values, 50.0) == 3.0
        # Never a blend of two observations.
        for p in np.linspace(0, 100, 21):
            assert percentile(values, float(p)) in values

    def test_constant_series(self):
        assert percentiles([5.0] * 7, (1.0, 50.0, 99.0)) == [5.0, 5.0, 5.0]

    def test_singleton(self):
        assert percentiles([2.5], (0.0, 50.0, 100.0)) == [2.5, 2.5, 2.5]

    def test_accepts_ndarray_and_matches_service_convention(self):
        waits = np.arange(101, dtype=float)  # 0..100
        assert percentile(waits, 99.0) == 99.0
        assert percentiles(waits, (50.0,)) == [50.0]

    def test_matches_portal_service_wait_percentile(self):
        """The service's pinned semantics and the shared helper agree."""
        from repro.service import ServiceStats

        stats = ServiceStats()
        stats.queue_waits_s = [10.0, 30.0, 20.0, 50.0, 40.0]
        for p in (0.0, 25.0, 50.0, 75.0, 99.0, 100.0):
            assert stats.wait_percentile(p) == percentile(stats.queue_waits_s, p)
