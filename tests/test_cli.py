"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def config_path(tmp_path):
    """A tiny configuration created through the CLI itself."""
    path = tmp_path / "demo.cfg"
    assert main(["init", str(path), "--waveforms", "16", "--stations", "3"]) == 0
    # Shrink the mesh for test speed.
    text = path.read_text().replace("mesh = 30x15", "mesh = 8x5")
    path.write_text(text)
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_init_writes_readable_config(tmp_path):
    from repro.core.config import FdwConfig

    path = tmp_path / "x.cfg"
    assert main(["init", str(path), "--waveforms", "99"]) == 0
    config = FdwConfig.read(path)
    assert config.n_waveforms == 99
    assert config.name == "x"


def test_run_osg(config_path, capsys):
    assert main(["run", str(config_path), "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "jobs/min" in out
    assert "completed" in out


def test_run_partitioned(config_path, capsys):
    assert main(["run", str(config_path), "--dagmans", "2", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "batch makespan" in out
    assert out.count("=== DAGMan") == 2


def test_run_local(config_path, capsys):
    assert main(["run", str(config_path), "--local"]) == 0
    out = capsys.readouterr().out
    assert "local run: 16 waveform sets" in out
    assert "phase C" in out


def test_trace_and_burst(config_path, tmp_path, capsys):
    out_dir = tmp_path / "traces"
    assert main(["trace", str(config_path), "-o", str(out_dir), "--seed", "2"]) == 0
    batch_csv = out_dir / "demo_batch.csv"
    jobs_csv = out_dir / "demo_jobs.csv"
    assert batch_csv.exists() and jobs_csv.exists()

    omega_csv = tmp_path / "omega.csv"
    assert (
        main(
            [
                "burst",
                str(batch_csv),
                str(jobs_csv),
                "--probe",
                "5",
                "--threshold",
                "1.0",
                "--csv",
                str(omega_csv),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "VDC bursting simulation" in out
    assert omega_csv.exists()


def test_dagfile(config_path, tmp_path, capsys):
    out_dir = tmp_path / "dag"
    assert main(["dagfile", str(config_path), "-o", str(out_dir)]) == 0
    assert (out_dir / "demo.dag").exists()
    subs = list(out_dir.glob("*.sub"))
    assert len(subs) >= 3  # A jobs + B + C jobs


def test_run_local_checkpoint_and_resume(config_path, tmp_path, capsys):
    arch = tmp_path / "arch"
    args = ["run", str(config_path), "--local", "--archive-dir", str(arch)]
    assert main(args + ["--checkpoint"]) == 0
    assert (arch / "manifest.json").exists()
    assert not (arch / "_checkpoint").exists()  # finalized
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "chunks" in out and "resumed" in out


def test_recover_resubmits_remainder(config_path, tmp_path, capsys):
    from repro.core.config import FdwConfig
    from repro.core.workflow import build_fdw_dag

    config = FdwConfig.read(config_path)
    dag = build_fdw_dag(config)
    # The A jobs plus the B job form a consistent DONE prefix.
    done = [n for n in dag.node_names if "_A_" in n or "_B" in n]
    rescue = tmp_path / "demo.dag.rescue001"
    rescue.write_text(
        "# Rescue DAG for demo, attempt 1\n"
        + "".join(f"DONE {n}\n" for n in done)
    )
    assert main(["recover", str(config_path), str(rescue), "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert f"rescued {len(done)} completed node(s)" in out
    assert f"resubmitting the remaining {len(dag) - len(done)}" in out


def test_error_paths_exit_nonzero(tmp_path, capsys):
    assert main(["run", str(tmp_path / "missing.cfg")]) == 1
    assert "error:" in capsys.readouterr().err
    assert main(["burst", str(tmp_path / "a.csv"), str(tmp_path / "b.csv")]) == 1


class TestWfCommands:
    def test_wf_export_import_round_trip(self, config_path, tmp_path, capsys):
        instance_json = tmp_path / "run.json"
        assert main(
            ["wf", "export", str(config_path), "-o", str(instance_json), "--seed", "3"]
        ) == 0
        assert instance_json.exists()
        reexport = tmp_path / "rt.json"
        assert main(
            ["wf", "import", str(instance_json), "--reexport", str(reexport)]
        ) == 0
        assert reexport.read_text() == instance_json.read_text()
        out = capsys.readouterr().out
        assert "tasks" in out and "categories" in out

    def test_wf_generate_deterministic(self, config_path, tmp_path):
        instance_json = tmp_path / "run.json"
        assert main(
            ["wf", "export", str(config_path), "-o", str(instance_json)]
        ) == 0
        gen_a = tmp_path / "gen_a.json"
        gen_b = tmp_path / "gen_b.json"
        for out in (gen_a, gen_b):
            assert main(
                ["wf", "generate", str(instance_json),
                 "-n", "40", "--seed", "9", "-o", str(out)]
            ) == 0
        assert gen_a.read_text() == gen_b.read_text()

    def test_wf_replay_with_burst_and_traces(self, config_path, tmp_path, capsys):
        instance_json = tmp_path / "run.json"
        assert main(
            ["wf", "export", str(config_path), "-o", str(instance_json)]
        ) == 0
        trace_dir = tmp_path / "traces"
        assert main(
            ["wf", "replay", str(instance_json), "--dagmans", "2",
             "--burst", "--trace-dir", str(trace_dir), "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "replay makespan" in out
        assert out.count("=== VDC bursting simulation") == 2
        assert len(list(trace_dir.glob("*_batch.csv"))) == 2
        assert len(list(trace_dir.glob("*_jobs.csv"))) == 2

    def test_wf_import_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not valid json")
        assert main(["wf", "import", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


def test_run_local_gf_dtype_override(config_path, capsys):
    assert main(["run", str(config_path), "--local", "--gf-dtype", "float32"]) == 0
    out = capsys.readouterr().out
    assert "local run: 16 waveform sets" in out


def test_gf_dtype_choices_enforced(config_path):
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["run", str(config_path), "--gf-dtype", "float16"]
        )


def test_serve_demo(capsys):
    assert (
        main(
            [
                "serve",
                "--tenants",
                "3",
                "--submissions",
                "12",
                "--distinct",
                "2",
                "--seed",
                "5",
                "--workers",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "portal service demo (seed 5, backend 'sim')" in out
    assert "coalescing hit rate" in out
    assert "queue wait p50" in out
    assert "executions started per tenant:" in out


def test_serve_deterministic(capsys):
    args = ["serve", "--tenants", "2", "--submissions", "8", "--seed", "1"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_serve_backend_choices_enforced():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--backend", "cloud"])
