"""Shared fixtures.

Expensive objects (geometries, GF banks, pool runs) are session-scoped:
they are deterministic for a given seed, so sharing them across tests is
safe and keeps the suite fast on one core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FdwConfig
from repro.core.submit_osg import FdwBatchResult, run_fdw_batch
from repro.osg.capacity import FixedCapacity
from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import FaultGeometry, build_chile_slab
from repro.seismo.greens import GreensFunctionBank, compute_gf_bank
from repro.seismo.ruptures import Rupture, RuptureGenerator
from repro.seismo.stations import StationNetwork, chilean_network


@pytest.fixture(scope="session")
def small_geometry() -> FaultGeometry:
    """A compact 10x6 fault mesh for unit tests."""
    return build_chile_slab(n_strike=10, n_dip=6)


@pytest.fixture(scope="session")
def small_network() -> StationNetwork:
    """An 8-station synthetic Chilean network."""
    return chilean_network(8)


@pytest.fixture(scope="session")
def small_distances(small_geometry: FaultGeometry) -> DistanceMatrices:
    """Distance matrices for the small mesh."""
    return DistanceMatrices.from_geometry(small_geometry)


@pytest.fixture(scope="session")
def small_gf_bank(
    small_geometry: FaultGeometry, small_network: StationNetwork
) -> GreensFunctionBank:
    """GF bank for the small mesh/network pair."""
    return compute_gf_bank(small_geometry, small_network)


@pytest.fixture(scope="session")
def rupture_generator(
    small_geometry: FaultGeometry, small_distances: DistanceMatrices
) -> RuptureGenerator:
    """Rupture generator on the small mesh."""
    return RuptureGenerator(small_geometry, distances=small_distances)


@pytest.fixture(scope="session")
def sample_rupture(rupture_generator: RuptureGenerator) -> Rupture:
    """One deterministic rupture."""
    return rupture_generator.generate(
        np.random.default_rng(7), rupture_id="test.000000", target_mw=8.0
    )


@pytest.fixture(scope="session")
def tiny_fdw_config() -> FdwConfig:
    """A 64-waveform FDW configuration (577 jobs would be overkill)."""
    return FdwConfig(n_waveforms=64, n_stations=12, mesh=(8, 5), name="tinyfdw")


@pytest.fixture(scope="session")
def tiny_batch_result(tiny_fdw_config: FdwConfig) -> FdwBatchResult:
    """One completed pool run of the tiny FDW on fixed capacity."""
    return run_fdw_batch(
        tiny_fdw_config, capacity=FixedCapacity(slots=24), seed=42
    )
