"""Deterministic fault-injection plans (repro.faults)."""

import pytest

from repro.condor.dagfile import DagDescription
from repro.condor.jobs import JobPayload, JobSpec
from repro.core.monitor import DagmanStats
from repro.errors import ReproError
from repro.faults import ChunkCrash, FaultInjected, FaultPlan, PoolFault
from repro.osg.capacity import FixedCapacity
from repro.osg.pool import OSPoolConfig, OSPoolSimulator, verify_exactly_once
from repro.osg.transfer import TransferConfig


def test_chunk_crash_validation():
    with pytest.raises(ReproError, match="phases A/C"):
        ChunkCrash("B", 1)
    with pytest.raises(ReproError, match=">= 1"):
        ChunkCrash("A", 0)


def test_pool_fault_validation():
    with pytest.raises(ReproError, match="unknown pool fault"):
        PoolFault("nuke", 10.0)
    with pytest.raises(ReproError, match=">= 0"):
        PoolFault("evict", -1.0)
    with pytest.raises(ReproError, match="requires a dagman"):
        PoolFault("kill-dagman", 10.0)


def test_seeded_plans_are_deterministic_and_mid_phase():
    a = FaultPlan.seeded(5, n_a_chunks=10, n_c_chunks=8)
    b = FaultPlan.seeded(5, n_a_chunks=10, n_c_chunks=8)
    assert a.crashes == b.crashes
    assert [c.phase for c in a.crashes] == ["A", "C"]
    for crash, n in zip(a.crashes, (10, 8)):
        assert 1 <= crash.after_chunks <= n - 1
    # Different seeds explore different crash points.
    assert any(
        FaultPlan.seeded(s, n_a_chunks=10, n_c_chunks=8).crashes != a.crashes
        for s in range(6, 20)
    )
    # Single-chunk phases get no crash (nothing mid-phase to hit).
    assert FaultPlan.seeded(5, n_a_chunks=1, n_c_chunks=1).crashes == ()


def test_chunk_crash_fires_exactly_once():
    plan = FaultPlan(crashes=(ChunkCrash("A", 2),))
    plan.chunk_completed("A")
    with pytest.raises(FaultInjected, match="2 completed A chunk"):
        plan.chunk_completed("A")
    # Counters keep advancing but the crash never refires (resume leg).
    for _ in range(5):
        plan.chunk_completed("A")
    plan.chunk_completed("C")  # other phases unaffected


def _flat_dag(n_jobs, name="f"):
    dag = DagDescription(name)
    for i in range(n_jobs):
        dag.add_job(
            f"{name}_{i}",
            JobSpec(name=f"{name}_{i}", payload=JobPayload(phase="A", n_items=1, n_stations=2)),
        )
    return dag


def test_install_schedules_pool_faults(tmp_path):
    """install() drives the simulator's injection hooks: the run sees the
    planned evictions and holds yet still completes every node once."""
    dag = _flat_dag(8)
    pool = OSPoolSimulator(
        config=OSPoolConfig(
            transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
            success_prob=1.0,
            hold_release_s=20.0,
        ),
        capacity=FixedCapacity(4),
        seed=0,
        rescue_dir=tmp_path,
    )
    pool.submit_dagman(dag)
    plan = FaultPlan(
        pool_faults=(
            PoolFault("evict", 30.0, count=2),
            PoolFault("hold", 60.0, count=1),
        )
    )
    plan.install(pool)
    metrics = pool.run()
    verify_exactly_once(dag, metrics)
    stats = DagmanStats.from_log_text(pool.dagman_runs["f"].user_log.render())
    assert sum(j.n_evictions for j in stats.jobs.values()) == 2
    assert sum(j.n_holds for j in stats.jobs.values()) == 1


def test_install_kill_dagman(tmp_path):
    dag = _flat_dag(12)
    pool = OSPoolSimulator(
        config=OSPoolConfig(
            transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
            success_prob=1.0,
        ),
        capacity=FixedCapacity(2),
        seed=0,
        rescue_dir=tmp_path,
    )
    pool.submit_dagman(dag)
    FaultPlan(pool_faults=(PoolFault("kill-dagman", 50.0, dagman="f"),)).install(pool)
    pool.run()
    run = pool.dagman_runs["f"]
    assert run.dead
    assert run.rescue_file is not None


# -- PR 8 fault models: flakes, storage faults, transfer faults, outages ------


def test_transient_fault_is_retryable_fault():
    from repro.faults import TransientFault
    from repro.resilience import is_retryable

    exc = TransientFault("flaky")
    assert isinstance(exc, FaultInjected)
    assert is_retryable(exc)
    assert not is_retryable(FaultInjected("crash"))  # crashes are terminal


def test_chunk_flake_validation():
    from repro.faults import ChunkFlake

    with pytest.raises(ReproError, match="phases A/C"):
        ChunkFlake("B", 0)
    with pytest.raises(ReproError, match="index"):
        ChunkFlake("A", -1)
    with pytest.raises(ReproError, match="times"):
        ChunkFlake("A", 0, times=0)


def test_chunk_attempt_fails_first_n_attempts_only():
    from repro.faults import ChunkFlake, TransientFault

    plan = FaultPlan(flakes=(ChunkFlake("A", 1, times=2),))
    plan.chunk_attempt("A", 0)  # other chunks unaffected
    plan.chunk_attempt("C", 1)  # other phases unaffected
    for attempt in (1, 2):
        with pytest.raises(TransientFault, match=f"attempt {attempt}"):
            plan.chunk_attempt("A", 1)
    plan.chunk_attempt("A", 1)  # third attempt succeeds


def test_storage_fault_bitflip_and_truncate(tmp_path):
    from repro.faults import StorageFault

    with pytest.raises(ReproError, match="unknown storage fault"):
        StorageFault("shred")
    original = bytes(range(256)) * 4
    flip_path = tmp_path / "a.npz"
    flip_path.write_bytes(original)
    StorageFault("bitflip", seed=3).apply(flip_path)
    flipped = flip_path.read_bytes()
    assert len(flipped) == len(original)
    assert sum(a != b for a, b in zip(flipped, original)) == 1  # one byte
    # Same seed, same filename -> same corruption (replayable chaos).
    flip_path.write_bytes(original)
    StorageFault("bitflip", seed=3).apply(flip_path)
    assert flip_path.read_bytes() == flipped

    cut_path = tmp_path / "b.npz"
    cut_path.write_bytes(original)
    StorageFault("truncate", seed=3).apply(cut_path)
    cut = cut_path.read_bytes()
    assert len(cut) < len(original)
    assert cut == original[: len(cut)]

    empty = tmp_path / "empty"
    empty.write_bytes(b"")
    with pytest.raises(ReproError, match="empty"):
        StorageFault().apply(empty)


def test_transfer_faults_validation_and_draws():
    from repro.faults import TransferFaults

    with pytest.raises(ReproError):
        TransferFaults(failure_prob=1.0)
    with pytest.raises(ReproError):
        TransferFaults(slow_prob=-0.1)
    with pytest.raises(ReproError):
        TransferFaults(slow_factor=0.5)

    model = TransferFaults(failure_prob=0.4, slow_prob=0.3, slow_factor=5.0, seed=2)
    draws = [model.draw() for _ in range(50)]
    assert model.n_failures == sum(f for f, _ in draws)
    assert model.n_slow == sum(m != 1.0 for _, m in draws)
    assert {m for _, m in draws} <= {1.0, 5.0}
    assert 0 < model.n_failures < 50  # both outcomes explored
    # reset() rewinds the private stream exactly.
    model.reset()
    assert model.n_failures == 0
    assert [model.draw() for _ in range(50)] == draws


def test_transfer_fault_error_is_retryable():
    from repro.errors import TransferError
    from repro.faults import TransferFaults
    from repro.resilience import is_retryable

    exc = TransferFaults().fail_now("stash glitch")
    assert isinstance(exc, TransferError)
    assert is_retryable(exc)


def test_site_outage_window():
    from repro.faults import SiteOutage

    with pytest.raises(ReproError):
        SiteOutage("", 0.0, 1.0)
    with pytest.raises(ReproError):
        SiteOutage("s", 5.0, 5.0)
    out = SiteOutage("s", 10.0, 20.0)
    assert not out.active(9.9)
    assert out.active(10.0)
    assert out.active(19.9)
    assert not out.active(20.0)  # half-open interval
