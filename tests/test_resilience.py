"""Tests for repro.resilience (retry/backoff, circuit breakers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CircuitOpenError,
    SimulationError,
    TransferError,
)
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
    is_retryable,
    retry_call,
)


# -- RetryPolicy --------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(SimulationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(SimulationError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(SimulationError):
        RetryPolicy(base_delay_s=5.0, max_delay_s=1.0)


def test_unjittered_schedule_doubles():
    policy = RetryPolicy(max_attempts=5, base_delay_s=1.0, max_delay_s=6.0, jitter=False)
    assert policy.delays() == [1.0, 2.0, 4.0, 6.0]  # capped at max_delay_s


def test_jittered_delays_need_a_generator():
    with pytest.raises(SimulationError, match="Generator"):
        RetryPolicy().delays()


def test_jittered_schedule_bounded_and_deterministic():
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.5, max_delay_s=10.0)
    a = policy.schedule(7, "transfer", "job-3")
    b = policy.schedule(7, "transfer", "job-3")
    assert a == b  # same (seed, keys) -> identical schedule
    assert len(a) == 5
    prev = policy.base_delay_s
    for delay in a:
        hi = min(policy.max_delay_s, max(policy.base_delay_s, 3.0 * prev))
        assert policy.base_delay_s <= delay <= hi
        prev = delay
    assert policy.schedule(7, "transfer", "job-4") != a  # key path matters
    assert policy.schedule(8, "transfer", "job-3") != a  # seed matters


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    attempts=st.integers(min_value=2, max_value=8),
    base=st.floats(min_value=0.01, max_value=2.0),
)
def test_same_seed_same_schedule_property(seed, attempts, base):
    """Satellite (d): a retry schedule is a pure function of
    (policy, seed, key path) — the determinism the chaos campaigns pin."""
    policy = RetryPolicy(max_attempts=attempts, base_delay_s=base, max_delay_s=30.0)
    first = policy.schedule(seed, "transfer", "w17")
    assert first == policy.schedule(seed, "transfer", "w17")
    assert all(base <= d <= 30.0 for d in first)


# -- retry_call ---------------------------------------------------------------


def flaky(times, exc_factory=lambda n: TransferError(f"glitch {n}")):
    calls = []

    def fn():
        calls.append(None)
        if len(calls) <= times:
            raise exc_factory(len(calls))
        return "ok"

    fn.calls = calls
    return fn


def test_first_try_success_has_no_delays():
    out = retry_call(lambda: 42, seed=0)
    assert (out.value, out.attempts, out.delays) == (42, 1, [])
    assert out.total_delay_s == 0.0


def test_retries_retryable_until_success():
    fn = flaky(2)
    observed = []
    out = retry_call(
        fn,
        seed=3,
        keys=("t", 1),
        on_retry=lambda n, exc, d: observed.append((n, d)),
    )
    assert out.value == "ok" and out.attempts == 3
    assert len(out.delays) == 2 and out.total_delay_s == sum(out.delays)
    assert observed == [(1, out.delays[0]), (2, out.delays[1])]
    # The incurred delays are the head of the seeded schedule.
    assert out.delays == RetryPolicy().schedule(3, "t", 1)[:2]


def test_non_retryable_raises_immediately():
    fn = flaky(5, exc_factory=lambda n: KeyError("bug"))
    with pytest.raises(KeyError):
        retry_call(fn, seed=0)
    assert len(fn.calls) == 1


def test_exhaustion_raises_last_error():
    fn = flaky(99)
    with pytest.raises(TransferError, match="glitch 3"):
        retry_call(fn, policy=RetryPolicy(max_attempts=3), seed=0)
    assert len(fn.calls) == 3


def test_sleep_hook_receives_delays():
    slept = []
    out = retry_call(
        flaky(2), seed=1, sleep=slept.append
    )
    assert slept == out.delays


def test_jittered_call_requires_seed_or_rng():
    with pytest.raises(SimulationError, match="rng= or seed="):
        retry_call(lambda: 1)
    out = retry_call(lambda: 1, rng=np.random.default_rng(0))
    assert out.value == 1


def test_is_retryable_classification():
    assert is_retryable(TransferError("x"))
    assert not is_retryable(SimulationError("x"))
    assert not is_retryable(ZeroDivisionError())


# -- CircuitBreaker -----------------------------------------------------------


def test_breaker_policy_validation():
    with pytest.raises(SimulationError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(SimulationError):
        BreakerPolicy(cooldown_s=-1.0)
    with pytest.raises(SimulationError):
        BreakerPolicy(probe_cost_s=-1.0)


def breaker(**kwargs):
    defaults = dict(failure_threshold=3, cooldown_s=100.0)
    defaults.update(kwargs)
    return CircuitBreaker("osdf-origin", BreakerPolicy(**defaults))


def test_trips_after_consecutive_failures_only():
    br = breaker()
    br.record_failure(0.0)
    br.record_failure(1.0)
    br.record_success()  # resets the consecutive count
    br.record_failure(2.0)
    br.record_failure(3.0)
    assert br.state == BREAKER_CLOSED
    br.record_failure(4.0)
    assert br.state == BREAKER_OPEN and br.n_opens == 1


def test_open_rejects_then_half_open_probe():
    br = breaker()
    for t in range(3):
        br.record_failure(float(t))
    assert not br.allow(10.0)  # still cooling down
    assert br.n_rejected == 1
    assert br.allow(2.0 + 100.0)  # cooldown elapsed: the probe is admitted
    assert br.state == BREAKER_HALF_OPEN
    assert not br.allow(103.0)  # second caller rejected while probing
    br.record_success()
    assert br.state == BREAKER_CLOSED


def test_half_open_failure_reopens():
    br = breaker()
    for t in range(3):
        br.record_failure(float(t))
    assert br.allow(102.0)
    br.record_failure(102.0)
    assert br.state == BREAKER_OPEN and br.n_opens == 2
    assert not br.allow(103.0)  # cooldown restarted from the re-open
    assert br.allow(202.0)


def test_would_allow_never_mutates():
    br = breaker()
    for t in range(3):
        br.record_failure(float(t))
    assert not br.would_allow(10.0)
    assert br.would_allow(200.0)  # cooldown elapsed...
    assert br.state == BREAKER_OPEN  # ...but no transition happened
    assert br.n_rejected == 0
    br.allow(200.0)
    assert br.state == BREAKER_HALF_OPEN
    assert not br.would_allow(999.0)  # probe in flight


def test_call_wraps_and_raises_circuit_open():
    br = breaker(failure_threshold=1)
    with pytest.raises(TransferError):
        br.call(lambda: (_ for _ in ()).throw(TransferError("down")), now=0.0)
    assert br.state == BREAKER_OPEN
    with pytest.raises(CircuitOpenError, match="osdf-origin"):
        br.call(lambda: "never", now=1.0)
    assert br.call(lambda: "back", now=101.0) == "back"
    assert br.state == BREAKER_CLOSED


def test_snapshot_reports_state_and_cooldown():
    br = breaker()
    snap = br.snapshot()
    assert snap == {
        "name": "osdf-origin",
        "state": BREAKER_CLOSED,
        "consecutive_failures": 0,
        "n_opens": 0,
        "n_rejected": 0,
    }
    for t in range(3):
        br.record_failure(float(t))
    snap = br.snapshot(now=42.0)
    assert snap["state"] == BREAKER_OPEN
    assert snap["cooldown_remaining_s"] == pytest.approx(100.0 - (42.0 - 2.0))
