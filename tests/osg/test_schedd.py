"""Tests for repro.osg.schedd."""

import pytest

from repro.condor.jobs import Job, JobSpec, JobState
from repro.errors import SimulationError
from repro.osg.schedd import ScheddQueue


def idle_job(t=0.0):
    job = Job(JobSpec(name="j"))
    job.transition(JobState.IDLE, t)
    return job


def test_fifo_order():
    q = ScheddQueue("q")
    a, b = idle_job(), idle_job()
    q.enqueue("na", a)
    q.enqueue("nb", b)
    assert q.pop() == ("na", a)
    assert q.pop() == ("nb", b)


def test_front_requeue():
    q = ScheddQueue("q")
    a, b = idle_job(), idle_job()
    q.enqueue("na", a)
    q.enqueue("nb", b, front=True)
    assert q.pop()[0] == "nb"


def test_len_and_n_idle():
    q = ScheddQueue("q")
    assert len(q) == 0 and q.n_idle == 0
    q.enqueue("n", idle_job())
    assert len(q) == 1 and q.n_idle == 1


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        ScheddQueue("q").pop()


def test_enqueue_requires_idle_state():
    q = ScheddQueue("q")
    job = Job(JobSpec(name="j"))  # still UNSUBMITTED
    with pytest.raises(SimulationError):
        q.enqueue("n", job)


def test_peek_oldest_wait():
    q = ScheddQueue("q")
    assert q.peek_oldest_wait(100.0) is None
    q.enqueue("n", idle_job(t=10.0))
    q.enqueue("m", idle_job(t=50.0))
    assert q.peek_oldest_wait(100.0) == pytest.approx(90.0)


def test_peek_oldest_wait_skips_unset_submit_time():
    """Regression: an entry whose job has no submit_time must be skipped.

    The seed crashed (TypeError on float - None) when the head job's
    submit_time was unset — reachable when a caller enqueues a job that
    reached IDLE through a path that never stamped submission.
    """
    q = ScheddQueue("q")
    ghost = Job(JobSpec(name="ghost"))
    ghost.state = JobState.IDLE  # IDLE but never stamped
    q.enqueue("ghost", ghost)
    assert q.peek_oldest_wait(100.0) is None
    q.enqueue("real", idle_job(t=40.0))
    assert q.peek_oldest_wait(100.0) == pytest.approx(60.0)


def test_enqueue_many_preserves_fifo():
    q = ScheddQueue("q")
    jobs = [idle_job() for _ in range(3)]
    q.enqueue_many([(f"n{i}", j) for i, j in enumerate(jobs)])
    assert q.n_idle == 3
    assert [q.pop()[0] for _ in range(3)] == ["n0", "n1", "n2"]


def test_pop_many():
    q = ScheddQueue("q")
    jobs = [idle_job() for _ in range(4)]
    for i, j in enumerate(jobs):
        q.enqueue(f"n{i}", j)
    batch = q.pop_many(3)
    assert [name for name, _ in batch] == ["n0", "n1", "n2"]
    assert q.n_idle == 1
    assert q.pop_many(0) == []
    with pytest.raises(SimulationError):
        q.pop_many(2)  # only one left
    with pytest.raises(SimulationError):
        q.pop_many(-1)
