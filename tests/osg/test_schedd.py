"""Tests for repro.osg.schedd."""

import pytest

from repro.condor.jobs import Job, JobSpec, JobState
from repro.errors import SimulationError
from repro.osg.schedd import ScheddQueue


def idle_job(t=0.0):
    job = Job(JobSpec(name="j"))
    job.transition(JobState.IDLE, t)
    return job


def test_fifo_order():
    q = ScheddQueue("q")
    a, b = idle_job(), idle_job()
    q.enqueue("na", a)
    q.enqueue("nb", b)
    assert q.pop() == ("na", a)
    assert q.pop() == ("nb", b)


def test_front_requeue():
    q = ScheddQueue("q")
    a, b = idle_job(), idle_job()
    q.enqueue("na", a)
    q.enqueue("nb", b, front=True)
    assert q.pop()[0] == "nb"


def test_len_and_n_idle():
    q = ScheddQueue("q")
    assert len(q) == 0 and q.n_idle == 0
    q.enqueue("n", idle_job())
    assert len(q) == 1 and q.n_idle == 1


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        ScheddQueue("q").pop()


def test_enqueue_requires_idle_state():
    q = ScheddQueue("q")
    job = Job(JobSpec(name="j"))  # still UNSUBMITTED
    with pytest.raises(SimulationError):
        q.enqueue("n", job)


def test_peek_oldest_wait():
    q = ScheddQueue("q")
    assert q.peek_oldest_wait(100.0) is None
    q.enqueue("n", idle_job(t=10.0))
    q.enqueue("m", idle_job(t=50.0))
    assert q.peek_oldest_wait(100.0) == pytest.approx(90.0)
