"""Tests for repro.osg.jobtable."""

import numpy as np
import pytest

from repro.condor.jobs import Job, JobSpec, JobState
from repro.errors import JobStateError
from repro.osg.jobtable import JobTable, JobView


def specs(n, prefix="job"):
    return [JobSpec(name=f"{prefix}{i}") for i in range(n)]


def table_with(n, submit_time=10.0, cluster_start=100):
    table = JobTable()
    names = [f"node{i}" for i in range(n)]
    rows = table.add_batch(names, specs(n), 0, cluster_start, submit_time)
    return table, rows


def test_add_batch_initial_state():
    table, rows = table_with(3)
    assert rows == range(0, 3)
    assert len(table) == 3
    assert [JobView(table, i).state for i in rows] == [JobState.IDLE] * 3
    assert [JobView(table, i).cluster_id for i in rows] == [100, 101, 102]
    assert [JobView(table, i).submit_time for i in rows] == [10.0] * 3
    assert table.node_names == ["node0", "node1", "node2"]


def test_add_batch_length_mismatch():
    with pytest.raises(JobStateError):
        JobTable().add_batch(["a"], specs(2), 0, 1, 0.0)


def test_growth_preserves_rows():
    table = JobTable(capacity=2)
    for batch in range(10):
        table.add_batch(
            [f"n{batch}-{i}" for i in range(7)],
            specs(7, prefix=f"b{batch}-"),
            batch,
            batch * 7 + 1,
            float(batch),
        )
    assert len(table) == 70
    assert len(table.state) >= 70
    # Earliest rows survived every doubling.
    assert JobView(table, 0).cluster_id == 1
    assert JobView(table, 0).submit_time == 0.0
    assert int(table.dagman[69]) == 9
    assert np.all(table.state[:70] == table.state[0])


def test_transitions_mirror_job():
    """Drive a row and a Job through the same path; fields must agree."""
    table, _ = table_with(1, submit_time=5.0)
    view = table.view(0)
    job = Job(JobSpec(name="job0"))
    job.transition(JobState.IDLE, 5.0)
    path = [
        (JobState.RUNNING, 20.0),
        (JobState.IDLE, 30.0),  # eviction re-queue
        (JobState.RUNNING, 40.0),
        (JobState.COMPLETED, 90.0),
    ]
    for state, t in path:
        view.transition(state, t)
        job.transition(state, t)
        assert view.state is job.state
        assert view.submit_time == job.submit_time
        assert view.start_time == job.start_time
        assert view.end_time == job.end_time
    assert view.wait_time == job.wait_time == 35.0
    assert view.execution_time == job.execution_time == 50.0
    assert view.is_terminal and job.is_terminal


def test_illegal_transition_message_matches_job():
    table, _ = table_with(1, cluster_start=7)
    job = Job(JobSpec(name="job0"), cluster_id=7)
    job.transition(JobState.IDLE, 10.0)
    with pytest.raises(JobStateError) as view_err:
        table.transition(0, JobState.COMPLETED, 20.0)
    with pytest.raises(JobStateError) as job_err:
        job.transition(JobState.COMPLETED, 20.0)
    assert str(view_err.value) == str(job_err.value)


def test_requeue_clears_start_and_slot():
    table, _ = table_with(1)
    view = table.view(0)
    view.transition(JobState.RUNNING, 20.0)
    table.slot[0] = 42
    assert view.slot_name == "slot-42"
    view.transition(JobState.IDLE, 25.0)
    assert view.start_time is None
    assert view.slot_name is None
    assert view.n_retries == 1
    assert view.submit_time == 10.0  # submission stamp survives re-queue


def test_unset_timestamps_are_none():
    table, _ = table_with(1)
    view = table.view(0)
    assert view.start_time is None
    assert view.end_time is None
    assert view.wait_time is None
    assert view.execution_time is None
    assert not view.is_terminal


def test_view_bounds_checked():
    table, _ = table_with(2)
    with pytest.raises(JobStateError):
        table.view(2)
    with pytest.raises(JobStateError):
        table.view(-1)


def test_capacity_validation():
    with pytest.raises(JobStateError):
        JobTable(capacity=0)
