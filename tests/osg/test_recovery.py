"""Failure recovery: rescue files, resubmission, HELD/RELEASED, and
fault injection on the OSPool simulator."""

import pytest

from repro.condor.dagfile import DagDescription, DagNode
from repro.condor.events import JobEventType, parse_user_log
from repro.condor.jobs import JobPayload, JobSpec
from repro.condor.rescue import read_rescue_file
from repro.core.config import FdwConfig
from repro.core.monitor import DagmanStats
from repro.core.workflow import build_fdw_dag
from repro.errors import SimulationError
from repro.osg.capacity import FixedCapacity
from repro.osg.metrics import PoolMetrics
from repro.osg.pool import (
    OSPoolConfig,
    OSPoolSimulator,
    resubmit_with_rescue,
    verify_exactly_once,
)
from repro.osg.transfer import TransferConfig


def flat_dag(n_jobs=8, retries=0, name="r"):
    dag = DagDescription(name)
    for i in range(n_jobs):
        dag.add_job(
            f"{name}_{i}",
            JobSpec(name=f"{name}_{i}", payload=JobPayload(phase="A", n_items=1, n_stations=2)),
            retries=retries,
        )
    return dag


def pool_config(**kwargs):
    kwargs.setdefault("transfer", TransferConfig(setup_overhead_s=1.0, include_image=False))
    kwargs.setdefault("success_prob", 1.0)
    return OSPoolConfig(**kwargs)


def make_pool(tmp_path, seed=0, slots=4, **cfg_kwargs):
    return OSPoolSimulator(
        config=pool_config(**cfg_kwargs),
        capacity=FixedCapacity(slots),
        seed=seed,
        rescue_dir=tmp_path / "rescue",
    )


# -- rescue files on death -----------------------------------------------------


def test_dead_dagman_writes_rescue_file(tmp_path):
    pool = make_pool(tmp_path, seed=3, success_prob=0.5)
    pool.submit_dagman(flat_dag(8))
    pool.run()
    run = pool.dagman_runs["r"]
    assert run.dead
    assert run.rescue_file is not None
    assert run.rescue_file.name == "r.dag.rescue001"
    done = read_rescue_file(run.rescue_file)
    # The rescue snapshot is exactly the successful nodes of attempt 1.
    succeeded = {rec.node_name for rec in pool._records if rec.success}
    assert set(done) == succeeded
    assert 0 < len(done) < 8  # seed 3 at p=0.5: some succeed, some fail


def test_no_rescue_dir_means_no_rescue_file(tmp_path):
    pool = OSPoolSimulator(
        config=pool_config(success_prob=0.5), capacity=FixedCapacity(4), seed=3
    )
    pool.submit_dagman(flat_dag(8))
    pool.run()
    run = pool.dagman_runs["r"]
    assert run.dead
    assert run.rescue_file is None


def test_rescue_roundtrip_exactly_once(tmp_path):
    """Acceptance: terminal failure -> rescue file -> resubmission runs
    only the remaining nodes; merged metrics + parsed user logs account
    for every node exactly once."""
    dag = flat_dag(12)
    pool1 = make_pool(tmp_path, seed=3, success_prob=0.5)
    pool1.submit_dagman(dag)
    metrics1 = pool1.run()
    run1 = pool1.dagman_runs["r"]
    assert run1.dead and run1.rescue_file is not None
    done1 = set(read_rescue_file(run1.rescue_file))

    pool2, run2 = resubmit_with_rescue(
        dag,
        run1.rescue_file,
        config=pool_config(),  # p=1: the retry attempt succeeds
        capacity=FixedCapacity(4),
        seed=7,
        rescue_dir=tmp_path / "rescue",
    )
    metrics2 = pool2.run()
    assert run2.engine.is_complete
    # Attempt 2 ran only the remainder.
    attempt2_nodes = {rec.node_name for rec in metrics2.records}
    assert attempt2_nodes == set(dag.node_names) - done1

    merged = PoolMetrics.merged([metrics1, metrics2])
    verify_exactly_once(dag, merged)
    assert merged.dagmans["r"].n_jobs == 24  # both attempts' summaries merged

    # Cross-check through the monitoring pipeline: completions across
    # both user logs sum to the DAG size, failures only in attempt 1.
    stats1 = DagmanStats.from_log_text(pool1.dagman_runs["r"].user_log.render())
    stats2 = DagmanStats.from_log_text(pool2.dagman_runs["r"].user_log.render())
    assert stats1.n_completed + stats2.n_completed == len(dag)
    assert stats1.n_failed == 12 - len(done1)
    assert stats2.n_failed == 0


def test_run_until_interrupt_writes_rescue_and_resumes(tmp_path):
    dag = flat_dag(40)
    pool1 = make_pool(tmp_path, seed=1, slots=2)
    pool1.submit_dagman(dag)
    metrics1 = pool1.run(until=400.0)
    run1 = pool1.dagman_runs["r"]
    assert not run1.engine.is_complete
    assert run1.rescue_file is not None
    done1 = set(read_rescue_file(run1.rescue_file))
    assert done1  # partial progress was snapshotted

    pool2, run2 = resubmit_with_rescue(
        dag,
        run1.rescue_file,
        config=pool_config(),
        capacity=FixedCapacity(4),
        seed=2,
    )
    metrics2 = pool2.run()
    assert run2.engine.is_complete
    verify_exactly_once(dag, PoolMetrics.merged([metrics1, metrics2]))


def test_rescue_attempt_numbers_increment(tmp_path):
    for seed in (3, 4):
        pool = make_pool(tmp_path, seed=seed, success_prob=0.5)
        pool.submit_dagman(flat_dag(8))
        pool.run()
        assert pool.dagman_runs["r"].dead
    names = sorted(p.name for p in (tmp_path / "rescue").iterdir())
    assert names == ["r.dag.rescue001", "r.dag.rescue002"]


def test_verify_exactly_once_rejects_rerun_and_loss(tmp_path):
    dag = flat_dag(4)
    pool = make_pool(tmp_path)
    pool.submit_dagman(dag)
    metrics = pool.run()
    verify_exactly_once(dag, metrics)
    with pytest.raises(SimulationError, match="exactly once"):
        verify_exactly_once(dag, PoolMetrics.merged([metrics, metrics]))  # duplicated
    with pytest.raises(SimulationError, match="exactly once"):
        verify_exactly_once(dag, PoolMetrics(records=[], dagmans=dict(metrics.dagmans)))


# -- kill_dagman ---------------------------------------------------------------


def test_kill_dagman_mid_flight(tmp_path):
    config = FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="fdw")
    dag = build_fdw_dag(config)
    pool1 = make_pool(tmp_path, slots=2)
    pool1.submit_dagman(dag, name="fdw")
    pool1.sim.schedule_at(300.0, lambda: pool1.kill_dagman("fdw"))
    metrics1 = pool1.run()
    run1 = pool1.dagman_runs["fdw"]
    assert run1.dead and run1.finished
    assert run1.rescue_file is not None
    done1 = set(read_rescue_file(run1.rescue_file))
    assert 0 < len(done1) < len(dag)
    # Killed jobs show up as ABORTED in the user log.
    events = parse_user_log(run1.user_log.render())
    assert any(e.event_type is JobEventType.ABORTED for e in events)

    pool2, run2 = resubmit_with_rescue(
        dag, run1.rescue_file, name="fdw", config=pool_config(), capacity=FixedCapacity(4)
    )
    metrics2 = pool2.run()
    assert run2.engine.is_complete
    verify_exactly_once(dag, PoolMetrics.merged([metrics1, metrics2]))


def test_kill_dagman_validates(tmp_path):
    pool = make_pool(tmp_path)
    pool.submit_dagman(flat_dag(4))
    with pytest.raises(SimulationError, match="unknown"):
        pool.kill_dagman("nope")
    pool.run()
    with pytest.raises(SimulationError, match="finished"):
        pool.kill_dagman("r")


# -- HELD / RELEASED -----------------------------------------------------------


def test_holds_exhaust_then_fail(tmp_path):
    """A job that keeps failing is held max_job_holds times (HELD then
    RELEASED in the log), then fails terminally."""
    pool = make_pool(tmp_path, success_prob=1e-9, max_job_holds=2)
    pool.submit_dagman(flat_dag(1))
    metrics = pool.run()
    run = pool.dagman_runs["r"]
    assert run.dead
    stats = DagmanStats.from_log_text(run.user_log.render())
    job = next(iter(stats.jobs.values()))
    assert job.n_holds == 2
    assert job.failed
    events = parse_user_log(run.user_log.render())
    kinds = [e.event_type for e in events]
    assert kinds.count(JobEventType.HELD) == 2
    assert kinds.count(JobEventType.RELEASED) == 2
    assert kinds.count(JobEventType.EXECUTE) == 3  # initial + 2 releases
    assert kinds.count(JobEventType.TERMINATED) == 1
    # Exactly one terminal record despite three attempts.
    assert len(metrics.records) == 1
    assert not metrics.records[0].success


def test_holds_absorb_transient_failures(tmp_path):
    """With a hold budget, a retry-less DAG survives transient failures
    that would otherwise kill it."""
    dag = flat_dag(8)
    dead_pool = make_pool(tmp_path, seed=3, success_prob=0.5)
    dead_pool.submit_dagman(dag)
    dead_pool.run()
    assert dead_pool.dagman_runs["r"].dead  # without holds: terminal failure

    held_pool = make_pool(tmp_path, seed=3, success_prob=0.5, max_job_holds=20)
    held_pool.submit_dagman(flat_dag(8))
    metrics = held_pool.run()
    run = held_pool.dagman_runs["r"]
    assert run.engine.is_complete
    stats = DagmanStats.from_log_text(run.user_log.render())
    assert sum(j.n_holds for j in stats.jobs.values()) >= 1
    assert stats.n_completed == 8
    verify_exactly_once(flat_dag(8), metrics)


def test_default_config_emits_no_holds(tmp_path):
    """max_job_holds=0 (default) preserves the hold-free behaviour."""
    pool = make_pool(tmp_path, seed=3, success_prob=0.5)
    pool.submit_dagman(flat_dag(8))
    pool.run()
    events = parse_user_log(pool.dagman_runs["r"].user_log.render())
    assert not any(
        e.event_type in (JobEventType.HELD, JobEventType.RELEASED) for e in events
    )


# -- fault injection hooks -----------------------------------------------------


def test_inject_eviction_reconciles_counts(tmp_path):
    """Forced evictions: every node still yields exactly one terminal
    record, and eviction counts agree between PoolMetrics and the
    parsed user log."""
    dag = flat_dag(10)
    pool = make_pool(tmp_path, slots=4)
    pool.submit_dagman(dag)
    evicted = []
    pool.sim.schedule_at(30.0, lambda: evicted.append(pool.inject_eviction(2)))
    pool.sim.schedule_at(60.0, lambda: evicted.append(pool.inject_eviction(1)))
    metrics = pool.run()
    assert evicted == [2, 1]
    verify_exactly_once(dag, metrics)
    # One terminal record per node, none duplicated or lost.
    assert sorted(r.node_name for r in metrics.records) == sorted(dag.node_names)
    # Eviction counts reconcile with the log.
    stats = DagmanStats.from_log_text(pool.dagman_runs["r"].user_log.render())
    assert sum(j.n_evictions for j in stats.jobs.values()) == 3
    by_cluster = {r.cluster_id: r.n_evictions for r in metrics.records}
    for cluster_id, timing in stats.jobs.items():
        assert by_cluster[cluster_id] == timing.n_evictions


def test_inject_hold_releases_and_completes(tmp_path):
    dag = flat_dag(6)
    pool = make_pool(tmp_path, slots=3, hold_release_s=20.0)
    pool.submit_dagman(dag)
    held = []
    pool.sim.schedule_at(10.0, lambda: held.append(pool.inject_hold(2)))
    metrics = pool.run()
    assert held == [2]
    assert pool.dagman_runs["r"].engine.is_complete
    verify_exactly_once(dag, metrics)
    stats = DagmanStats.from_log_text(pool.dagman_runs["r"].user_log.render())
    assert sum(j.n_holds for j in stats.jobs.values()) == 2


def test_injection_validates_count(tmp_path):
    pool = make_pool(tmp_path)
    with pytest.raises(SimulationError):
        pool.inject_eviction(0)
    with pytest.raises(SimulationError):
        pool.inject_hold(0)


# -- merged metrics ------------------------------------------------------------


def test_merged_metrics_spans_attempts():
    from repro.osg.metrics import DagmanSummary, JobRecord

    a = PoolMetrics(
        records=[
            JobRecord(
                node_name="n0", dagman="d", phase="A", cluster_id=1,
                submit_time=0.0, start_time=1.0, end_time=2.0, success=False,
            )
        ],
        dagmans={"d": DagmanSummary(name="d", submit_time=0.0, end_time=2.0, n_jobs=1)},
        capacity_trace=[(0.0, 4)],
    )
    b = PoolMetrics(
        records=[
            JobRecord(
                node_name="n0", dagman="d", phase="A", cluster_id=1,
                submit_time=5.0, start_time=6.0, end_time=7.0, success=True,
            )
        ],
        dagmans={"d": DagmanSummary(name="d", submit_time=5.0, end_time=7.0, n_jobs=1)},
        capacity_trace=[(5.0, 4)],
    )
    merged = PoolMetrics.merged([a, b])
    assert len(merged.records) == 2
    assert merged.dagmans["d"].submit_time == 0.0
    assert merged.dagmans["d"].end_time == 7.0
    assert merged.dagmans["d"].n_jobs == 2
    assert merged.capacity_trace == [(0.0, 4), (5.0, 4)]
    with pytest.raises(SimulationError):
        PoolMetrics.merged([])
