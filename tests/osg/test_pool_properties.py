"""Property-based and failure-injection tests for the pool simulator.

These hammer the DES with randomized workloads and capacity processes
and check the invariants every valid schedule must satisfy — the pool
equivalent of the guide's "make it work reliably before optimizing".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanOptions
from repro.condor.jobs import JobPayload, JobSpec
from repro.core.config import FdwConfig
from repro.core.monitor import DagmanStats
from repro.core.submit_osg import run_fdw_batch
from repro.osg.capacity import FixedCapacity, MarkovModulatedCapacity
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.osg.runtimes import RuntimeModel
from repro.osg.transfer import TransferConfig


def quiet_config(**kwargs):
    defaults = dict(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=1.0,
    )
    defaults.update(kwargs)
    return OSPoolConfig(**defaults)


def random_layer_dag(rng: np.random.Generator, name="rdag") -> DagDescription:
    """A random layered DAG (layers model the FDW's phase structure)."""
    dag = DagDescription(name)
    n_layers = int(rng.integers(1, 4))
    previous: list[str] = []
    for layer in range(n_layers):
        width = int(rng.integers(1, 6))
        names = [f"{name}_{layer}_{i}" for i in range(width)]
        for node in names:
            dag.add_job(
                node,
                JobSpec(name=node, payload=JobPayload(phase="A", n_items=1, n_stations=2)),
            )
        if previous:
            dag.add_edges(previous, names)
        previous = names
    return dag


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_random_dags_complete_with_valid_schedules(seed):
    rng = np.random.default_rng(seed)
    dag = random_layer_dag(rng)
    capacity = FixedCapacity(int(rng.integers(1, 8)))
    pool = OSPoolSimulator(config=quiet_config(), capacity=capacity, seed=seed)
    pool.submit_dagman(dag)
    metrics = pool.run()

    # Every record is time-consistent (enforced at construction, but
    # assert the set covers the whole DAG exactly once).
    assert {r.node_name for r in metrics.records} == set(dag.node_names)
    # Dependency order holds for every edge.
    end_by_node = {r.node_name: r.end_time for r in metrics.records}
    start_by_node = {r.node_name: r.start_time for r in metrics.records}
    for parent in dag.node_names:
        for child in dag.children(parent):
            assert end_by_node[parent] <= start_by_node[child] + 1e-9


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_capacity_is_never_exceeded(seed):
    rng = np.random.default_rng(seed)
    slots = int(rng.integers(1, 5))
    dag = random_layer_dag(rng)
    pool = OSPoolSimulator(
        config=quiet_config(), capacity=FixedCapacity(slots), seed=seed
    )
    pool.submit_dagman(dag)
    metrics = pool.run()
    running = metrics.running_jobs()
    assert running.max() <= slots


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=10, deadline=None)
def test_log_and_recorder_agree_for_random_runs(seed):
    config = FdwConfig(n_waveforms=16, n_stations=3, mesh=(8, 5), name="prop")
    result = run_fdw_batch(config, capacity=FixedCapacity(6), seed=seed)
    stats = DagmanStats.from_log_text(result.user_logs["prop"])
    summary = result.metrics.dagmans["prop"]
    assert stats.runtime_s() == pytest.approx(summary.runtime_s, abs=2.0)
    n_success = sum(1 for r in result.metrics.for_dagman("prop") if r.success)
    assert stats.n_completed == n_success


class TestFailureInjection:
    def test_heavy_failures_with_retries_still_complete(self):
        dag = DagDescription("flaky")
        for i in range(20):
            dag.add_job(
                f"n{i}",
                JobSpec(name=f"n{i}", payload=JobPayload(phase="A")),
                retries=50,
            )
        pool = OSPoolSimulator(
            config=quiet_config(success_prob=0.5),
            capacity=FixedCapacity(4),
            seed=17,
        )
        pool.submit_dagman(dag)
        metrics = pool.run()
        assert pool.dagman_runs["flaky"].engine.is_complete
        failures = [r for r in metrics.records if not r.success]
        assert len(failures) > 3  # p=0.5 over 20+ attempts

    def test_zero_retries_dies_quickly(self):
        dag = DagDescription("fragile")
        for i in range(10):
            dag.add_job(f"n{i}", JobSpec(name=f"n{i}", payload=JobPayload(phase="A")))
        pool = OSPoolSimulator(
            config=quiet_config(success_prob=0.05),
            capacity=FixedCapacity(4),
            seed=3,
        )
        pool.submit_dagman(dag)
        pool.run()
        run = pool.dagman_runs["fragile"]
        assert run.dead and run.finished

    def test_eviction_storm_still_completes(self):
        """Capacity whipsawing between generous and starved: jobs get
        evicted repeatedly but the workload eventually drains."""
        capacity = MarkovModulatedCapacity(
            levels=[6, 1], mean_dwell_s=[120.0, 120.0], jitter=0.0
        )
        dag = DagDescription("stormy")
        for i in range(12):
            dag.add_job(
                f"n{i}",
                JobSpec(
                    name=f"n{i}",
                    payload=JobPayload(phase="A", n_items=30, n_stations=2),
                ),
            )
        pool = OSPoolSimulator(
            config=quiet_config(
                runtime=RuntimeModel(a_base_s=200.0, a_per_rupture_s=0.0, sigma_log=0.0)
            ),
            capacity=capacity,
            seed=5,
        )
        pool.submit_dagman(dag)
        metrics = pool.run()
        assert pool.dagman_runs["stormy"].engine.is_complete
        assert any(r.n_evictions > 0 for r in metrics.records)
        # Evicted jobs waited at least as long as their eviction gaps.
        evicted = [r for r in metrics.records if r.n_evictions > 0]
        for r in evicted:
            assert r.wait_s >= 0

    def test_preemption_disabled_lets_jobs_finish(self):
        capacity = MarkovModulatedCapacity(
            levels=[6, 1], mean_dwell_s=[120.0, 120.0], jitter=0.0
        )
        dag = DagDescription("nopreempt")
        for i in range(8):
            dag.add_job(
                f"n{i}",
                JobSpec(name=f"n{i}", payload=JobPayload(phase="A", n_items=30)),
            )
        pool = OSPoolSimulator(
            config=quiet_config(preemption=False),
            capacity=capacity,
            seed=5,
        )
        pool.submit_dagman(dag)
        metrics = pool.run()
        assert all(r.n_evictions == 0 for r in metrics.records)

    def test_throttled_engine_equivalent_results(self):
        """max_idle changes scheduling but never the set of completed
        work."""
        dag_names = None
        for max_idle in (1, 4, 0):
            config = FdwConfig(
                n_waveforms=12, n_stations=2, mesh=(8, 5), name="thr",
                max_idle=max_idle,
            )
            result = run_fdw_batch(config, capacity=FixedCapacity(4), seed=9)
            names = {r.node_name for r in result.metrics.for_dagman("thr") if r.success}
            if dag_names is None:
                dag_names = names
            assert names == dag_names
