"""Tests for repro.osg.capacity."""

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.osg.capacity import (
    FixedCapacity,
    MarkovModulatedCapacity,
    default_ospool_capacity,
)


def test_fixed_capacity_constant():
    proc = FixedCapacity(slots=100)
    rng = np.random.default_rng(0)
    assert proc.initial(rng) == 100
    dwell, cap = proc.next_change(rng)
    assert cap == 100
    assert dwell > 0


def test_fixed_capacity_validation():
    with pytest.raises(CapacityError):
        FixedCapacity(slots=0)


def test_markov_dwells_positive_and_capacities_near_levels():
    proc = MarkovModulatedCapacity(levels=[50, 100, 200], jitter=0.1)
    rng = np.random.default_rng(1)
    proc.initial(rng)
    for _ in range(200):
        dwell, cap = proc.next_change(rng)
        assert dwell >= 1.0
        assert 40 <= cap <= 225  # levels +/- jitter


def test_markov_no_jitter_exact_levels():
    proc = MarkovModulatedCapacity(levels=[50, 100], jitter=0.0)
    rng = np.random.default_rng(2)
    caps = {proc.next_change(rng)[1] for _ in range(50)}
    assert caps <= {50, 100}


def test_markov_nearest_neighbour_walk():
    proc = MarkovModulatedCapacity(levels=[10, 20, 30], jitter=0.0)
    rng = np.random.default_rng(3)
    proc._state = 0
    _, cap = proc.next_change(rng)
    assert cap == 20  # from the lowest state, must step up


def test_markov_single_state():
    proc = MarkovModulatedCapacity(levels=[64], jitter=0.0)
    rng = np.random.default_rng(4)
    assert proc.initial(rng) == 64
    assert proc.next_change(rng)[1] == 64


def test_markov_custom_transition_matrix():
    t = np.array([[0.0, 1.0], [1.0, 0.0]])
    proc = MarkovModulatedCapacity(levels=[10, 99], mean_dwell_s=60.0, transition=t, jitter=0.0)
    rng = np.random.default_rng(5)
    proc._state = 0
    caps = [proc.next_change(rng)[1] for _ in range(4)]
    assert caps == [99, 10, 99, 10]


def test_markov_validation():
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(levels=[])
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(levels=[0, 10])
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(levels=[10], mean_dwell_s=[1.0, 2.0])
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(levels=[10], mean_dwell_s=-5.0)
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(levels=[10, 20], jitter=1.5)
    with pytest.raises(CapacityError):
        MarkovModulatedCapacity(
            levels=[10, 20], transition=np.array([[0.5, 0.4], [0.5, 0.5]])
        )


def test_markov_deterministic_per_seed():
    a = MarkovModulatedCapacity(levels=[10, 20, 30])
    b = MarkovModulatedCapacity(levels=[10, 20, 30])
    ra, rb = np.random.default_rng(6), np.random.default_rng(6)
    a.initial(ra)
    b.initial(rb)
    assert [a.next_change(ra) for _ in range(10)] == [
        b.next_change(rb) for _ in range(10)
    ]


def test_default_process_statistics():
    proc = default_ospool_capacity()
    rng = np.random.default_rng(7)
    proc.initial(rng)
    samples, weights = [], []
    for _ in range(3000):
        dwell, cap = proc.next_change(rng)
        samples.append(cap)
        weights.append(dwell)
    mean = np.average(samples, weights=weights)
    # Stationary mean calibrated to the mid-200s (DESIGN.md).
    assert 180 < mean < 320
    # Bursts past 400 must occur (the Fig 4 running-job peaks).
    assert max(samples) > 400
