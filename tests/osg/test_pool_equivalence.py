"""Bit-identical equivalence of the vectorized and reference pool engines.

The vectorized engine (struct-of-arrays job table, batched negotiation,
coalesced completion events) must reproduce the reference engine's
output *exactly* — same job records, same DAGMan summaries, same
capacity traces, same rendered user logs, same rescue files — because
both consume the shared RNG streams in the same order. Every scenario
here runs both engines and diffs everything observable.
"""

from pathlib import Path

import pytest

from repro.condor.dagfile import DagDescription
from repro.condor.jobs import JobPayload, JobSpec
from repro.condor.rescue import read_rescue_file
from repro.errors import SimulationError
from repro.osg.capacity import FixedCapacity, MarkovModulatedCapacity
from repro.osg.pool import OSPoolConfig, OSPoolSimulator, resubmit_with_rescue
from repro.osg.runtimes import RuntimeModel
from repro.osg.transfer import TransferConfig
from repro.wf.replay import replay_instance, replay_study

FDW64 = Path(__file__).resolve().parents[2] / "examples" / "fdw64_wfformat.json"

ENGINES = ("reference", "vector")


def flat_dag(n_jobs=10, retries=2, name="e"):
    dag = DagDescription(name)
    for i in range(n_jobs):
        dag.add_job(
            f"{name}_{i}",
            JobSpec(
                name=f"{name}_{i}",
                payload=JobPayload(phase="A", n_items=1, n_stations=2),
            ),
            retries=retries,
        )
    return dag


def pool_outputs(pool, dags, until=None, pre_run=None):
    for dag in dags:
        pool.submit_dagman(dag)
    if pre_run is not None:
        pre_run(pool)
    metrics = pool.run(until=until)
    return metrics, {
        name: run.user_log.render() for name, run in pool.dagman_runs.items()
    }


def assert_same_outputs(make_pool, dags_factory, until=None, pre_run=None):
    """Run the scenario under both engines and diff every observable."""
    results = {}
    for engine in ENGINES:
        results[engine] = pool_outputs(
            make_pool(engine), dags_factory(), until=until, pre_run=pre_run
        )
    (ref_metrics, ref_logs), (vec_metrics, vec_logs) = (
        results["reference"],
        results["vector"],
    )
    assert ref_metrics.records == vec_metrics.records
    assert ref_metrics.dagmans == vec_metrics.dagmans
    assert ref_metrics.capacity_trace == vec_metrics.capacity_trace
    assert ref_logs == vec_logs
    return results


def quiet_config(**kwargs):
    kwargs.setdefault(
        "transfer", TransferConfig(setup_overhead_s=1.0, include_image=False)
    )
    kwargs.setdefault("success_prob", 1.0)
    return OSPoolConfig(**kwargs)


# -- basic scenarios -----------------------------------------------------------


def test_flat_dag_identical():
    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(), capacity=FixedCapacity(4), seed=11, engine=engine
        ),
        lambda: [flat_dag(20)],
    )


def test_failures_and_retries_identical():
    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(success_prob=0.6),
            capacity=FixedCapacity(3),
            seed=5,
            engine=engine,
        ),
        lambda: [flat_dag(15, retries=5)],
    )


def test_concurrent_dagmans_identical():
    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(), capacity=FixedCapacity(5), seed=2, engine=engine
        ),
        lambda: [flat_dag(12, name="x"), flat_dag(12, name="y")],
    )


# -- fault scenarios -----------------------------------------------------------


def test_preemption_under_markov_capacity_identical():
    def make_pool(engine):
        return OSPoolSimulator(
            config=quiet_config(
                runtime=RuntimeModel(a_base_s=500.0, a_per_rupture_s=0.0, sigma_log=0.0)
            ),
            capacity=MarkovModulatedCapacity(
                levels=[8, 1], mean_dwell_s=[200.0, 200.0], jitter=0.0
            ),
            seed=8,
            engine=engine,
        )

    results = assert_same_outputs(make_pool, lambda: [flat_dag(10, retries=3)])
    metrics, _ = results["vector"]
    assert any(r.n_evictions > 0 for r in metrics.records)  # scenario bites


def test_injected_evictions_identical():
    def pre_run(pool):
        for t in (30.0, 60.0, 90.0):
            pool.sim.schedule_at(t, lambda: pool.inject_eviction(2))

    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(), capacity=FixedCapacity(4), seed=4, engine=engine
        ),
        lambda: [flat_dag(16, retries=3)],
        pre_run=pre_run,
    )


def test_holds_identical():
    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(
                success_prob=0.5, max_job_holds=2, hold_release_s=40.0
            ),
            capacity=FixedCapacity(3),
            seed=3,
            engine=engine,
        ),
        lambda: [flat_dag(10, retries=0)],
    )


def test_injected_holds_identical():
    assert_same_outputs(
        lambda engine: OSPoolSimulator(
            config=quiet_config(hold_release_s=25.0),
            capacity=FixedCapacity(4),
            seed=6,
            engine=engine,
        ),
        lambda: [flat_dag(12, retries=1)],
        pre_run=lambda pool: pool.sim.schedule_at(
            20.0, lambda: pool.inject_hold(2)
        ),
    )


def test_kill_and_rescue_identical(tmp_path):
    dag_factory = lambda: [flat_dag(24, retries=1, name="k")]
    rescue_files = {}
    for engine in ENGINES:
        pool = OSPoolSimulator(
            config=quiet_config(),
            capacity=FixedCapacity(2),
            seed=7,
            rescue_dir=tmp_path / engine,
            engine=engine,
        )
        metrics, logs = pool_outputs(
            pool,
            dag_factory(),
            pre_run=lambda p: p.sim.schedule_at(150.0, lambda: p.kill_dagman("k")),
        )
        rescue_files[engine] = pool.dagman_runs["k"].rescue_file
        if engine == "reference":
            ref = (metrics.records, metrics.dagmans, logs)
        else:
            assert (metrics.records, metrics.dagmans, logs) == ref
    ref_rescue, vec_rescue = rescue_files["reference"], rescue_files["vector"]
    assert ref_rescue is not None and vec_rescue is not None
    assert ref_rescue.read_text() == vec_rescue.read_text()
    # Resume from the (identical) rescue file under both engines.
    resumed = {}
    for engine in ENGINES:
        pool2, run2 = resubmit_with_rescue(
            dag_factory()[0],
            rescue_files[engine],
            name="k",
            config=quiet_config(),
            capacity=FixedCapacity(4),
            seed=9,
            engine=engine,
        )
        metrics2 = pool2.run()
        assert run2.engine.is_complete
        resumed[engine] = (metrics2.records, pool2.dagman_runs["k"].user_log.render())
    assert resumed["reference"] == resumed["vector"]


# -- heap growth regression (eviction-heavy cancellation) ----------------------


def test_reference_engine_heap_bounded_under_eviction_storm():
    """Regression: an eviction-heavy run must not grow the event heap.

    Every eviction cancels a far-future completion event. The seed core
    kept each tombstone until its original fire time, so sustained
    eviction churn accumulated dead entries without bound; the slab
    core's compaction keeps the heap proportional to the live count.
    """
    config = quiet_config(
        runtime=RuntimeModel(a_base_s=50_000.0, a_per_rupture_s=0.0, sigma_log=0.0),
        preemption=False,
    )
    pool = OSPoolSimulator(
        config=config, capacity=FixedCapacity(4), seed=1, engine="reference"
    )
    pool.submit_dagman(flat_dag(8, retries=0))
    samples = []

    def probe():
        samples.append((len(pool.sim._heap), pool.sim.pending))
        pool.sim.schedule(20.0, probe)

    def evict():
        pool.inject_eviction(2)
        pool.sim.schedule(20.0, evict)

    pool.sim.schedule_at(25.0, probe)
    pool.sim.schedule_at(30.0, evict)
    pool.run(until=3_000.0)
    assert len(samples) >= 100  # the storm ran long enough to matter
    max_heap = max(h for h, _ in samples)
    max_live = max(p for _, p in samples)
    # ~300 cancelled completions at t≈50k would linger in an
    # uncompacted heap; compaction keeps it near the live count.
    assert max_heap <= 2 * max_live + 65


# -- WfFormat replay (the paper's workloads) -----------------------------------


@pytest.mark.parametrize("runtime", ["trace", "model"])
def test_fdw64_replay_identical(runtime):
    results = {
        engine: replay_instance(FDW64, seed=0, runtime=runtime, engine=engine)
        for engine in ENGINES
    }
    ref, vec = results["reference"], results["vector"]
    assert ref.metrics.records == vec.metrics.records
    assert ref.metrics.dagmans == vec.metrics.dagmans
    assert ref.metrics.capacity_trace == vec.metrics.capacity_trace
    assert ref.makespan_s == vec.makespan_s
    assert {n: log.render() for n, log in ref.user_logs.items()} == {
        n: log.render() for n, log in vec.user_logs.items()
    }
    assert len(vec.metrics.records) >= 37  # every fdw64 task completed


def test_fdw64_partition_study_identical():
    studies = {
        engine: replay_study(FDW64, counts=(1, 2, 4, 8), seed=0, engine=engine)
        for engine in ENGINES
    }
    for count in (1, 2, 4, 8):
        ref, vec = studies["reference"][count], studies["vector"][count]
        assert ref.metrics.records == vec.metrics.records
        assert ref.metrics.dagmans == vec.metrics.dagmans
        assert ref.makespan_s == vec.makespan_s
        assert {n: log.render() for n, log in ref.user_logs.items()} == {
            n: log.render() for n, log in vec.user_logs.items()
        }


def test_engine_argument_validated():
    with pytest.raises(SimulationError):
        OSPoolSimulator(engine="turbo")
