"""Tests for repro.osg.pool — the integrated pool simulator."""

import numpy as np
import pytest

from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanOptions
from repro.condor.jobs import JobPayload, JobSpec
from repro.core.config import FdwConfig
from repro.core.monitor import DagmanStats
from repro.core.workflow import build_fdw_dag
from repro.errors import SimulationError
from repro.osg.capacity import FixedCapacity, MarkovModulatedCapacity
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.osg.runtimes import RuntimeModel
from repro.osg.transfer import TransferConfig


def tiny_dag(n_jobs=6, phase="A", name="t"):
    dag = DagDescription(name)
    for i in range(n_jobs):
        dag.add_job(
            f"{name}_{i}",
            JobSpec(name=f"{name}_{i}", payload=JobPayload(phase=phase, n_items=1, n_stations=2)),
        )
    return dag


def quiet_pool(seed=0, slots=4, **cfg_kwargs):
    config = OSPoolConfig(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=1.0,
        **cfg_kwargs,
    )
    return OSPoolSimulator(config=config, capacity=FixedCapacity(slots), seed=seed)


def test_single_dag_completes():
    pool = quiet_pool()
    pool.submit_dagman(tiny_dag())
    metrics = pool.run()
    assert len(metrics.records) == 6
    assert all(r.success for r in metrics.records)
    assert metrics.dagmans["t"].n_jobs == 6


def test_runtime_respects_capacity():
    # 6 identical jobs on 2 slots must take ~3 service times.
    pool2 = quiet_pool(slots=2)
    pool2.submit_dagman(tiny_dag())
    t2 = pool2.run().dagmans["t"].runtime_s
    pool6 = quiet_pool(slots=6)
    pool6.submit_dagman(tiny_dag())
    t6 = pool6.run().dagmans["t"].runtime_s
    assert t2 > 1.8 * t6


def test_dependencies_respected():
    config = FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="dep")
    dag = build_fdw_dag(config)
    pool = quiet_pool(slots=8)
    pool.submit_dagman(dag, name="dep")
    metrics = pool.run()
    by_node = {r.node_name: r for r in metrics.records}
    b_start = by_node["dep_B"].start_time
    for r in metrics.records:
        if r.phase == "A":
            assert r.end_time <= b_start
        if r.phase == "C":
            assert r.start_time >= by_node["dep_B"].end_time


def test_deterministic_given_seed():
    r1 = quiet_pool(seed=9)
    r1.submit_dagman(tiny_dag())
    m1 = r1.run()
    r2 = quiet_pool(seed=9)
    r2.submit_dagman(tiny_dag())
    m2 = r2.run()
    assert [(r.node_name, r.start_time, r.end_time) for r in m1.records] == [
        (r.node_name, r.start_time, r.end_time) for r in m2.records
    ]


def test_different_seeds_differ():
    r1 = quiet_pool(seed=1)
    r1.submit_dagman(tiny_dag())
    m1 = r1.run()
    r2 = quiet_pool(seed=2)
    r2.submit_dagman(tiny_dag())
    m2 = r2.run()
    assert [r.end_time for r in m1.records] != [r.end_time for r in m2.records]


def test_user_log_consistent_with_records():
    pool = quiet_pool(slots=3)
    pool.submit_dagman(tiny_dag())
    metrics = pool.run()
    log_text = pool.dagman_runs["t"].user_log.render()
    stats = DagmanStats.from_log_text(log_text)
    assert stats.n_jobs == 6
    assert stats.n_completed == 6
    assert stats.n_failed == 0
    # Log-derived runtime matches the recorder (1 s log resolution).
    assert stats.runtime_s() == pytest.approx(
        max(r.end_time for r in metrics.records)
        - min(r.submit_time for r in metrics.records),
        abs=2.0,
    )


def test_failures_retried_to_completion():
    config = OSPoolConfig(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=0.7,
    )
    dag = tiny_dag(12)
    for name in list(dag.node_names):
        node = dag.node(name)
        from repro.condor.dagfile import DagNode

        dag._nodes[name] = DagNode(name=node.name, spec=node.spec, retries=20)
    pool = OSPoolSimulator(config=config, capacity=FixedCapacity(4), seed=5)
    pool.submit_dagman(dag)
    metrics = pool.run()
    failures = [r for r in metrics.records if not r.success]
    assert len(failures) >= 1  # with p=0.7 over 12+ attempts
    assert pool.dagman_runs["t"].engine.is_complete


def test_terminal_failure_marks_dead():
    config = OSPoolConfig(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=0.01,
    )
    pool = OSPoolSimulator(config=config, capacity=FixedCapacity(4), seed=3)
    pool.submit_dagman(tiny_dag(4))  # retries=0
    metrics = pool.run()
    run = pool.dagman_runs["t"]
    assert run.dead
    assert run.finished
    assert metrics.dagmans["t"].end_time > 0


def test_preemption_on_capacity_drop():
    capacity = MarkovModulatedCapacity(
        levels=[8, 1], mean_dwell_s=[200.0, 200.0], jitter=0.0
    )
    config = OSPoolConfig(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=1.0,
        runtime=RuntimeModel(a_base_s=500.0, a_per_rupture_s=0.0, sigma_log=0.0),
    )
    pool = OSPoolSimulator(config=config, capacity=capacity, seed=8)
    pool.submit_dagman(tiny_dag(10))
    metrics = pool.run()
    evicted = [r for r in metrics.records if r.n_evictions > 0]
    assert evicted  # long jobs + capacity crashes to 1 => evictions
    assert pool.dagman_runs["t"].engine.is_complete


def test_concurrent_dagmans_share_capacity():
    pool = quiet_pool(slots=4)
    pool.submit_dagman(tiny_dag(8, name="x"))
    pool.submit_dagman(tiny_dag(8, name="y"))
    metrics = pool.run()
    assert metrics.dagmans["x"].n_jobs == 8
    assert metrics.dagmans["y"].n_jobs == 8
    # Interleaved service: both finish within a similar window.
    rx = metrics.dagmans["x"].runtime_s
    ry = metrics.dagmans["y"].runtime_s
    assert abs(rx - ry) < 0.5 * max(rx, ry)


def test_max_idle_bounds_queue():
    pool = quiet_pool(slots=1)
    pool.submit_dagman(tiny_dag(30), options=DagmanOptions(max_idle=2))
    pool.run()
    # The engine never had more than 2 idle at once; indirectly checked
    # by the queue length never exceeding 2 at negotiation time. Here we
    # simply assert completion (the invariant is enforced inside
    # pull_submissions, covered by condor tests).
    assert pool.dagman_runs["t"].engine.is_complete


def test_errors():
    pool = quiet_pool()
    with pytest.raises(SimulationError):
        pool.run()  # nothing submitted
    pool.submit_dagman(tiny_dag())
    with pytest.raises(SimulationError):
        pool.submit_dagman(tiny_dag())  # duplicate name
    pool.run()
    with pytest.raises(SimulationError):
        pool.run()  # run twice


def test_submit_after_run_rejected():
    pool = quiet_pool()
    pool.submit_dagman(tiny_dag())
    pool.run()
    with pytest.raises(SimulationError):
        pool.submit_dagman(tiny_dag(name="late"))


def test_guard_trips_on_impossible_workload():
    config = OSPoolConfig(
        transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
        success_prob=1.0,
        max_sim_time_s=10.0,  # far too short
    )
    pool = OSPoolSimulator(config=config, capacity=FixedCapacity(1), seed=0)
    pool.submit_dagman(tiny_dag(5))
    with pytest.raises(SimulationError):
        pool.run()


def test_run_until_partial():
    pool = quiet_pool(slots=1)
    pool.submit_dagman(tiny_dag(50))
    metrics = pool.run(until=120.0)
    # Partial result allowed with explicit until.
    assert metrics.dagmans["t"].end_time >= metrics.dagmans["t"].submit_time


def test_mean_capacity_tracks_process():
    pool = quiet_pool(slots=7)
    pool.submit_dagman(tiny_dag())
    pool.run()
    assert pool.mean_capacity() == pytest.approx(7.0)
    assert pool.current_capacity == 7


def test_stagger_delays_second_dagman():
    pool = quiet_pool(slots=4)
    pool.submit_dagman(tiny_dag(4, name="x"), at_time=0.0)
    pool.submit_dagman(tiny_dag(4, name="y"), at_time=300.0)
    metrics = pool.run()
    assert metrics.dagmans["y"].submit_time == 300.0
    first_y_submit = min(r.submit_time for r in metrics.for_dagman("y"))
    assert first_y_submit >= 300.0
