"""Tests for repro.osg.metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.osg.metrics import DagmanSummary, JobRecord, PoolMetrics


def record(node, dagman="d", phase="C", sub=0.0, start=10.0, end=100.0, success=True):
    return JobRecord(
        node_name=node,
        dagman=dagman,
        phase=phase,
        cluster_id=hash(node) % 10**6,
        submit_time=sub,
        start_time=start,
        end_time=end,
        success=success,
    )


@pytest.fixture()
def metrics():
    records = [
        record("a", sub=0.0, start=60.0, end=120.0, phase="A"),
        record("b", sub=0.0, start=60.0, end=180.0),
        record("c", sub=30.0, start=120.0, end=240.0),
    ]
    return PoolMetrics(
        records=records,
        dagmans={"d": DagmanSummary(name="d", submit_time=0.0, end_time=240.0, n_jobs=3)},
    )


def test_record_validation():
    with pytest.raises(SimulationError):
        JobRecord(
            node_name="x",
            dagman="d",
            phase="A",
            cluster_id=1,
            submit_time=10.0,
            start_time=5.0,  # before submit
            end_time=20.0,
        )


def test_record_derived_times():
    r = record("x", sub=5.0, start=20.0, end=80.0)
    assert r.wait_s == 15.0
    assert r.exec_s == 60.0


def test_summary_throughput():
    s = DagmanSummary(name="d", submit_time=0.0, end_time=600.0, n_jobs=30)
    assert s.runtime_s == 600.0
    assert s.throughput_jpm == pytest.approx(3.0)


def test_for_dagman(metrics):
    assert len(metrics.for_dagman("d")) == 3
    with pytest.raises(SimulationError):
        metrics.for_dagman("nope")


def test_phase_filter(metrics):
    assert len(metrics.phase_records("A")) == 1
    assert len(metrics.phase_records("C")) == 2


def test_wait_and_exec_times_sorted(metrics):
    waits = metrics.wait_times_s()
    assert list(waits) == sorted(waits)
    assert waits[0] == 60.0
    execs = metrics.exec_times_s(phase="C")
    assert list(execs) == [120.0, 120.0]


def test_instant_throughput_shape_and_values(metrics):
    series = metrics.instant_throughput_jpm("d")
    assert series.shape == (240,)
    # Before the first completion, throughput is 0.
    assert np.all(series[:119] == 0.0)
    # At t=120s, one job complete: 1 job / 2 min = 0.5 JPM.
    assert series[119] == pytest.approx(1.0 / 2.0)
    # Final value: 3 jobs over 4 minutes.
    assert series[-1] == pytest.approx(3.0 / 4.0)


def test_instant_throughput_counts_only_successes():
    records = [record("a", end=60.0), record("b", end=60.0, success=False)]
    m = PoolMetrics(
        records=records,
        dagmans={"d": DagmanSummary("d", 0.0, 120.0, 2)},
    )
    series = m.instant_throughput_jpm("d")
    assert series[-1] == pytest.approx(1.0 / 2.0)


def test_running_jobs_profile(metrics):
    running = metrics.running_jobs("d")
    assert running.shape == (240,)
    assert running[59] == 0  # just before the first starts
    assert running[60] == 2
    assert running[130] == 2  # a finished at 120, c started at 120
    assert running[200] == 1
    assert running.max() == 2


def test_eq1_eq2_helpers():
    assert PoolMetrics.average_total_runtime_s([600.0, 1200.0]) == 900.0
    beta = PoolMetrics.average_total_throughput_jpm([10, 10], [600.0, 1200.0])
    assert beta == pytest.approx((1.0 + 0.5) / 2)


def test_eq_helpers_validation():
    with pytest.raises(SimulationError):
        PoolMetrics.average_total_runtime_s([])
    with pytest.raises(SimulationError):
        PoolMetrics.average_total_throughput_jpm([1], [])


def test_window_requires_dagmans():
    with pytest.raises(SimulationError):
        PoolMetrics().instant_throughput_jpm()
