"""Tests for repro.osg.des."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.osg.des import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for tag in "abc":
        sim.schedule(3.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_now_advances():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(1.0, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [1.0, 2.0]


def test_run_until_leaves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 10]


def test_cancel():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    Simulator.cancel(handle)
    assert handle.cancelled
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_stop_when():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(stop_when=lambda: len(fired) >= 2)
    assert fired == [0, 1]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_handle_reports_time():
    sim = Simulator()
    handle = sim.schedule(4.5, lambda: None)
    assert handle.time == 4.5


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_arbitrary_delays_fire_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run()
    assert fired == sorted(fired, key=float) or fired == sorted(fired)
    assert len(fired) == len(delays)


# -- slab event core -----------------------------------------------------


def test_pending_is_live_count_through_cancels():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending == 10
    for h in handles[:4]:
        Simulator.cancel(h)
    assert sim.pending == 6
    Simulator.cancel(handles[0])  # idempotent: no double-decrement
    assert sim.pending == 6
    sim.run(until=6.0)  # fires events at t=5 and t=6
    assert sim.pending == 4


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    Simulator.cancel(handle)  # the event is gone; nothing to undo
    assert handle.cancelled
    assert sim.pending == 0


def test_post_and_post_at_fire_without_handles():
    sim = Simulator()
    fired = []
    sim.post(2.0, lambda: fired.append("post"))
    sim.post_at(1.0, lambda: fired.append("post_at"))
    with pytest.raises(SimulationError):
        sim.post(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_at(-0.5, lambda: None)
    sim.run()
    assert fired == ["post_at", "post"]
    assert sim.pending == 0


def test_heap_compacts_under_heavy_cancellation():
    """Regression: cancelled events must not accumulate in the heap.

    The seed core only discarded tombstones when they surfaced at the
    heap top, so eviction-heavy runs (cancel + re-schedule loops) grew
    the heap without bound. The slab core compacts once tombstones
    outnumber live entries.
    """
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10_000)]
    for h in handles[:9_500]:
        Simulator.cancel(h)
    assert sim.pending == 500
    # Post-cancel invariant: tombstones can be at most half the heap
    # (plus the sub-threshold floor where compaction never bothers).
    assert len(sim._heap) <= max(64, 2 * sim.pending + 1)
    assert sim.n_tombstones <= sim.pending + 64
    fired = []
    for h in handles[9_500:]:
        sim.schedule_at(h.time, lambda: fired.append(1))
    sim.run()
    assert len(fired) == 500


def test_compaction_preserves_order_and_later_events():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(1_000):
        h = sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        if i % 10 == 0:
            keep.append(i)
        else:
            Simulator.cancel(h)
    sim.run()
    assert fired == keep
