"""Tests for repro.osg.des."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.osg.des import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for tag in "abc":
        sim.schedule(3.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_now_advances():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(1.0, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [1.0, 2.0]


def test_run_until_leaves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 10]


def test_cancel():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    Simulator.cancel(handle)
    assert handle.cancelled
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_stop_when():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(stop_when=lambda: len(fired) >= 2)
    assert fired == [0, 1]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_handle_reports_time():
    sim = Simulator()
    handle = sim.schedule(4.5, lambda: None)
    assert handle.time == 4.5


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_arbitrary_delays_fire_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run()
    assert fired == sorted(fired, key=float) or fired == sorted(fired)
    assert len(fired) == len(delays)
