"""Tests for repro.osg.negotiator."""

import pytest

from repro.condor.jobs import Job, JobSpec, JobState
from repro.errors import SimulationError
from repro.osg.negotiator import NegotiatorConfig, negotiate
from repro.osg.schedd import ScheddQueue


def queue_with(name, n):
    q = ScheddQueue(name)
    for i in range(n):
        job = Job(JobSpec(name=f"{name}{i}"))
        job.transition(JobState.IDLE, 0.0)
        q.enqueue(f"{name}{i}", job)
    return q


def test_single_queue_fifo():
    q = queue_with("a", 5)
    matches = negotiate([q], free_slots=3, config=NegotiatorConfig())
    assert [m[1] for m in matches] == ["a0", "a1", "a2"]
    assert q.n_idle == 2


def test_round_robin_across_queues():
    qa, qb = queue_with("a", 3), queue_with("b", 3)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    assert [m[1] for m in matches] == ["a0", "b0", "a1", "b1"]


def test_fair_share_with_uneven_queues():
    qa, qb = queue_with("a", 1), queue_with("b", 5)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    # a gets its single job, b fills the remainder.
    names = [m[1] for m in matches]
    assert names == ["a0", "b0", "b1", "b2"]


def test_match_limit_per_cycle():
    q = queue_with("a", 10)
    matches = negotiate(
        [q], free_slots=10, config=NegotiatorConfig(match_limit_per_cycle=4)
    )
    assert len(matches) == 4


def test_no_free_slots_no_matches():
    q = queue_with("a", 3)
    assert negotiate([q], free_slots=0, config=NegotiatorConfig()) == []
    assert q.n_idle == 3


def test_empty_queues_no_matches():
    assert negotiate([ScheddQueue("a")], 10, NegotiatorConfig()) == []


def test_negative_free_slots_rejected():
    with pytest.raises(SimulationError):
        negotiate([], -1, NegotiatorConfig())


def test_config_validation():
    with pytest.raises(SimulationError):
        NegotiatorConfig(cycle_s=0.0)
    with pytest.raises(SimulationError):
        NegotiatorConfig(match_limit_per_cycle=0)


def test_matches_reference_source_queue():
    qa, qb = queue_with("a", 2), queue_with("b", 2)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    assert {m[0].name for m in matches} == {"a", "b"}
    # All four jobs drained.
    assert qa.n_idle == 0 and qb.n_idle == 0
