"""Tests for repro.osg.negotiator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.jobs import Job, JobSpec, JobState
from repro.errors import SimulationError
from repro.osg.negotiator import NegotiatorConfig, negotiate, negotiate_vectorized
from repro.osg.schedd import ScheddQueue


def queue_with(name, n):
    q = ScheddQueue(name)
    for i in range(n):
        job = Job(JobSpec(name=f"{name}{i}"))
        job.transition(JobState.IDLE, 0.0)
        q.enqueue(f"{name}{i}", job)
    return q


def test_single_queue_fifo():
    q = queue_with("a", 5)
    matches = negotiate([q], free_slots=3, config=NegotiatorConfig())
    assert [m[1] for m in matches] == ["a0", "a1", "a2"]
    assert q.n_idle == 2


def test_round_robin_across_queues():
    qa, qb = queue_with("a", 3), queue_with("b", 3)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    assert [m[1] for m in matches] == ["a0", "b0", "a1", "b1"]


def test_fair_share_with_uneven_queues():
    qa, qb = queue_with("a", 1), queue_with("b", 5)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    # a gets its single job, b fills the remainder.
    names = [m[1] for m in matches]
    assert names == ["a0", "b0", "b1", "b2"]


def test_match_limit_per_cycle():
    q = queue_with("a", 10)
    matches = negotiate(
        [q], free_slots=10, config=NegotiatorConfig(match_limit_per_cycle=4)
    )
    assert len(matches) == 4


def test_no_free_slots_no_matches():
    q = queue_with("a", 3)
    assert negotiate([q], free_slots=0, config=NegotiatorConfig()) == []
    assert q.n_idle == 3


def test_empty_queues_no_matches():
    assert negotiate([ScheddQueue("a")], 10, NegotiatorConfig()) == []


def test_negative_free_slots_rejected():
    with pytest.raises(SimulationError):
        negotiate([], -1, NegotiatorConfig())


def test_config_validation():
    with pytest.raises(SimulationError):
        NegotiatorConfig(cycle_s=0.0)
    with pytest.raises(SimulationError):
        NegotiatorConfig(match_limit_per_cycle=0)


def test_matches_reference_source_queue():
    qa, qb = queue_with("a", 2), queue_with("b", 2)
    matches = negotiate([qa, qb], free_slots=4, config=NegotiatorConfig())
    assert {m[0].name for m in matches} == {"a", "b"}
    # All four jobs drained.
    assert qa.n_idle == 0 and qb.n_idle == 0


# -- vectorized matcher ≡ scalar oracle ----------------------------------


def _run_both(sizes, free_slots, match_limit):
    config = NegotiatorConfig(match_limit_per_cycle=match_limit)
    scalar_qs = [queue_with(f"q{i}", n) for i, n in enumerate(sizes)]
    vector_qs = [queue_with(f"q{i}", n) for i, n in enumerate(sizes)]
    scalar = negotiate(scalar_qs, free_slots, config)
    vector = negotiate_vectorized(vector_qs, free_slots, config)
    return scalar_qs, scalar, vector_qs, vector


def assert_equivalent(sizes, free_slots, match_limit):
    scalar_qs, scalar, vector_qs, vector = _run_both(sizes, free_slots, match_limit)
    assert [(q.name, node) for q, node, _ in scalar] == [
        (q.name, node) for q, node, _ in vector
    ]
    assert [j.spec.name for _, _, j in scalar] == [j.spec.name for _, _, j in vector]
    assert [q.n_idle for q in scalar_qs] == [q.n_idle for q in vector_qs]


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=12),
    free_slots=st.integers(min_value=0, max_value=200),
    match_limit=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=200, deadline=None)
def test_vectorized_matches_scalar_property(sizes, free_slots, match_limit):
    assert_equivalent(sizes, free_slots, match_limit)


@pytest.mark.parametrize(
    ("sizes", "free_slots", "match_limit"),
    [
        ([5], 3, 1000),  # single-queue FIFO slice
        ([3, 3], 4, 1000),  # even round-robin
        ([1, 5], 4, 1000),  # short queue exhausts mid-cycle
        ([0, 0, 7], 20, 1000),  # empty queues skipped
        ([10, 10, 10], 30, 4),  # match limit binds before slots
        ([2, 9, 1, 6], 11, 11),  # budget == matches exactly
    ],
)
def test_vectorized_matches_scalar_cases(sizes, free_slots, match_limit):
    assert_equivalent(sizes, free_slots, match_limit)


def test_vectorized_negative_free_slots_rejected():
    with pytest.raises(SimulationError):
        negotiate_vectorized([], -1, NegotiatorConfig())
