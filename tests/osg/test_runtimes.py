"""Tests for repro.osg.runtimes."""

import numpy as np
import pytest

from repro.condor.jobs import JobPayload, JobSpec
from repro.errors import SimulationError
from repro.osg.runtimes import RuntimeModel


@pytest.fixture(scope="module")
def model():
    return RuntimeModel()


def payload(phase, n_items=1, n_stations=121):
    return JobPayload(phase=phase, n_items=n_items, n_stations=n_stations)


def test_rupture_job_mean_near_2_5_minutes(model):
    # Paper 5.2.3: rupture jobs ~2.5 min for the default 16-rupture chunk.
    mean = model.mean_seconds(payload("A", n_items=16))
    assert 120.0 < mean < 180.0


def test_waveform_job_full_input_15_to_20_minutes(model):
    mean = model.mean_seconds(payload("C", n_items=2, n_stations=121))
    assert 15 * 60 < mean < 20 * 60


def test_waveform_job_small_input_under_a_minute(model):
    mean = model.mean_seconds(payload("C", n_items=2, n_stations=2))
    assert mean < 60.0


def test_gf_job_multi_hour_full_input(model):
    mean = model.mean_seconds(payload("B", n_items=121, n_stations=121))
    assert mean > 3600.0


def test_gf_job_scales_with_stations(model):
    small = model.mean_seconds(payload("B", n_stations=2))
    full = model.mean_seconds(payload("B", n_stations=121))
    assert full > 10 * small


def test_dist_job_fixed(model):
    assert model.mean_seconds(payload("dist")) == model.dist_base_s


def test_sampling_reproducible(model):
    spec = JobSpec(name="j", payload=payload("C", 2))
    a = model.sample_seconds(spec, np.random.default_rng(3))
    b = model.sample_seconds(spec, np.random.default_rng(3))
    assert a == b


def test_sampling_spread_around_mean(model):
    spec = JobSpec(name="j", payload=payload("C", 2))
    rng = np.random.default_rng(4)
    samples = np.array([model.sample_seconds(spec, rng) for _ in range(800)])
    mean = model.mean_seconds(payload("C", 2))
    # Speed factors in (0.85, 1.30) shift the mean down slightly.
    assert np.mean(samples) == pytest.approx(mean / np.mean([0.85, 1.30]), rel=0.15)
    assert samples.std() > 0


def test_sampling_floor_one_second():
    model = RuntimeModel(c_base_s=0.0, c_per_rupture_s=0.0, c_per_station_s=0.0)
    spec = JobSpec(name="j", payload=payload("C", 1, 1))
    assert model.sample_seconds(spec, np.random.default_rng(0)) >= 1.0


def test_job_without_payload_gets_generic_duration(model):
    spec = JobSpec(name="j")
    t = model.sample_seconds(spec, np.random.default_rng(5))
    assert 100.0 < t < 900.0


def test_validation():
    with pytest.raises(SimulationError):
        RuntimeModel(a_base_s=-1.0)
    with pytest.raises(SimulationError):
        RuntimeModel(sigma_log=-0.1)
    with pytest.raises(SimulationError):
        RuntimeModel(speed_range=(1.5, 0.5))


def test_calibrate_from_kernels_runs_and_preserves_shape():
    model = RuntimeModel.calibrate_from_kernels(
        n_probe_ruptures=1, n_probe_stations=3, mesh=(8, 5)
    )
    # Calibration preserves the reference's noise settings and produces
    # positive, ordered coefficients.
    assert model.sigma_log == RuntimeModel().sigma_log
    assert model.b_per_station_s > 0
    assert model.c_per_station_s > 0
    assert model.dist_base_s > 0
