"""Tests for repro.osg.transfer."""

import numpy as np
import pytest

from repro.condor.jobs import JobSpec
from repro.errors import SimulationError
from repro.osg.transfer import SINGULARITY_IMAGE_MB, StashCache, TransferConfig


def spec(files=None):
    return JobSpec(name="j", input_files=files or {})


def one_site_cache(**kwargs):
    defaults = dict(n_cache_sites=1, setup_overhead_s=0.0)
    defaults.update(kwargs)
    return StashCache(TransferConfig(**defaults))


def test_cold_then_warm():
    cache = one_site_cache(origin_mb_per_s=10.0, cache_mb_per_s=100.0, include_image=False)
    rng = np.random.default_rng(0)
    job = spec({"gf.npz": 1000.0})
    cold = cache.transfer_time(job, rng)
    warm = cache.transfer_time(job, rng)
    assert cold == pytest.approx(100.0)
    assert warm == pytest.approx(10.0)
    assert cache.n_cold_transfers == 1
    assert cache.n_warm_transfers == 1


def test_image_included_by_default():
    cache = one_site_cache()
    rng = np.random.default_rng(0)
    t = cache.transfer_time(spec(), rng)
    assert t == pytest.approx(SINGULARITY_IMAGE_MB / 25.0)


def test_setup_overhead_always_charged():
    cache = one_site_cache(setup_overhead_s=35.0, include_image=False)
    rng = np.random.default_rng(0)
    assert cache.transfer_time(spec(), rng) == pytest.approx(35.0)


def test_multiple_sites_cache_independently():
    cache = StashCache(
        TransferConfig(n_cache_sites=4, setup_overhead_s=0.0, include_image=False)
    )
    rng = np.random.default_rng(1)
    job = spec({"big.npz": 500.0})
    for _ in range(40):
        cache.transfer_time(job, rng)
    # Every site eventually warmed exactly once.
    assert cache.n_cold_transfers == 4
    assert cache.n_warm_transfers == 36
    for site in range(4):
        assert cache.is_warm("big.npz", site)


def test_reset_clears_state():
    cache = one_site_cache(include_image=False)
    rng = np.random.default_rng(2)
    cache.transfer_time(spec({"f": 10.0}), rng)
    cache.reset()
    assert cache.n_cold_transfers == 0
    assert not cache.is_warm("f", 0)


def test_negative_file_size_rejected():
    cache = one_site_cache(include_image=False)
    bad = JobSpec(name="j", input_files={"f": 1.0})
    bad.input_files["f"] = -5.0  # bypass JobSpec validation deliberately
    with pytest.raises(SimulationError):
        cache.transfer_time(bad, np.random.default_rng(0))


def test_config_validation():
    with pytest.raises(SimulationError):
        TransferConfig(origin_mb_per_s=0.0)
    with pytest.raises(SimulationError):
        TransferConfig(n_cache_sites=0)
    with pytest.raises(SimulationError):
        TransferConfig(setup_overhead_s=-1.0)


def test_cold_transfer_slower_than_warm():
    cfg = TransferConfig()
    assert cfg.origin_mb_per_s < cfg.cache_mb_per_s
