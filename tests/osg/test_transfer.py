"""Tests for repro.osg.transfer."""

import numpy as np
import pytest

from repro.condor.jobs import JobSpec
from repro.errors import SimulationError
from repro.osg.transfer import SINGULARITY_IMAGE_MB, StashCache, TransferConfig


def spec(files=None):
    return JobSpec(name="j", input_files=files or {})


def one_site_cache(**kwargs):
    defaults = dict(n_cache_sites=1, setup_overhead_s=0.0)
    defaults.update(kwargs)
    return StashCache(TransferConfig(**defaults))


def test_cold_then_warm():
    cache = one_site_cache(origin_mb_per_s=10.0, cache_mb_per_s=100.0, include_image=False)
    rng = np.random.default_rng(0)
    job = spec({"gf.npz": 1000.0})
    cold = cache.transfer_time(job, rng)
    warm = cache.transfer_time(job, rng)
    assert cold == pytest.approx(100.0)
    assert warm == pytest.approx(10.0)
    assert cache.n_cold_transfers == 1
    assert cache.n_warm_transfers == 1


def test_image_included_by_default():
    cache = one_site_cache()
    rng = np.random.default_rng(0)
    t = cache.transfer_time(spec(), rng)
    assert t == pytest.approx(SINGULARITY_IMAGE_MB / 25.0)


def test_setup_overhead_always_charged():
    cache = one_site_cache(setup_overhead_s=35.0, include_image=False)
    rng = np.random.default_rng(0)
    assert cache.transfer_time(spec(), rng) == pytest.approx(35.0)


def test_multiple_sites_cache_independently():
    cache = StashCache(
        TransferConfig(n_cache_sites=4, setup_overhead_s=0.0, include_image=False)
    )
    rng = np.random.default_rng(1)
    job = spec({"big.npz": 500.0})
    for _ in range(40):
        cache.transfer_time(job, rng)
    # Every site eventually warmed exactly once.
    assert cache.n_cold_transfers == 4
    assert cache.n_warm_transfers == 36
    for site in range(4):
        assert cache.is_warm("big.npz", site)


def test_reset_clears_state():
    cache = one_site_cache(include_image=False)
    rng = np.random.default_rng(2)
    cache.transfer_time(spec({"f": 10.0}), rng)
    cache.reset()
    assert cache.n_cold_transfers == 0
    assert not cache.is_warm("f", 0)


def test_negative_file_size_rejected():
    cache = one_site_cache(include_image=False)
    bad = JobSpec(name="j", input_files={"f": 1.0})
    bad.input_files["f"] = -5.0  # bypass JobSpec validation deliberately
    with pytest.raises(SimulationError):
        cache.transfer_time(bad, np.random.default_rng(0))


def test_config_validation():
    with pytest.raises(SimulationError):
        TransferConfig(origin_mb_per_s=0.0)
    with pytest.raises(SimulationError):
        TransferConfig(n_cache_sites=0)
    with pytest.raises(SimulationError):
        TransferConfig(setup_overhead_s=-1.0)


def test_cold_transfer_slower_than_warm():
    cfg = TransferConfig()
    assert cfg.origin_mb_per_s < cfg.cache_mb_per_s


def test_lru_eviction_refetches_from_origin():
    cache = one_site_cache(
        origin_mb_per_s=10.0, cache_mb_per_s=100.0,
        include_image=False, max_entries_per_site=2,
    )
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 100.0, "f2": 100.0}), rng)
    assert cache.n_evictions == 0
    # f3 exceeds the cap: f1 (least recently used) is evicted.
    cache.transfer_time(spec({"f3": 100.0}), rng)
    assert cache.n_evictions == 1
    assert not cache.is_warm("f1", 0)
    assert cache.is_warm("f2", 0)
    assert cache.is_warm("f3", 0)
    # f1 now pays origin bandwidth again.
    t = cache.transfer_time(spec({"f1": 100.0}), rng)
    assert t == pytest.approx(10.0)


def test_lru_recency_updated_on_warm_hit():
    cache = one_site_cache(include_image=False, max_entries_per_site=2)
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 1.0}), rng)
    cache.transfer_time(spec({"f2": 1.0}), rng)
    cache.transfer_time(spec({"f1": 1.0}), rng)  # touch f1: f2 becomes LRU
    cache.transfer_time(spec({"f3": 1.0}), rng)
    assert cache.is_warm("f1", 0)
    assert not cache.is_warm("f2", 0)
    assert cache.is_warm("f3", 0)


def test_no_cap_means_no_evictions():
    cache = one_site_cache(include_image=False)
    rng = np.random.default_rng(0)
    for i in range(50):
        cache.transfer_time(spec({f"f{i}": 1.0}), rng)
    assert cache.n_evictions == 0
    assert all(cache.is_warm(f"f{i}", 0) for i in range(50))


def test_default_config_transfer_times_unchanged_by_lru_code():
    # max_entries_per_site=None must be bit-identical to the pre-LRU cache.
    files = {"a": 123.0, "b": 7.5, "c": 900.0}
    times_default = []
    times_huge_cap = []
    for cfg_kw, out in (
        (dict(), times_default),
        (dict(max_entries_per_site=10_000), times_huge_cap),
    ):
        cache = StashCache(TransferConfig(n_cache_sites=3, **cfg_kw))
        rng = np.random.default_rng(5)
        for _ in range(30):
            out.append(cache.transfer_time(spec(dict(files)), rng))
    assert times_default == times_huge_cap


def test_reset_clears_evictions():
    cache = one_site_cache(include_image=False, max_entries_per_site=1)
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 1.0, "f2": 1.0}), rng)
    assert cache.n_evictions == 1
    cache.reset()
    assert cache.n_evictions == 0
    assert not cache.is_warm("f2", 0)


def test_max_entries_validation():
    with pytest.raises(SimulationError):
        TransferConfig(max_entries_per_site=0)
    with pytest.raises(SimulationError):
        TransferConfig(max_entries_per_site=-3)
    assert TransferConfig(max_entries_per_site=None).max_entries_per_site is None
    assert TransferConfig(max_entries_per_site=1).max_entries_per_site == 1
