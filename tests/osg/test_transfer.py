"""Tests for repro.osg.transfer."""

import numpy as np
import pytest

from repro.condor.jobs import JobSpec
from repro.errors import SimulationError
from repro.osg.transfer import SINGULARITY_IMAGE_MB, StashCache, TransferConfig


def spec(files=None):
    return JobSpec(name="j", input_files=files or {})


def one_site_cache(**kwargs):
    defaults = dict(n_cache_sites=1, setup_overhead_s=0.0)
    defaults.update(kwargs)
    return StashCache(TransferConfig(**defaults))


def test_cold_then_warm():
    cache = one_site_cache(origin_mb_per_s=10.0, cache_mb_per_s=100.0, include_image=False)
    rng = np.random.default_rng(0)
    job = spec({"gf.npz": 1000.0})
    cold = cache.transfer_time(job, rng)
    warm = cache.transfer_time(job, rng)
    assert cold == pytest.approx(100.0)
    assert warm == pytest.approx(10.0)
    assert cache.n_cold_transfers == 1
    assert cache.n_warm_transfers == 1


def test_image_included_by_default():
    cache = one_site_cache()
    rng = np.random.default_rng(0)
    t = cache.transfer_time(spec(), rng)
    assert t == pytest.approx(SINGULARITY_IMAGE_MB / 25.0)


def test_setup_overhead_always_charged():
    cache = one_site_cache(setup_overhead_s=35.0, include_image=False)
    rng = np.random.default_rng(0)
    assert cache.transfer_time(spec(), rng) == pytest.approx(35.0)


def test_multiple_sites_cache_independently():
    cache = StashCache(
        TransferConfig(n_cache_sites=4, setup_overhead_s=0.0, include_image=False)
    )
    rng = np.random.default_rng(1)
    job = spec({"big.npz": 500.0})
    for _ in range(40):
        cache.transfer_time(job, rng)
    # Every site eventually warmed exactly once.
    assert cache.n_cold_transfers == 4
    assert cache.n_warm_transfers == 36
    for site in range(4):
        assert cache.is_warm("big.npz", site)


def test_reset_clears_state():
    cache = one_site_cache(include_image=False)
    rng = np.random.default_rng(2)
    cache.transfer_time(spec({"f": 10.0}), rng)
    cache.reset()
    assert cache.n_cold_transfers == 0
    assert not cache.is_warm("f", 0)


def test_negative_file_size_rejected():
    cache = one_site_cache(include_image=False)
    bad = JobSpec(name="j", input_files={"f": 1.0})
    bad.input_files["f"] = -5.0  # bypass JobSpec validation deliberately
    with pytest.raises(SimulationError):
        cache.transfer_time(bad, np.random.default_rng(0))


def test_config_validation():
    with pytest.raises(SimulationError):
        TransferConfig(origin_mb_per_s=0.0)
    with pytest.raises(SimulationError):
        TransferConfig(n_cache_sites=0)
    with pytest.raises(SimulationError):
        TransferConfig(setup_overhead_s=-1.0)


def test_cold_transfer_slower_than_warm():
    cfg = TransferConfig()
    assert cfg.origin_mb_per_s < cfg.cache_mb_per_s


def test_lru_eviction_refetches_from_origin():
    cache = one_site_cache(
        origin_mb_per_s=10.0, cache_mb_per_s=100.0,
        include_image=False, max_entries_per_site=2,
    )
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 100.0, "f2": 100.0}), rng)
    assert cache.n_evictions == 0
    # f3 exceeds the cap: f1 (least recently used) is evicted.
    cache.transfer_time(spec({"f3": 100.0}), rng)
    assert cache.n_evictions == 1
    assert not cache.is_warm("f1", 0)
    assert cache.is_warm("f2", 0)
    assert cache.is_warm("f3", 0)
    # f1 now pays origin bandwidth again.
    t = cache.transfer_time(spec({"f1": 100.0}), rng)
    assert t == pytest.approx(10.0)


def test_lru_recency_updated_on_warm_hit():
    cache = one_site_cache(include_image=False, max_entries_per_site=2)
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 1.0}), rng)
    cache.transfer_time(spec({"f2": 1.0}), rng)
    cache.transfer_time(spec({"f1": 1.0}), rng)  # touch f1: f2 becomes LRU
    cache.transfer_time(spec({"f3": 1.0}), rng)
    assert cache.is_warm("f1", 0)
    assert not cache.is_warm("f2", 0)
    assert cache.is_warm("f3", 0)


def test_no_cap_means_no_evictions():
    cache = one_site_cache(include_image=False)
    rng = np.random.default_rng(0)
    for i in range(50):
        cache.transfer_time(spec({f"f{i}": 1.0}), rng)
    assert cache.n_evictions == 0
    assert all(cache.is_warm(f"f{i}", 0) for i in range(50))


def test_default_config_transfer_times_unchanged_by_lru_code():
    # max_entries_per_site=None must be bit-identical to the pre-LRU cache.
    files = {"a": 123.0, "b": 7.5, "c": 900.0}
    times_default = []
    times_huge_cap = []
    for cfg_kw, out in (
        (dict(), times_default),
        (dict(max_entries_per_site=10_000), times_huge_cap),
    ):
        cache = StashCache(TransferConfig(n_cache_sites=3, **cfg_kw))
        rng = np.random.default_rng(5)
        for _ in range(30):
            out.append(cache.transfer_time(spec(dict(files)), rng))
    assert times_default == times_huge_cap


def test_reset_clears_evictions():
    cache = one_site_cache(include_image=False, max_entries_per_site=1)
    rng = np.random.default_rng(0)
    cache.transfer_time(spec({"f1": 1.0, "f2": 1.0}), rng)
    assert cache.n_evictions == 1
    cache.reset()
    assert cache.n_evictions == 0
    assert not cache.is_warm("f2", 0)


def test_max_entries_validation():
    with pytest.raises(SimulationError):
        TransferConfig(max_entries_per_site=0)
    with pytest.raises(SimulationError):
        TransferConfig(max_entries_per_site=-3)
    assert TransferConfig(max_entries_per_site=None).max_entries_per_site is None
    assert TransferConfig(max_entries_per_site=1).max_entries_per_site == 1


# -- injected transfer faults and the retry path -------------------------------


def one_site_faulted(fault_kwargs=None, **cfg_kwargs):
    from repro.faults import TransferFaults

    defaults = dict(n_cache_sites=1, setup_overhead_s=0.0)
    defaults.update(cfg_kwargs)
    return StashCache(
        TransferConfig(**defaults),
        faults=TransferFaults(**(fault_kwargs or {})),
    )


def test_zero_prob_faults_match_fault_free_times():
    """A fault model that never fires adds no time — only the stream
    draws differ, and those live on the model's private generator."""
    plain = one_site_cache(include_image=False)
    armed = one_site_faulted(include_image=False)
    job = spec({"gf.npz": 1000.0})
    for _ in range(5):
        assert plain.transfer_time(job, np.random.default_rng(3)) == pytest.approx(
            armed.transfer_time(job, np.random.default_rng(3))
        )
    assert armed.n_transfer_faults == 0
    assert armed.total_backoff_seconds == 0.0


def test_fault_draws_deterministic_across_caches():
    def run(seed):
        cache = one_site_faulted(
            fault_kwargs=dict(failure_prob=0.3, slow_prob=0.2, seed=seed),
            include_image=False,
        )
        rng = np.random.default_rng(0)
        times = [
            cache.transfer_time(spec({f"f{i}": 50.0}), rng) for i in range(20)
        ]
        return times, cache.n_transfer_faults, cache.faults.n_slow

    a = run(4)
    assert a == run(4)  # same fault seed: identical times and counters
    assert a[1] >= 1 and a[2] >= 1  # the storm actually fired
    assert a != run(5)  # a different fault seed explores a different storm


def test_slow_attempt_multiplies_bandwidth_not_setup():
    cache = one_site_faulted(
        fault_kwargs=dict(slow_prob=0.999, slow_factor=4.0, seed=0),
        setup_overhead_s=35.0,
        origin_mb_per_s=10.0,
        include_image=False,
    )
    t = cache.transfer_time(spec({"f": 100.0}), np.random.default_rng(0))
    assert t == pytest.approx(35.0 + 4.0 * 10.0)
    assert cache.faults.n_slow == 1


def test_failed_attempts_pay_backoff_then_succeed():
    from repro.resilience import RetryPolicy

    cache = one_site_faulted(
        fault_kwargs=dict(failure_prob=0.999, seed=0),
        origin_mb_per_s=10.0,
        cache_mb_per_s=100.0,
        include_image=False,
    )
    t = cache.transfer_time(spec({"f": 100.0}), np.random.default_rng(0))
    # Every attempt failed: 1 cold + (max_attempts - 1) warm re-pulls,
    # the full backoff schedule, then the degraded direct origin pull.
    policy = RetryPolicy()
    schedule = policy.schedule(0, "transfer", "j")
    expected = 10.0 + (policy.max_attempts - 1) * 1.0 + sum(schedule) + 10.0
    assert t == pytest.approx(expected)
    assert cache.n_transfer_faults == policy.max_attempts
    assert cache.n_transfer_retries == len(schedule)
    assert cache.n_degraded_transfers == 1
    assert cache.total_backoff_seconds == pytest.approx(sum(schedule))


def test_reset_rewinds_fault_stream():
    cache = one_site_faulted(
        fault_kwargs=dict(failure_prob=0.3, slow_prob=0.2, seed=9),
        include_image=False,
    )

    def storm():
        rng = np.random.default_rng(1)
        return [cache.transfer_time(spec({"f": 10.0}), rng) for _ in range(10)]

    first = storm()
    counters = (cache.n_transfer_faults, cache.n_degraded_transfers)
    cache.reset()
    assert cache.n_transfer_faults == 0
    assert storm() == first  # identical replay after reset
    assert (cache.n_transfer_faults, cache.n_degraded_transfers) == counters
