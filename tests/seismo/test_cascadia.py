"""Tests for the Cascadia region (paper future work: beyond Chile)."""

import numpy as np
import pytest

from repro.seismo.distance import DistanceMatrices
from repro.seismo.geometry import build_cascadia_slab
from repro.seismo.greens import compute_gf_bank
from repro.seismo.ruptures import RuptureGenerator
from repro.seismo.stations import Station, StationNetwork


@pytest.fixture(scope="module")
def cascadia():
    return build_cascadia_slab(n_strike=12, n_dip=6)


def test_geometry_basics(cascadia):
    assert cascadia.name == "cascadia_slab"
    assert cascadia.n_subfaults == 72
    # Northern hemisphere, west coast, shallow dips.
    assert np.all(cascadia.lat > 30.0)
    assert np.all(cascadia.lon < -120.0)
    assert cascadia.dip_deg.max() <= 22.0 + 1e-9


def test_longer_than_chile(cascadia):
    from repro.seismo.geometry import build_chile_slab

    chile = build_chile_slab(n_strike=12, n_dip=6)
    assert cascadia.lat.max() - cascadia.lat.min() > (
        chile.lat.max() - chile.lat.min()
    )


def test_full_pipeline_runs_on_cascadia(cascadia):
    """The whole FakeQuakes stack is region-agnostic."""
    distances = DistanceMatrices.from_geometry(cascadia)
    generator = RuptureGenerator(cascadia, distances=distances)
    rupture = generator.generate(np.random.default_rng(0), target_mw=8.8)
    assert rupture.actual_mw == pytest.approx(8.8, abs=1e-9)

    network = StationNetwork(
        [
            Station("P395", -123.8, 44.6),
            Station("P396", -123.5, 46.1),
            Station("P397", -124.1, 47.4),
        ],
        name="pnw",
    )
    bank = compute_gf_bank(cascadia, network)
    from repro.seismo.waveforms import WaveformSynthesizer

    ws = WaveformSynthesizer(bank).synthesize(rupture)
    assert ws.n_stations == 3
    assert float(ws.pgd_m().max()) > 0.0
