"""Tests for repro.seismo.distance."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.seismo.distance import DistanceMatrices


def test_shapes(small_distances, small_geometry):
    n = small_geometry.n_subfaults
    assert small_distances.along_strike.shape == (n, n)
    assert small_distances.down_dip.shape == (n, n)
    assert small_distances.n_subfaults == n


def test_zero_diagonal(small_distances):
    assert np.all(np.diag(small_distances.along_strike) == 0)
    assert np.all(np.diag(small_distances.down_dip) == 0)


def test_symmetric(small_distances):
    np.testing.assert_allclose(
        small_distances.along_strike, small_distances.along_strike.T
    )
    np.testing.assert_allclose(small_distances.down_dip, small_distances.down_dip.T)


def test_same_strike_column_zero_strike_separation(small_geometry, small_distances):
    g = small_geometry
    # Subfaults 0 and 1 share a strike row (adjacent down-dip).
    assert small_distances.along_strike[0, 1] == pytest.approx(0.0)
    assert small_distances.down_dip[0, 1] > 0


def test_same_dip_row_zero_dip_separation(small_geometry, small_distances):
    g = small_geometry
    i, j = 0, g.n_dip  # same dip index, adjacent strike rows
    assert small_distances.down_dip[i, j] == pytest.approx(0.0)
    assert small_distances.along_strike[i, j] > 0


def test_strike_separation_matches_mesh_spacing(small_geometry, small_distances):
    g = small_geometry
    spacing = float(g.length_km[0])
    assert small_distances.along_strike[0, g.n_dip] == pytest.approx(spacing, rel=1e-6)


def test_dip_separation_accumulates_width(small_geometry, small_distances):
    g = small_geometry
    w = float(g.width_km[0])
    assert small_distances.down_dip[0, 2] == pytest.approx(2 * w, rel=1e-6)


def test_total_is_hypot(small_distances):
    total = small_distances.total()
    expected = np.hypot(small_distances.along_strike, small_distances.down_dip)
    np.testing.assert_allclose(total, expected)


def test_triangle_inequality_along_strike(small_distances):
    d = small_distances.along_strike
    # Strike separation is a 1-D metric, so triangle inequality holds.
    n = d.shape[0]
    rng = np.random.default_rng(0)
    for _ in range(50):
        i, j, k = rng.integers(0, n, 3)
        assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


def test_save_load_roundtrip(tmp_path, small_distances):
    small_distances.save(tmp_path, prefix="dm")
    assert DistanceMatrices.exists(tmp_path, prefix="dm")
    back = DistanceMatrices.load(tmp_path, prefix="dm")
    np.testing.assert_array_equal(back.along_strike, small_distances.along_strike)
    np.testing.assert_array_equal(back.down_dip, small_distances.down_dip)


def test_content_digest_stable_across_roundtrip(tmp_path, small_distances):
    """The K-L cache key component survives the .npy recycle: a reloaded
    pair hashes to the same digest as the freshly built one."""
    small_distances.save(tmp_path)
    reloaded = DistanceMatrices.load(tmp_path)
    assert reloaded.content_digest == small_distances.content_digest


def test_content_digest_sensitive_to_values(small_distances):
    other = DistanceMatrices(
        along_strike=small_distances.along_strike + 1e-9,
        down_dip=small_distances.down_dip,
    )
    assert other.content_digest != small_distances.content_digest


def test_load_missing_raises(tmp_path):
    assert not DistanceMatrices.exists(tmp_path)
    with pytest.raises(GeometryError):
        DistanceMatrices.load(tmp_path)


def test_rejects_non_square():
    with pytest.raises(GeometryError):
        DistanceMatrices(np.zeros((2, 3)), np.zeros((2, 3)))


def test_rejects_mismatched_shapes():
    with pytest.raises(GeometryError):
        DistanceMatrices(np.zeros((2, 2)), np.zeros((3, 3)))


def test_rejects_negative_distances():
    bad = np.zeros((2, 2))
    bad[0, 1] = -1.0
    with pytest.raises(GeometryError):
        DistanceMatrices(bad, np.zeros((2, 2)))


def test_rejects_nan():
    bad = np.zeros((2, 2))
    bad[0, 1] = np.nan
    with pytest.raises(GeometryError):
        DistanceMatrices(bad, np.zeros((2, 2)))
