"""Tests for repro.seismo.mudpy_io."""

import numpy as np
import pytest

from repro.errors import ArchiveError, RuptureError
from repro.seismo.mudpy_io import ProductArchive, read_rupt, write_rupt


def test_rupt_roundtrip(tmp_path, sample_rupture, small_geometry):
    path = write_rupt(sample_rupture, small_geometry, tmp_path / "r.rupt")
    back = read_rupt(path)
    assert back.rupture_id == sample_rupture.rupture_id
    assert back.target_mw == pytest.approx(sample_rupture.target_mw, abs=1e-4)
    assert back.hypocenter_index == sample_rupture.hypocenter_index
    np.testing.assert_array_equal(back.subfault_indices, sample_rupture.subfault_indices)
    np.testing.assert_allclose(back.slip_m, sample_rupture.slip_m, atol=1e-6)
    np.testing.assert_allclose(back.rise_time_s, sample_rupture.rise_time_s, atol=1e-4)


def test_rupt_missing_file(tmp_path):
    with pytest.raises(RuptureError):
        read_rupt(tmp_path / "missing.rupt")


def test_rupt_bad_header(tmp_path):
    path = tmp_path / "bad.rupt"
    path.write_text("not a rupt file\n")
    with pytest.raises(RuptureError):
        read_rupt(path)


def test_rupt_bad_column_count(tmp_path):
    path = tmp_path / "bad.rupt"
    path.write_text(
        "# rupt x target_mw=8.0 actual_mw=8.0 hypo=0\n1 2 3\n"
    )
    with pytest.raises(RuptureError):
        read_rupt(path)


def test_rupt_no_rows(tmp_path):
    path = tmp_path / "empty.rupt"
    path.write_text("# rupt x target_mw=8.0 actual_mw=8.0 hypo=0\n")
    with pytest.raises(RuptureError):
        read_rupt(path)


def _touch(tmp_path, name, content=b"data"):
    p = tmp_path / name
    p.write_bytes(content)
    return p


def test_archive_add_and_find(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    src = _touch(tmp_path, "w1.npz", b"x" * 100)
    dest = archive.add_file(src, kind="waveforms", label="r0", metadata={"mw": 8.1})
    assert dest.exists()
    assert archive.kinds() == ["waveforms"]
    found = archive.find(kind="waveforms", mw=8.1)
    assert len(found) == 1
    assert found[0]["bytes"] == 100


def test_archive_duplicate_label_rejected(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    src = _touch(tmp_path, "a.txt")
    archive.add_file(src, kind="k", label="x")
    with pytest.raises(ArchiveError):
        archive.add_file(src, kind="k", label="x")


def test_archive_missing_source_rejected(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    with pytest.raises(ArchiveError):
        archive.add_file(tmp_path / "nope.bin", kind="k", label="x")


def test_archive_move_deletes_source(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    src = _touch(tmp_path, "m.bin")
    archive.add_file(src, kind="k", label="moved", move=True)
    assert not src.exists()


def test_archive_persistence(tmp_path):
    root = tmp_path / "arch"
    archive = ProductArchive(root)
    archive.add_file(_touch(tmp_path, "a.bin", b"12345"), kind="k", label="a")
    reopened = ProductArchive(root)
    assert reopened.total_bytes() == 5
    assert reopened.path_of("k", "a").read_bytes() == b"12345"


def test_archive_path_of_unknown(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    with pytest.raises(ArchiveError):
        archive.path_of("k", "missing")


def test_archive_find_by_metadata_subset(tmp_path):
    archive = ProductArchive(tmp_path / "arch")
    archive.add_file(_touch(tmp_path, "a.bin"), kind="wf", label="a", metadata={"mw": 8.0})
    archive.add_file(_touch(tmp_path, "b.bin"), kind="wf", label="b", metadata={"mw": 9.0})
    assert len(archive.find(kind="wf")) == 2
    assert [e["label"] for e in archive.find(kind="wf", mw=9.0)] == ["b"]
