"""Tests for repro.seismo.ruptures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuptureError
from repro.seismo.ruptures import Rupture, RuptureGenerator
from repro.seismo.scaling import magnitude_from_moment


def test_moment_closure(sample_rupture, small_geometry):
    mw = magnitude_from_moment(sample_rupture.moment(small_geometry))
    assert float(mw) == pytest.approx(sample_rupture.target_mw, abs=1e-9)
    assert sample_rupture.actual_mw == pytest.approx(sample_rupture.target_mw, abs=1e-9)


def test_slip_nonnegative(sample_rupture):
    assert np.all(sample_rupture.slip_m >= 0)
    assert sample_rupture.peak_slip_m > 0


def test_kinematics_shapes(sample_rupture):
    n = sample_rupture.n_subfaults
    assert sample_rupture.rise_time_s.shape == (n,)
    assert sample_rupture.onset_time_s.shape == (n,)
    assert np.all(sample_rupture.rise_time_s > 0)
    assert np.all(sample_rupture.onset_time_s >= 0)


def test_hypocenter_has_zero_onset(sample_rupture):
    assert sample_rupture.onset_time_s[sample_rupture.hypocenter_index] == 0.0


def test_duration_positive(sample_rupture):
    assert sample_rupture.duration_s > 0


def test_generate_deterministic(rupture_generator):
    a = rupture_generator.generate(np.random.default_rng(11), target_mw=8.0)
    b = rupture_generator.generate(np.random.default_rng(11), target_mw=8.0)
    np.testing.assert_array_equal(a.slip_m, b.slip_m)
    np.testing.assert_array_equal(a.subfault_indices, b.subfault_indices)


def test_generate_varies_with_seed(rupture_generator):
    a = rupture_generator.generate(np.random.default_rng(1), target_mw=8.0)
    b = rupture_generator.generate(np.random.default_rng(2), target_mw=8.0)
    assert a.slip_m.shape != b.slip_m.shape or not np.allclose(a.slip_m, b.slip_m)


def test_random_magnitude_in_range(rupture_generator):
    rng = np.random.default_rng(0)
    for i in range(10):
        r = rupture_generator.generate(rng, rupture_id=f"r.{i}")
        assert 7.5 <= r.target_mw <= 9.2


def test_out_of_range_target_rejected(rupture_generator):
    with pytest.raises(RuptureError):
        rupture_generator.generate(np.random.default_rng(0), target_mw=6.0)


def test_larger_magnitude_larger_patch(rupture_generator):
    rng = np.random.default_rng(5)
    small = [rupture_generator.generate(rng, target_mw=7.5).n_subfaults for _ in range(8)]
    large = [rupture_generator.generate(rng, target_mw=9.0).n_subfaults for _ in range(8)]
    assert np.mean(large) > np.mean(small)


def test_patch_indices_within_mesh(rupture_generator, small_geometry):
    rng = np.random.default_rng(9)
    r = rupture_generator.generate(rng, target_mw=8.5)
    assert r.subfault_indices.min() >= 0
    assert r.subfault_indices.max() < small_geometry.n_subfaults
    assert len(np.unique(r.subfault_indices)) == r.n_subfaults


def test_patch_is_contiguous_window(rupture_generator, small_geometry):
    rng = np.random.default_rng(13)
    r = rupture_generator.generate(rng, target_mw=8.8)
    s_idx = np.asarray(small_geometry.strike_index(r.subfault_indices))
    d_idx = np.asarray(small_geometry.dip_index(r.subfault_indices))
    n_s = s_idx.max() - s_idx.min() + 1
    n_d = d_idx.max() - d_idx.min() + 1
    assert n_s * n_d == r.n_subfaults


def test_generate_many_sequential_ids(rupture_generator):
    rng = np.random.default_rng(3)
    ruptures = rupture_generator.generate_many(3, rng, prefix="cat", start_index=5)
    assert [r.rupture_id for r in ruptures] == ["cat.000005", "cat.000006", "cat.000007"]


def test_generate_many_negative_count(rupture_generator):
    with pytest.raises(RuptureError):
        rupture_generator.generate_many(-1, np.random.default_rng(0))


def test_generate_many_is_not_partition_invariant(rupture_generator):
    """Documented behaviour: a single sequential rng advances across
    ruptures, so [0, k) + [k, n) with one stream each does *not*
    reproduce one [0, n) call. Catalog-level invariance requires the
    per-index RNG keying of ``FakeQuakes.phase_a_ruptures``."""
    whole = rupture_generator.generate_many(4, np.random.default_rng(42))
    split = rupture_generator.generate_many(
        2, np.random.default_rng(42)
    ) + rupture_generator.generate_many(
        2, np.random.default_rng(42), start_index=2
    )
    # The first chunk matches (same stream, same draws)...
    np.testing.assert_array_equal(split[0].slip_m, whole[0].slip_m)
    # ...but the second chunk restarts the stream and diverges.
    assert any(
        a.slip_m.shape != b.slip_m.shape or not np.array_equal(a.slip_m, b.slip_m)
        for a, b in zip(split[2:], whole[2:])
    )


def test_mismatched_distance_matrices_rejected(small_geometry):
    from repro.seismo.distance import DistanceMatrices

    wrong = DistanceMatrices(np.zeros((4, 4)), np.zeros((4, 4)))
    with pytest.raises(RuptureError):
        RuptureGenerator(small_geometry, distances=wrong)


def test_invalid_mw_range_rejected(small_geometry, small_distances):
    with pytest.raises(RuptureError):
        RuptureGenerator(small_geometry, distances=small_distances, mw_range=(9.0, 8.0))


def test_rupture_dataclass_validation():
    with pytest.raises(RuptureError):
        Rupture(
            rupture_id="bad",
            target_mw=8.0,
            actual_mw=8.0,
            subfault_indices=np.array([0, 1]),
            slip_m=np.array([1.0]),  # wrong length
            rise_time_s=np.array([1.0, 1.0]),
            onset_time_s=np.array([0.0, 1.0]),
            hypocenter_index=0,
        )


def test_rupture_rejects_negative_slip():
    with pytest.raises(RuptureError):
        Rupture(
            rupture_id="bad",
            target_mw=8.0,
            actual_mw=8.0,
            subfault_indices=np.array([0, 1]),
            slip_m=np.array([1.0, -0.5]),
            rise_time_s=np.array([1.0, 1.0]),
            onset_time_s=np.array([0.0, 1.0]),
            hypocenter_index=0,
        )


@given(st.floats(min_value=7.5, max_value=9.2), st.integers(min_value=0, max_value=50))
@settings(max_examples=15, deadline=None)
def test_moment_closure_property(rupture_generator, mw, seed):
    r = rupture_generator.generate(np.random.default_rng(seed), target_mw=mw)
    assert r.actual_mw == pytest.approx(mw, abs=1e-9)
    assert np.all(r.slip_m >= 0)
