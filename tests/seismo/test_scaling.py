"""Tests for repro.seismo.scaling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuptureError
from repro.seismo.scaling import (
    SUBDUCTION_INTERFACE,
    magnitude_from_moment,
    moment_from_magnitude,
)

mws = st.floats(min_value=5.0, max_value=9.7)


def test_known_moment_values():
    # Mw 9.0 corresponds to ~3.98e22 N m.
    assert moment_from_magnitude(9.0) == pytest.approx(3.98e22, rel=1e-2)


def test_moment_magnitude_roundtrip():
    for mw in (6.0, 7.5, 9.2):
        assert magnitude_from_moment(moment_from_magnitude(mw)) == pytest.approx(mw)


@given(mws)
def test_roundtrip_property(mw):
    assert float(magnitude_from_moment(moment_from_magnitude(mw))) == pytest.approx(mw)


def test_negative_moment_rejected():
    with pytest.raises(RuptureError):
        magnitude_from_moment(-1.0)


def test_median_dimensions_increase_with_magnitude():
    law = SUBDUCTION_INTERFACE
    assert law.median_length_km(8.0) > law.median_length_km(7.0)
    assert law.median_width_km(8.0) > law.median_width_km(7.0)


def test_median_length_magnitude_8_plausible():
    # Subduction Mw 8 ruptures are ~150-250 km long.
    length = SUBDUCTION_INTERFACE.median_length_km(8.0)
    assert 100.0 < length < 350.0


def test_sample_dimensions_deterministic_per_seed():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    assert SUBDUCTION_INTERFACE.sample_dimensions(8.0, rng1) == (
        SUBDUCTION_INTERFACE.sample_dimensions(8.0, rng2)
    )


def test_sample_dimensions_scatter_around_median():
    rng = np.random.default_rng(0)
    lengths = [SUBDUCTION_INTERFACE.sample_dimensions(8.0, rng)[0] for _ in range(400)]
    median = SUBDUCTION_INTERFACE.median_length_km(8.0)
    assert np.median(lengths) == pytest.approx(median, rel=0.1)


def test_sample_rejects_out_of_range_magnitude():
    rng = np.random.default_rng(0)
    with pytest.raises(RuptureError):
        SUBDUCTION_INTERFACE.sample_dimensions(4.0, rng)


def test_mean_slip_closes_moment():
    law = SUBDUCTION_INTERFACE
    area_km2 = 200.0 * 100.0
    mu = 30e9
    slip = law.mean_slip_m(8.0, area_km2, mu)
    m0 = mu * area_km2 * 1e6 * slip
    assert float(magnitude_from_moment(m0)) == pytest.approx(8.0)


def test_mean_slip_rejects_bad_inputs():
    with pytest.raises(RuptureError):
        SUBDUCTION_INTERFACE.mean_slip_m(8.0, 0.0, 30e9)
    with pytest.raises(RuptureError):
        SUBDUCTION_INTERFACE.mean_slip_m(8.0, 100.0, -1.0)


@given(mws)
def test_length_exceeds_width_at_large_magnitude(mw):
    # Subduction scaling: length grows faster than width.
    law = SUBDUCTION_INTERFACE
    if mw >= 7.0:
        assert law.median_length_km(mw) > law.median_width_km(mw)
