"""Tests for repro.seismo.geometry."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.seismo.geometry import build_chile_slab


def test_mesh_size(small_geometry):
    assert small_geometry.n_subfaults == 60
    assert small_geometry.lon.shape == (60,)


def test_depth_increases_down_dip(small_geometry):
    g = small_geometry
    # Within one strike column, depth grows with dip index.
    col = g.depth_km[: g.n_dip]
    assert np.all(np.diff(col) > 0)


def test_depth_pattern_repeats_along_strike(small_geometry):
    g = small_geometry
    first = g.depth_km[: g.n_dip]
    last = g.depth_km[-g.n_dip :]
    np.testing.assert_allclose(first, last)


def test_dip_steepens_down_dip(small_geometry):
    g = small_geometry
    col = g.dip_deg[: g.n_dip]
    assert col[0] < col[-1]
    assert col[0] == pytest.approx(10.0)
    assert col[-1] == pytest.approx(30.0)


def test_area_matches_extents():
    g = build_chile_slab(n_strike=10, n_dip=6, along_strike_km=200.0, along_dip_km=90.0)
    assert g.total_area_km2 == pytest.approx(200.0 * 90.0)


def test_strike_and_dip_indices_roundtrip(small_geometry):
    g = small_geometry
    i = np.arange(g.n_subfaults)
    flat = np.asarray(g.strike_index(i)) * g.n_dip + np.asarray(g.dip_index(i))
    np.testing.assert_array_equal(flat, i)


def test_enu_centered_near_origin(small_geometry):
    east, north, depth = small_geometry.enu()
    # Along-strike extent symmetric around the reference latitude.
    assert abs(north.mean()) < 1.0
    assert np.all(depth > 0)
    assert np.all(east >= 0)  # slab dips east of the trench


def test_subset_selects_rows(small_geometry):
    sub = small_geometry.subset(np.array([0, 5]))
    assert sub["lon"].shape == (2,)
    assert sub["depth_km"][0] == small_geometry.depth_km[0]


def test_subset_rejects_out_of_range(small_geometry):
    with pytest.raises(GeometryError):
        small_geometry.subset(np.array([10**6]))


def test_rejects_tiny_mesh():
    with pytest.raises(GeometryError):
        build_chile_slab(n_strike=1, n_dip=6)


def test_rejects_bad_dips():
    with pytest.raises(GeometryError):
        build_chile_slab(shallow_dip_deg=40.0, deep_dip_deg=20.0)


def test_rejects_negative_extent():
    with pytest.raises(GeometryError):
        build_chile_slab(along_strike_km=-5.0)


def test_latitudes_span_expected_band():
    g = build_chile_slab(along_strike_km=600.0, reference_lat=-30.0)
    # 600 km centred at -30 deg: about +/- 2.7 degrees of latitude.
    assert g.lat.min() == pytest.approx(-32.66, abs=0.2)
    assert g.lat.max() == pytest.approx(-27.34, abs=0.2)


def test_trench_depth_respected():
    g = build_chile_slab(trench_depth_km=5.0)
    shallowest = g.depth_km.min()
    assert shallowest > 5.0  # cell centers sit below the trench edge
    assert shallowest < 10.0
