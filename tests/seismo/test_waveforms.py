"""Tests for repro.seismo.waveforms."""

import numpy as np
import pytest

from repro.errors import WaveformError
from repro.seismo.waveforms import GnssNoiseModel, WaveformSet, WaveformSynthesizer


@pytest.fixture(scope="module")
def clean_set(small_gf_bank, sample_rupture):
    synth = WaveformSynthesizer(small_gf_bank)
    return synth.synthesize(sample_rupture)


def test_shapes(clean_set, small_gf_bank):
    assert clean_set.n_stations == small_gf_bank.n_stations
    assert clean_set.data.shape[1] == 3
    assert clean_set.n_samples >= 2


def test_starts_at_rest(clean_set):
    # No subfault's energy arrives at t=0 (travel times > 0).
    np.testing.assert_allclose(clean_set.data[:, :, 0], 0.0, atol=1e-12)


def test_final_offset_matches_static_sum(clean_set, small_gf_bank, sample_rupture):
    patch = sample_rupture.subfault_indices
    expected = np.einsum(
        "sjc,j->sc", small_gf_bank.statics[:, patch, :], sample_rupture.slip_m
    )
    np.testing.assert_allclose(clean_set.final_offsets_m(), expected, rtol=1e-9)


def test_record_long_enough_for_all_arrivals(clean_set, small_gf_bank, sample_rupture):
    patch = sample_rupture.subfault_indices
    last_arrival = float(
        np.max(small_gf_bank.travel_time_s[:, patch] + sample_rupture.onset_time_s)
    )
    assert clean_set.times_s[-1] > last_arrival + np.max(sample_rupture.rise_time_s)


def test_pgd_positive_and_at_least_final_offset(clean_set):
    pgd = clean_set.pgd_m()
    final_norm = np.linalg.norm(clean_set.final_offsets_m(), axis=1)
    assert np.all(pgd > 0)
    assert np.all(pgd >= final_norm - 1e-12)


def test_station_accessor(clean_set):
    name = clean_set.station_names[0]
    series = clean_set.station(name)
    assert series.shape == (3, clean_set.n_samples)
    with pytest.raises(WaveformError):
        clean_set.station("ZZZZ")


def test_explicit_duration(small_gf_bank, sample_rupture):
    synth = WaveformSynthesizer(small_gf_bank, duration_s=100.0)
    ws = synth.synthesize(sample_rupture)
    assert ws.n_samples == 100


def test_noise_changes_data_and_is_reproducible(small_gf_bank, sample_rupture):
    synth = WaveformSynthesizer(small_gf_bank, noise=GnssNoiseModel())
    a = synth.synthesize(sample_rupture, rng=np.random.default_rng(5))
    b = synth.synthesize(sample_rupture, rng=np.random.default_rng(5))
    clean = WaveformSynthesizer(small_gf_bank).synthesize(sample_rupture)
    np.testing.assert_array_equal(a.data, b.data)
    assert not np.allclose(a.data, clean.data)


def test_noise_requires_rng(small_gf_bank, sample_rupture):
    synth = WaveformSynthesizer(small_gf_bank, noise=GnssNoiseModel())
    with pytest.raises(WaveformError):
        synth.synthesize(sample_rupture)


def test_noise_amplitude_reasonable(small_gf_bank, sample_rupture):
    model = GnssNoiseModel(white_sigma_m=0.005, walk_sigma_m=0.0)
    noise = model.sample(np.random.default_rng(0), (4, 3, 2000), dt_s=1.0)
    assert np.std(noise) == pytest.approx(0.005, rel=0.1)


def test_noise_model_validation():
    with pytest.raises(WaveformError):
        GnssNoiseModel(white_sigma_m=-1.0)


def test_synthesize_many(small_gf_bank, rupture_generator):
    rng = np.random.default_rng(1)
    ruptures = rupture_generator.generate_many(3, rng)
    synth = WaveformSynthesizer(small_gf_bank)
    sets = synth.synthesize_many(ruptures)
    assert len(sets) == 3
    assert {ws.rupture_id for ws in sets} == {r.rupture_id for r in ruptures}


def test_rejects_rupture_outside_bank(small_gf_bank, sample_rupture):
    import dataclasses

    bad = dataclasses.replace(
        sample_rupture,
        subfault_indices=sample_rupture.subfault_indices + 10**6,
    )
    synth = WaveformSynthesizer(small_gf_bank)
    with pytest.raises(WaveformError):
        synth.synthesize(bad)


def test_save_load_roundtrip(tmp_path, clean_set):
    path = clean_set.save(tmp_path / "wf.npz")
    back = WaveformSet.load(path)
    np.testing.assert_array_equal(back.data, clean_set.data)
    assert back.rupture_id == clean_set.rupture_id
    assert back.station_names == clean_set.station_names
    assert back.dt_s == clean_set.dt_s


def test_load_missing_raises(tmp_path):
    with pytest.raises(WaveformError):
        WaveformSet.load(tmp_path / "nope.npz")


def test_waveform_set_validation():
    with pytest.raises(WaveformError):
        WaveformSet(
            rupture_id="x",
            data=np.zeros((2, 2, 10)),  # bad component axis
            dt_s=1.0,
            station_names=("A", "B"),
        )
    with pytest.raises(WaveformError):
        WaveformSet(
            rupture_id="x",
            data=np.zeros((2, 3, 10)),
            dt_s=0.0,
            station_names=("A", "B"),
        )


def test_synthesizer_validation(small_gf_bank):
    with pytest.raises(WaveformError):
        WaveformSynthesizer(small_gf_bank, dt_s=0.0)
    with pytest.raises(WaveformError):
        WaveformSynthesizer(small_gf_bank, duration_s=-5.0)


# -- batched synthesis --------------------------------------------------------


@pytest.fixture(scope="module")
def rupture_batch(rupture_generator):
    return [
        rupture_generator.generate(
            np.random.default_rng(40 + i), rupture_id=f"batch.{i:06d}", target_mw=mw
        )
        for i, mw in enumerate([7.6, 8.0, 8.4, 8.9, 9.1])
    ]


def test_batch_bit_identical_to_scalar(small_gf_bank, rupture_batch):
    synth = WaveformSynthesizer(small_gf_bank)
    batched = synth.synthesize_batch(rupture_batch)
    for ws, rupture in zip(batched, rupture_batch):
        reference = synth.synthesize(rupture)
        assert ws.rupture_id == reference.rupture_id
        assert ws.data.shape == reference.data.shape
        assert np.array_equal(ws.data, reference.data)


def test_batch_with_shared_rng_matches_sequential_noise(small_gf_bank, rupture_batch):
    noise = GnssNoiseModel()
    batch_synth = WaveformSynthesizer(small_gf_bank, noise=noise)
    batched = batch_synth.synthesize_batch(
        rupture_batch, rngs=np.random.default_rng(99)
    )
    reference_synth = WaveformSynthesizer(small_gf_bank, noise=noise)
    rng = np.random.default_rng(99)
    for ws, rupture in zip(batched, rupture_batch):
        reference = reference_synth.synthesize(rupture, rng=rng)
        assert np.array_equal(ws.data, reference.data)


def test_batch_with_per_rupture_rngs(small_gf_bank, rupture_batch):
    noise = GnssNoiseModel()
    synth = WaveformSynthesizer(small_gf_bank, noise=noise)
    rngs = [np.random.default_rng(1000 + i) for i in range(len(rupture_batch))]
    batched = synth.synthesize_batch(rupture_batch, rngs=rngs)
    for i, (ws, rupture) in enumerate(zip(batched, rupture_batch)):
        reference = synth.synthesize(rupture, rng=np.random.default_rng(1000 + i))
        assert np.array_equal(ws.data, reference.data)


def test_batch_rng_list_length_mismatch(small_gf_bank, rupture_batch):
    synth = WaveformSynthesizer(small_gf_bank, noise=GnssNoiseModel())
    with pytest.raises(WaveformError):
        synth.synthesize_batch(rupture_batch, rngs=[np.random.default_rng(0)])


def test_batch_noise_requires_rng(small_gf_bank, rupture_batch):
    synth = WaveformSynthesizer(small_gf_bank, noise=GnssNoiseModel())
    with pytest.raises(WaveformError):
        synth.synthesize_batch(rupture_batch)


def test_batch_empty_list(small_gf_bank):
    synth = WaveformSynthesizer(small_gf_bank)
    assert synth.synthesize_batch([]) == []


class TestSynthesisMethods:
    """The opt-in FFT-domain path and the float32 working dtype."""

    def test_unknown_method_rejected(self, small_gf_bank):
        with pytest.raises(WaveformError):
            WaveformSynthesizer(small_gf_bank, method="wavelet")

    def test_fft_matches_time_domain_within_budget(
        self, small_gf_bank, sample_rupture
    ):
        time_ws = WaveformSynthesizer(small_gf_bank).synthesize(sample_rupture)
        fft_ws = WaveformSynthesizer(small_gf_bank, method="fft").synthesize(
            sample_rupture
        )
        assert fft_ws.data.shape == time_ws.data.shape
        scale = float(time_ws.pgd_m().max())
        # Band-limited fractional delays: small but nonzero deviation.
        assert float(np.max(np.abs(fft_ws.data - time_ws.data))) < 1e-3 * scale
        rel_pgd = np.max(
            np.abs(fft_ws.pgd_m() - time_ws.pgd_m())
            / np.maximum(time_ws.pgd_m(), 1e-12)
        )
        assert float(rel_pgd) < 1e-3
        # The static field survives exactly where it matters most.
        assert float(
            np.max(np.abs(fft_ws.final_offsets_m() - time_ws.final_offsets_m()))
        ) < 1e-6

    def test_fft_scalar_equals_fft_batch(self, small_gf_bank, rupture_generator):
        ruptures = [
            rupture_generator.generate(
                np.random.default_rng(40 + i), rupture_id=f"fft.{i}", target_mw=8.1
            )
            for i in range(3)
        ]
        synth = WaveformSynthesizer(small_gf_bank, method="fft")
        scalar = [synth.synthesize(r) for r in ruptures]
        batch = synth.synthesize_batch(ruptures)
        for a, b in zip(scalar, batch):
            assert np.array_equal(a.data, b.data)

    def test_fft_fixed_duration(self, small_gf_bank, sample_rupture):
        ws = WaveformSynthesizer(
            small_gf_bank, duration_s=128.0, method="fft"
        ).synthesize(sample_rupture)
        assert ws.n_samples == 128


class TestFloat32Synthesis:
    """A float32 bank runs the whole pipeline in float32, within the
    documented error budget against the float64 reference."""

    def test_output_dtype_follows_bank(self, small_gf_bank, sample_rupture):
        half = small_gf_bank.astype("float32")
        ws = WaveformSynthesizer(half).synthesize(sample_rupture)
        assert ws.data.dtype == np.float32

    def test_scalar_equals_batch_in_float32(
        self, small_gf_bank, rupture_generator
    ):
        half = small_gf_bank.astype("float32")
        ruptures = [
            rupture_generator.generate(
                np.random.default_rng(60 + i), rupture_id=f"f32.{i}", target_mw=8.2
            )
            for i in range(3)
        ]
        synth = WaveformSynthesizer(half)
        scalar = [synth.synthesize(r) for r in ruptures]
        batch = synth.synthesize_batch(ruptures)
        for a, b in zip(scalar, batch):
            assert a.data.dtype == np.float32
            assert np.array_equal(a.data, b.data)

    def test_error_budget_vs_float64(self, small_gf_bank, sample_rupture):
        full = WaveformSynthesizer(small_gf_bank).synthesize(sample_rupture)
        half = WaveformSynthesizer(small_gf_bank.astype("float32")).synthesize(
            sample_rupture
        )
        rel_pgd = np.max(
            np.abs(half.pgd_m() - full.pgd_m()) / np.maximum(full.pgd_m(), 1e-12)
        )
        # Measured ~4e-7 max on the paper mesh; assert with margin.
        assert float(rel_pgd) < 1e-5
        final_dev = np.max(
            np.abs(half.final_offsets_m() - full.final_offsets_m())
        )
        assert float(final_dev) < 1e-4

    def test_noise_keeps_working_dtype(self, small_gf_bank, sample_rupture):
        half = small_gf_bank.astype("float32")
        synth = WaveformSynthesizer(half, noise=GnssNoiseModel())
        a = synth.synthesize(sample_rupture, rng=np.random.default_rng(9))
        b = synth.synthesize_batch(
            [sample_rupture], rngs=[np.random.default_rng(9)]
        )[0]
        assert a.data.dtype == np.float32
        assert np.array_equal(a.data, b.data)
