"""Tests for repro.seismo.spectral — frequency-domain validation."""

import numpy as np
import pytest

from repro.errors import WaveformError
from repro.seismo.spectral import (
    compare_waveform_sets,
    displacement_spectrum,
    spectral_falloff,
)
from repro.seismo.waveforms import WaveformSet, WaveformSynthesizer


@pytest.fixture(scope="module")
def clean_set(small_gf_bank, sample_rupture):
    return WaveformSynthesizer(small_gf_bank).synthesize(sample_rupture)


def make_ws(data, dt=1.0):
    names = tuple(f"S{i:03d}" for i in range(data.shape[0]))
    return WaveformSet(rupture_id="t", data=data, dt_s=dt, station_names=names)


def test_spectrum_of_pure_sine():
    nt = 256
    t = np.arange(nt)
    data = np.zeros((1, 3, nt))
    data[0, 2] = np.sin(2 * np.pi * 0.1 * t)  # 0.1 Hz
    freqs, amp = displacement_spectrum(make_ws(data), "S000", detrend=False)
    peak = freqs[np.argmax(amp)]
    assert peak == pytest.approx(0.1, abs=1.0 / nt)


def test_spectrum_shapes(clean_set):
    freqs, amp = displacement_spectrum(clean_set, clean_set.station_names[0])
    assert freqs.shape == amp.shape
    assert freqs[0] > 0  # DC excluded
    assert np.all(amp >= 0)


def test_spectrum_component_validation(clean_set):
    with pytest.raises(WaveformError):
        displacement_spectrum(clean_set, clean_set.station_names[0], component=5)


def test_synthetics_are_low_frequency_dominated(clean_set):
    """Finite rise times make displacement spectra fall off at high
    frequency — the physical sanity check."""
    # Use the station with the strongest signal (nearest the rupture).
    best = clean_set.station_names[int(np.argmax(clean_set.pgd_m()))]
    ratio = spectral_falloff(clean_set, best)
    assert ratio < 0.5


def test_white_noise_falloff_near_one():
    rng = np.random.default_rng(0)
    data = rng.normal(0, 1.0, (1, 3, 512))
    ratio = spectral_falloff(make_ws(data), "S000")
    assert 0.5 < ratio < 2.0


def test_falloff_split_validation(clean_set):
    with pytest.raises(WaveformError):
        spectral_falloff(clean_set, clean_set.station_names[0], split_hz=100.0)


def test_falloff_degenerate_record():
    data = np.zeros((1, 3, 64))
    with pytest.raises(WaveformError):
        spectral_falloff(make_ws(data), "S000")


class TestComparison:
    def test_identical_sets_zero_misfit(self, clean_set):
        cmp = compare_waveform_sets(clean_set, clean_set)
        np.testing.assert_allclose(cmp.time_rms_m, 0.0, atol=1e-15)
        np.testing.assert_allclose(cmp.spectral_log_misfit, 0.0, atol=1e-12)
        assert cmp.mean_time_rms_m == pytest.approx(0.0, abs=1e-15)

    def test_point_vs_okada_close_in_far_field(
        self, small_geometry, small_network, sample_rupture
    ):
        """The G&M-style study: two GF methods produce similar waveforms
        (the network is 100+ km from the fault, where the point-source
        approximation is decent)."""
        from repro.seismo.greens import compute_gf_bank
        from repro.seismo.okada import compute_okada_gf_bank

        point = WaveformSynthesizer(
            compute_gf_bank(small_geometry, small_network), duration_s=256.0
        ).synthesize(sample_rupture)
        okada = WaveformSynthesizer(
            compute_okada_gf_bank(small_geometry, small_network), duration_s=256.0
        ).synthesize(sample_rupture)
        cmp = compare_waveform_sets(point, okada)
        # Same order of magnitude: misfit below one decade everywhere.
        assert cmp.mean_spectral_misfit < 1.0
        # Time-domain misfit bounded by the larger set's own scale.
        scale = max(point.pgd_m().max(), okada.pgd_m().max())
        assert cmp.mean_time_rms_m < scale

    def test_mismatched_stations_rejected(self, clean_set):
        other = make_ws(np.zeros((2, 3, 10)))
        with pytest.raises(WaveformError):
            compare_waveform_sets(clean_set, other)

    def test_mismatched_dt_rejected(self):
        a = make_ws(np.ones((1, 3, 16)) * 0.1, dt=1.0)
        b = make_ws(np.ones((1, 3, 16)) * 0.1, dt=2.0)
        with pytest.raises(WaveformError):
            compare_waveform_sets(a, b)

    def test_different_lengths_truncated(self):
        rng = np.random.default_rng(1)
        a = make_ws(rng.normal(0, 1, (1, 3, 64)))
        b = make_ws(rng.normal(0, 1, (1, 3, 48)))
        cmp = compare_waveform_sets(a, b)
        assert cmp.time_rms_m.shape == (1,)
        assert cmp.time_rms_m[0] > 0


class TestBatchedSpectra:
    def test_batched_matches_per_station_exactly(self, clean_set):
        from repro.seismo.spectral import displacement_spectra

        freqs_b, amps = displacement_spectra(clean_set)
        assert amps.shape == (clean_set.n_stations, freqs_b.size)
        for i, name in enumerate(clean_set.station_names):
            freqs, amp = displacement_spectrum(clean_set, name)
            assert np.array_equal(freqs, freqs_b)
            assert np.array_equal(amp, amps[i])

    def test_batched_no_detrend_matches(self, clean_set):
        from repro.seismo.spectral import displacement_spectra

        _, amps = displacement_spectra(clean_set, component=0, detrend=False)
        for i, name in enumerate(clean_set.station_names):
            _, amp = displacement_spectrum(
                clean_set, name, component=0, detrend=False
            )
            assert np.array_equal(amp, amps[i])

    def test_batched_component_validation(self, clean_set):
        from repro.seismo.spectral import displacement_spectra

        with pytest.raises(WaveformError):
            displacement_spectra(clean_set, component=7)
