"""Tests for repro.seismo.klcache."""

import numpy as np
import pytest

from repro.errors import CacheError
from repro.seismo.klcache import CACHE_DIR_ENV, KLCache, kl_basis_key
from repro.seismo.ruptures import RuptureGenerator
from repro.seismo.spectra import KarhunenLoeveBasis, von_karman_correlation


@pytest.fixture()
def patch():
    """A 4x3 window on the small 10x6 mesh."""
    strike_rows = np.arange(2, 6)
    dip_cols = np.arange(1, 4)
    return (strike_rows[:, None] * 6 + dip_cols[None, :]).ravel()


# -- keys ---------------------------------------------------------------------


def test_key_is_stable(small_distances, patch):
    a = kl_basis_key(small_distances, patch, 50.0, 30.0, n_modes=8)
    b = kl_basis_key(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert a == b
    assert len(a) == 64  # sha256 hex


def test_key_sensitive_to_every_input(small_distances, patch):
    base = kl_basis_key(small_distances, patch, 50.0, 30.0, hurst=0.75, n_modes=8)
    assert kl_basis_key(small_distances, patch[:-1], 50.0, 30.0, hurst=0.75, n_modes=8) != base
    assert kl_basis_key(small_distances, patch, 51.0, 30.0, hurst=0.75, n_modes=8) != base
    assert kl_basis_key(small_distances, patch, 50.0, 31.0, hurst=0.75, n_modes=8) != base
    assert kl_basis_key(small_distances, patch, 50.0, 30.0, hurst=0.5, n_modes=8) != base
    assert kl_basis_key(small_distances, patch, 50.0, 30.0, hurst=0.75, n_modes=9) != base
    assert kl_basis_key(small_distances, patch, 50.0, 30.0, hurst=0.75, n_modes=None) != base


def test_key_sensitive_to_window_position(small_distances, patch):
    """Conservative keying: a same-shape window elsewhere on the mesh is
    a different entry (positions are part of the content)."""
    shifted = patch + 1
    assert kl_basis_key(small_distances, patch, 50.0, 30.0) != kl_basis_key(
        small_distances, shifted, 50.0, 30.0
    )


def test_key_sensitive_to_distance_content(small_distances, patch):
    from repro.seismo.distance import DistanceMatrices

    other = DistanceMatrices(
        along_strike=small_distances.along_strike * 2.0,
        down_dip=small_distances.down_dip * 2.0,
    )
    assert kl_basis_key(small_distances, patch, 50.0, 30.0) != kl_basis_key(
        other, patch, 50.0, 30.0
    )


def test_distance_content_digest_cached(small_distances):
    assert small_distances.content_digest == small_distances.content_digest
    assert len(small_distances.content_digest) == 64


# -- exact mode: bit-identity -------------------------------------------------


def _direct_basis(distances, patch, corr_s, corr_d, n_modes):
    corr = von_karman_correlation(
        distances.along_strike[np.ix_(patch, patch)],
        distances.down_dip[np.ix_(patch, patch)],
        corr_s,
        corr_d,
    )
    return KarhunenLoeveBasis.from_correlation(corr, n_modes=n_modes)


def test_cold_path_matches_direct_computation(small_distances, patch):
    cache = KLCache()
    basis = cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    direct = _direct_basis(small_distances, patch, 50.0, 30.0, 8)
    assert np.array_equal(basis.eigenvalues, direct.eigenvalues)
    assert np.array_equal(basis.eigenvectors, direct.eigenvectors)
    assert cache.stats.misses == 1 and cache.stats.stores == 1


def test_warm_memory_hit_is_same_object(small_distances, patch):
    cache = KLCache()
    a = cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    b = cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert a is b
    assert cache.stats.memory_hits == 1


def test_warm_disk_hit_bit_identical(tmp_path, small_distances, patch):
    store = tmp_path / "kl"
    cold = KLCache(cache_dir=store).get_or_compute(
        small_distances, patch, 50.0, 30.0, n_modes=8
    )
    fresh = KLCache(cache_dir=store)  # new process stand-in: empty memory
    warm = fresh.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert fresh.stats.disk_hits == 1 and fresh.stats.misses == 0
    assert np.array_equal(cold.eigenvalues, warm.eigenvalues)
    assert np.array_equal(cold.eigenvectors, warm.eigenvectors)


def test_disk_hit_sampling_bit_identical(tmp_path, small_distances, patch):
    """The whole point: a reloaded basis must sample the exact field the
    freshly computed basis samples (same BLAS path, same bits)."""
    store = tmp_path / "kl"
    cold = KLCache(cache_dir=store).get_or_compute(
        small_distances, patch, 50.0, 30.0, n_modes=8
    )
    warm = KLCache(cache_dir=store).get_or_compute(
        small_distances, patch, 50.0, 30.0, n_modes=8
    )
    f_cold = cold.sample(np.random.default_rng(9))
    f_warm = warm.sample(np.random.default_rng(9))
    assert np.array_equal(f_cold, f_warm)


def test_env_var_names_disk_store(tmp_path, monkeypatch, small_distances, patch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env_kl"))
    cache = KLCache()
    cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=4)
    assert cache.disk_keys()
    assert (tmp_path / "env_kl").exists()


# -- cache mechanics ----------------------------------------------------------


def test_lru_eviction(small_distances, patch):
    cache = KLCache(max_memory_entries=2)
    for n_modes in (2, 3, 4):
        cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=n_modes)
    assert len(cache.memory_keys()) == 2
    assert cache.stats.evictions == 1


def test_clear_and_contains(tmp_path, small_distances, patch):
    cache = KLCache(cache_dir=tmp_path / "kl")
    cache.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=4)
    key = cache.memory_keys()[0]
    assert cache.contains(key)
    cache.clear()
    assert cache.contains(key)  # still on disk
    assert cache.contains(key, on_disk=True)
    cache.clear(disk=True)
    assert not cache.contains(key)
    assert cache.disk_keys() == []


def test_validation():
    with pytest.raises(CacheError):
        KLCache(max_memory_entries=0)
    with pytest.raises(CacheError):
        KLCache(quantize_step_km=0.0)
    with pytest.raises(CacheError):
        KLCache().put("", None)


# -- quantized mode (numerics-changing, opt-in) -------------------------------


def test_exact_mode_is_default():
    assert KLCache().quantize_step_km is None


def test_effective_lengths_exact_mode_passthrough():
    cache = KLCache()
    assert cache.effective_lengths(52.34, 29.01) == (52.34, 29.01)


def test_effective_lengths_quantized():
    cache = KLCache(quantize_step_km=5.0)
    assert cache.effective_lengths(52.34, 29.01) == (50.0, 30.0)
    # Never quantized to zero.
    assert cache.effective_lengths(0.3, 0.1) == (5.0, 5.0)


def test_quantized_mode_shares_entries(small_distances, patch):
    """Nearby scaling-law draws collapse onto one basis — the high-hit-
    rate sweep mode."""
    cache = KLCache(quantize_step_km=10.0)
    a = cache.get_or_compute(small_distances, patch, 52.0, 31.0, n_modes=4)
    b = cache.get_or_compute(small_distances, patch, 48.0, 28.0, n_modes=4)
    assert a is b
    assert cache.stats.memory_hits == 1


def test_quantized_mode_changes_numerics(small_distances, patch):
    """Documented caveat: quantization perturbs the sampled fields."""
    exact = KLCache().get_or_compute(small_distances, patch, 52.0, 31.0, n_modes=4)
    quant = KLCache(quantize_step_km=10.0).get_or_compute(
        small_distances, patch, 52.0, 31.0, n_modes=4
    )
    assert not np.array_equal(exact.eigenvalues, quant.eigenvalues)


# -- generator integration ----------------------------------------------------


def test_generator_with_cache_bit_identical(small_geometry, small_distances):
    plain = RuptureGenerator(small_geometry, distances=small_distances)
    cached = RuptureGenerator(
        small_geometry, distances=small_distances, kl_cache=KLCache()
    )
    for seed in (0, 1, 2):
        a = plain.generate(np.random.default_rng(seed), "r", 8.2)
        b = cached.generate(np.random.default_rng(seed), "r", 8.2)
        assert np.array_equal(a.slip_m, b.slip_m)
        assert np.array_equal(a.subfault_indices, b.subfault_indices)
        assert np.array_equal(a.rise_time_s, b.rise_time_s)
        assert np.array_equal(a.onset_time_s, b.onset_time_s)


def test_generator_warm_cache_reproduces_cold(small_geometry, small_distances):
    cache = KLCache()
    gen = RuptureGenerator(small_geometry, distances=small_distances, kl_cache=cache)
    cold = gen.generate(np.random.default_rng(5), "r", 8.4)
    lookups_after_cold = cache.stats.lookups
    warm = gen.generate(np.random.default_rng(5), "r", 8.4)
    assert cache.stats.lookups > lookups_after_cold
    assert cache.stats.hits >= 1
    assert np.array_equal(cold.slip_m, warm.slip_m)


# -- integrity: corrupt disk entries degrade to a recompute -------------------


def test_truncated_disk_entry_is_quarantined_miss(tmp_path, small_distances,
                                                  patch):
    """Regression: a truncated ``.npz`` used to leak zipfile.BadZipFile
    out of get(); now it is an IntegrityError handled as a cache miss."""
    store = tmp_path / "kl"
    cold = KLCache(cache_dir=store).get_or_compute(
        small_distances, patch, 50.0, 30.0, n_modes=8
    )
    path = next(store.glob("kl_*.npz"))
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    fresh = KLCache(cache_dir=store)
    recomputed = fresh.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert np.array_equal(recomputed.eigenvalues, cold.eigenvalues)
    assert fresh.stats.integrity_failures == 1
    assert fresh.stats.misses == 1  # the corrupt lookup was a miss
    assert len(fresh.quarantined) == 1
    quarantined = fresh.quarantined[0]
    assert quarantined.parent == store / "quarantine"
    assert quarantined.with_name(quarantined.name + ".reason").exists()
    # The recompute rewrote the entry: the next cold cache disk-hits.
    healed = KLCache(cache_dir=store)
    healed.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert healed.stats.disk_hits == 1


def test_bitflipped_disk_entry_fails_digest(tmp_path, small_distances, patch):
    store = tmp_path / "kl"
    KLCache(cache_dir=store).get_or_compute(
        small_distances, patch, 50.0, 30.0, n_modes=8
    )
    path = next(store.glob("kl_*.npz"))
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))
    fresh = KLCache(cache_dir=store)
    fresh.get_or_compute(small_distances, patch, 50.0, 30.0, n_modes=8)
    assert fresh.stats.integrity_failures == 1
    assert len(fresh.quarantined) == 1
