"""Tests for repro.seismo.geo."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seismo.geo import (
    EARTH_RADIUS_KM,
    LocalProjection,
    distance_3d_km,
    haversine_km,
)

lons = st.floats(min_value=-179.0, max_value=179.0)
lats = st.floats(min_value=-85.0, max_value=85.0)


def test_haversine_zero_for_identical_points():
    assert haversine_km(-71.0, -30.0, -71.0, -30.0) == 0.0


def test_haversine_one_degree_latitude():
    # One degree of latitude is ~111.19 km.
    d = haversine_km(0.0, 0.0, 0.0, 1.0)
    assert d == pytest.approx(np.pi * EARTH_RADIUS_KM / 180.0, rel=1e-6)


def test_haversine_antipodal():
    d = haversine_km(0.0, 0.0, 180.0, 0.0)
    assert d == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)


def test_haversine_broadcasts():
    lons_arr = np.array([-71.0, -72.0, -73.0])
    d = haversine_km(lons_arr, -30.0, -71.0, -30.0)
    assert d.shape == (3,)
    assert d[0] == 0.0
    assert d[1] < d[2]


@given(lons, lats, lons, lats)
def test_haversine_symmetry(lon1, lat1, lon2, lat2):
    d1 = haversine_km(lon1, lat1, lon2, lat2)
    d2 = haversine_km(lon2, lat2, lon1, lat1)
    assert d1 == pytest.approx(d2, abs=1e-9)


@given(lons, lats, lons, lats)
def test_haversine_bounded_by_half_circumference(lon1, lat1, lon2, lat2):
    d = haversine_km(lon1, lat1, lon2, lat2)
    assert 0.0 <= d <= np.pi * EARTH_RADIUS_KM + 1e-6


def test_distance_3d_includes_depth():
    d = distance_3d_km(-71.0, -30.0, 0.0, -71.0, -30.0, 30.0)
    assert d == pytest.approx(30.0)


def test_distance_3d_pythagorean():
    horiz = haversine_km(-71.0, -30.0, -71.5, -30.0)
    d = distance_3d_km(-71.0, -30.0, 0.0, -71.5, -30.0, 40.0)
    assert d == pytest.approx(np.hypot(horiz, 40.0), rel=1e-9)


def test_projection_origin_maps_to_zero():
    proj = LocalProjection(-71.0, -30.0)
    east, north = proj.to_enu(-71.0, -30.0)
    assert east == 0.0 and north == 0.0


def test_projection_roundtrip():
    proj = LocalProjection(-71.0, -30.0)
    east, north = proj.to_enu(-70.3, -29.1)
    lon, lat = proj.to_geographic(east, north)
    assert lon == pytest.approx(-70.3)
    assert lat == pytest.approx(-29.1)


def test_projection_matches_haversine_locally():
    proj = LocalProjection(-71.0, -30.0)
    east, north = proj.to_enu(-70.9, -29.9)
    approx = float(np.hypot(east, north))
    exact = float(haversine_km(-71.0, -30.0, -70.9, -29.9))
    assert approx == pytest.approx(exact, rel=2e-3)


def test_projection_rejects_bad_origin():
    with pytest.raises(ValueError):
        LocalProjection(-71.0, 95.0)


@given(lons, lats)
def test_projection_roundtrip_property(lon, lat):
    proj = LocalProjection(-71.0, -30.0)
    east, north = proj.to_enu(lon, lat)
    lon2, lat2 = proj.to_geographic(east, north)
    assert float(lon2) == pytest.approx(lon, abs=1e-9)
    assert float(lat2) == pytest.approx(lat, abs=1e-9)
