"""Tests for repro.seismo.kinematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuptureError
from repro.seismo.kinematics import onset_times, rise_times, slip_ramp


def test_rise_times_mean_matches_target():
    slip = np.array([1.0, 2.0, 4.0, 0.5])
    rise = rise_times(slip, mean_rise_s=8.0)
    shaped = np.sqrt(slip)
    expected_mean = 8.0
    realized = np.mean(shaped * (expected_mean / shaped.mean()))
    assert np.mean(rise) == pytest.approx(realized)


def test_rise_times_monotone_in_slip():
    slip = np.array([0.5, 1.0, 2.0, 8.0])
    rise = rise_times(slip)
    assert np.all(np.diff(rise) > 0)


def test_rise_times_floor():
    slip = np.array([1e-8, 10.0])
    rise = rise_times(slip, minimum_s=1.0)
    assert rise[0] >= 1.0


def test_rise_times_zero_slip_patch():
    rise = rise_times(np.zeros(4), minimum_s=1.5)
    np.testing.assert_allclose(rise, 1.5)


def test_rise_times_rejects_negative_slip():
    with pytest.raises(RuptureError):
        rise_times(np.array([-1.0]))


def test_rise_times_rejects_bad_scales():
    with pytest.raises(RuptureError):
        rise_times(np.array([1.0]), mean_rise_s=0.0)


def test_onset_zero_at_hypocenter():
    east = np.array([0.0, 10.0, 20.0])
    north = np.zeros(3)
    depth = np.full(3, 20.0)
    onset = onset_times(east, north, depth, hypocenter_index=0)
    assert onset[0] == 0.0
    assert np.all(onset[1:] > 0)


def test_onset_proportional_to_distance():
    east = np.array([0.0, 14.0, 28.0])
    north = np.zeros(3)
    depth = np.zeros(3)
    onset = onset_times(east, north, depth, 0, rupture_velocity_kms=2.8)
    assert onset[1] == pytest.approx(5.0)
    assert onset[2] == pytest.approx(10.0)


def test_onset_default_velocity_is_fraction_of_vs():
    east = np.array([0.0, 2.8])
    onset = onset_times(east, np.zeros(2), np.zeros(2), 0)
    assert onset[1] == pytest.approx(1.0)  # 0.8 * 3.5 = 2.8 km/s


def test_onset_rejects_bad_hypocenter():
    with pytest.raises(RuptureError):
        onset_times(np.zeros(3), np.zeros(3), np.zeros(3), 5)


def test_onset_rejects_shape_mismatch():
    with pytest.raises(RuptureError):
        onset_times(np.zeros(3), np.zeros(2), np.zeros(3), 0)


def test_onset_rejects_nonpositive_velocity():
    with pytest.raises(RuptureError):
        onset_times(np.zeros(2), np.zeros(2), np.zeros(2), 0, rupture_velocity_kms=0.0)


def test_slip_ramp_limits():
    t = np.array([-5.0, 0.0, 2.5, 5.0, 100.0])
    ramp = slip_ramp(t, onset_s=0.0, rise_s=5.0)
    assert ramp[0] == 0.0
    assert ramp[1] == 0.0
    assert ramp[2] == pytest.approx(0.5)
    assert ramp[3] == pytest.approx(1.0)
    assert ramp[4] == 1.0


def test_slip_ramp_monotone():
    t = np.linspace(-2, 12, 200)
    ramp = slip_ramp(t, onset_s=1.0, rise_s=6.0)
    assert np.all(np.diff(ramp) >= -1e-12)


def test_slip_ramp_rejects_zero_rise():
    with pytest.raises(RuptureError):
        slip_ramp(np.array([0.0]), 0.0, 0.0)


@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.5, max_value=30.0),
)
@settings(max_examples=30, deadline=None)
def test_slip_ramp_bounded(onset, rise):
    t = np.linspace(-10.0, 200.0, 128)
    ramp = slip_ramp(t, onset, rise)
    assert np.all(ramp >= 0.0) and np.all(ramp <= 1.0)
