"""Tests for repro.seismo.fakequakes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters


@pytest.fixture(scope="module")
def session():
    params = FakeQuakesParameters(
        n_ruptures=6, n_stations=5, mesh=(8, 5), seed=21
    )
    return FakeQuakes.from_parameters(params)


def test_parameters_validation():
    with pytest.raises(ConfigError):
        FakeQuakesParameters(n_ruptures=0)
    with pytest.raises(ConfigError):
        FakeQuakesParameters(n_stations=0)
    with pytest.raises(ConfigError):
        FakeQuakesParameters(mesh=(1, 5))
    with pytest.raises(ConfigError):
        FakeQuakesParameters(mw_range=(9.0, 8.0))
    with pytest.raises(ConfigError):
        FakeQuakesParameters(dt_s=0.0)


def _assert_identical_ruptures(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert a.rupture_id == b.rupture_id
        np.testing.assert_array_equal(a.subfault_indices, b.subfault_indices)
        np.testing.assert_array_equal(a.slip_m, b.slip_m)
        np.testing.assert_array_equal(a.rise_time_s, b.rise_time_s)
        np.testing.assert_array_equal(a.onset_time_s, b.onset_time_s)
        assert a.hypocenter_index == b.hypocenter_index


def test_phase_a_chunking_is_partition_invariant(session):
    whole = session.phase_a_ruptures(0, 6)
    split = session.phase_a_ruptures(0, 3) + session.phase_a_ruptures(3, 3)
    _assert_identical_ruptures(split, whole)


@pytest.mark.parametrize("k", [1, 2, 5])
def test_phase_a_any_split_point_matches_single_call(session, k):
    """Regression for the docstring claim: [0, k) + [k, n) must equal one
    [0, n) call for every split point — ids, slip, and kinematics (this
    is what makes the pooled Phase-A fan-out bit-identical)."""
    whole = session.phase_a_ruptures(0, 6)
    split = session.phase_a_ruptures(0, k) + session.phase_a_ruptures(k, 6 - k)
    _assert_identical_ruptures(split, whole)


def test_phase_a_per_rupture_chunks_match_single_call(session):
    """The finest partition (one rupture per job) is also invariant."""
    whole = session.phase_a_ruptures(0, 6)
    split = [r for i in range(6) for r in session.phase_a_ruptures(i, 1)]
    _assert_identical_ruptures(split, whole)


def test_phase_a_chunk_bounds_checked(session):
    with pytest.raises(ConfigError):
        session.phase_a_ruptures(4, 5)
    with pytest.raises(ConfigError):
        session.phase_a_ruptures(-1, 2)


def test_phase_b_cached(session):
    bank1 = session.phase_b_greens_functions()
    bank2 = session.phase_b_greens_functions()
    assert bank1 is bank2


def test_phase_b_recycled_bank_used(session, small_gf_bank):
    params = FakeQuakesParameters(n_ruptures=2, n_stations=8, mesh=(10, 6), seed=0)
    fq = FakeQuakes.from_parameters(params)
    bank = fq.phase_b_greens_functions(recycled=small_gf_bank)
    assert bank is small_gf_bank


def test_distance_recycling(session):
    d1 = session.phase_a_distances()
    d2 = session.phase_a_distances()
    assert d1 is d2


def test_run_sequential_produces_catalog(session):
    sets = session.run_sequential()
    assert len(sets) == 6
    ids = [ws.rupture_id for ws in sets]
    assert ids == sorted(ids)
    mags = session.catalog_magnitudes(session.phase_a_ruptures())
    assert np.all((mags >= 7.5) & (mags <= 9.2))


def test_same_seed_same_products():
    params = FakeQuakesParameters(n_ruptures=2, n_stations=3, mesh=(8, 5), seed=77)
    a = FakeQuakes.from_parameters(params).run_sequential()
    b = FakeQuakes.from_parameters(params).run_sequential()
    np.testing.assert_array_equal(a[0].data, b[0].data)


def test_different_seed_different_products():
    pa = FakeQuakesParameters(n_ruptures=2, n_stations=3, mesh=(8, 5), seed=1)
    pb = FakeQuakesParameters(n_ruptures=2, n_stations=3, mesh=(8, 5), seed=2)
    a = FakeQuakes.from_parameters(pa).run_sequential()
    b = FakeQuakes.from_parameters(pb).run_sequential()
    # Record lengths are auto-sized per rupture, so different seeds can
    # differ in shape; identical shapes must still differ in content.
    assert a[0].data.shape != b[0].data.shape or not np.allclose(a[0].data, b[0].data)


def test_noise_flag_adds_noise():
    base = FakeQuakesParameters(n_ruptures=1, n_stations=3, mesh=(8, 5), seed=4)
    noisy = FakeQuakesParameters(
        n_ruptures=1, n_stations=3, mesh=(8, 5), seed=4, with_noise=True
    )
    clean_sets = FakeQuakes.from_parameters(base).run_sequential()
    noisy_sets = FakeQuakes.from_parameters(noisy).run_sequential()
    assert not np.allclose(clean_sets[0].data, noisy_sets[0].data)


class TestGfDtype:
    def test_invalid_gf_dtype_rejected(self):
        with pytest.raises(ConfigError):
            FakeQuakesParameters(gf_dtype="float16")

    def test_phase_b_honours_gf_dtype(self):
        params = FakeQuakesParameters(
            n_ruptures=2, n_stations=3, mesh=(6, 4), gf_dtype="float32", seed=5
        )
        fq = FakeQuakes.from_parameters(params)
        bank = fq.phase_b_greens_functions()
        assert bank.dtype == np.float32
        # And Phase C runs in the bank's dtype end to end.
        ruptures = fq.phase_a_ruptures(0, 2)
        sets = fq.phase_c_waveforms(ruptures)
        assert all(ws.data.dtype == np.float32 for ws in sets)

    def test_phase_b_honours_gf_dtype_through_cache(self):
        from repro.core.gfcache import GFCache

        cache = GFCache()
        params = FakeQuakesParameters(
            n_ruptures=2, n_stations=3, mesh=(6, 4), gf_dtype="float32", seed=5
        )
        fq = FakeQuakes.from_parameters(params, gf_cache=cache)
        assert fq.phase_b_greens_functions().dtype == np.float32
