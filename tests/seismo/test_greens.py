"""Tests for repro.seismo.greens."""

import numpy as np
import pytest

from repro.errors import GreensFunctionError
from repro.seismo.greens import (
    GreensFunctionBank,
    compute_gf_bank,
    radiation_patterns,
)
from repro.seismo.stations import chilean_network


def test_bank_shapes(small_gf_bank, small_geometry, small_network):
    assert small_gf_bank.statics.shape == (
        len(small_network),
        small_geometry.n_subfaults,
        3,
    )
    assert small_gf_bank.travel_time_s.shape == small_gf_bank.statics.shape[:2]
    assert small_gf_bank.n_stations == len(small_network)
    assert small_gf_bank.n_subfaults == small_geometry.n_subfaults


def test_travel_times_positive(small_gf_bank):
    assert np.all(small_gf_bank.travel_time_s > 0)


def test_statics_finite(small_gf_bank):
    assert np.all(np.isfinite(small_gf_bank.statics))


def test_amplitude_decays_with_distance(small_geometry):
    # One distant and one near station along the same azimuth.
    from repro.seismo.stations import Station, StationNetwork

    near = Station("NEAR", -71.2, -30.0)
    far = Station("FARX", -68.0, -30.0)
    bank = compute_gf_bank(small_geometry, StationNetwork([near, far]))
    amp_near = np.linalg.norm(bank.statics[0], axis=-1).max()
    amp_far = np.linalg.norm(bank.statics[1], axis=-1).max()
    assert amp_near > amp_far


def test_amplitude_scales_inverse_square(small_geometry):
    from repro.seismo.stations import Station, StationNetwork

    # Two stations at distances r and 2r from the fault region; far-field
    # static amplitude should drop by roughly 4x.
    s1 = Station("AAAA", -66.0, -30.0)
    s2 = Station("BBBB", -60.0, -30.0)
    bank = compute_gf_bank(small_geometry, StationNetwork([s1, s2]))
    sub = 0
    r1 = bank.travel_time_s[0, sub]
    r2 = bank.travel_time_s[1, sub]
    a1 = np.linalg.norm(bank.statics[0, sub])
    a2 = np.linalg.norm(bank.statics[1, sub])
    # Takeoff angles differ slightly between the stations, so the
    # radiation pattern modulates the pure 1/R^2 ratio by a few percent.
    assert a1 / a2 == pytest.approx((r2 / r1) ** 2, rel=0.2)


def test_travel_time_matches_velocity(small_geometry, small_network):
    bank = compute_gf_bank(small_geometry, small_network, shear_velocity_kms=3.5)
    bank2 = compute_gf_bank(small_geometry, small_network, shear_velocity_kms=7.0)
    np.testing.assert_allclose(bank.travel_time_s, 2.0 * bank2.travel_time_s)


def test_station_index(small_gf_bank, small_network):
    name = small_network.names[3]
    assert small_gf_bank.station_index(name) == 3
    with pytest.raises(GreensFunctionError):
        small_gf_bank.station_index("ZZZZ")


def test_save_load_roundtrip(tmp_path, small_gf_bank):
    path = small_gf_bank.save(tmp_path / "gf.npz")
    back = GreensFunctionBank.load(path)
    np.testing.assert_array_equal(back.statics, small_gf_bank.statics)
    np.testing.assert_array_equal(back.travel_time_s, small_gf_bank.travel_time_s)
    assert back.station_names == small_gf_bank.station_names
    assert back.fault_name == small_gf_bank.fault_name


def test_load_missing_raises(tmp_path):
    with pytest.raises(GreensFunctionError):
        GreensFunctionBank.load(tmp_path / "missing.npz")


def test_bank_validation_catches_bad_shapes():
    with pytest.raises(GreensFunctionError):
        GreensFunctionBank(
            statics=np.zeros((2, 3, 2)),  # bad component axis
            travel_time_s=np.zeros((2, 3)),
            station_names=("A", "B"),
            fault_name="f",
        )
    with pytest.raises(GreensFunctionError):
        GreensFunctionBank(
            statics=np.zeros((2, 3, 3)),
            travel_time_s=np.zeros((2, 4)),
            station_names=("A", "B"),
            fault_name="f",
        )


def test_bank_validation_catches_negative_travel_times():
    with pytest.raises(GreensFunctionError):
        GreensFunctionBank(
            statics=np.zeros((1, 2, 3)),
            travel_time_s=np.array([[-1.0, 1.0]]),
            station_names=("A",),
            fault_name="f",
        )


def test_compute_rejects_bad_parameters(small_geometry, small_network):
    with pytest.raises(GreensFunctionError):
        compute_gf_bank(small_geometry, small_network, min_distance_km=0.0)
    with pytest.raises(GreensFunctionError):
        compute_gf_bank(small_geometry, small_network, shear_velocity_kms=-1.0)


def test_radiation_pattern_thrust_updip_positive():
    # Pure thrust (rake 90), vertical takeoff directly above the source:
    # P radiation should be positive (up).
    f_p, _, _ = radiation_patterns(0.0, 20.0, 90.0, azimuth_deg=90.0, takeoff_deg=0.0)
    assert float(f_p) == pytest.approx(np.sin(np.radians(40.0)), rel=1e-9)


def test_radiation_patterns_bounded():
    rng = np.random.default_rng(0)
    strike = rng.uniform(0, 360, 200)
    dip = rng.uniform(1, 89, 200)
    azim = rng.uniform(0, 360, 200)
    take = rng.uniform(0, 180, 200)
    f_p, f_sv, f_sh = radiation_patterns(strike, dip, 90.0, azim, take)
    for f in (f_p, f_sv, f_sh):
        assert np.all(np.abs(f) <= 1.5 + 1e-9)  # theoretical max magnitudes


def test_gf_cost_scales_with_station_count(small_geometry):
    # The bank arrays scale linearly in stations - the phase-B cost knob.
    small = compute_gf_bank(small_geometry, chilean_network(2))
    large = compute_gf_bank(small_geometry, chilean_network(8))
    assert large.statics.size == 4 * small.statics.size


class TestBankDtype:
    """Dtype-aware nbytes / save / load / astype (the float32 GF mode)."""

    def test_default_dtype_is_float64(self, small_gf_bank):
        assert small_gf_bank.dtype == np.float64

    def test_astype_halves_nbytes(self, small_gf_bank):
        half = small_gf_bank.astype("float32")
        assert half.dtype == np.float32
        assert half.nbytes * 2 == small_gf_bank.nbytes
        assert np.array_equal(
            half.statics, small_gf_bank.statics.astype(np.float32)
        )

    def test_astype_rejects_non_float(self, small_gf_bank):
        with pytest.raises(GreensFunctionError):
            small_gf_bank.astype("int32")

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_save_load_roundtrips_dtype(self, tmp_path, small_gf_bank, dtype):
        bank = small_gf_bank.astype(dtype)
        path = bank.save(tmp_path / f"bank_{dtype}.npz")
        loaded = GreensFunctionBank.load(path)
        assert loaded.dtype == np.dtype(dtype)
        assert np.array_equal(loaded.statics, bank.statics)
        assert np.array_equal(loaded.travel_time_s, bank.travel_time_s)

    def test_compute_gf_bank_dtype_param(self, small_geometry, small_network):
        full = compute_gf_bank(small_geometry, small_network)
        half = compute_gf_bank(small_geometry, small_network, dtype="float32")
        assert half.dtype == np.float32
        assert np.array_equal(half.statics, full.statics.astype(np.float32))
