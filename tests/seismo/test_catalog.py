"""Tests for repro.seismo.catalog — G-R sampling and b-value estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuptureError
from repro.seismo.catalog import (
    estimate_b_value,
    magnitude_histogram,
    sample_gutenberg_richter,
)


def test_samples_within_bounds():
    rng = np.random.default_rng(0)
    mags = sample_gutenberg_richter(5000, rng, mw_min=7.5, mw_max=9.2)
    assert mags.shape == (5000,)
    assert mags.min() >= 7.5
    assert mags.max() <= 9.2


def test_small_events_dominate():
    rng = np.random.default_rng(1)
    mags = sample_gutenberg_richter(20000, rng, mw_min=7.5, mw_max=9.2, b_value=1.0)
    low = np.sum(mags < 8.0)
    high = np.sum(mags >= 8.7)
    assert low > 4 * high  # exponential falloff


def test_b_value_recovered():
    rng = np.random.default_rng(2)
    for b_true in (0.8, 1.0, 1.3):
        # A wide range keeps the untruncated Aki estimator nearly unbiased.
        mags = sample_gutenberg_richter(
            60000, rng, mw_min=5.0, mw_max=10.0, b_value=b_true
        )
        b_est = estimate_b_value(mags, mw_min=5.0)
        assert b_est == pytest.approx(b_true, rel=0.08)


def test_uniform_catalog_has_low_apparent_b():
    rng = np.random.default_rng(3)
    uniform = rng.uniform(7.5, 9.2, 5000)
    gr = sample_gutenberg_richter(5000, rng, 7.5, 9.2, b_value=1.0)
    assert estimate_b_value(gr, 7.5) > estimate_b_value(uniform, 7.5)


def test_sampling_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(RuptureError):
        sample_gutenberg_richter(-1, rng)
    with pytest.raises(RuptureError):
        sample_gutenberg_richter(10, rng, mw_min=9.0, mw_max=8.0)
    with pytest.raises(RuptureError):
        sample_gutenberg_richter(10, rng, b_value=0.0)


def test_b_value_validation():
    with pytest.raises(RuptureError):
        estimate_b_value(np.array([8.0]))
    with pytest.raises(RuptureError):
        estimate_b_value(np.array([8.0, 8.0]))


def test_histogram_covers_catalog():
    mags = np.array([7.6, 7.7, 8.0, 8.01, 9.1])
    edges, counts = magnitude_histogram(mags, bin_width=0.2)
    assert counts.sum() == mags.size
    assert edges[0] <= mags.min()


def test_histogram_validation():
    with pytest.raises(RuptureError):
        magnitude_histogram(np.array([]), 0.2)
    with pytest.raises(RuptureError):
        magnitude_histogram(np.array([8.0]), 0.0)


@given(
    st.integers(min_value=2, max_value=500),
    st.floats(min_value=0.5, max_value=2.0),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_sampling_bounds_property(count, b_value, seed):
    rng = np.random.default_rng(seed)
    mags = sample_gutenberg_richter(count, rng, 7.5, 9.2, b_value)
    assert np.all((mags >= 7.5) & (mags <= 9.2))


class TestGeneratorIntegration:
    def test_gr_generator_biases_small(self, small_geometry, small_distances):
        from repro.seismo.ruptures import RuptureGenerator

        gen = RuptureGenerator(
            small_geometry,
            distances=small_distances,
            magnitude_law="gutenberg_richter",
        )
        rng = np.random.default_rng(5)
        mags = [gen.generate(rng, f"g.{i}").target_mw for i in range(40)]
        assert np.median(mags) < (7.5 + 9.2) / 2.0  # skewed low

    def test_bad_law_rejected(self, small_geometry, small_distances):
        from repro.seismo.ruptures import RuptureGenerator

        with pytest.raises(RuptureError):
            RuptureGenerator(
                small_geometry, distances=small_distances, magnitude_law="poisson"
            )
        with pytest.raises(RuptureError):
            RuptureGenerator(
                small_geometry, distances=small_distances, b_value=-1.0
            )
