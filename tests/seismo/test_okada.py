"""Tests for repro.seismo.okada — finite-fault Okada (1985) statics."""

import numpy as np
import pytest

from repro.errors import GreensFunctionError
from repro.seismo.greens import compute_gf_bank
from repro.seismo.okada import compute_okada_gf_bank, okada85

THRUST = dict(depth_km=12.0, dip_deg=30.0, length_km=20.0, width_km=10.0, dip_slip_m=1.0)


def test_thrust_uplift_updip_subsidence_downdip():
    # Classic megathrust pattern: uplift above the shallow (up-dip) part,
    # subsidence over the deep (down-dip) side.
    _, _, uz_up = okada85(10.0, 5.0, **THRUST)
    _, _, uz_down = okada85(10.0, -5.0, **THRUST)
    assert float(uz_up) > 0.05
    assert float(uz_down) < 0.0


def test_dip_slip_no_along_strike_motion_on_symmetry_axis():
    ux, _, _ = okada85(10.0, 7.0, **THRUST)  # x=10 is the fault midpoint
    assert abs(float(ux)) < 1e-12


def test_strike_slip_antisymmetric_across_fault():
    kwargs = dict(depth_km=12.0, dip_deg=89.0, length_km=20.0, width_km=10.0,
                  strike_slip_m=1.0)
    ux_pos, _, _ = okada85(10.0, 8.0, **kwargs)
    ux_neg, _, _ = okada85(10.0, -8.0, **kwargs)
    # Near-vertical fault: along-strike motion flips sign across it.
    assert float(ux_pos) * float(ux_neg) < 0
    assert abs(float(ux_pos) + float(ux_neg)) < 0.1 * abs(float(ux_pos))


def test_far_field_inverse_square_decay():
    _, _, u1 = okada85(10.0, 800.0, **THRUST)
    _, _, u2 = okada85(10.0, 1600.0, **THRUST)
    assert float(u1 / u2) == pytest.approx(4.0, rel=0.08)


def test_displacement_scales_linearly_in_slip():
    _, _, u1 = okada85(10.0, 5.0, **THRUST)
    big = dict(THRUST, dip_slip_m=2.5)
    _, _, u2 = okada85(10.0, 5.0, **big)
    assert float(u2) == pytest.approx(2.5 * float(u1), rel=1e-9)


def test_superposition_of_slip_components():
    kwargs = dict(depth_km=12.0, dip_deg=45.0, length_km=15.0, width_km=8.0)
    ux_s, uy_s, uz_s = okada85(5.0, 6.0, strike_slip_m=0.7, **kwargs)
    ux_d, uy_d, uz_d = okada85(5.0, 6.0, dip_slip_m=1.3, **kwargs)
    ux_b, uy_b, uz_b = okada85(5.0, 6.0, strike_slip_m=0.7, dip_slip_m=1.3, **kwargs)
    assert float(ux_b) == pytest.approx(float(ux_s) + float(ux_d), abs=1e-12)
    assert float(uz_b) == pytest.approx(float(uz_s) + float(uz_d), abs=1e-12)


def test_vectorized_over_observation_points():
    x = np.linspace(-20, 40, 13)
    y = np.full_like(x, 9.0)
    ux, uy, uz = okada85(x, y, **THRUST)
    assert ux.shape == x.shape
    assert np.all(np.isfinite(ux)) and np.all(np.isfinite(uz))


def test_deeper_fault_smaller_signal():
    shallow = dict(THRUST, depth_km=8.0)
    deep = dict(THRUST, depth_km=40.0)
    _, _, uz_shallow = okada85(10.0, 5.0, **shallow)
    _, _, uz_deep = okada85(10.0, 5.0, **deep)
    assert abs(float(uz_shallow)) > abs(float(uz_deep))


def test_validation():
    with pytest.raises(GreensFunctionError):
        okada85(0.0, 0.0, depth_km=-1.0, dip_deg=30.0, length_km=10.0, width_km=5.0)
    with pytest.raises(GreensFunctionError):
        okada85(0.0, 0.0, depth_km=10.0, dip_deg=0.0, length_km=10.0, width_km=5.0)
    with pytest.raises(GreensFunctionError):
        okada85(0.0, 0.0, depth_km=10.0, dip_deg=30.0, length_km=-1.0, width_km=5.0)


class TestOkadaBank:
    def test_bank_shape_compatible(self, small_geometry, small_network):
        bank = compute_okada_gf_bank(small_geometry, small_network)
        assert bank.n_stations == len(small_network)
        assert bank.n_subfaults == small_geometry.n_subfaults
        assert np.all(np.isfinite(bank.statics))

    def test_far_field_agrees_with_point_source(self, small_geometry):
        """Beyond several fault lengths, the finite-fault and the
        point-source approximations must agree in magnitude scale."""
        from repro.seismo.stations import Station, StationNetwork

        far = StationNetwork([Station("FARR", -64.0, -30.0)])  # ~800 km east
        okada_bank = compute_okada_gf_bank(small_geometry, far)
        point_bank = compute_gf_bank(small_geometry, far)
        sub = small_geometry.n_subfaults // 2
        a = np.linalg.norm(okada_bank.statics[0, sub])
        b = np.linalg.norm(point_bank.statics[0, sub])
        assert a == pytest.approx(b, rel=1.5)  # same order of magnitude
        # And far-field vertical signs agree.
        assert np.sign(okada_bank.statics[0, sub, 2]) == np.sign(
            point_bank.statics[0, sub, 2]
        )

    def test_near_field_uplift_above_shallow_thrust(self, small_geometry):
        from repro.seismo.stations import Station, StationNetwork

        # A coastal station just east of the shallow subfaults: thrust
        # slip below it must push it up and seaward.
        station = StationNetwork([Station("COAST", -72.2, -30.0)])
        bank = compute_okada_gf_bank(small_geometry, station)
        # Pick the subfault whose center lies just DOWN-dip (east) of
        # the station at its latitude — the station sits above that
        # patch's up-dip side, so thrust slip lifts it. Conversely the
        # patch up-dip (west) of the station drags it down.
        east_s, _ = small_geometry.projection.to_enu(
            station.lons[0], station.lats[0]
        )
        east_f, _, _ = small_geometry.enu()
        lat_band = np.abs(small_geometry.lat - (-30.0)) < 0.5
        downdip = lat_band & (east_f > float(east_s))
        updip = lat_band & (east_f <= float(east_s))
        j_up = int(np.flatnonzero(downdip)[np.argmin(east_f[downdip])])
        j_down = int(np.flatnonzero(updip)[np.argmax(east_f[updip])])
        assert bank.statics[0, j_up, 2] > 0.0
        assert bank.statics[0, j_down, 2] < 0.0

    def test_waveforms_run_on_okada_bank(self, small_geometry, small_network,
                                          rupture_generator):
        from repro.seismo.waveforms import WaveformSynthesizer

        bank = compute_okada_gf_bank(small_geometry, small_network)
        rupture = rupture_generator.generate(np.random.default_rng(4), target_mw=8.2)
        ws = WaveformSynthesizer(bank).synthesize(rupture)
        assert float(ws.pgd_m().max()) > 0.0


class TestGoldenValues:
    """Okada (1985) Table 2 check cases: x=2, y=3, d=4, delta=70 deg,
    L=3, W=2. Published surface displacements (4 significant digits)."""

    CASE = dict(depth_km=4.0, dip_deg=70.0, length_km=3.0, width_km=2.0)

    def test_case2_strike_slip(self):
        ux, uy, uz = okada85(2.0, 3.0, strike_slip_m=1.0, **self.CASE)
        assert float(ux) == pytest.approx(-8.689e-3, rel=2e-3)
        assert float(uy) == pytest.approx(-4.298e-3, rel=2e-3)
        assert float(uz) == pytest.approx(-2.747e-3, rel=2e-3)

    def test_case2_dip_slip(self):
        ux, uy, uz = okada85(2.0, 3.0, dip_slip_m=1.0, **self.CASE)
        assert float(ux) == pytest.approx(-4.682e-3, rel=2e-3)
        assert float(uy) == pytest.approx(-3.527e-2, rel=2e-3)
        assert float(uz) == pytest.approx(-3.564e-2, rel=2e-3)


class TestVectorEngine:
    """The batched (station, subfault, 4-corner) engine against the
    per-subfault reference loop — the PR's bit-identity contract."""

    def test_bit_identical_on_small_mesh(self, small_geometry, small_network):
        ref = compute_okada_gf_bank(small_geometry, small_network, engine="reference")
        vec = compute_okada_gf_bank(small_geometry, small_network, engine="vector")
        assert np.array_equal(ref.statics, vec.statics)
        assert np.array_equal(ref.travel_time_s, vec.travel_time_s)

    def test_bit_identical_for_oblique_rake(self, small_geometry, small_network):
        ref = compute_okada_gf_bank(
            small_geometry, small_network, rake_deg=37.0, engine="reference"
        )
        vec = compute_okada_gf_bank(small_geometry, small_network, rake_deg=37.0)
        assert np.array_equal(ref.statics, vec.statics)

    def test_unknown_engine_rejected(self, small_geometry, small_network):
        with pytest.raises(GreensFunctionError):
            compute_okada_gf_bank(small_geometry, small_network, engine="gpu")

    def test_bad_dtype_rejected(self, small_geometry, small_network):
        with pytest.raises(GreensFunctionError):
            compute_okada_gf_bank(small_geometry, small_network, dtype="float16")

    def test_float32_bank_is_cast_of_float64(self, small_geometry, small_network):
        full = compute_okada_gf_bank(small_geometry, small_network)
        half = compute_okada_gf_bank(small_geometry, small_network, dtype="float32")
        assert half.statics.dtype == np.float32
        assert half.travel_time_s.dtype == np.float32
        assert np.array_equal(half.statics, full.statics.astype(np.float32))
        assert half.nbytes * 2 == full.nbytes

    def test_vector_validates_geometry_like_reference(self, small_network):
        import dataclasses

        from repro.seismo.geometry import build_chile_slab

        geom = build_chile_slab(n_strike=4, n_dip=3)
        flat = dataclasses.replace(
            geom, dip_deg=np.zeros_like(geom.dip_deg)  # dip must be in (0, 90]
        )
        with pytest.raises(GreensFunctionError):
            compute_okada_gf_bank(flat, small_network, engine="vector")
        with pytest.raises(GreensFunctionError):
            compute_okada_gf_bank(flat, small_network, engine="reference")


class TestVectorEngineProperty:
    """Hypothesis pin: vector == reference bit-for-bit across random
    geometries, rakes, and station layouts."""

    @staticmethod
    def _random_case(seed, n_sub, n_sta, rake):
        import dataclasses

        from repro.seismo.geometry import build_chile_slab
        from repro.seismo.stations import Station, StationNetwork

        rng = np.random.default_rng(seed)
        geom = build_chile_slab(n_strike=n_sub, n_dip=2)
        n = geom.n_subfaults
        geom = dataclasses.replace(
            geom,
            depth_km=rng.uniform(8.0, 40.0, n),
            strike_deg=rng.uniform(0.0, 360.0, n),
            dip_deg=rng.uniform(5.0, 90.0, n),
            length_km=rng.uniform(5.0, 30.0, n),
            width_km=rng.uniform(4.0, 15.0, n),
        )
        stations = StationNetwork(
            [
                Station(
                    f"R{i:03d}",
                    float(rng.uniform(-73.5, -69.0)),
                    float(rng.uniform(-33.0, -27.0)),
                )
                for i in range(n_sta)
            ]
        )
        return geom, stations

    def test_property_vector_equals_reference(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(0, 2**31 - 1),
            n_sub=st.integers(2, 6),
            n_sta=st.integers(1, 6),
            rake=st.floats(-180.0, 180.0, allow_nan=False),
        )
        def check(seed, n_sub, n_sta, rake):
            geom, stations = self._random_case(seed, n_sub, n_sta, rake)
            ref = compute_okada_gf_bank(
                geom, stations, rake_deg=rake, engine="reference"
            )
            vec = compute_okada_gf_bank(geom, stations, rake_deg=rake)
            assert np.array_equal(ref.statics, vec.statics)
            assert np.array_equal(ref.travel_time_s, vec.travel_time_s)

        check()
