"""Tests for repro.seismo.spectra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuptureError
from repro.seismo.spectra import KarhunenLoeveBasis, von_karman_correlation


def _grid_distances(n=6, spacing=10.0):
    x = np.arange(n) * spacing
    d = np.abs(x[:, None] - x[None, :])
    return d, np.zeros_like(d)


def test_unit_diagonal():
    ds, dd = _grid_distances()
    c = von_karman_correlation(ds, dd, 30.0, 20.0)
    np.testing.assert_allclose(np.diag(c), 1.0)


def test_correlation_decays_with_distance():
    ds, dd = _grid_distances()
    c = von_karman_correlation(ds, dd, 30.0, 20.0)
    row = c[0]
    assert np.all(np.diff(row) < 0)


def test_correlation_in_unit_interval():
    ds, dd = _grid_distances(10, 25.0)
    c = von_karman_correlation(ds, dd, 30.0, 20.0)
    assert np.all(c <= 1.0 + 1e-12)
    assert np.all(c > 0.0)


def test_longer_correlation_length_higher_correlation():
    ds, dd = _grid_distances()
    short = von_karman_correlation(ds, dd, 10.0, 10.0)
    long = von_karman_correlation(ds, dd, 100.0, 100.0)
    assert long[0, -1] > short[0, -1]


def test_symmetric():
    ds, dd = _grid_distances(8)
    c = von_karman_correlation(ds, dd, 25.0, 15.0)
    np.testing.assert_allclose(c, c.T)


def test_rejects_bad_parameters():
    ds, dd = _grid_distances()
    with pytest.raises(RuptureError):
        von_karman_correlation(ds, dd, -1.0, 20.0)
    with pytest.raises(RuptureError):
        von_karman_correlation(ds, dd, 30.0, 20.0, hurst=1.5)


@given(st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=20, deadline=None)
def test_hurst_sweep_keeps_valid_correlation(hurst):
    ds, dd = _grid_distances(5)
    c = von_karman_correlation(ds, dd, 30.0, 20.0, hurst=hurst)
    assert np.all(np.isfinite(c))
    assert np.all(np.diag(c) == 1.0)
    assert np.all(c > 0)


def test_unique_lag_matches_dense_bitwise(small_distances):
    """The unique-lag memoization is an exact optimization: identical
    float lags give identical kv values, so the scattered-back matrix
    equals the dense evaluation bit-for-bit."""
    ds, dd = small_distances.along_strike, small_distances.down_dip
    for hurst in (0.4, 0.75, 0.9):
        dense = von_karman_correlation(ds, dd, 45.0, 25.0, hurst, unique_lags=False)
        fast = von_karman_correlation(ds, dd, 45.0, 25.0, hurst, unique_lags=True)
        assert np.array_equal(fast, dense)


def test_unique_lag_matches_dense_on_patch_window(small_distances):
    """Same bit-identity on a rupture-patch submatrix (the _sample_slip
    call shape)."""
    patch = np.array([0, 1, 2, 6, 7, 8, 12, 13, 14])
    ds = small_distances.along_strike[np.ix_(patch, patch)]
    dd = small_distances.down_dip[np.ix_(patch, patch)]
    dense = von_karman_correlation(ds, dd, 30.0, 20.0, unique_lags=False)
    fast = von_karman_correlation(ds, dd, 30.0, 20.0, unique_lags=True)
    assert np.array_equal(fast, dense)


def test_unique_lag_default_on_irregular_lags():
    """Irregular (no repeated lag) inputs still work — unique-lag is a
    pure memoization, not a mesh assumption."""
    rng = np.random.default_rng(3)
    x = np.sort(rng.uniform(0.0, 100.0, 7))
    ds = np.abs(x[:, None] - x[None, :])
    dd = np.zeros_like(ds)
    dense = von_karman_correlation(ds, dd, 30.0, 20.0, unique_lags=False)
    fast = von_karman_correlation(ds, dd, 30.0, 20.0)
    assert np.array_equal(fast, dense)


def test_kl_eigenvalues_descending_nonnegative(small_distances):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=10)
    vals = basis.eigenvalues
    assert vals.shape == (10,)
    assert np.all(vals >= 0)
    assert np.all(np.diff(vals) <= 1e-12)


def test_kl_full_decomposition_reconstructs(small_distances):
    c = von_karman_correlation(
        small_distances.along_strike, small_distances.down_dip, 50.0, 30.0
    )
    basis = KarhunenLoeveBasis.from_correlation(c)
    recon = (basis.eigenvectors * basis.eigenvalues) @ basis.eigenvectors.T
    np.testing.assert_allclose(recon, c, atol=1e-8)


def test_kl_truncation_keeps_dominant_energy(small_distances):
    c = von_karman_correlation(
        small_distances.along_strike, small_distances.down_dip, 80.0, 50.0
    )
    full = KarhunenLoeveBasis.from_correlation(c)
    trunc = KarhunenLoeveBasis.from_correlation(c, n_modes=12)
    energy = trunc.eigenvalues.sum() / full.eigenvalues.sum()
    assert energy > 0.6  # long correlation -> energy concentrates
    # And far more than a proportional share of modes (12/60 = 20%).
    assert energy > 2.5 * 12 / full.n_modes


def test_kl_sample_statistics(small_distances):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0)
    rng = np.random.default_rng(1)
    fields = np.array([basis.sample(rng) for _ in range(300)])
    # Zero mean, variance near the diagonal of C (== 1).
    assert abs(fields.mean()) < 0.05
    assert np.mean(fields.var(axis=0)) == pytest.approx(1.0, rel=0.2)


def test_kl_sample_spatially_correlated(small_distances, small_geometry):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 120.0, 60.0)
    rng = np.random.default_rng(2)
    fields = np.array([basis.sample(rng) for _ in range(400)])
    # Adjacent subfaults (0 and 1) should correlate far more than
    # distant ones (0 and last).
    near = np.corrcoef(fields[:, 0], fields[:, 1])[0, 1]
    far = np.corrcoef(fields[:, 0], fields[:, -1])[0, 1]
    assert near > 0.7
    assert near > far


def test_kl_restricted_basis(small_distances):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=8)
    sub = basis.restricted(np.array([0, 3, 7]))
    assert sub.n_points == 3
    assert sub.n_modes == 8
    rng = np.random.default_rng(3)
    assert sub.sample(rng).shape == (3,)


def test_kl_restricted_preserves_eigenvalues_and_rows(small_distances):
    """Restriction keeps the global eigenvalues and picks exactly the
    requested eigenvector rows (reading the global field on the patch)."""
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=8)
    idx = np.array([5, 1, 9, 1])  # order and repeats must be honoured
    sub = basis.restricted(idx)
    np.testing.assert_array_equal(sub.eigenvalues, basis.eigenvalues)
    np.testing.assert_array_equal(sub.eigenvectors, basis.eigenvectors[idx, :])


def test_kl_restricted_sample_reads_global_field(small_distances):
    """Sampling the restricted basis equals drawing the global field
    with the same stream and reading it on the patch."""
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=8)
    idx = np.array([0, 3, 7])
    global_field = basis.sample(np.random.default_rng(11))
    patch_field = basis.restricted(idx).sample(np.random.default_rng(11))
    np.testing.assert_allclose(patch_field, global_field[idx])


def test_kl_restricted_empty_raises(small_distances):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=4)
    with pytest.raises(RuptureError):
        basis.restricted(np.array([], dtype=int))


def test_kl_sample_sigma_zero_is_zero(small_distances):
    basis = KarhunenLoeveBasis.from_distances(small_distances, 50.0, 30.0, n_modes=4)
    field = basis.sample(np.random.default_rng(0), sigma=0.0)
    np.testing.assert_allclose(field, 0.0)


def test_kl_bad_modes_rejected(small_distances):
    c = von_karman_correlation(
        small_distances.along_strike, small_distances.down_dip, 50.0, 30.0
    )
    with pytest.raises(RuptureError):
        KarhunenLoeveBasis.from_correlation(c, n_modes=0)
    with pytest.raises(RuptureError):
        KarhunenLoeveBasis.from_correlation(c, n_modes=c.shape[0] + 1)
