"""Tests for repro.seismo.stations."""

import pytest

from repro.errors import StationError
from repro.seismo.stations import Station, StationNetwork, chilean_network


def test_full_network_size():
    net = chilean_network(121)
    assert len(net) == 121


def test_network_deterministic():
    a = chilean_network(10)
    b = chilean_network(10)
    assert a.names == b.names
    assert list(a.lons) == list(b.lons)


def test_seed_changes_placement():
    a = chilean_network(10, seed=1)
    b = chilean_network(10, seed=2)
    assert list(a.lons) != list(b.lons)


def test_stations_east_of_coast():
    net = chilean_network(50, coast_lon=-71.3)
    assert all(s.lon >= -71.3 for s in net)


def test_lookup_by_name_and_index():
    net = chilean_network(5)
    assert net[0] is net[net.names[0]]
    assert net.names[0] in net


def test_unknown_name_raises():
    net = chilean_network(3)
    with pytest.raises(StationError):
        net["NOPE"]


def test_duplicate_names_rejected():
    s = Station("AAAA", -71.0, -30.0)
    with pytest.raises(StationError):
        StationNetwork([s, Station("AAAA", -70.0, -31.0)])


def test_empty_network_rejected():
    with pytest.raises(StationError):
        StationNetwork([])


def test_station_validation():
    with pytest.raises(StationError):
        Station("", -71.0, -30.0)
    with pytest.raises(StationError):
        Station("OK", -71.0, 123.0)
    with pytest.raises(StationError):
        Station("OK", -71.0, -30.0, sample_rate_hz=0.0)


def test_subset_preserves_order():
    net = chilean_network(10)
    sub = net.subset(2)
    assert len(sub) == 2
    assert sub.names == net.names[:2]


def test_subset_bounds():
    net = chilean_network(4)
    with pytest.raises(StationError):
        net.subset(0)
    with pytest.raises(StationError):
        net.subset(5)


def test_distances_to_point():
    net = chilean_network(6)
    d = net.distances_to_km(float(net.lons[0]), float(net.lats[0]))
    assert d[0] == pytest.approx(0.0, abs=1e-9)
    assert d.shape == (6,)
    assert (d[1:] > 0).all()


def test_station_file_roundtrip(tmp_path):
    net = chilean_network(7)
    path = net.write_station_file(tmp_path / "chile.gflist")
    back = StationNetwork.read_station_file(path)
    assert back.names == net.names
    for a, b in zip(net, back):
        assert b.lon == pytest.approx(a.lon, abs=1e-5)
        assert b.lat == pytest.approx(a.lat, abs=1e-5)


def test_station_file_rejects_bad_row(tmp_path):
    path = tmp_path / "bad.gflist"
    path.write_text("AAAA -71.0\n")
    with pytest.raises(StationError):
        StationNetwork.read_station_file(path)


def test_station_file_rejects_empty(tmp_path):
    path = tmp_path / "empty.gflist"
    path.write_text("# nothing here\n")
    with pytest.raises(StationError):
        StationNetwork.read_station_file(path)
