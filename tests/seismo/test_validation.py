"""Tests for repro.seismo.validation."""

import numpy as np
import pytest

from repro.errors import WaveformError
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters
from repro.seismo.validation import (
    moment_closure_error,
    pgd_regression,
    static_consistency,
    validate_waveform_set,
)
from repro.seismo.waveforms import WaveformSynthesizer


@pytest.fixture(scope="module")
def catalog():
    params = FakeQuakesParameters(n_ruptures=8, n_stations=8, mesh=(10, 6), seed=5)
    fq = FakeQuakes.from_parameters(params)
    sets = fq.run_sequential()
    return fq, fq.phase_a_ruptures(), sets


def test_moment_closure_zero(catalog):
    fq, ruptures, _ = catalog
    for r in ruptures:
        assert moment_closure_error(r, fq.geometry) < 1e-9


def test_static_consistency_clean(catalog):
    _, _, sets = catalog
    for ws in sets:
        assert static_consistency(ws) < 1e-6


def test_static_consistency_flags_drift(catalog):
    _, _, sets = catalog
    ws = sets[0]
    drifting = ws.data.copy()
    drifting[:, :, -1] += 10.0 * max(1e-3, np.abs(drifting).max())
    from repro.seismo.waveforms import WaveformSet

    bad = WaveformSet(
        rupture_id=ws.rupture_id,
        data=drifting,
        dt_s=ws.dt_s,
        station_names=ws.station_names,
    )
    assert static_consistency(bad) > 0.5


def test_static_consistency_validates_fraction(catalog):
    _, _, sets = catalog
    with pytest.raises(WaveformError):
        static_consistency(sets[0], tail_fraction=0.9)


def test_pgd_regression_physical_signs(catalog):
    fq, ruptures, sets = catalog
    fit = pgd_regression(sets, ruptures, fq.geometry, fq.network)
    assert fit.b > 0  # PGD grows with magnitude
    assert fit.c < 0  # PGD decays with distance
    assert fit.n_points > 10


def test_pgd_regression_rejects_mismatched_lists(catalog):
    fq, ruptures, sets = catalog
    with pytest.raises(WaveformError):
        pgd_regression(sets[:2], ruptures[:3], fq.geometry, fq.network)


def test_pgd_regression_rejects_empty(catalog):
    fq, _, _ = catalog
    with pytest.raises(WaveformError):
        pgd_regression([], [], fq.geometry, fq.network)


def test_validate_waveform_set_passes(catalog):
    fq, ruptures, sets = catalog
    report = validate_waveform_set(sets[0], ruptures[0], fq.geometry)
    assert report["passed"]
    assert report["moment_error"] < 1e-9
    assert report["max_pgd_m"] > 0


def test_validate_report_fails_on_moment_mismatch(catalog):
    import dataclasses

    fq, ruptures, sets = catalog
    bad = dataclasses.replace(ruptures[0], actual_mw=ruptures[0].target_mw + 0.5)
    report = validate_waveform_set(sets[0], bad, fq.geometry)
    assert not report["passed"]


def test_larger_event_larger_pgd(small_gf_bank, rupture_generator):
    rng_small = np.random.default_rng(3)
    rng_large = np.random.default_rng(3)
    small_event = rupture_generator.generate(rng_small, target_mw=7.5)
    large_event = rupture_generator.generate(rng_large, target_mw=9.0)
    synth = WaveformSynthesizer(small_gf_bank)
    pgd_small = synth.synthesize(small_event).pgd_m().max()
    pgd_large = synth.synthesize(large_event).pgd_m().max()
    assert pgd_large > pgd_small
