"""Tests for DAGMan PRE/POST scripts (dagfile + pool semantics)."""

import pytest

from repro.condor.dagfile import DagDescription, ScriptSpec
from repro.condor.jobs import JobPayload, JobSpec
from repro.errors import DagError
from repro.osg.capacity import FixedCapacity
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.osg.transfer import TransferConfig


def single_node_dag(name="s", retries=0):
    dag = DagDescription(name)
    dag.add_job(
        "n0",
        JobSpec(name="n0", payload=JobPayload(phase="A", n_items=1, n_stations=2)),
        retries=retries,
    )
    return dag


def quiet_pool(success_prob=1.0, seed=0):
    return OSPoolSimulator(
        config=OSPoolConfig(
            transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
            success_prob=success_prob,
        ),
        capacity=FixedCapacity(2),
        seed=seed,
    )


class TestScriptSpec:
    def test_validation(self):
        with pytest.raises(DagError):
            ScriptSpec(command="")
        with pytest.raises(DagError):
            ScriptSpec(command="x", duration_s=-1.0)

    def test_succeeds(self):
        assert ScriptSpec(command="setup.sh").succeeds
        assert not ScriptSpec(command="bad.sh", exit_code=1).succeeds


class TestDagFile:
    def test_set_script(self):
        dag = single_node_dag()
        dag.set_script("n0", "PRE", ScriptSpec(command="mkdirs.sh"))
        dag.set_script("n0", "post", ScriptSpec(command="compress.sh out/"))
        node = dag.node("n0")
        assert node.pre_script.command == "mkdirs.sh"
        assert node.post_script.command == "compress.sh out/"

    def test_set_script_bad_kind(self):
        dag = single_node_dag()
        with pytest.raises(DagError):
            dag.set_script("n0", "DURING", ScriptSpec(command="x"))

    def test_roundtrip_through_dag_file(self, tmp_path):
        dag = single_node_dag()
        dag.set_script("n0", "PRE", ScriptSpec(command="mkdirs.sh --rigid"))
        dag.set_script("n0", "POST", ScriptSpec(command="compress.sh"))
        path = dag.write(tmp_path)
        back = DagDescription.read(path)
        node = back.node("n0")
        assert node.pre_script.command == "mkdirs.sh --rigid"
        assert node.post_script.command == "compress.sh"

    def test_bad_script_line(self, tmp_path):
        (tmp_path / "a.sub").write_text("executable = x\nqueue\n")
        path = tmp_path / "bad.dag"
        path.write_text("JOB a a.sub\nSCRIPT DURING a x\n")
        with pytest.raises(DagError):
            DagDescription.read(path)


class TestPoolSemantics:
    def test_pre_script_delays_submission(self):
        dag_fast = single_node_dag("fast")
        dag_slow = single_node_dag("slow")
        dag_slow.set_script("n0", "PRE", ScriptSpec(command="setup.sh", duration_s=500.0))
        pool_fast = quiet_pool()
        pool_fast.submit_dagman(dag_fast)
        t_fast = pool_fast.run().dagmans["fast"].runtime_s
        pool_slow = quiet_pool()
        pool_slow.submit_dagman(dag_slow)
        t_slow = pool_slow.run().dagmans["slow"].runtime_s
        assert t_slow >= t_fast + 400.0

    def test_failing_pre_fails_node_without_running_job(self):
        dag = single_node_dag()
        dag.set_script("n0", "PRE", ScriptSpec(command="bad.sh", exit_code=1))
        pool = quiet_pool()
        pool.submit_dagman(dag)
        metrics = pool.run()
        run = pool.dagman_runs["s"]
        assert run.dead
        assert metrics.records == []  # the job never executed
        assert run.jobs == {}

    def test_failing_pre_retried(self):
        dag = single_node_dag(retries=2)
        dag.set_script("n0", "PRE", ScriptSpec(command="flaky.sh", exit_code=1))
        pool = quiet_pool()
        pool.submit_dagman(dag)
        pool.run()
        # All three attempts fail in PRE; the node is terminally failed.
        assert pool.dagman_runs["s"].dead

    def test_successful_post_masks_job_failure(self):
        dag = single_node_dag()
        dag.set_script("n0", "POST", ScriptSpec(command="recover.sh", exit_code=0))
        pool = quiet_pool(success_prob=1e-9, seed=4)  # job will fail
        pool.submit_dagman(dag)
        metrics = pool.run()
        run = pool.dagman_runs["s"]
        assert run.engine.is_complete  # POST success masked the failure
        assert not metrics.records[0].success  # the job itself failed

    def test_failing_post_fails_successful_job(self):
        dag = single_node_dag()
        dag.set_script("n0", "POST", ScriptSpec(command="check.sh", exit_code=2))
        pool = quiet_pool()
        pool.submit_dagman(dag)
        metrics = pool.run()
        run = pool.dagman_runs["s"]
        assert run.dead
        assert metrics.records[0].success  # job succeeded; POST vetoed

    def test_post_duration_extends_dag_runtime(self):
        dag = single_node_dag()
        dag.set_script("n0", "POST", ScriptSpec(command="compress.sh", duration_s=300.0))
        pool = quiet_pool()
        pool.submit_dagman(dag)
        metrics = pool.run()
        run = pool.dagman_runs["s"]
        assert run.engine.is_complete
        job_end = metrics.records[0].end_time
        assert run.end_time >= job_end + 300.0
