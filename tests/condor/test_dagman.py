"""Tests for repro.condor.dagman."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanEngine, DagmanOptions, NodeStatus
from repro.condor.jobs import JobPayload, JobSpec
from repro.errors import DagError


def spec(name):
    return JobSpec(name=name, payload=JobPayload(phase="A"))


def chain(n=3, retries=0):
    dag = DagDescription("chain")
    names = [f"n{i}" for i in range(n)]
    for name in names:
        dag.add_job(name, spec(name), retries=retries)
    for a, b in zip(names, names[1:]):
        dag.add_edge(a, b)
    return dag, names


def fan(n_leaves=5):
    dag = DagDescription("fan")
    dag.add_job("root", spec("root"))
    for i in range(n_leaves):
        dag.add_job(f"leaf{i}", spec(f"leaf{i}"))
        dag.add_edge("root", f"leaf{i}")
    return dag


def run_all(engine):
    """Drive the engine to completion, returning completion order."""
    order = []
    while not engine.is_complete:
        batch = engine.pull_submissions(current_idle=0)
        if not batch:
            raise AssertionError("engine stalled")
        for name in batch:
            engine.on_node_result(name, success=True)
            order.append(name)
    return order


def test_chain_releases_in_order():
    dag, names = chain(4)
    assert run_all(DagmanEngine(dag)) == names


def test_fan_root_first():
    engine = DagmanEngine(fan(4))
    first = engine.pull_submissions(0)
    assert first == ["root"]
    assert engine.pull_submissions(0) == []  # leaves not ready yet
    newly = engine.on_node_result("root", True)
    assert sorted(newly) == [f"leaf{i}" for i in range(4)]


def test_respects_parent_completion_exactly():
    dag = DagDescription("join")
    for n in ("a", "b", "c"):
        dag.add_job(n, spec(n))
    dag.add_edges(["a", "b"], ["c"])
    engine = DagmanEngine(dag)
    batch = engine.pull_submissions(0)
    assert sorted(batch) == ["a", "b"]
    assert engine.on_node_result("a", True) == []  # c still blocked
    assert engine.on_node_result("b", True) == ["c"]


def test_max_idle_throttle():
    engine = DagmanEngine(fan(10), DagmanOptions(max_idle=3, submit_batch=100))
    engine.on_node_result(engine.pull_submissions(0)[0], True)  # root done
    assert len(engine.pull_submissions(current_idle=0)) == 3
    assert len(engine.pull_submissions(current_idle=3)) == 0
    assert len(engine.pull_submissions(current_idle=1)) == 2


def test_submit_batch_throttle():
    engine = DagmanEngine(fan(10), DagmanOptions(max_idle=0, submit_batch=4))
    engine.on_node_result(engine.pull_submissions(0)[0], True)
    assert len(engine.pull_submissions(0)) == 4
    assert len(engine.pull_submissions(0)) == 4
    assert len(engine.pull_submissions(0)) == 2


def test_retry_requeues():
    dag, names = chain(2, retries=1)
    engine = DagmanEngine(dag)
    first = engine.pull_submissions(0)[0]
    requeued = engine.on_node_result(first, False)
    assert requeued == [first]
    assert engine.status(first) is NodeStatus.READY
    assert not engine.has_failed
    # Second failure exhausts the single retry.
    engine.pull_submissions(0)
    assert engine.on_node_result(first, False) == []
    assert engine.has_failed
    assert engine.status(first) is NodeStatus.FAILED


def test_counts():
    engine = DagmanEngine(fan(3))
    counts = engine.counts()
    assert counts[NodeStatus.READY] == 1
    assert counts[NodeStatus.WAITING] == 3


def test_result_for_unsubmitted_node_rejected():
    engine = DagmanEngine(fan(2))
    with pytest.raises(DagError):
        engine.on_node_result("leaf0", True)


def test_unknown_node_rejected():
    engine = DagmanEngine(fan(2))
    with pytest.raises(DagError):
        engine.status("nope")


def test_negative_idle_rejected():
    engine = DagmanEngine(fan(2))
    with pytest.raises(DagError):
        engine.pull_submissions(-1)


def test_options_validation():
    with pytest.raises(DagError):
        DagmanOptions(max_idle=-1)
    with pytest.raises(DagError):
        DagmanOptions(submit_batch=0)


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_fan_always_completes_with_any_throttles(n_leaves, batch):
    engine = DagmanEngine(fan(n_leaves), DagmanOptions(max_idle=batch, submit_batch=batch))
    order = run_all(engine)
    assert len(order) == n_leaves + 1
    assert order[0] == "root"


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_chain_completion_order_is_topological(n):
    dag, names = chain(n)
    assert run_all(DagmanEngine(dag)) == names
