"""Tests for repro.condor.jobs."""

import pytest

from repro.condor.jobs import Job, JobPayload, JobSpec, JobState
from repro.errors import JobStateError


def make_job(**kwargs):
    return Job(JobSpec(name="j", **kwargs))


def test_happy_path_transitions():
    job = make_job()
    job.transition(JobState.IDLE, 10.0)
    job.transition(JobState.RUNNING, 20.0)
    job.transition(JobState.COMPLETED, 50.0)
    assert job.submit_time == 10.0
    assert job.start_time == 20.0
    assert job.end_time == 50.0
    assert job.wait_time == 10.0
    assert job.execution_time == 30.0
    assert job.is_terminal


def test_illegal_transition_raises():
    job = make_job()
    with pytest.raises(JobStateError):
        job.transition(JobState.RUNNING, 0.0)  # unsubmitted -> running


def test_completed_is_terminal():
    job = make_job()
    job.transition(JobState.IDLE, 0.0)
    job.transition(JobState.RUNNING, 1.0)
    job.transition(JobState.COMPLETED, 2.0)
    with pytest.raises(JobStateError):
        job.transition(JobState.IDLE, 3.0)


def test_eviction_requeues_and_clears_execution():
    job = make_job()
    job.transition(JobState.IDLE, 0.0)
    job.transition(JobState.RUNNING, 5.0)
    job.slot_name = "slot-1"
    job.transition(JobState.IDLE, 8.0)  # evicted
    assert job.submit_time == 0.0  # original submit retained
    assert job.start_time is None
    assert job.slot_name is None
    assert job.wait_time is None


def test_failed_can_retry():
    job = make_job()
    job.transition(JobState.IDLE, 0.0)
    job.transition(JobState.RUNNING, 1.0)
    job.transition(JobState.FAILED, 2.0)
    job.transition(JobState.IDLE, 3.0)
    assert job.state is JobState.IDLE


def test_hold_release_cycle():
    job = make_job()
    job.transition(JobState.IDLE, 0.0)
    job.transition(JobState.HELD, 1.0)
    job.transition(JobState.IDLE, 2.0)
    assert job.state is JobState.IDLE


def test_cluster_ids_unique():
    a, b = make_job(), make_job()
    assert a.cluster_id != b.cluster_id


def test_spec_validation():
    with pytest.raises(JobStateError):
        JobSpec(name="")
    with pytest.raises(JobStateError):
        JobSpec(name="x", request_cpus=0)
    with pytest.raises(JobStateError):
        JobSpec(name="x", request_memory_mb=0)
    with pytest.raises(JobStateError):
        JobSpec(name="x", input_files={"f": -1.0})


def test_payload_validation():
    with pytest.raises(JobStateError):
        JobPayload(phase="Z")
    with pytest.raises(JobStateError):
        JobPayload(phase="A", n_items=0)
    payload = JobPayload(phase="C", n_items=2, n_stations=121)
    assert payload.phase == "C"


def test_wait_time_none_until_started():
    job = make_job()
    job.transition(JobState.IDLE, 0.0)
    assert job.wait_time is None
    assert job.execution_time is None
