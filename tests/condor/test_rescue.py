"""Tests for repro.condor.rescue — rescue DAG files."""

import pytest

from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanEngine, NodeStatus
from repro.condor.jobs import JobPayload, JobSpec
from repro.condor.rescue import (
    apply_rescue,
    read_rescue_file,
    rescue_path,
    write_rescue_file,
)
from repro.errors import DagError


def fdw_like_dag():
    dag = DagDescription("mini")
    for name in ("a0", "a1"):
        dag.add_job(name, JobSpec(name=name, payload=JobPayload(phase="A")))
    dag.add_job("b", JobSpec(name="b", payload=JobPayload(phase="B")))
    dag.add_edges(["a0", "a1"], ["b"])
    for name in ("c0", "c1", "c2"):
        dag.add_job(name, JobSpec(name=name, payload=JobPayload(phase="C")))
        dag.add_edge("b", name)
    return dag


def partially_run_engine():
    """Complete A and B, fail c0, leave c1/c2 unrun."""
    engine = DagmanEngine(fdw_like_dag())
    for name in engine.pull_submissions(0):  # a0, a1
        engine.on_node_result(name, True)
    [b] = engine.pull_submissions(0)
    engine.on_node_result(b, True)
    c_batch = engine.pull_submissions(0)
    engine.on_node_result(c_batch[0], False)  # c0 fails terminally
    return engine


def test_rescue_path_convention():
    assert rescue_path("dag/fdw.dag").name == "fdw.dag.rescue001"
    assert rescue_path("fdw.dag", attempt=12).name == "fdw.dag.rescue012"
    with pytest.raises(DagError):
        rescue_path("fdw.dag", attempt=0)


def test_write_read_roundtrip(tmp_path):
    engine = partially_run_engine()
    path = write_rescue_file(engine, tmp_path / "mini.dag.rescue001")
    done = read_rescue_file(path)
    assert sorted(done) == ["a0", "a1", "b"]


def test_empty_rescue_valid(tmp_path):
    engine = DagmanEngine(fdw_like_dag())
    path = write_rescue_file(engine, tmp_path / "r")
    assert read_rescue_file(path) == []


def test_read_malformed(tmp_path):
    path = tmp_path / "bad.rescue"
    path.write_text("DONE\n")
    with pytest.raises(DagError):
        read_rescue_file(path)


def test_read_missing(tmp_path):
    with pytest.raises(DagError):
        read_rescue_file(tmp_path / "nope")


def test_apply_rescue_skips_done_work(tmp_path):
    crashed = partially_run_engine()
    path = write_rescue_file(crashed, tmp_path / "r")

    fresh = DagmanEngine(fdw_like_dag())
    applied = apply_rescue(fresh, read_rescue_file(path))
    assert applied == 3
    # Only the C jobs remain; they are immediately ready.
    batch = fresh.pull_submissions(0)
    assert sorted(batch) == ["c0", "c1", "c2"]
    for name in batch:
        fresh.on_node_result(name, True)
    assert fresh.is_complete


def test_apply_rescue_counts_consistent(tmp_path):
    crashed = partially_run_engine()
    path = write_rescue_file(crashed, tmp_path / "r")
    fresh = DagmanEngine(fdw_like_dag())
    apply_rescue(fresh, read_rescue_file(path))
    counts = fresh.counts()
    assert counts[NodeStatus.DONE] == 3
    assert counts[NodeStatus.READY] == 3
    assert counts[NodeStatus.FAILED] == 0


def test_apply_rescue_rejects_unknown_nodes():
    fresh = DagmanEngine(fdw_like_dag())
    with pytest.raises(DagError):
        apply_rescue(fresh, ["zzz"])


def test_apply_rescue_rejects_inconsistent():
    fresh = DagmanEngine(fdw_like_dag())
    # b done without a1 done is impossible.
    with pytest.raises(DagError):
        apply_rescue(fresh, ["a0", "b"])


def test_apply_rescue_requires_fresh_engine():
    engine = partially_run_engine()
    with pytest.raises(DagError):
        apply_rescue(engine, ["a0"])


def test_mark_done_rejects_submitted():
    engine = DagmanEngine(fdw_like_dag())
    batch = engine.pull_submissions(0)
    with pytest.raises(DagError):
        engine.mark_done(batch[0])


def test_rescued_dag_runs_on_pool(tmp_path):
    """End-to-end: crash, write rescue, resubmit to the pool — only the
    remaining jobs execute."""
    from repro.osg.capacity import FixedCapacity
    from repro.osg.pool import OSPoolConfig, OSPoolSimulator
    from repro.osg.transfer import TransferConfig

    crashed = partially_run_engine()
    path = write_rescue_file(crashed, tmp_path / "r")

    fresh = DagmanEngine(fdw_like_dag())
    apply_rescue(fresh, read_rescue_file(path))

    pool = OSPoolSimulator(
        config=OSPoolConfig(
            transfer=TransferConfig(setup_overhead_s=1.0, include_image=False),
            success_prob=1.0,
        ),
        capacity=FixedCapacity(4),
        seed=1,
    )
    pool.submit_engine(fresh, name="mini")
    metrics = pool.run()
    executed = {r.node_name for r in metrics.records}
    assert executed == {"c0", "c1", "c2"}  # A and B never re-ran
    assert fresh.is_complete
