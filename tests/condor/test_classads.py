"""Tests for repro.condor.classads."""

import pytest

from repro.condor.classads import ClassAd, evaluate_expression
from repro.errors import SubmitError


def test_simple_comparison():
    assert evaluate_expression("Cpus >= 4", {"Cpus": 8}) is True
    assert evaluate_expression("Cpus >= 4", {"Cpus": 2}) is False


def test_case_insensitive_attributes():
    assert evaluate_expression("cpus == 4", {"CPUS": 4}) is True


def test_and_or_connectives():
    ad = {"Cpus": 4, "Memory": 8192}
    assert evaluate_expression("Cpus >= 4 && Memory >= 4096", ad) is True
    assert evaluate_expression("Cpus >= 8 || Memory >= 4096", ad) is True
    assert evaluate_expression("Cpus >= 8 && Memory >= 4096", ad) is False


def test_negation():
    assert evaluate_expression("!(Cpus > 4)", {"Cpus": 4}) is True


def test_not_equal_survives_translation():
    assert evaluate_expression("Cpus != 4", {"Cpus": 8}) is True
    assert evaluate_expression("Cpus != 4", {"Cpus": 4}) is False


def test_meta_equals_operators():
    assert evaluate_expression('Arch =?= "X86_64"', {"Arch": "X86_64"}) is True
    assert evaluate_expression('Arch =!= "ARM"', {"Arch": "X86_64"}) is True


def test_arithmetic():
    assert evaluate_expression("Memory / 1024 >= 8", {"Memory": 8192}) is True
    assert evaluate_expression("Cpus * 2 + 1 == 9", {"Cpus": 4}) is True
    assert evaluate_expression("-Cpus < 0", {"Cpus": 4}) is True


def test_undefined_attribute_is_false():
    assert evaluate_expression("NoSuchAttr", {}) is False
    assert bool(evaluate_expression("NoSuchAttr >= 4", {})) is False


def test_true_false_literals():
    assert evaluate_expression("TRUE", {}) is True
    assert evaluate_expression("false || Cpus > 1", {"Cpus": 2}) is True


def test_chained_comparison():
    assert evaluate_expression("1 < Cpus < 10", {"Cpus": 4}) is True
    assert evaluate_expression("1 < Cpus < 3", {"Cpus": 4}) is False


def test_string_equality():
    assert evaluate_expression('Site == "OSG"', {"Site": "OSG"}) is True


def test_syntax_error_raises():
    with pytest.raises(SubmitError):
        evaluate_expression("Cpus >=", {})


def test_disallowed_construct_raises():
    with pytest.raises(SubmitError):
        evaluate_expression("__import__('os')", {})
    with pytest.raises(SubmitError):
        evaluate_expression("[1,2][0] == 1", {})


def test_type_error_in_comparison_collapses_to_false():
    # Comparing a string against a number doesn't match (UNDEFINED-ish).
    assert bool(evaluate_expression('Cpus > "four"', {"Cpus": 4})) is False


def test_classad_matches():
    ad = ClassAd(Cpus=8, Memory=16384)
    assert ad.matches("Cpus >= 4 && Memory >= 8192")
    assert not ad.matches("Cpus >= 16")
    assert ad.matches(None)
    assert ad.matches("")
