"""Tests for repro.condor.events."""

import pytest

from repro.condor.events import JobEventType, UserLog, parse_user_log
from repro.errors import LogParseError


def make_log():
    log = UserLog()
    log.record(JobEventType.SUBMIT, 1, 10.0, host="schedd-a")
    log.record(JobEventType.EXECUTE, 1, 95.5, host="slot-7")
    log.record(JobEventType.TERMINATED, 1, 250.0, return_value=0)
    log.record(JobEventType.SUBMIT, 2, 12.0, host="schedd-a")
    log.record(JobEventType.EXECUTE, 2, 100.0, host="slot-9")
    log.record(JobEventType.EVICTED, 2, 150.0)
    log.record(JobEventType.EXECUTE, 2, 200.0, host="slot-11")
    log.record(JobEventType.TERMINATED, 2, 400.0, return_value=1)
    return log


def test_roundtrip_event_count():
    events = parse_user_log(make_log().render())
    assert len(events) == 8


def test_roundtrip_times_to_second_resolution():
    events = parse_user_log(make_log().render())
    assert events[0].time_s == 10.0
    assert events[1].time_s == 96.0  # rounded to the log's 1 s resolution
    assert events[2].time_s == 250.0


def test_roundtrip_types_and_clusters():
    events = parse_user_log(make_log().render())
    assert [e.event_type for e in events[:3]] == [
        JobEventType.SUBMIT,
        JobEventType.EXECUTE,
        JobEventType.TERMINATED,
    ]
    assert {e.cluster_id for e in events} == {1, 2}


def test_return_values_parsed():
    events = parse_user_log(make_log().render())
    terms = [e for e in events if e.event_type is JobEventType.TERMINATED]
    assert terms[0].return_value == 0
    assert terms[1].return_value == 1


def test_hosts_parsed():
    events = parse_user_log(make_log().render())
    assert events[0].host == "schedd-a"
    assert events[1].host == "slot-7"


def test_multiday_timestamps():
    log = UserLog()
    log.record(JobEventType.SUBMIT, 3, 2.5 * 86400.0)
    events = parse_user_log(log.render())
    assert events[0].time_s == pytest.approx(2.5 * 86400.0)


def test_empty_log_renders_empty():
    assert UserLog().render() == ""
    assert parse_user_log("") == []


def test_negative_time_rejected():
    with pytest.raises(LogParseError):
        UserLog().record(JobEventType.SUBMIT, 1, -5.0)


def test_unparseable_line_raises():
    with pytest.raises(LogParseError):
        parse_user_log("garbage line that is not an event\n")


def test_detail_lines_tolerated():
    text = make_log().render()
    events = parse_user_log(text)
    assert len([e for e in events if e.event_type is JobEventType.TERMINATED]) == 2


def test_write_and_read_file(tmp_path):
    log = make_log()
    path = log.write(tmp_path / "dag.log")
    assert parse_user_log(path.read_text()) == parse_user_log(log.render())


def test_duplicate_terminated_line_attaches_to_duplicate():
    """Regression: a duplicated TERMINATED line (identical event text,
    e.g. a log shipper writing twice) must attach the detail line's
    return value to the duplicate it follows — matching by value
    equality attached it to the earlier, value-equal event instead."""
    line = "005 (0007.000.000) 2023-01-01+0 00:10:00 Job terminated."
    text = "\n".join(
        [
            line,
            "...",
            line,
            "\t(1) Abnormal termination (return value 1)",
            "...",
        ]
    ) + "\n"
    events = parse_user_log(text)
    assert len(events) == 2
    assert events[0].return_value is None  # no detail line followed it
    assert events[1].return_value == 1


def _bulk_log_text(n_jobs):
    lines = []
    for i in range(n_jobs):
        lines.append(f"000 ({i:04d}.000.000) 2023-01-01+0 00:00:01 Job submitted from host: <s>")
        lines.append("...")
        lines.append(f"001 ({i:04d}.000.000) 2023-01-01+0 00:00:02 Job executing on host: <w>")
        lines.append("...")
        lines.append(f"005 ({i:04d}.000.000) 2023-01-01+0 00:00:03 Job terminated.")
        lines.append("\t(1) Normal termination (return value 0)")
        lines.append("...")
    return "\n".join(lines) + "\n"


def test_parse_time_linear_in_log_size():
    """Regression: the value-equality scan made parsing O(n^2). Compare
    per-event parse time at 2k vs 16k jobs (min of repeats): linear
    parsing keeps the ratio near 1; quadratic pushes it toward 8."""
    import time

    small, large = _bulk_log_text(2_000), _bulk_log_text(16_000)

    def min_time(text, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = parse_user_log(text)
            best = min(best, time.perf_counter() - t0)
        assert events[-1].return_value == 0
        return best

    per_event_small = min_time(small) / 2_000
    per_event_large = min_time(large) / 16_000
    assert per_event_large < 4.0 * per_event_small


def test_event_codes_match_htcondor():
    assert JobEventType.SUBMIT.code == "000"
    assert JobEventType.EXECUTE.code == "001"
    assert JobEventType.TERMINATED.code == "005"
    assert JobEventType.ABORTED.code == "009"
    assert JobEventType.HELD.code == "012"
