"""Tests for repro.condor.submit."""

import pytest

from repro.condor.jobs import JobPayload, JobSpec
from repro.condor.submit import SubmitDescription
from repro.errors import SubmitError

SAMPLE = """\
# FDW phase C job
universe = vanilla
executable = run_fdw_phase.sh
arguments = --phase C --start 0 --count 2
request_cpus = 4
request_memory = 8GB
request_disk = 16384MB
transfer_input_files = gf.mseed.npz, chunk.tar
+fdw_phase = "C"
+fdw_n_items = 2
+fdw_n_stations = 121
queue
"""


def test_parse_sample():
    sub = SubmitDescription.parse(SAMPLE)
    assert sub.queue_count == 1
    assert sub.commands["executable"] == "run_fdw_phase.sh"
    assert sub.commands["+fdw_phase"] == '"C"'


def test_parse_queue_count():
    sub = SubmitDescription.parse("executable = x\nqueue 5\n")
    assert sub.queue_count == 5


def test_missing_queue_raises():
    with pytest.raises(SubmitError):
        SubmitDescription.parse("executable = x\n")


def test_bad_queue_raises():
    with pytest.raises(SubmitError):
        SubmitDescription.parse("executable = x\nqueue many\n")


def test_unknown_command_raises():
    with pytest.raises(SubmitError):
        SubmitDescription.parse("frobnicate = yes\nqueue\n")


def test_duplicate_command_raises():
    with pytest.raises(SubmitError):
        SubmitDescription.parse("executable = a\nexecutable = b\nqueue\n")


def test_missing_equals_raises():
    with pytest.raises(SubmitError):
        SubmitDescription.parse("this is not a command\nqueue\n")


def test_render_parse_roundtrip():
    sub = SubmitDescription.parse(SAMPLE)
    again = SubmitDescription.parse(sub.render())
    assert again.commands == sub.commands
    assert again.queue_count == sub.queue_count


def test_file_roundtrip(tmp_path):
    sub = SubmitDescription.parse(SAMPLE)
    path = sub.write(tmp_path / "job.sub")
    back = SubmitDescription.read(path)
    assert back.commands == sub.commands


def test_to_job_spec():
    spec = SubmitDescription.parse(SAMPLE).to_job_spec("C_0")
    assert spec.name == "C_0"
    assert spec.request_cpus == 4
    assert spec.request_memory_mb == 8192
    assert spec.request_disk_mb == 16384
    assert spec.payload == JobPayload(phase="C", n_items=2, n_stations=121)
    assert set(spec.input_files) == {"gf.mseed.npz", "chunk.tar"}


def test_memory_parsing_units():
    sub = SubmitDescription.parse("request_memory = 2GB\nqueue\n")
    assert sub.to_job_spec("x").request_memory_mb == 2048
    sub = SubmitDescription.parse("request_memory = 512\nqueue\n")
    assert sub.to_job_spec("x").request_memory_mb == 512


def test_bad_memory_value():
    sub = SubmitDescription.parse("request_memory = lots\nqueue\n")
    with pytest.raises(SubmitError):
        sub.to_job_spec("x")


def test_from_job_spec_roundtrip():
    spec = JobSpec(
        name="A_3",
        arguments="--phase A",
        request_cpus=4,
        request_memory_mb=8192,
        request_disk_mb=10000,
        requirements="Cpus >= 4",
        input_files={"d1.npy": 3.0, "d2.npy": 3.0},
        payload=JobPayload(phase="A", n_items=16, n_stations=121),
    )
    sub = SubmitDescription.from_job_spec(spec)
    back = sub.to_job_spec("A_3")
    assert back.arguments == spec.arguments
    assert back.request_cpus == spec.request_cpus
    assert back.request_memory_mb == spec.request_memory_mb
    assert back.requirements == spec.requirements
    assert back.payload == spec.payload
    assert set(back.input_files) == set(spec.input_files)
