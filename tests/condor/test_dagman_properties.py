"""Property-based tests of DAGMan release-order invariants.

Random DAGs driven through the engine directly (no pool): whatever the
throttles and completion order, a node must never be released before all
its parents completed, every node must be released exactly once, and
rescue fast-forwarding must commute with normal execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanEngine, DagmanOptions, NodeStatus
from repro.condor.jobs import JobPayload, JobSpec


@st.composite
def random_dags(draw):
    """Random DAGs with edges only from lower to higher indices (acyclic
    by construction)."""
    n = draw(st.integers(min_value=1, max_value=14))
    dag = DagDescription("rand")
    for i in range(n):
        dag.add_job(f"n{i}", JobSpec(name=f"n{i}", payload=JobPayload(phase="A")))
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                dag.add_edge(f"n{i}", f"n{j}")
    dag.validate()
    return dag


def drive(engine: DagmanEngine, rng: np.random.Generator) -> list[str]:
    """Run the engine with randomized in-flight completion order.

    Returns the order in which nodes were *completed*.
    """
    in_flight: list[str] = []
    completed: list[str] = []
    guard = 0
    while not engine.is_complete:
        guard += 1
        assert guard < 10_000, "engine stalled"
        in_flight.extend(engine.pull_submissions(current_idle=len(in_flight)))
        if not in_flight:
            continue
        pick = int(rng.integers(len(in_flight)))
        name = in_flight.pop(pick)
        engine.on_node_result(name, True)
        completed.append(name)
    return completed


@given(random_dags(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_completion_order_respects_dependencies(dag, seed):
    engine = DagmanEngine(dag)
    order = drive(engine, np.random.default_rng(seed))
    assert sorted(order) == sorted(dag.node_names)  # each exactly once
    position = {name: i for i, name in enumerate(order)}
    for parent in dag.node_names:
        for child in dag.children(parent):
            assert position[parent] < position[child]


@given(
    random_dags(),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_throttles_never_change_completability(dag, seed, max_idle, batch):
    engine = DagmanEngine(dag, DagmanOptions(max_idle=max_idle, submit_batch=batch))
    order = drive(engine, np.random.default_rng(seed))
    assert len(order) == len(dag)
    assert engine.is_complete


@given(random_dags(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_rescue_commutes_with_execution(dag, seed):
    """Running half the DAG, snapshotting, and fast-forwarding a fresh
    engine leaves exactly the other half to run."""
    from repro.condor.rescue import apply_rescue

    rng = np.random.default_rng(seed)
    engine = DagmanEngine(dag)
    # Complete roughly half the nodes.
    target = len(dag) // 2
    in_flight: list[str] = []
    done: list[str] = []
    while len(done) < target:
        in_flight.extend(engine.pull_submissions(len(in_flight)))
        if not in_flight:
            break
        name = in_flight.pop(int(rng.integers(len(in_flight))))
        engine.on_node_result(name, True)
        done.append(name)

    fresh = DagmanEngine(dag)
    applied = apply_rescue(fresh, done)
    assert applied == len(done)
    remaining = drive(fresh, rng)
    assert sorted(remaining + done) == sorted(dag.node_names)
    assert fresh.is_complete


@given(random_dags())
@settings(max_examples=30, deadline=None)
def test_initial_ready_set_is_exactly_the_roots(dag):
    engine = DagmanEngine(dag)
    counts = engine.counts()
    assert counts[NodeStatus.READY] == len(dag.roots())
    assert counts[NodeStatus.WAITING] == len(dag) - len(dag.roots())


@given(random_dags(), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_single_failure_without_retries_blocks_descendants(dag, seed):
    rng = np.random.default_rng(seed)
    engine = DagmanEngine(dag)
    batch = engine.pull_submissions(0)
    if not batch:
        return
    victim = batch[int(rng.integers(len(batch)))]
    engine.on_node_result(victim, False)
    assert engine.has_failed
    # Descendants of the victim can never become READY.
    import networkx as nx

    descendants = nx.descendants(dag._graph, victim)
    # Drain everything still runnable.
    in_flight = [n for n in batch if n != victim]
    guard = 0
    while True:
        guard += 1
        assert guard < 10_000
        in_flight.extend(engine.pull_submissions(len(in_flight)))
        if not in_flight:
            break
        engine.on_node_result(in_flight.pop(), True)
    for node in descendants:
        assert engine.status(node) is NodeStatus.WAITING
    assert not engine.is_complete or not descendants


def test_drive_helper_detects_stall():
    # A sanity check of the test harness itself: an engine whose DAG has
    # one node completes in one step.
    dag = DagDescription("one")
    dag.add_job("n0", JobSpec(name="n0", payload=JobPayload(phase="A")))
    order = drive(DagmanEngine(dag), np.random.default_rng(0))
    assert order == ["n0"]


def test_counts_sum_invariant():
    dag = DagDescription("sum")
    for i in range(5):
        dag.add_job(f"n{i}", JobSpec(name=f"n{i}", payload=JobPayload(phase="A")))
    dag.add_edge("n0", "n1")
    engine = DagmanEngine(dag)
    for _ in range(3):
        batch = engine.pull_submissions(0)
        for name in batch:
            engine.on_node_result(name, True)
        counts = engine.counts()
        assert sum(counts.values()) == len(dag)
    assert engine.is_complete


@pytest.mark.parametrize("n", [1, 5, 20])
def test_linear_chain_completes_in_n_rounds(n):
    dag = DagDescription("chain")
    prev = None
    for i in range(n):
        dag.add_job(f"n{i}", JobSpec(name=f"n{i}", payload=JobPayload(phase="A")))
        if prev:
            dag.add_edge(prev, f"n{i}")
        prev = f"n{i}"
    engine = DagmanEngine(dag)
    rounds = 0
    while not engine.is_complete:
        batch = engine.pull_submissions(0)
        assert len(batch) == 1  # a chain releases one node at a time
        engine.on_node_result(batch[0], True)
        rounds += 1
    assert rounds == n
