"""Tests for repro.condor.dagfile."""

import pytest

from repro.condor.dagfile import DagDescription, DagNode
from repro.condor.jobs import JobPayload, JobSpec
from repro.errors import DagError


def spec(name, phase="A"):
    return JobSpec(name=name, payload=JobPayload(phase=phase))


def diamond():
    dag = DagDescription("diamond")
    for n in ("a", "b", "c", "d"):
        dag.add_job(n, spec(n))
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


def test_basic_structure():
    dag = diamond()
    assert len(dag) == 4
    assert dag.roots() == ["a"]
    assert dag.parents("d") == ["b", "c"]
    assert dag.children("a") == ["b", "c"]
    assert "a" in dag


def test_topological_order():
    order = diamond().topological_order()
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_duplicate_node_rejected():
    dag = DagDescription()
    dag.add_job("x", spec("x"))
    with pytest.raises(DagError):
        dag.add_job("x", spec("x"))


def test_unknown_edge_endpoint_rejected():
    dag = DagDescription()
    dag.add_job("x", spec("x"))
    with pytest.raises(DagError):
        dag.add_edge("x", "nope")


def test_self_edge_rejected():
    dag = DagDescription()
    dag.add_job("x", spec("x"))
    with pytest.raises(DagError):
        dag.add_edge("x", "x")


def test_cycle_detected_with_check():
    dag = DagDescription()
    dag.add_job("a", spec("a"))
    dag.add_job("b", spec("b"))
    dag.add_edge("a", "b")
    with pytest.raises(DagError):
        dag.add_edge("b", "a", check=True)
    # The offending edge was rolled back.
    dag.validate()


def test_cycle_detected_by_validate():
    dag = DagDescription()
    dag.add_job("a", spec("a"))
    dag.add_job("b", spec("b"))
    dag.add_edge("a", "b")
    dag.add_edge("b", "a")  # unchecked
    with pytest.raises(DagError):
        dag.validate()


def test_empty_dag_invalid():
    with pytest.raises(DagError):
        DagDescription().validate()


def test_add_edges_all_to_all():
    dag = DagDescription()
    for n in ("a1", "a2", "b", "c1", "c2"):
        dag.add_job(n, spec(n))
    dag.add_edges(["a1", "a2"], ["b"])
    dag.add_edges(["b"], ["c1", "c2"])
    assert dag.parents("b") == ["a1", "a2"]
    assert dag.children("b") == ["c1", "c2"]


def test_node_name_validation():
    with pytest.raises(DagError):
        DagNode(name="has space", spec=spec("x"))
    with pytest.raises(DagError):
        DagNode(name="x", spec=spec("x"), retries=-1)


def test_unknown_node_lookup():
    dag = diamond()
    with pytest.raises(DagError):
        dag.node("zzz")
    with pytest.raises(DagError):
        dag.parents("zzz")


def test_write_read_roundtrip(tmp_path):
    dag = diamond()
    dag._nodes["b"] = DagNode(name="b", spec=spec("b"), retries=2)
    dag_path = dag.write(tmp_path)
    back = DagDescription.read(dag_path)
    assert sorted(back.node_names) == sorted(dag.node_names)
    assert back.parents("d") == ["b", "c"]
    assert back.node("b").retries == 2
    assert back.node("a").spec.payload.phase == "A"


def test_read_missing_file(tmp_path):
    with pytest.raises(DagError):
        DagDescription.read(tmp_path / "nope.dag")


def test_read_bad_keyword(tmp_path):
    path = tmp_path / "bad.dag"
    path.write_text("FROB x y\n")
    with pytest.raises(DagError):
        DagDescription.read(path)


def test_read_parent_without_child(tmp_path):
    path = tmp_path / "bad.dag"
    (tmp_path / "a.sub").write_text("executable = x\nqueue\n")
    path.write_text("JOB a a.sub\nPARENT a\n")
    with pytest.raises(DagError):
        DagDescription.read(path)


def test_multi_parent_child_line(tmp_path):
    dag_path = tmp_path / "m.dag"
    for n in ("a", "b", "c"):
        (tmp_path / f"{n}.sub").write_text("executable = x\nqueue\n")
    dag_path.write_text("JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nPARENT a b CHILD c\n")
    dag = DagDescription.read(dag_path)
    assert dag.parents("c") == ["a", "b"]


def test_topological_order_disconnected_multi_root():
    # Two independent components: (a -> b) and (x -> y), plus a lone node.
    dag = DagDescription("forest")
    for n in ("a", "b", "x", "y", "lone"):
        dag.add_job(n, spec(n))
    dag.add_edge("a", "b")
    dag.add_edge("x", "y")
    order = dag.topological_order()
    assert sorted(order) == ["a", "b", "lone", "x", "y"]
    assert order.index("a") < order.index("b")
    assert order.index("x") < order.index("y")
    assert sorted(dag.roots()) == ["a", "lone", "x"]


def test_topological_order_on_cycle_raises_dag_error():
    dag = DagDescription("loop")
    for n in ("a", "b", "c"):
        dag.add_job(n, spec(n))
    dag.add_edge("a", "b")
    dag.add_edge("b", "c")
    dag.add_edge("c", "a")  # no per-edge check: the cycle lands silently
    with pytest.raises(DagError, match="cycle"):
        dag.topological_order()
