"""Tests for repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_minutes_to_seconds():
    assert units.minutes(2.5) == 150.0


def test_hours_to_seconds():
    assert units.hours(1.5) == 5400.0


def test_seconds_identity():
    assert units.seconds(42) == 42.0


def test_roundtrip_minutes():
    assert units.to_minutes(units.minutes(7.25)) == pytest.approx(7.25)


def test_roundtrip_hours():
    assert units.to_hours(units.hours(0.31)) == pytest.approx(0.31)


def test_jobs_per_minute_basic():
    # 120 jobs in one hour = 2 jobs/minute.
    assert units.jobs_per_minute(120, 3600.0) == pytest.approx(2.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_jobs_per_minute_rejects_nonpositive_runtime(bad):
    with pytest.raises(ValueError):
        units.jobs_per_minute(10, bad)


def test_format_duration_hours():
    assert units.format_duration(3723) == "1h 02m 03s"


def test_format_duration_minutes():
    assert units.format_duration(125) == "2m 05s"


def test_format_duration_seconds():
    assert units.format_duration(9) == "9s"


def test_format_duration_negative():
    assert units.format_duration(-61) == "-1m 01s"


@given(st.floats(min_value=1e-3, max_value=1e8, allow_nan=False))
def test_unit_conversions_consistent(x):
    assert units.to_hours(x) * 60.0 == pytest.approx(units.to_minutes(x), rel=1e-9)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=1.0, max_value=1e7),
)
def test_jpm_scales_linearly_in_jobs(jobs, runtime):
    base = units.jobs_per_minute(jobs, runtime)
    doubled = units.jobs_per_minute(2 * jobs, runtime)
    assert doubled == pytest.approx(2 * base, abs=1e-9)
