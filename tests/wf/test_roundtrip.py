"""Export -> import -> replay round trip (the subsystem's contract).

The exported instance must rebuild the exact FDW DAG (names, edges,
retries), survive JSON serialization byte-identically, and — replayed
in model mode with the same pool configuration, capacity process, and
seed — reproduce the original simulated makespan bit-identically.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import WfFormatError
from repro.core.workflow import build_fdw_dag
from repro.osg.capacity import FixedCapacity
from repro.osg.metrics import JobRecord, PoolMetrics
from repro.wf import (
    dumps_instance,
    export_fdw_run,
    import_instance,
    instance_from_dag,
    load_instance,
    loads_instance,
    replay_instance,
    runtimes_from_metrics,
)

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "fdw64_wfformat.json"


@pytest.fixture(scope="module")
def exported(tiny_fdw_config, tiny_batch_result):
    dag = build_fdw_dag(tiny_fdw_config)
    instance = export_fdw_run(
        dag,
        tiny_batch_result.metrics,
        attributes={"maxIdle": tiny_fdw_config.max_idle},
    )
    return dag, instance


class TestExport:
    def test_exports_every_node_with_runtime(self, exported, tiny_batch_result):
        dag, instance = exported
        assert instance.n_tasks == len(dag)
        runtimes = runtimes_from_metrics(tiny_batch_result.metrics)
        for task in instance.tasks:
            assert task.runtime_s == runtimes[task.name]

    def test_makespan_matches_summary(self, exported, tiny_batch_result, tiny_fdw_config):
        _, instance = exported
        summary = tiny_batch_result.metrics.dagmans[tiny_fdw_config.name]
        assert instance.makespan_s == summary.runtime_s

    def test_missing_runtime_rejected(self, exported):
        dag, _ = exported
        with pytest.raises(WfFormatError, match="no runtime"):
            instance_from_dag(dag, {})

    def test_duplicate_success_rejected(self):
        rec = dict(
            dagman="d", phase="A", cluster_id=1, submit_time=0.0,
            start_time=1.0, end_time=2.0, n_evictions=0, success=True,
        )
        metrics = PoolMetrics(
            records=[
                JobRecord(node_name="n", **rec),
                JobRecord(node_name="n", **rec),
            ],
            dagmans={},
            capacity_trace=[],
        )
        with pytest.raises(WfFormatError, match="more than once"):
            runtimes_from_metrics(metrics)


class TestRoundTrip:
    def test_import_rebuilds_identical_dag(self, exported):
        dag, instance = exported
        imported = import_instance(instance)
        assert imported.dag.node_names == dag.node_names
        for name in dag.node_names:
            assert imported.dag.parents(name) == dag.parents(name)
            assert imported.dag.children(name) == dag.children(name)
            assert imported.dag.node(name).retries == dag.node(name).retries
            orig = dag.node(name).spec
            spec = imported.dag.node(name).spec
            assert spec.input_files == orig.input_files
            assert spec.payload == orig.payload
            assert spec.executable == orig.executable

    def test_json_round_trip_byte_identical(self, exported):
        _, instance = exported
        text = dumps_instance(instance)
        assert dumps_instance(loads_instance(text)) == text

    def test_model_replay_reproduces_makespan_bit_identically(
        self, exported, tiny_batch_result, tiny_fdw_config
    ):
        _, instance = exported
        # Same pool knobs as the tiny_batch_result fixture.
        result = replay_instance(
            loads_instance(dumps_instance(instance)),
            runtime="model",
            seed=42,
            capacity=FixedCapacity(slots=24),
        )
        original = tiny_batch_result.metrics.dagmans[tiny_fdw_config.name]
        assert result.makespan_s == original.runtime_s
        # Per-record equality, not just the aggregate.
        orig_records = {
            (r.node_name, r.cluster_id): (r.start_time, r.end_time)
            for r in tiny_batch_result.metrics.records
        }
        new_records = {
            (r.node_name, r.cluster_id): (r.start_time, r.end_time)
            for r in result.metrics.records
        }
        assert new_records == orig_records

    def test_trace_replay_runs_every_task_once(self, exported):
        _, instance = exported
        result = replay_instance(instance, runtime="trace", seed=7)
        assert len(result.metrics.records) == instance.n_tasks
        assert all(r.success for r in result.metrics.records)


class TestBundledExample:
    def test_example_exists_and_validates(self):
        instance = load_instance(EXAMPLE)
        assert instance.name == "fdw64"
        assert instance.n_tasks == 37  # 4 A + 1 B + 32 C
        assert instance.categories() == ["A", "B", "C"]
        assert instance.attributes["maxIdle"] == 500

    def test_example_reexports_byte_identically(self):
        text = EXAMPLE.read_text()
        assert dumps_instance(loads_instance(text, source=str(EXAMPLE))) == text

    def test_example_imports_and_replays(self):
        imported = import_instance(EXAMPLE)
        result = replay_instance(imported, runtime="trace", seed=1)
        assert result.makespan_s > 0
        assert len(result.metrics.records) == 37
