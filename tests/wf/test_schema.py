"""WfFormat schema: validation, tolerant parsing, canonical dumping."""

from __future__ import annotations

import json

import pytest

from repro.errors import WfFormatError
from repro.wf import (
    SCHEMA_VERSION,
    WfFile,
    WfInstance,
    WfMachine,
    WfPayload,
    WfTask,
    dump_instance,
    dumps_instance,
    load_instance,
    loads_instance,
)


def _task(name, parents=(), children=(), **kw):
    kw.setdefault("category", "generic")
    kw.setdefault("runtime_s", 10.0)
    return WfTask(name=name, parents=tuple(parents), children=tuple(children), **kw)


def _chain(*names):
    tasks = []
    for i, name in enumerate(names):
        tasks.append(
            _task(
                name,
                parents=(names[i - 1],) if i > 0 else (),
                children=(names[i + 1],) if i < len(names) - 1 else (),
            )
        )
    return tasks


class TestValidation:
    def test_minimal_instance(self):
        inst = WfInstance(name="w", tasks=tuple(_chain("a", "b")))
        assert inst.n_tasks == 2
        assert inst.n_edges() == 1
        assert inst.schema_version == SCHEMA_VERSION

    def test_empty_name_rejected(self):
        with pytest.raises(WfFormatError, match="name"):
            WfInstance(name="", tasks=tuple(_chain("a")))

    def test_no_tasks_rejected(self):
        with pytest.raises(WfFormatError, match="no tasks"):
            WfInstance(name="w", tasks=())

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(WfFormatError, match="duplicate"):
            WfInstance(name="w", tasks=(_task("a"), _task("a")))

    def test_unknown_parent_rejected(self):
        with pytest.raises(WfFormatError, match="unknown task"):
            WfInstance(name="w", tasks=(_task("a", parents=("ghost",)),))

    def test_asymmetric_edge_rejected(self):
        tasks = (_task("a"), _task("b", parents=("a",)))  # a doesn't list b
        with pytest.raises(WfFormatError, match="asymmetric"):
            WfInstance(name="w", tasks=tasks)

    def test_cycle_rejected(self):
        tasks = (
            _task("a", parents=("b",), children=("b",)),
            _task("b", parents=("a",), children=("a",)),
        )
        with pytest.raises(WfFormatError, match="cycle"):
            WfInstance(name="w", tasks=tasks)

    def test_negative_runtime_rejected(self):
        with pytest.raises(WfFormatError, match="negative runtime"):
            _task("a", runtime_s=-1.0)

    def test_bad_file_link_rejected(self):
        with pytest.raises(WfFormatError, match="link"):
            WfFile(name="f", size_bytes=1.0, link="sideways")

    def test_negative_file_size_rejected(self):
        with pytest.raises(WfFormatError, match="negative size"):
            WfFile(name="f", size_bytes=-1.0)

    def test_payload_validation(self):
        with pytest.raises(WfFormatError, match="phase"):
            WfPayload(phase="")
        with pytest.raises(WfFormatError, match=">= 1"):
            WfPayload(phase="A", n_items=0)

    def test_machine_validation(self):
        with pytest.raises(WfFormatError, match="cpu_cores"):
            WfMachine(name="m", cpu_cores=0)


class TestQueries:
    def test_levels_and_categories(self):
        # diamond: a -> (b, c) -> d
        tasks = (
            _task("a", children=("b", "c"), category="root"),
            _task("b", parents=("a",), children=("d",), category="mid"),
            _task("c", parents=("a",), children=("d",), category="mid"),
            _task("d", parents=("b", "c"), category="sink"),
        )
        inst = WfInstance(name="w", tasks=tasks)
        assert inst.levels() == {"a": 0, "b": 1, "c": 1, "d": 2}
        assert inst.categories() == ["mid", "root", "sink"]
        assert inst.task("d").parents == ("b", "c")
        with pytest.raises(WfFormatError, match="unknown task"):
            inst.task("nope")

    def test_size_mb_is_exact(self):
        f = WfFile(name="f", size_bytes=13.25 * 1048576.0)
        assert f.size_mb == 13.25  # 2**20 is a power of two: exact


class TestJson:
    def test_dump_load_dump_byte_identical(self, tmp_path):
        inst = WfInstance(
            name="w",
            description="test",
            tasks=tuple(_chain("a", "b", "c")),
            makespan_s=123.5,
            machines=(WfMachine(name="node", cpu_cores=4),),
            attributes={"maxIdle": 500},
        )
        text = dumps_instance(inst)
        again = dumps_instance(loads_instance(text))
        assert text == again
        path = dump_instance(inst, tmp_path / "w.json")
        assert load_instance(path) == inst

    def test_loads_tolerates_unknown_keys(self):
        doc = {
            "name": "w",
            "totallyUnknownKey": {"nested": 1},
            "workflow": {
                "tasks": [
                    {"name": "a", "runtimeInSeconds": 5, "extra": "ignored"},
                ]
            },
        }
        inst = loads_instance(json.dumps(doc))
        assert inst.task("a").runtime_s == 5.0
        # category falls back to the task name when absent
        assert inst.task("a").category == "a"

    def test_loads_legacy_keys(self):
        doc = {
            "name": "w",
            "workflow": {
                "makespan": 60,
                "machines": [{"nodeName": "n", "cpu": {"coreCount": 8}}],
                "tasks": [
                    {
                        "name": "a",
                        "runtime": 5,
                        "files": [{"name": "f", "size": 2097152}],
                    }
                ],
            },
        }
        inst = loads_instance(json.dumps(doc))
        assert inst.makespan_s == 60.0
        assert inst.machines[0].cpu_cores == 8
        assert inst.task("a").files[0].size_mb == 2.0

    def test_loads_symmetrizes_one_sided_edges(self):
        doc = {
            "name": "w",
            "workflow": {
                "tasks": [
                    {"name": "a", "runtimeInSeconds": 1},
                    {"name": "b", "runtimeInSeconds": 1, "parents": ["a"]},
                ]
            },
        }
        inst = loads_instance(json.dumps(doc))
        assert inst.task("a").children == ("b",)
        assert inst.n_edges() == 1

    def test_loads_rejects_bad_documents(self):
        with pytest.raises(WfFormatError, match="invalid JSON"):
            loads_instance("{not json")
        with pytest.raises(WfFormatError, match="workflow"):
            loads_instance('{"name": "w"}')
        with pytest.raises(WfFormatError, match="tasks"):
            loads_instance('{"name": "w", "workflow": {}}')
        with pytest.raises(WfFormatError, match="runtimeInSeconds"):
            loads_instance(
                '{"name": "w", "workflow": {"tasks": [{"name": "a"}]}}'
            )
        with pytest.raises(WfFormatError, match="expected a number"):
            loads_instance(
                '{"name": "w", "workflow": {"tasks": '
                '[{"name": "a", "runtimeInSeconds": "fast"}]}}'
            )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(WfFormatError, match="not found"):
            load_instance(tmp_path / "nope.json")

    def test_integral_sizes_dump_as_ints(self):
        inst = WfInstance(
            name="w",
            tasks=(
                _task("a", files=(WfFile(name="f", size_bytes=1048576.0),)),
            ),
        )
        doc = json.loads(dumps_instance(inst))
        assert doc["workflow"]["tasks"][0]["files"][0]["sizeInBytes"] == 1048576
        assert isinstance(doc["workflow"]["tasks"][0]["files"][0]["sizeInBytes"], int)

    def test_extensions_omitted_when_empty(self):
        inst = WfInstance(name="w", tasks=tuple(_chain("a")))
        doc = json.loads(dumps_instance(inst))
        assert "attributes" not in doc
        task = doc["workflow"]["tasks"][0]
        assert "retries" not in task
        assert "payload" not in task
        assert "command" not in task
