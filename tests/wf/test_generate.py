"""WfChef-style generation: determinism, structure preservation, scaling."""

from __future__ import annotations

import pytest

from repro.errors import WfFormatError
from repro.wf import (
    WfFile,
    WfInstance,
    WfTask,
    dumps_instance,
    generate_instance,
    import_instance,
    partition_instance,
)


@pytest.fixture(scope="module")
def fdw_like() -> WfInstance:
    """A miniature FDW pattern: 3 A -> 1 B -> 6 C with shared + unique files."""
    shared = WfFile(name="gf_archive.mseed", size_bytes=100 * 1048576.0)
    a_tasks = [
        WfTask(
            name=f"A_{i}",
            category="A",
            runtime_s=150.0 + i,
            children=("B",),
            files=(WfFile(name=f"rupt_{i}.tar", size_bytes=5 * 1048576.0),),
        )
        for i in range(3)
    ]
    b = WfTask(
        name="B",
        category="B",
        runtime_s=700.0,
        parents=tuple(t.name for t in a_tasks),
        children=tuple(f"C_{i}" for i in range(6)),
    )
    c_tasks = [
        WfTask(
            name=f"C_{i}",
            category="C",
            runtime_s=60.0 + i,
            parents=("B",),
            files=(shared, WfFile(name=f"wave_{i}.tar", size_bytes=2 * 1048576.0)),
        )
        for i in range(6)
    ]
    return WfInstance(name="mini", tasks=tuple(a_tasks) + (b,) + tuple(c_tasks))


class TestGenerate:
    def test_same_seed_identical_instance(self, fdw_like):
        a = generate_instance(fdw_like, 40, seed=3)
        b = generate_instance(fdw_like, 40, seed=3)
        assert dumps_instance(a) == dumps_instance(b)

    def test_different_seed_different_instance(self, fdw_like):
        a = generate_instance(fdw_like, 40, seed=3)
        b = generate_instance(fdw_like, 40, seed=4)
        assert dumps_instance(a) != dumps_instance(b)

    def test_exact_task_count(self, fdw_like):
        for n in (10, 37, 64, 123):
            assert generate_instance(fdw_like, n, seed=0).n_tasks == n

    def test_singletons_stay_singletons(self, fdw_like):
        gen = generate_instance(fdw_like, 80, seed=1)
        by_cat = {
            cat: [t for t in gen.tasks if t.category == cat]
            for cat in gen.categories()
        }
        assert len(by_cat["B"]) == 1
        # scalable types grow roughly proportionally (3:6 -> 1:2)
        assert len(by_cat["A"]) > 3
        assert len(by_cat["C"]) > len(by_cat["A"])

    def test_all_to_all_fanin_preserved(self, fdw_like):
        gen = generate_instance(fdw_like, 50, seed=2)
        (b,) = [t for t in gen.tasks if t.category == "B"]
        n_a = sum(1 for t in gen.tasks if t.category == "A")
        assert len(b.parents) == n_a  # every A feeds the single B
        for t in gen.tasks:
            if t.category == "C":
                assert t.parents == (b.name,)

    def test_shared_files_keep_identity(self, fdw_like):
        gen = generate_instance(fdw_like, 50, seed=2)
        c_tasks = [t for t in gen.tasks if t.category == "C"]
        for t in c_tasks:
            names = [f.name for f in t.files]
            assert "gf_archive.mseed" in names  # shared file survives verbatim
            unique = [n for n in names if n != "gf_archive.mseed"]
            assert all(n.startswith(t.name) for n in unique)  # per-task files renamed

    def test_runtimes_resampled_from_source(self, fdw_like):
        gen = generate_instance(fdw_like, 60, seed=5)
        source_runtimes = {t.runtime_s for t in fdw_like.tasks}
        assert all(t.runtime_s in source_runtimes for t in gen.tasks)

    def test_generated_instance_is_importable(self, fdw_like):
        gen = generate_instance(fdw_like, 45, seed=6)
        imported = import_instance(gen)
        assert imported.n_tasks == 45
        imported.dag.validate()

    def test_levels_preserved(self, fdw_like):
        gen = generate_instance(fdw_like, 45, seed=7)
        assert max(gen.levels().values()) == max(fdw_like.levels().values())

    def test_too_few_tasks_rejected(self, fdw_like):
        with pytest.raises(WfFormatError, match="task types"):
            generate_instance(fdw_like, 2, seed=0)
        with pytest.raises(WfFormatError, match=">= 1"):
            generate_instance(fdw_like, 0, seed=0)

    def test_pure_chain_scales_every_stage(self):
        chain = WfInstance(
            name="chain",
            tasks=(
                WfTask(name="s0", category="extract", runtime_s=5.0, children=("s1",)),
                WfTask(
                    name="s1", category="transform", runtime_s=7.0,
                    parents=("s0",), children=("s2",),
                ),
                WfTask(name="s2", category="load", runtime_s=3.0, parents=("s1",)),
            ),
        )
        gen = generate_instance(chain, 30, seed=0)
        assert gen.n_tasks == 30
        counts = {c: sum(1 for t in gen.tasks if t.category == c) for c in gen.categories()}
        assert all(n == 10 for n in counts.values())


class TestPartition:
    def test_partition_counts_split_evenly(self, fdw_like):
        parts = partition_instance(fdw_like, 2, seed=0)
        assert [p.n_tasks for p in parts] == [5, 5]
        assert [p.name for p in parts] == ["mini_p00", "mini_p01"]

    def test_partition_one_returns_source(self, fdw_like):
        assert partition_instance(fdw_like, 1) == [fdw_like]

    def test_partition_deterministic(self, fdw_like):
        a = partition_instance(fdw_like, 2, seed=9)
        b = partition_instance(fdw_like, 2, seed=9)
        assert [dumps_instance(x) for x in a] == [dumps_instance(y) for y in b]

    def test_partition_too_small_rejected(self, fdw_like):
        with pytest.raises(WfFormatError, match="at least"):
            partition_instance(fdw_like, 5, seed=0)
        with pytest.raises(WfFormatError, match=">= 1"):
            partition_instance(fdw_like, 0)
