"""Universal replay: pool runs, the partitioning study, and bursting."""

from __future__ import annotations

import json

import pytest

from repro.errors import PolicyError, TraceError, WfFormatError
from repro.bursting.policies import (
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.bursting.simulator import BurstingResult
from repro.condor.jobs import JobSpec
from repro.osg.capacity import FixedCapacity
from repro.rng import RngFactory
from repro.wf import (
    CategoryCloudModel,
    TraceRuntimeModel,
    WfInstance,
    WfTask,
    dumps_instance,
    loads_instance,
    metrics_to_batch_trace,
    replay_bursting,
    replay_instance,
    replay_study,
)


@pytest.fixture(scope="module")
def generic_instance() -> WfInstance:
    """A non-FDW instance: 1 setup -> 12 simulate -> 1 reduce."""
    sims = tuple(f"sim_{i:02d}" for i in range(12))
    tasks = (
        WfTask(name="setup", category="setup", runtime_s=30.0, children=sims),
        *(
            WfTask(
                name=name,
                category="simulate",
                runtime_s=100.0 + 10.0 * i,
                parents=("setup",),
                children=("reduce",),
            )
            for i, name in enumerate(sims)
        ),
        WfTask(name="reduce", category="reduce", runtime_s=45.0, parents=sims),
    )
    return WfInstance(name="generic", tasks=tasks)


class TestTraceRuntimeModel:
    def test_returns_recorded_runtime(self):
        model = TraceRuntimeModel(runtimes={"a": 123.5})
        rng = RngFactory(0).generator("x")
        assert model.sample_seconds(JobSpec(name="a"), rng) == 123.5

    def test_unknown_task_falls_back_to_default(self):
        model = TraceRuntimeModel(runtimes={}, default_s=77.0)
        rng = RngFactory(0).generator("x")
        assert model.sample_seconds(JobSpec(name="zzz"), rng) == 77.0

    def test_clamps_to_simulator_floor(self):
        model = TraceRuntimeModel(runtimes={"a": 0.01})
        rng = RngFactory(0).generator("x")
        assert model.sample_seconds(JobSpec(name="a"), rng) == 1.0


class TestCategoryCloudModel:
    def test_duck_types_cloud_model(self):
        model = CategoryCloudModel(durations_s={"simulate": 120.0, "reduce": 30.0})
        assert model.is_burstable("simulate")
        assert not model.is_burstable("setup")
        assert model.duration_s("reduce") == 30.0
        assert model.rupture_seconds == 120.0
        assert model.waveform_seconds == 30.0
        assert model.cost_usd(600.0) > 0
        with pytest.raises(PolicyError, match="not burstable"):
            model.duration_s("setup")

    def test_validation(self):
        with pytest.raises(PolicyError, match="at least one"):
            CategoryCloudModel(durations_s={})
        with pytest.raises(PolicyError, match="positive"):
            CategoryCloudModel(durations_s={"x": 0.0})


class TestReplayInstance:
    def test_trace_replay_is_deterministic(self, generic_instance):
        a = replay_instance(generic_instance, seed=5)
        b = replay_instance(generic_instance, seed=5)
        assert a.makespan_s == b.makespan_s

    def test_trace_mode_never_fails_jobs(self, generic_instance):
        result = replay_instance(generic_instance, seed=1)
        assert result.runtime_mode == "trace"
        assert len(result.metrics.records) == generic_instance.n_tasks
        assert all(r.success for r in result.metrics.records)

    def test_user_logs_cover_every_dagman(self, generic_instance):
        result = replay_instance(generic_instance, n_dagmans=2, seed=0)
        assert set(result.user_logs) == set(result.dagman_names)
        assert result.n_dagmans == 2

    def test_bad_arguments_rejected(self, generic_instance):
        with pytest.raises(WfFormatError, match="n_dagmans"):
            replay_instance(generic_instance, n_dagmans=0)
        with pytest.raises(WfFormatError, match="runtime"):
            replay_instance(generic_instance, runtime="psychic")
        with pytest.raises(WfFormatError, match="stagger"):
            replay_instance(generic_instance, stagger_s=-1.0)

    def test_study_covers_requested_counts(self, generic_instance):
        study = replay_study(
            generic_instance, counts=(1, 2), seed=0,
            capacity=FixedCapacity(slots=16),
        )
        assert set(study) == {1, 2}
        assert study[1].n_dagmans == 1
        assert study[2].n_dagmans == 2
        total = sum(
            s.n_jobs for s in study[2].metrics.dagmans.values()
        )
        assert total == generic_instance.n_tasks

    def test_study_rejects_empty_counts(self, generic_instance):
        with pytest.raises(WfFormatError, match="counts"):
            replay_study(generic_instance, counts=())


class TestBursting:
    def test_metrics_to_batch_trace(self, generic_instance):
        result = replay_instance(generic_instance, seed=2)
        trace = metrics_to_batch_trace(result.metrics, "generic")
        assert trace.n_jobs == generic_instance.n_tasks
        assert trace.runtime_s == result.metrics.dagmans["generic"].runtime_s
        with pytest.raises(TraceError, match="no DAGMan"):
            metrics_to_batch_trace(result.metrics, "nope")

    def test_policies_burst_generated_non_fdw_instance(self, generic_instance):
        """Acceptance: Policies 1-3 produce a BurstingResult from a
        non-FDW workload end to end."""
        result = replay_instance(generic_instance, seed=3)
        bursting = replay_bursting(
            result,
            policies=[
                LowThroughputPolicy(threshold_jpm=2.0),
                QueueTimePolicy(max_queue_s=60.0),
                SubmissionGapPolicy(),
            ],
        )
        burst = bursting["generic"]
        assert isinstance(burst, BurstingResult)
        assert burst.n_jobs == generic_instance.n_tasks
        assert set(burst.bursts_by_policy) == {"policy1", "policy2", "policy3"}
        assert burst.runtime_s > 0

    def test_default_cloud_derived_from_categories(self, generic_instance):
        result = replay_instance(generic_instance, seed=3)
        bursting = replay_bursting(result)
        assert isinstance(bursting["generic"], BurstingResult)

    def test_fdw_phases_use_paper_cloud_model(self):
        doc = {
            "name": "fdwish",
            "workflow": {
                "tasks": [
                    {"name": "a0", "category": "A", "runtimeInSeconds": 150,
                     "children": ["c0"]},
                    {"name": "c0", "category": "C", "runtimeInSeconds": 60,
                     "parents": ["a0"]},
                ]
            },
        }
        instance = loads_instance(json.dumps(doc))
        result = replay_instance(instance, seed=4)
        burst = replay_bursting(result, max_burst_fraction=0.5)["fdwish"]
        assert isinstance(burst, BurstingResult)
