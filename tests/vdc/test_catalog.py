"""Tests for repro.vdc.catalog."""

import pytest

from repro.errors import CatalogError
from repro.vdc.catalog import DataCatalog, ProductRecord


def record(pid="p.1", kind="waveforms", **meta):
    return ProductRecord(
        product_id=pid,
        kind=kind,
        site="site-a",
        size_mb=10.0,
        tags=frozenset({"fdw"}),
        metadata=meta or {"mw": 8.0},
    )


def test_deposit_and_get():
    catalog = DataCatalog()
    catalog.deposit(record())
    assert len(catalog) == 1
    assert "p.1" in catalog
    assert catalog.get("p.1").kind == "waveforms"


def test_duplicate_rejected():
    catalog = DataCatalog()
    catalog.deposit(record())
    with pytest.raises(CatalogError):
        catalog.deposit(record())


def test_get_missing():
    with pytest.raises(CatalogError):
        DataCatalog().get("nope")


def test_record_validation():
    with pytest.raises(CatalogError):
        ProductRecord(product_id="has space", kind="k", site="s", size_mb=1.0)
    with pytest.raises(CatalogError):
        ProductRecord(product_id="ok", kind="", site="s", size_mb=1.0)
    with pytest.raises(CatalogError):
        ProductRecord(product_id="ok", kind="k", site="s", size_mb=-1.0)


def test_tagging():
    catalog = DataCatalog()
    catalog.deposit(record())
    updated = catalog.tag("p.1", "chile", "validated")
    assert {"fdw", "chile", "validated"} <= updated.tags
    assert catalog.get("p.1").tags == updated.tags


def test_annotate_merges_metadata():
    catalog = DataCatalog()
    catalog.deposit(record(mw=8.0))
    catalog.annotate("p.1", region="chile", mw=8.5)
    meta = catalog.get("p.1").metadata
    assert meta["region"] == "chile"
    assert meta["mw"] == 8.5


def test_withdraw():
    catalog = DataCatalog()
    catalog.deposit(record())
    catalog.withdraw("p.1")
    assert "p.1" not in catalog
    with pytest.raises(CatalogError):
        catalog.withdraw("p.1")


def test_search_by_kind():
    catalog = DataCatalog()
    catalog.deposit(record("a.1", kind="waveforms"))
    catalog.deposit(record("a.2", kind="ruptures"))
    assert [r.product_id for r in catalog.search(kind="waveforms")] == ["a.1"]


def test_search_by_tags():
    catalog = DataCatalog()
    catalog.deposit(record("a.1"))
    catalog.tag("a.1", "validated")
    catalog.deposit(record("a.2"))
    assert [r.product_id for r in catalog.search(tags={"validated"})] == ["a.1"]
    assert len(catalog.search(tags={"fdw"})) == 2


def test_search_by_range():
    catalog = DataCatalog()
    catalog.deposit(record("a.1", mw=7.6))
    catalog.deposit(record("a.2", mw=8.4))
    catalog.deposit(record("a.3", mw=9.1))
    hits = catalog.search(ranges={"mw": (8.0, 9.0)})
    assert [r.product_id for r in hits] == ["a.2"]


def test_search_range_ignores_non_numeric():
    catalog = DataCatalog()
    catalog.deposit(record("a.1", mw="big"))
    assert catalog.search(ranges={"mw": (0.0, 10.0)}) == []


def test_search_by_exact_metadata():
    catalog = DataCatalog()
    catalog.deposit(record("a.1", region="chile"))
    catalog.deposit(record("a.2", region="cascadia"))
    assert [r.product_id for r in catalog.search(region="chile")] == ["a.1"]


def test_search_results_sorted():
    catalog = DataCatalog()
    for pid in ("z.9", "a.1", "m.5"):
        catalog.deposit(record(pid))
    assert [r.product_id for r in catalog.search()] == ["a.1", "m.5", "z.9"]


def test_kinds_counts():
    catalog = DataCatalog()
    catalog.deposit(record("a.1", kind="waveforms"))
    catalog.deposit(record("a.2", kind="waveforms"))
    catalog.deposit(record("a.3", kind="gf_bank"))
    assert catalog.kinds() == {"waveforms": 2, "gf_bank": 1}


def test_save_load_roundtrip(tmp_path):
    catalog = DataCatalog()
    catalog.deposit(record("a.1", mw=8.0))
    catalog.tag("a.1", "validated")
    path = catalog.save(tmp_path / "catalog.json")
    back = DataCatalog.load(path)
    assert len(back) == 1
    rec = back.get("a.1")
    assert rec.tags == catalog.get("a.1").tags
    assert rec.metadata == catalog.get("a.1").metadata


def test_load_missing(tmp_path):
    with pytest.raises(CatalogError):
        DataCatalog.load(tmp_path / "nope.json")


def test_load_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(CatalogError):
        DataCatalog.load(path)


def test_load_malformed_record(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('[{"product_id": "x"}]')
    with pytest.raises(CatalogError):
        DataCatalog.load(path)


def test_search_range_excludes_bool():
    """Regression: True/False metadata must never hit a numeric range
    (bool is an int subclass, so 0.0 <= True <= 10.0 used to match)."""
    catalog = DataCatalog()
    catalog.deposit(record("a.1", validated=True))
    catalog.deposit(record("a.2", validated=1))
    hits = catalog.search(ranges={"validated": (0.0, 10.0)})
    assert [r.product_id for r in hits] == ["a.2"]


def test_save_writes_sha256_sidecar(tmp_path):
    from repro.integrity import digest_path, sha256_bytes

    path = DataCatalog().save(tmp_path / "catalog.json")
    side = digest_path(path)
    assert side.exists()
    assert sha256_bytes(path.read_bytes()) in side.read_text()
    # No temp droppings from the atomic write.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "catalog.json",
        "catalog.json.sha256",
    ]


def test_load_quarantines_corrupt_catalog(tmp_path):
    """Regression: a catalog whose bytes no longer match its sidecar is
    quarantined and the load fails loudly, instead of parsing (or
    crashing on) torn records."""
    catalog = DataCatalog()
    catalog.deposit(record("a.1"))
    path = catalog.save(tmp_path / "catalog.json")
    path.write_text(path.read_text()[:-20])  # torn write
    with pytest.raises(CatalogError, match="integrity"):
        DataCatalog.load(path)
    assert not path.exists()  # moved aside, never served again
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert any(p.name.startswith("catalog.json") for p in quarantined)


def test_load_rejects_string_tags(tmp_path):
    """Regression: a bare-string ``tags`` used to explode into
    per-character tags through frozenset(); now it is a clear error."""
    import json

    from repro.integrity import write_artifact

    payload = [
        {
            "product_id": "a.1",
            "kind": "waveforms",
            "site": "s",
            "size_mb": 1.0,
            "tags": "chile",
            "metadata": {},
        }
    ]
    path = tmp_path / "catalog.json"
    write_artifact(path, json.dumps(payload).encode())
    with pytest.raises(CatalogError, match="tags must be a list"):
        DataCatalog.load(path)


def test_load_rejects_non_dict_metadata(tmp_path):
    import json

    from repro.integrity import write_artifact

    payload = [
        {
            "product_id": "a.1",
            "kind": "waveforms",
            "site": "s",
            "size_mb": 1.0,
            "tags": [],
            "metadata": [["mw", 8.0]],
        }
    ]
    path = tmp_path / "catalog.json"
    write_artifact(path, json.dumps(payload).encode())
    with pytest.raises(CatalogError, match="metadata must be an object"):
        DataCatalog.load(path)


def test_load_rejects_non_object_record(tmp_path):
    import json

    from repro.integrity import write_artifact

    path = tmp_path / "catalog.json"
    write_artifact(path, json.dumps(["not-a-record"]).encode())
    with pytest.raises(CatalogError, match="expected an object"):
        DataCatalog.load(path)
