"""Tests for repro.vdc.prefetch — intelligent data delivery."""

import pytest

from repro.errors import StorageError
from repro.vdc.catalog import DataCatalog, ProductRecord
from repro.vdc.prefetch import PrefetchService, QueryEvent
from repro.vdc.storage import FederatedStorage, StorageSite


@pytest.fixture()
def services():
    catalog = DataCatalog()
    storage = FederatedStorage(
        [
            StorageSite("origin", capacity_mb=10000.0),
            StorageSite("home", capacity_mb=10000.0),
            StorageSite("tiny", capacity_mb=5.0),
        ]
    )
    for i, (kind, tags, mw) in enumerate(
        [
            ("waveforms", {"chile"}, 8.0),
            ("waveforms", {"cascadia"}, 8.5),
            ("ruptures", {"chile"}, 8.0),
            ("gf_bank", {"chile"}, 0.0),
        ]
    ):
        record = ProductRecord(
            product_id=f"p.{i}",
            kind=kind,
            site="origin",
            size_mb=10.0,
            tags=frozenset(tags),
            metadata={"mw": mw},
        )
        catalog.deposit(record)
        storage.store(record.product_id, record.size_mb, "origin")
    return catalog, storage, PrefetchService(catalog, storage)


def test_no_trace_no_prediction(services):
    _, _, svc = services
    assert svc.predict("home") == []
    assert svc.prefetch("home") == []


def test_predicts_matching_kind_and_tags(services):
    _, _, svc = services
    svc.record_query(QueryEvent(home_site="home", kind="waveforms", tags=frozenset({"chile"})))
    predictions = svc.predict("home", top=2)
    assert predictions
    assert predictions[0].product_id == "p.0"  # chile waveforms scores highest


def test_recency_weighting(services):
    _, _, svc = services
    # Old interest: chile; new interest: cascadia.
    svc.record_query(QueryEvent(home_site="home", kind="waveforms", tags=frozenset({"chile"})))
    svc.record_query(QueryEvent(home_site="home", kind="waveforms", tags=frozenset({"cascadia"})))
    predictions = svc.predict("home", top=1)
    assert predictions[0].product_id == "p.1"


def test_prefetch_replicates(services):
    _, storage, svc = services
    svc.record_query(QueryEvent(home_site="home", kind="waveforms", tags=frozenset({"chile"})))
    placed = svc.prefetch("home", top=1)
    assert placed == ["p.0"]
    assert "home" in storage.replicas("p.0")


def test_prefetch_excludes_already_local(services):
    _, storage, svc = services
    storage.replicate("p.0", "home")
    svc.record_query(QueryEvent(home_site="home", kind="waveforms", tags=frozenset({"chile"})))
    predictions = svc.predict("home", top=4)
    assert all(p.product_id != "p.0" for p in predictions)


def test_prefetch_skips_over_capacity(services):
    _, storage, svc = services
    svc.record_query(QueryEvent(home_site="tiny", kind="waveforms", tags=frozenset({"chile"})))
    placed = svc.prefetch("tiny", top=2)
    assert placed == []  # 10 MB products do not fit a 5 MB site
    assert storage.usage_mb("tiny") == 0.0


def test_trace_bounded(services):
    catalog, storage, _ = services
    svc = PrefetchService(catalog, storage, history=2)
    for i in range(5):
        svc.record_query(QueryEvent(home_site="home", kind="waveforms"))
    assert len(svc.trace_for("home")) == 2


def test_validation(services):
    catalog, storage, svc = services
    with pytest.raises(StorageError):
        PrefetchService(catalog, storage, history=0)
    with pytest.raises(StorageError):
        svc.record_query(QueryEvent(home_site="nope"))
    with pytest.raises(StorageError):
        svc.predict("home", top=0)


def test_portal_records_queries_and_prefetches():
    from repro.core.config import FdwConfig
    from repro.osg.capacity import FixedCapacity
    from repro.vdc.portal import Portal

    portal = Portal(capacity=FixedCapacity(8))
    config = FdwConfig(n_waveforms=8, n_stations=3, mesh=(8, 5), name="pf")
    run = portal.launch(config, user="alice", deposit_site="vdc-utah", seed=2)
    # A researcher at PSU searches twice; the prefetcher learns.
    portal.discover(home_site="vdc-psu", kind="waveforms", tags={"fdw"})
    portal.discover(home_site="vdc-psu", kind="waveforms", tags={"fdw"})
    placed = portal.prefetcher.prefetch("vdc-psu", top=1)
    waveforms_id = next(p for p in run.product_ids if p.endswith("waveforms"))
    assert placed == [waveforms_id]
    # The prefetched product now retrieves at local speed.
    fast = portal.retrieve(waveforms_id, "vdc-psu")
    assert fast < 1.0


def test_range_queries_score_in_range_products(services):
    """Regression: range constraints — the most selective query type —
    used to be dropped on the floor by the scorer; a site querying
    mw in [8.3, 9.0] must get the in-range product predicted first."""
    _, _, svc = services
    svc.record_query(QueryEvent(home_site="home", ranges={"mw": (8.3, 9.0)}))
    predictions = svc.predict("home", top=2)
    assert predictions
    assert predictions[0].product_id == "p.1"  # mw=8.5, the only in-range hit


def test_range_scoring_skips_bool_metadata(services):
    catalog, _, svc = services
    catalog.annotate("p.0", flagged=True)
    catalog.annotate("p.1", flagged=1)
    svc.record_query(QueryEvent(home_site="home", ranges={"flagged": (0.0, 2.0)}))
    predictions = svc.predict("home", top=2)
    assert [p.product_id for p in predictions] == ["p.1"]


def test_portal_discover_records_ranges():
    """Regression: Portal.discover forwarded ranges to the catalog but
    recorded a QueryEvent without them, blinding the prefetcher."""
    from repro.core.config import FdwConfig
    from repro.osg.capacity import FixedCapacity
    from repro.vdc.portal import Portal

    portal = Portal(capacity=FixedCapacity(8))
    config = FdwConfig(n_waveforms=8, n_stations=3, mesh=(8, 5), name="rg")
    run = portal.launch(config, user="alice", seed=4)
    portal.discover(
        home_site="vdc-psu", kind="waveforms", ranges={"n_waveforms": (4, 16)}
    )
    trace = portal.prefetcher.trace_for("vdc-psu")
    assert trace[-1].ranges == {"n_waveforms": (4, 16)}
    placed = portal.prefetcher.prefetch("vdc-psu", top=1)
    assert placed == [next(p for p in run.product_ids if "waveforms" in p)]


def test_prefetch_materializes_bank_products(tmp_path, small_gf_bank):
    """A predicted GF bank is not just replica-marked: its bytes land in
    the artifact cache's disk store (the durable prefetch)."""
    from repro.core.gfcache import GFCache

    catalog = DataCatalog()
    storage = FederatedStorage(
        [StorageSite("origin"), StorageSite("home")],
        artifact_cache=GFCache(cache_dir=tmp_path / "gfstore"),
    )
    record = ProductRecord(
        product_id="w_gf.mseed.npz",
        kind="gf_bank",
        site="origin",
        size_mb=1.0,
        tags=frozenset({"chile"}),
    )
    catalog.deposit(record)
    storage.store_bank(record.product_id, small_gf_bank, "origin")
    service = PrefetchService(catalog, storage)
    service.record_query(QueryEvent(home_site="home", kind="gf_bank"))
    placed = service.prefetch("home")
    assert placed == ["w_gf.mseed.npz"]
    assert "home" in storage.replicas("w_gf.mseed.npz")
    on_disk = list((tmp_path / "gfstore").glob("gf_*.npz"))
    assert len(on_disk) == 1
