"""Tests for repro.vdc.storage."""

import pytest

from repro.errors import StorageError
from repro.vdc.storage import FederatedStorage, StorageSite


def federation():
    return FederatedStorage(
        [
            StorageSite("a", capacity_mb=1000.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
            StorageSite("b", capacity_mb=1000.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
            StorageSite("c", capacity_mb=50.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
        ]
    )


def test_store_and_replicas():
    fed = federation()
    fed.store("p", 100.0, "a")
    assert fed.replicas("p") == {"a"}
    assert fed.usage_mb("a") == 100.0


def test_store_duplicate_rejected():
    fed = federation()
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.store("p", 10.0, "b")


def test_store_over_capacity_rejected():
    fed = federation()
    with pytest.raises(StorageError):
        fed.store("big", 100.0, "c")  # c holds only 50 MB


def test_local_retrieval_fast():
    fed = federation()
    fed.store("p", 100.0, "a")
    assert fed.retrieval_time_s("p", "a") == pytest.approx(1.0)  # 100/100


def test_remote_retrieval_pays_wan_and_caches():
    fed = federation()
    fed.store("p", 100.0, "a")
    first = fed.retrieval_time_s("p", "b")
    assert first == pytest.approx(10.0)  # 100/10 over WAN
    assert "b" in fed.replicas("p")
    second = fed.retrieval_time_s("p", "b")
    assert second == pytest.approx(1.0)  # now local


def test_remote_retrieval_without_caching():
    fed = federation()
    fed.store("p", 100.0, "a")
    fed.retrieval_time_s("p", "b", cache=False)
    assert fed.replicas("p") == {"a"}


def test_cache_skipped_when_site_full():
    fed = federation()
    fed.store("p", 100.0, "a")
    # Site c (50 MB) cannot cache a 100 MB product, but retrieval works.
    t = fed.retrieval_time_s("p", "c")
    assert t == pytest.approx(10.0)
    assert "c" not in fed.replicas("p")


def test_explicit_replicate_and_drop():
    fed = federation()
    fed.store("p", 10.0, "a")
    fed.replicate("p", "b")
    assert fed.replicas("p") == {"a", "b"}
    fed.replicate("p", "b")  # idempotent
    fed.drop_replica("p", "a")
    assert fed.replicas("p") == {"b"}
    with pytest.raises(StorageError):
        fed.drop_replica("p", "b")  # last replica


def test_drop_missing_replica():
    fed = federation()
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.drop_replica("p", "b")


def test_unknown_product_and_site():
    fed = federation()
    with pytest.raises(StorageError):
        fed.replicas("nope")
    with pytest.raises(StorageError):
        fed.retrieval_time_s("nope", "a")
    with pytest.raises(StorageError):
        fed.site("zzz")
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.replicate("p", "zzz")


def test_validation():
    with pytest.raises(StorageError):
        FederatedStorage([])
    with pytest.raises(StorageError):
        FederatedStorage([StorageSite("a"), StorageSite("a")])
    with pytest.raises(StorageError):
        StorageSite("")
    with pytest.raises(StorageError):
        StorageSite("x", capacity_mb=0.0)
    with pytest.raises(StorageError):
        StorageSite("x", wan_mb_per_s=0.0)
    fed = federation()
    with pytest.raises(StorageError):
        fed.store("neg", -1.0, "a")
