"""Tests for repro.vdc.storage."""

import pytest

from repro.errors import StorageError
from repro.vdc.storage import FederatedStorage, StorageSite


def federation():
    return FederatedStorage(
        [
            StorageSite("a", capacity_mb=1000.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
            StorageSite("b", capacity_mb=1000.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
            StorageSite("c", capacity_mb=50.0, local_mb_per_s=100.0, wan_mb_per_s=10.0),
        ]
    )


def test_store_and_replicas():
    fed = federation()
    fed.store("p", 100.0, "a")
    assert fed.replicas("p") == {"a"}
    assert fed.usage_mb("a") == 100.0


def test_store_duplicate_rejected():
    fed = federation()
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.store("p", 10.0, "b")


def test_store_over_capacity_rejected():
    fed = federation()
    with pytest.raises(StorageError):
        fed.store("big", 100.0, "c")  # c holds only 50 MB


def test_local_retrieval_fast():
    fed = federation()
    fed.store("p", 100.0, "a")
    assert fed.retrieval_time_s("p", "a") == pytest.approx(1.0)  # 100/100


def test_remote_retrieval_pays_wan_and_caches():
    fed = federation()
    fed.store("p", 100.0, "a")
    first = fed.retrieval_time_s("p", "b")
    assert first == pytest.approx(10.0)  # 100/10 over WAN
    assert "b" in fed.replicas("p")
    second = fed.retrieval_time_s("p", "b")
    assert second == pytest.approx(1.0)  # now local


def test_remote_retrieval_without_caching():
    fed = federation()
    fed.store("p", 100.0, "a")
    fed.retrieval_time_s("p", "b", cache=False)
    assert fed.replicas("p") == {"a"}


def test_cache_skipped_when_site_full():
    fed = federation()
    fed.store("p", 100.0, "a")
    # Site c (50 MB) cannot cache a 100 MB product, but retrieval works.
    t = fed.retrieval_time_s("p", "c")
    assert t == pytest.approx(10.0)
    assert "c" not in fed.replicas("p")


def test_explicit_replicate_and_drop():
    fed = federation()
    fed.store("p", 10.0, "a")
    fed.replicate("p", "b")
    assert fed.replicas("p") == {"a", "b"}
    fed.replicate("p", "b")  # idempotent
    fed.drop_replica("p", "a")
    assert fed.replicas("p") == {"b"}
    with pytest.raises(StorageError):
        fed.drop_replica("p", "b")  # last replica


def test_drop_missing_replica():
    fed = federation()
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.drop_replica("p", "b")


def test_unknown_product_and_site():
    fed = federation()
    with pytest.raises(StorageError):
        fed.replicas("nope")
    with pytest.raises(StorageError):
        fed.retrieval_time_s("nope", "a")
    with pytest.raises(StorageError):
        fed.site("zzz")
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError):
        fed.replicate("p", "zzz")


def test_validation():
    with pytest.raises(StorageError):
        FederatedStorage([])
    with pytest.raises(StorageError):
        FederatedStorage([StorageSite("a"), StorageSite("a")])
    with pytest.raises(StorageError):
        StorageSite("")
    with pytest.raises(StorageError):
        StorageSite("x", capacity_mb=0.0)
    with pytest.raises(StorageError):
        StorageSite("x", wan_mb_per_s=0.0)
    fed = federation()
    with pytest.raises(StorageError):
        fed.store("neg", -1.0, "a")


# -- bank-valued products routed through the GF cache -------------------------


def bank_federation(tmp_path):
    from repro.core.gfcache import GFCache

    return FederatedStorage(
        [
            StorageSite("origin", capacity_mb=10000.0),
            StorageSite("home", capacity_mb=10000.0),
        ],
        artifact_cache=GFCache(cache_dir=tmp_path / "gfstore"),
    )


def test_store_bank_places_replica_and_bytes(tmp_path, small_gf_bank):
    fed = bank_federation(tmp_path)
    size_mb = fed.store_bank("w_gf.mseed.npz", small_gf_bank, "origin")
    assert size_mb == pytest.approx(small_gf_bank.nbytes / (1024.0 * 1024.0))
    assert fed.replicas("w_gf.mseed.npz") == {"origin"}
    assert fed.usage_mb("origin") == pytest.approx(size_mb)
    assert fed.bank_key("w_gf.mseed.npz") is not None


def test_fetch_bank_returns_identical_bank_and_charges_time(
    tmp_path, small_gf_bank
):
    import numpy as np

    fed = bank_federation(tmp_path)
    fed.store_bank("w_gf.mseed.npz", small_gf_bank, "origin")
    bank, elapsed = fed.fetch_bank("w_gf.mseed.npz", "home")
    assert np.array_equal(bank.statics, small_gf_bank.statics)
    assert np.array_equal(bank.travel_time_s, small_gf_bank.travel_time_s)
    assert elapsed > 0  # WAN transfer charged
    # The retrieval left a cached replica: a refetch is a fast local read.
    assert "home" in fed.replicas("w_gf.mseed.npz")
    _, local = fed.fetch_bank("w_gf.mseed.npz", "home")
    assert local < elapsed


def test_store_bank_shares_content_key_with_producers(tmp_path, small_gf_bank,
                                                      small_geometry, small_network):
    from repro.core.gfcache import GFCache, gf_bank_key

    cache = GFCache(cache_dir=tmp_path / "shared")
    fed = FederatedStorage([StorageSite("origin")], artifact_cache=cache)
    key = gf_bank_key(small_geometry, small_network)
    fed.store_bank("w_gf.mseed.npz", small_gf_bank, "origin", key=key)
    # An in-process consumer asking for the same inputs hits the entry
    # the VDC stored — one implementation, one namespace.
    warm = cache.get_or_compute(small_geometry, small_network)
    assert warm is small_gf_bank
    assert cache.stats.memory_hits == 1


def test_materialize_writes_disk_store(tmp_path, small_gf_bank):
    fed = bank_federation(tmp_path)
    fed.store_bank("w_gf.mseed.npz", small_gf_bank, "origin")
    path = fed.materialize("w_gf.mseed.npz")
    assert path is not None and path.exists()
    assert fed.materialize("plain-product") is None  # no bank attached


def test_bank_methods_require_cache(small_gf_bank):
    fed = federation()
    with pytest.raises(StorageError):
        fed.store_bank("p", small_gf_bank, "a")
    fed.store("p", 1.0, "a")
    with pytest.raises(StorageError):
        fed.fetch_bank("p", "a")


def test_float32_bank_halves_charged_bytes_and_transfer(tmp_path, small_gf_bank):
    fed = bank_federation(tmp_path)
    size_full = fed.store_bank("gf_f64.npz", small_gf_bank, "origin")
    size_half = fed.store_bank(
        "gf_f32.npz", small_gf_bank.astype("float32"), "origin"
    )
    assert size_half == pytest.approx(0.5 * size_full)
    assert fed.product_size_mb("gf_f32.npz") == pytest.approx(0.5 * size_full)
    assert fed.bank_dtype("gf_f64.npz") == "float64"
    assert fed.bank_dtype("gf_f32.npz") == "float32"
    # The WAN transfer (cache=False keeps the placement untouched) is
    # charged at half the seconds too — the Stash/OSDF saving.
    t_full = fed.retrieval_time_s("gf_f64.npz", "home", cache=False)
    t_half = fed.retrieval_time_s("gf_f32.npz", "home", cache=False)
    assert t_half == pytest.approx(0.5 * t_full)


def test_product_size_unknown_product(tmp_path, small_gf_bank):
    fed = bank_federation(tmp_path)
    with pytest.raises(StorageError):
        fed.product_size_mb("nope")
    assert fed.bank_dtype("nope") is None


# -- resilience: breakers, outages, failover, rebuild --------------------------


def resilient_federation(**kwargs):
    from repro.faults import SiteOutage
    from repro.resilience import BreakerPolicy

    defaults = dict(
        breaker_policy=BreakerPolicy(
            failure_threshold=2, cooldown_s=100.0, probe_cost_s=5.0
        ),
        outages=[SiteOutage("fast", 50.0, 250.0)],
    )
    defaults.update(kwargs)
    fed = FederatedStorage(
        [
            StorageSite("home", local_mb_per_s=100.0, wan_mb_per_s=10.0),
            StorageSite("fast", wan_mb_per_s=80.0),
            StorageSite("slow", wan_mb_per_s=20.0),
        ],
        **defaults,
    )
    return fed


def test_drop_last_replica_needs_force():
    """Satellite: a cleanup must not silently destroy the only copy."""
    fed = federation()
    fed.store("p", 10.0, "a")
    with pytest.raises(StorageError, match="force=True"):
        fed.drop_replica("p", "a")
    assert fed.replicas("p") == {"a"}  # refused drop changed nothing
    fed.drop_replica("p", "a", force=True)
    assert fed.replicas("p") == set()
    assert fed.usage_mb("a") == 0.0


def test_zero_replicas_is_unavailable_not_keyerror():
    from repro.errors import StorageUnavailableError

    fed = federation()
    fed.store("p", 10.0, "a")
    fed.drop_replica("p", "a", force=True)
    with pytest.raises(StorageUnavailableError) as err:
        fed.retrieval_time_s("p", "b")
    assert err.value.penalty_s == 0.0
    assert err.value.retryable


def test_legacy_paths_unchanged_without_now():
    """Breakers configured but no ``now=``: bit-identical to the plain
    model (every site implicitly healthy, no probe charges)."""
    plain = federation()
    armed = resilient_federation()
    plain.store("p", 100.0, "a")
    armed.store("p", 100.0, "home")
    assert armed.retrieval_time_s("p", "home") == plain.retrieval_time_s("p", "a")
    assert armed.n_failovers == 0


def test_failover_prefers_home_then_fastest_egress():
    fed = resilient_federation(outages=[])
    fed.store("p", 100.0, "fast")
    fed.replicate("p", "slow")
    fed.replicate("p", "home")
    # Home replica: local read, no failover.
    assert fed.retrieval_time_s("p", "home", now=0.0) == pytest.approx(1.0)
    assert fed.n_failovers == 0
    fed.drop_replica("p", "home")
    # No home replica: the fastest-egress source serves, WAN-priced at
    # the *home* site's ingress — same charge as the legacy model.
    t = fed.retrieval_time_s("p", "home", now=0.0, cache=False)
    assert t == pytest.approx(100.0 / 10.0)


def test_outage_probe_costs_and_breaker_trips():
    from repro.resilience import BREAKER_OPEN

    fed = resilient_federation()
    fed.store("p", 100.0, "fast")
    fed.replicate("p", "slow")
    # Outside the window: fast serves, breakers untouched.
    assert fed.retrieval_time_s("p", "home", now=0.0, cache=False) == pytest.approx(10.0)
    # Inside: the fast probe fails (+5 s), slow serves the transfer.
    t = fed.retrieval_time_s("p", "home", now=60.0, cache=False)
    assert t == pytest.approx(5.0 + 10.0)
    assert fed.n_failovers == 1
    assert fed.breakers["fast"].consecutive_failures == 1
    # Second dark probe trips the breaker (threshold 2)...
    fed.retrieval_time_s("p", "home", now=70.0, cache=False)
    assert fed.breakers["fast"].state == BREAKER_OPEN
    # ...and while it is open the dead site is skipped for free.
    t = fed.retrieval_time_s("p", "home", now=80.0, cache=False)
    assert t == pytest.approx(10.0)
    # After the outage and cooldown, the half-open probe heals it.
    fed.retrieval_time_s("p", "home", now=300.0, cache=False)
    assert fed.breakers["fast"].state == "closed"


def test_all_sources_dark_raises_with_penalty():
    from repro.errors import StorageUnavailableError
    from repro.faults import SiteOutage

    fed = resilient_federation(
        outages=[SiteOutage("fast", 0.0, 100.0), SiteOutage("slow", 0.0, 100.0)]
    )
    fed.store("p", 100.0, "fast")
    fed.replicate("p", "slow")
    with pytest.raises(StorageUnavailableError) as err:
        fed.retrieval_time_s("p", "home", now=10.0)
    assert err.value.penalty_s == pytest.approx(10.0)  # two failed probes
    assert err.value.retryable


def test_site_healthy_and_add_outage():
    from repro.faults import SiteOutage

    fed = resilient_federation(outages=[])
    assert fed.site_healthy("fast", now=60.0)
    fed.add_outage(SiteOutage("fast", 50.0, 250.0))
    assert not fed.site_healthy("fast", now=60.0)
    assert fed.site_healthy("fast", now=250.0)  # window is half-open
    with pytest.raises(StorageError):
        fed.add_outage(SiteOutage("nope", 0.0, 1.0))
    assert not fed.in_outage("slow", 60.0)


def test_breaker_snapshots_sorted():
    fed = resilient_federation()
    snaps = fed.breaker_snapshots(now=0.0)
    assert [s["name"] for s in snaps] == ["fast", "home", "slow"]
    assert all(s["state"] == "closed" for s in snaps)


def test_fetch_bank_rebuilds_when_no_replica_survives(tmp_path, small_gf_bank):
    import numpy as np

    from repro.core.gfcache import GFCache
    from repro.resilience import BreakerPolicy

    fed = FederatedStorage(
        [StorageSite("origin"), StorageSite("home")],
        artifact_cache=GFCache(cache_dir=tmp_path / "store"),
        breaker_policy=BreakerPolicy(failure_threshold=2, probe_cost_s=5.0),
    )
    fed.store_bank("gf/p", small_gf_bank, "origin")
    fed.drop_replica("gf/p", "origin", force=True)
    rebuilt = []

    def rebuild():
        rebuilt.append(None)
        return small_gf_bank

    with pytest.raises(StorageError):
        fed.fetch_bank("gf/p", "home", now=0.0)  # no rebuild: surfaces
    bank, elapsed = fed.fetch_bank("gf/p", "home", now=0.0, rebuild=rebuild)
    assert np.array_equal(bank.statics, small_gf_bank.statics)
    assert elapsed == 0.0  # no probes sunk: replicas were simply gone
    assert rebuilt and fed.n_rebuilds == 1


def test_fetch_bank_rebuilds_quarantined_bytes(tmp_path, small_gf_bank):
    """Replica bookkeeping says the product exists, but the one physical
    copy fails its digest: fetch quarantines and rebuilds."""
    from repro.core.gfcache import GFCache

    cache = GFCache(cache_dir=tmp_path / "store")
    fed = FederatedStorage(
        [StorageSite("origin"), StorageSite("home")], artifact_cache=cache
    )
    fed.store_bank("gf/p", small_gf_bank, "origin")
    cache.clear()  # memory gone; disk is the only copy
    path = next((tmp_path / "store").glob("gf_*.npz"))
    path.write_bytes(path.read_bytes()[:100])
    bank, _ = fed.fetch_bank("gf/p", "home", rebuild=lambda: small_gf_bank)
    assert bank is small_gf_bank
    assert fed.n_rebuilds == 1
    assert len(cache.quarantined) == 1
