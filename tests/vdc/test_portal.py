"""Tests for repro.vdc.portal — the Fig 7 data-flow story."""

import pytest

from repro.core.config import FdwConfig
from repro.errors import PortalError
from repro.osg.capacity import FixedCapacity
from repro.vdc.portal import Portal


@pytest.fixture(scope="module")
def portal_with_run():
    portal = Portal(capacity=FixedCapacity(16))
    config = FdwConfig(n_waveforms=16, n_stations=4, mesh=(8, 5), name="prun")
    run = portal.launch(config, user="alice", seed=3)
    return portal, run


def test_launch_completes(portal_with_run):
    _, run = portal_with_run
    assert run.succeeded
    assert run.stats.n_completed == run.result.metrics.dagmans["prun"].n_jobs


def test_products_deposited(portal_with_run):
    portal, run = portal_with_run
    assert len(run.product_ids) == 3
    kinds = {portal.catalog.get(pid).kind for pid in run.product_ids}
    assert kinds == {"waveforms", "ruptures", "gf_bank"}


def test_products_tagged_and_annotated(portal_with_run):
    portal, run = portal_with_run
    rec = portal.catalog.get(run.product_ids[0])
    assert "fdw" in rec.tags
    assert "user:alice" in rec.tags
    assert rec.metadata["n_stations"] == 4
    assert rec.provenance == run.run_id


def test_discovery(portal_with_run):
    portal, run = portal_with_run
    hits = portal.discover(kind="waveforms", tags={"fdw"})
    assert any(r.product_id in run.product_ids for r in hits)


def test_retrieval_caches(portal_with_run):
    portal, run = portal_with_run
    pid = run.product_ids[0]
    home = "vdc-utah"
    first = portal.retrieve(pid, home)
    second = portal.retrieve(pid, home)
    assert second < first  # cached replica at home site


def test_status_report(portal_with_run):
    portal, run = portal_with_run
    report = portal.status(run.run_id)
    assert run.run_id in report
    assert "jobs/min" in report


def test_runs_listing(portal_with_run):
    portal, run = portal_with_run
    assert run.run_id in portal.runs()


def test_unknown_run(portal_with_run):
    portal, _ = portal_with_run
    with pytest.raises(PortalError):
        portal.status("nope")


def test_unknown_product(portal_with_run):
    portal, _ = portal_with_run
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        portal.retrieve("nope", "vdc-utah")


def test_bad_deposit_site():
    portal = Portal(capacity=FixedCapacity(8))
    config = FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="bad")
    from repro.errors import StorageError

    with pytest.raises(StorageError):
        portal.launch(config, deposit_site="not-a-site")


def test_second_user_discovers_first_users_data(portal_with_run):
    portal, run = portal_with_run
    # Bob searches for Chilean waveform catalogs deposited by anyone.
    hits = portal.discover(kind="waveforms", tags={"chile"})
    assert hits
    elapsed = portal.retrieve(hits[0].product_id, "vdc-psu")
    assert elapsed > 0


class _FlakyCatalog:
    """DataCatalog whose deposit fails once, on the gf_bank product."""

    def __init__(self):
        from repro.vdc.catalog import DataCatalog

        self._inner = DataCatalog()
        self.fail_next = True

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def deposit(self, record):
        from repro.errors import CatalogError

        if self.fail_next and record.kind == "gf_bank":
            self.fail_next = False
            raise CatalogError("catalog store unavailable")
        self._inner.deposit(record)


def test_failed_launch_rolls_back_all_deposits():
    """Regression: a launch that dies mid-deposit used to leak the
    already-placed replicas and records, and the next launch collided
    with the dead run's id (derived from len(_runs))."""
    from repro.errors import CatalogError

    catalog = _FlakyCatalog()
    portal = Portal(catalog=catalog, capacity=FixedCapacity(8))
    config = FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="txn")

    with pytest.raises(CatalogError, match="unavailable"):
        portal.launch(config, user="alice", seed=1)

    # All-or-nothing: no orphan records, no orphan bytes, no run entry.
    assert len(catalog) == 0
    assert portal.runs() == []
    for site in portal.storage.sites:
        assert portal.storage.usage_mb(site) == 0.0

    # The failed launch burned run-0000; the retry gets a fresh id and
    # succeeds end to end.
    run = portal.launch(config, user="alice", seed=1)
    assert run.run_id == "run-0001-txn"
    assert run.succeeded
    assert len(run.product_ids) == 3
    for pid in run.product_ids:
        assert catalog.get(pid).provenance == run.run_id


def test_fault_free_run_ids_sequential():
    """Fault-free behavior is unchanged by the monotonic counter: ids
    count up from run-0000 exactly as the len()-derived ones did."""
    portal = Portal(capacity=FixedCapacity(8))
    ids = [
        portal.launch(
            FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name=f"s{i}"),
            seed=i,
        ).run_id
        for i in range(3)
    ]
    assert ids == ["run-0000-s0", "run-0001-s1", "run-0002-s2"]
