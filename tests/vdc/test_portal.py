"""Tests for repro.vdc.portal — the Fig 7 data-flow story."""

import pytest

from repro.core.config import FdwConfig
from repro.errors import PortalError
from repro.osg.capacity import FixedCapacity
from repro.vdc.portal import Portal


@pytest.fixture(scope="module")
def portal_with_run():
    portal = Portal(capacity=FixedCapacity(16))
    config = FdwConfig(n_waveforms=16, n_stations=4, mesh=(8, 5), name="prun")
    run = portal.launch(config, user="alice", seed=3)
    return portal, run


def test_launch_completes(portal_with_run):
    _, run = portal_with_run
    assert run.succeeded
    assert run.stats.n_completed == run.result.metrics.dagmans["prun"].n_jobs


def test_products_deposited(portal_with_run):
    portal, run = portal_with_run
    assert len(run.product_ids) == 3
    kinds = {portal.catalog.get(pid).kind for pid in run.product_ids}
    assert kinds == {"waveforms", "ruptures", "gf_bank"}


def test_products_tagged_and_annotated(portal_with_run):
    portal, run = portal_with_run
    rec = portal.catalog.get(run.product_ids[0])
    assert "fdw" in rec.tags
    assert "user:alice" in rec.tags
    assert rec.metadata["n_stations"] == 4
    assert rec.provenance == run.run_id


def test_discovery(portal_with_run):
    portal, run = portal_with_run
    hits = portal.discover(kind="waveforms", tags={"fdw"})
    assert any(r.product_id in run.product_ids for r in hits)


def test_retrieval_caches(portal_with_run):
    portal, run = portal_with_run
    pid = run.product_ids[0]
    home = "vdc-utah"
    first = portal.retrieve(pid, home)
    second = portal.retrieve(pid, home)
    assert second < first  # cached replica at home site


def test_status_report(portal_with_run):
    portal, run = portal_with_run
    report = portal.status(run.run_id)
    assert run.run_id in report
    assert "jobs/min" in report


def test_runs_listing(portal_with_run):
    portal, run = portal_with_run
    assert run.run_id in portal.runs()


def test_unknown_run(portal_with_run):
    portal, _ = portal_with_run
    with pytest.raises(PortalError):
        portal.status("nope")


def test_unknown_product(portal_with_run):
    portal, _ = portal_with_run
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        portal.retrieve("nope", "vdc-utah")


def test_bad_deposit_site():
    portal = Portal(capacity=FixedCapacity(8))
    config = FdwConfig(n_waveforms=8, n_stations=2, mesh=(8, 5), name="bad")
    from repro.errors import StorageError

    with pytest.raises(StorageError):
        portal.launch(config, deposit_site="not-a-site")


def test_second_user_discovers_first_users_data(portal_with_run):
    portal, run = portal_with_run
    # Bob searches for Chilean waveform catalogs deposited by anyone.
    hits = portal.discover(kind="waveforms", tags={"chile"})
    assert hits
    elapsed = portal.retrieve(hits[0].product_id, "vdc-psu")
    assert elapsed > 0
