#!/usr/bin/env python
"""Partitioned DAGMan study (the paper's Fig 3/4 experiment, scaled down).

Splits a fixed workload across 1, 2, 4 and 8 simultaneously running
DAGMans on the simulated OSPool and reports what the paper reports:
per-DAGMan average total runtime and throughput (eqs. 3-4), wait-time
inflation, and text sparklines of instant throughput (eq. 5) and
running-job counts.

Conclusion to look for (paper §6): "partitioning workloads into multiple
simultaneously running DAGMans is not advantageous on the OSG."
"""

from __future__ import annotations

import numpy as np

from repro.core import FdwConfig, partition_config, run_fdw_batch
from repro.core.stats import summarize
from repro.units import to_hours, to_minutes

TOTAL_WAVEFORMS = 2000  # scaled-down stand-in for the paper's 16,000
CONCURRENCY = [1, 2, 4, 8]


def sparkline(series: np.ndarray, width: int = 48) -> str:
    """Render a series as a unicode sparkline."""
    blocks = " .:-=+*#%@"
    if series.size == 0:
        return ""
    bins = np.array_split(series, width)
    means = np.array([b.mean() if b.size else 0.0 for b in bins])
    top = means.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in means)


print(f"workload: {TOTAL_WAVEFORMS} waveforms, full-style Chilean input\n")
base = FdwConfig(n_waveforms=TOTAL_WAVEFORMS, n_stations=121, name="study")

rows = []
for k in CONCURRENCY:
    parts = partition_config(base, k)
    result = run_fdw_batch(parts, seed=100 + k)
    runtimes = [to_hours(result.runtime_s(n)) for n in result.dagman_names]
    jpms = [result.throughput_jpm(n) for n in result.dagman_names]
    waits = result.metrics.wait_times_s(phase="C")
    rows.append((k, summarize(runtimes), summarize(jpms), float(np.mean(waits)) / 60.0))

    first = result.dagman_names[0]
    omega = result.metrics.instant_throughput_jpm(first)
    running = result.metrics.running_jobs()
    print(f"--- {k} concurrent DAGMan(s) ---")
    print(f"instant throughput (first DAGMan, peak {omega.max():5.1f} JPM): "
          f"{sparkline(omega)}")
    print(f"running jobs       (batch,        peak {int(running.max()):5d})    : "
          f"{sparkline(running)}")

print()
print(f"{'dagmans':>8} {'runtime_h':>10} {'sd':>6} {'jpm':>7} {'sd':>6} {'wait_min':>9}")
for k, r, t, wait in rows:
    print(f"{k:>8} {r.mean:10.2f} {r.sd:6.2f} {t.mean:7.2f} {t.sd:6.2f} {wait:9.1f}")

jpms = [t.mean for _, _, t, _ in rows]
print()
print(
    f"per-DAGMan throughput falls {jpms[0] / jpms[-1]:.1f}x from 1 to 8 "
    "concurrent DAGMans while the makespan does not improve -> run a "
    "single DAGMan (the paper's conclusion)."
)
