#!/usr/bin/env python
"""Data democratization through the VDC portal (the paper's Fig 7 story).

A seismologist launches an accelerated FDW run through the VDC portal;
the products are deposited, curated and tagged in the federated catalog;
an EEW modeller at a different institution then *discovers* the data by
metadata query and retrieves it — fast on repeat access thanks to
replica caching. "Providing equitable access to MudPy for researchers
of all backgrounds" (paper §6).
"""

from __future__ import annotations

from repro.core import FdwConfig
from repro.vdc import Portal

portal = Portal()

# --- Researcher 1 (seismologist, Utah): run the simulations -------------
config = FdwConfig(
    n_waveforms=64, n_stations=12, mesh=(12, 8), name="chile_mw8plus", seed=3
)
run = portal.launch(config, user="alice", deposit_site="vdc-utah", seed=3)
print(f"portal run {run.run_id}: succeeded={run.succeeded}")
print(portal.status(run.run_id))
print()

# Curate: tag the waveform product as validated training data.
waveforms_id = next(p for p in run.product_ids if p.endswith("waveforms"))
portal.catalog.tag(waveforms_id, "validated", "training-data")
portal.catalog.annotate(waveforms_id, region="chile", quality="A")
print(f"curated {waveforms_id} with tags and metadata")

# --- Researcher 2 (EEW modeller, Penn State): discover and retrieve -----
print("\n-- discovery by a second researcher --")
hits = portal.discover(
    kind="waveforms",
    tags={"validated", "chile"},
    ranges={"n_waveforms": (32, 100000)},
)
for record in hits:
    print(
        f"found {record.product_id}: {record.size_mb:.1f} MB at {record.site}, "
        f"tags={sorted(record.tags)}"
    )

product = hits[0].product_id
t_first = portal.retrieve(product, home_site="vdc-psu")
t_second = portal.retrieve(product, home_site="vdc-psu")
print(
    f"retrieval to vdc-psu: first pull {t_first:.2f}s (WAN + cache fill), "
    f"repeat pull {t_second:.2f}s (local replica) -> "
    f"{t_first / t_second:.0f}x faster for the community"
)

# The federation now holds replicas at both sites.
print(f"replicas of {product}: {sorted(portal.storage.replicas(product))}")

# --- Researcher 3: no data found? The query tells them so ----------------
nothing = portal.discover(kind="waveforms", ranges={"n_waveforms": (10**6, 10**7)})
print(f"\nquery for million-event catalogs returns {len(nothing)} products "
      "(discovery is honest about coverage)")
