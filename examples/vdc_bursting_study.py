#!/usr/bin/env python
"""VDC bursting study (the paper's §4.3/Figs 5-6 experiment, scaled down).

1. Run a full-input DAGMan on the simulated OSPool and export the two
   CSV traces the bursting simulator consumes (batch + per-job times).
2. Replay the batch under Policy 1 (low-throughput probe) and Policy 2
   (queue-time cap) across probe times, plus a control.
3. Report average instant throughput (eq. 6), VDC usage, runtime
   reduction and cost (eq. 7), and write the per-second throughput CSV.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bursting import (
    BurstingSimulator,
    LowThroughputPolicy,
    QueueTimePolicy,
    render_report,
    write_throughput_csv,
)
from repro.core import FdwConfig, run_fdw_batch
from repro.core.traces import export_traces, read_traces
from repro.units import minutes

workdir = Path(tempfile.mkdtemp(prefix="fdw_bursting_"))

# 1. A real (simulated-OSG) batch, traced to CSV.
config = FdwConfig(n_waveforms=2000, n_stations=121, name="batch1")
result = run_fdw_batch(config, seed=11)
batch_csv, jobs_csv = export_traces(result, "batch1", workdir)
trace = read_traces(batch_csv, jobs_csv)
print(f"traced batch: {trace.n_jobs} jobs over {trace.runtime_s / 3600:.2f} h "
      f"-> {batch_csv.name}, {jobs_csv.name}")

# 2. Control + policy sweep. The scaled-down batch peaks below the
#    paper's 34 JPM threshold, so the threshold is set relative to the
#    control's own peak.
control = BurstingSimulator(trace, policies=[]).run()
threshold = 0.6 * float(control.throughput_series_jpm.max())
print(f"\ncontrol (no bursting): AIT "
      f"{control.average_instant_throughput_jpm:.2f} JPM; "
      f"policy threshold set to {threshold:.1f} JPM")

print(f"\n{'probe_s':>8} {'ait_jpm':>8} {'vdc_%':>7} {'runtime_h':>10} "
      f"{'reduction_%':>12} {'cost_$':>7}")
best = None
for probe in (1, 5, 10, 30, 60, 120):
    sim = BurstingSimulator(
        trace,
        policies=[
            LowThroughputPolicy(probe_s=float(probe), threshold_jpm=threshold),
            QueueTimePolicy(max_queue_s=minutes(90)),
        ],
        max_burst_fraction=0.30,  # the paper's cost-experiment cap
    )
    r = sim.run()
    print(
        f"{probe:>8} {r.average_instant_throughput_jpm:8.2f} "
        f"{r.vdc_usage_percent:7.1f} {r.runtime_s / 3600:10.2f} "
        f"{r.runtime_reduction_percent:12.1f} {r.cost_usd:7.2f}"
    )
    if best is None or r.runtime_s < best.runtime_s:
        best = r

# 3. Detailed output + the per-second CSV for the best setting.
print()
print(render_report(best))
csv_path = write_throughput_csv(best, workdir / "instant_throughput.csv")
print(f"\nper-second instant throughput written to {csv_path}")
