#!/usr/bin/env python
"""Quickstart: build an FDW, run it locally and on the simulated OSG.

This walks the whole public API in one sitting:

1. write + read the FDW configuration file,
2. execute the workflow on this machine with the *real* seismic kernels
   (MudPy's native sequential behaviour),
3. run the identical workload as a DAGMan on the simulated OSPool,
4. parse the HTCondor-style user log with the monitoring system and
   print the report the FDW's statistics scripts produce.

Runs in a few seconds; no external services required.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import FdwConfig, LocalRunner, run_fdw_batch
from repro.core.monitor import DagmanStats
from repro.units import format_duration, to_hours

workdir = Path(tempfile.mkdtemp(prefix="fdw_quickstart_"))

# 1. The configuration file users edit ("editing a configuration file
#    for simulation parameters", paper section 3).
config = FdwConfig(
    n_waveforms=16,  # tiny demo catalog
    n_stations=8,  # subset of the Chilean network
    mesh=(10, 6),
    chunk_a=4,
    chunk_c=2,
    name="quickstart",
    seed=7,
)
config_path = config.write(workdir / "fdw.cfg")
config = FdwConfig.read(config_path)
print(f"configuration written to {config_path}")

# 2. Single-machine execution with the real kernels.
local = LocalRunner().run(config, archive_dir=workdir / "products")
print(
    f"local run: {local.n_waveform_sets} waveform sets in "
    f"{local.total_seconds:.2f}s "
    f"(phases: {', '.join(f'{k}={v:.2f}s' for k, v in local.phase_seconds.items())})"
)
biggest = max(local.pgd_by_rupture.items(), key=lambda kv: kv[1])
print(f"largest peak ground displacement: {biggest[1]:.3f} m in {biggest[0]}")

# 3. The same workload as a DAGMan on the simulated OSPool.
result = run_fdw_batch(config, seed=7)
summary = result.metrics.dagmans[config.name]
print(
    f"OSG run: {summary.n_jobs} jobs, simulated runtime "
    f"{format_duration(summary.runtime_s)} "
    f"({to_hours(summary.runtime_s):.2f} h), "
    f"total throughput {summary.throughput_jpm:.2f} jobs/min"
)

# 4. Monitoring from the HTCondor-style log alone.
stats = DagmanStats.from_log_text(result.user_logs[config.name])
print()
print(stats.report(config.name))
