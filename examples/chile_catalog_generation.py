#!/usr/bin/env python
"""Generate and validate a Chilean rupture + GNSS waveform catalog.

This is the workload the paper's introduction motivates: synthetic
large-earthquake (Mw 7.5+) data for training earthquake-early-warning
models. It exercises the real seismic kernels end to end:

* build the synthetic Chilean megathrust and GNSS network,
* compute the recyclable distance matrices and save the ``.npy`` pair,
* generate a stochastic rupture catalog with moment-closed slip,
* compute the Green's function bank and synthesize 3-component
  displacement waveforms,
* validate the products against physics invariants and fit the
  PGD magnitude/distance scaling law (Melgar et al. style),
* archive everything with labels, MudPy-style.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.seismo import (
    DistanceMatrices,
    FakeQuakes,
    FakeQuakesParameters,
)
from repro.seismo.mudpy_io import ProductArchive, write_rupt
from repro.seismo.validation import pgd_regression, validate_waveform_set

workdir = Path(tempfile.mkdtemp(prefix="fdw_chile_"))
N_EVENTS = 12

params = FakeQuakesParameters(
    n_ruptures=N_EVENTS,
    n_stations=16,
    mw_range=(7.6, 9.1),
    mesh=(16, 8),
    seed=2014,  # the Iquique year
)
fq = FakeQuakes.from_parameters(params)
print(f"fault: {fq.geometry.name}, {fq.geometry.n_subfaults} subfaults, "
      f"{fq.geometry.total_area_km2:,.0f} km^2")
print(f"network: {fq.network.name}, {len(fq.network)} stations")

# Phase A bootstrap: build and persist the recyclable matrices, then
# prove recycling works by reloading them.
distances = fq.phase_a_distances()
strike_npy, dip_npy = distances.save(workdir, prefix="chile")
recycled = DistanceMatrices.load(workdir, prefix="chile")
fq.phase_a_distances(recycled=recycled)
print(f"distance matrices: {strike_npy.name}, {dip_npy.name} "
      f"({distances.n_subfaults}x{distances.n_subfaults})")

# Phase A: the rupture catalog.
ruptures = fq.phase_a_ruptures()
mags = np.array([r.actual_mw for r in ruptures])
print(f"catalog: {len(ruptures)} ruptures, Mw {mags.min():.2f}-{mags.max():.2f}, "
      f"peak slip up to {max(r.peak_slip_m for r in ruptures):.1f} m")

# Phase B and C.
bank = fq.phase_b_greens_functions()
print(f"GF bank: {bank.n_stations} stations x {bank.n_subfaults} subfaults")
waveform_sets = fq.phase_c_waveforms(ruptures)

# Validation battery per product.
failures = 0
for ws, rupture in zip(waveform_sets, ruptures):
    report = validate_waveform_set(ws, rupture, fq.geometry)
    if not report["passed"]:
        failures += 1
print(f"validation: {len(waveform_sets) - failures}/{len(waveform_sets)} products pass "
      f"(moment closure + static-tail checks)")

# PGD scaling regression: log10 PGD = a + b*Mw + c*Mw*log10 R.
fit = pgd_regression(waveform_sets, ruptures, fq.geometry, fq.network)
print(
    f"PGD scaling fit over {fit.n_points} observations: "
    f"a={fit.a:.2f}, b={fit.b:.2f} (>0: grows with Mw), "
    f"c={fit.c:.2f} (<0: decays with distance), sd={fit.residual_std:.2f}"
)

# Archive products with labels (what FDW does on OSG storage).
archive = ProductArchive(workdir / "archive", name="chile_catalog")
for rupture, ws in zip(ruptures, waveform_sets):
    rupt_tmp = workdir / f"{rupture.rupture_id}.rupt"
    write_rupt(rupture, fq.geometry, rupt_tmp)
    archive.add_file(rupt_tmp, "ruptures", rupture.rupture_id,
                     metadata={"mw": round(rupture.actual_mw, 3)}, move=True)
    ws_tmp = workdir / f"{ws.rupture_id}.npz"
    ws.save(ws_tmp)
    archive.add_file(ws_tmp, "waveforms", ws.rupture_id,
                     metadata={"mw": round(rupture.actual_mw, 3)}, move=True)

big_events = archive.find(kind="waveforms")
big_events = [e for e in big_events if e["metadata"]["mw"] >= 8.5]
print(f"archive: {archive.total_bytes() / 1e6:.1f} MB across "
      f"{len(archive.entries)} labeled files; "
      f"{len(big_events)} waveform sets from Mw>=8.5 events")
print(f"products under {archive.root}")
