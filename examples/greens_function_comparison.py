#!/usr/bin/env python
"""Compare the two Green's-function methods, Goldberg & Melgar style.

Goldberg & Melgar (2020) validated FakeQuakes products "in both
frequency and time domains". This study applies the same two-domain
comparison between our two static GF engines:

* the fast double-couple **point source** (default, what the FDW's
  Phase B computes at scale), and
* the finite-fault **Okada (1985)** solution (exact rectangular
  dislocations in a half-space).

Expectation: close agreement at far-field stations, growing divergence
near the fault where finite-fault geometry matters — quantifying where
the cheap approximation is trustworthy.
"""

from __future__ import annotations

import numpy as np

from repro.reporting import render_table
from repro.seismo import (
    Station,
    StationNetwork,
    build_chile_slab,
    compute_gf_bank,
    compute_okada_gf_bank,
)
from repro.seismo.distance import DistanceMatrices
from repro.seismo.ruptures import RuptureGenerator
from repro.seismo.spectral import compare_waveform_sets, spectral_falloff
from repro.seismo.waveforms import WaveformSynthesizer

geometry = build_chile_slab(n_strike=14, n_dip=8)

# A transect of stations at increasing distance from the trench.
stations = StationNetwork(
    [
        Station("NEAR", -71.9, -30.0),   # near the shallow fault edge
        Station("CST1", -71.3, -30.0),   # coastal
        Station("INL1", -70.3, -30.0),   # inland ~200 km
        Station("FAR1", -68.5, -30.0),   # back-arc ~400 km
        Station("FAR2", -66.0, -30.0),   # craton ~650 km
    ],
    name="transect",
)

print("computing both GF banks...")
point_bank = compute_gf_bank(geometry, stations)
okada_bank = compute_okada_gf_bank(geometry, stations)

generator = RuptureGenerator(
    geometry, distances=DistanceMatrices.from_geometry(geometry)
)
rupture = generator.generate(np.random.default_rng(8), "compare.000000", target_mw=8.6)
print(f"scenario: Mw {rupture.actual_mw:.2f}, {rupture.n_subfaults} subfaults, "
      f"peak slip {rupture.peak_slip_m:.1f} m")

duration = 400.0
point_ws = WaveformSynthesizer(point_bank, duration_s=duration).synthesize(rupture)
okada_ws = WaveformSynthesizer(okada_bank, duration_s=duration).synthesize(rupture)

comparison = compare_waveform_sets(point_ws, okada_ws)
rows = []
for i, name in enumerate(stations.names):
    pgd_point = float(point_ws.pgd_m()[i])
    pgd_okada = float(okada_ws.pgd_m()[i])
    rows.append(
        [
            name,
            pgd_point,
            pgd_okada,
            float(comparison.time_rms_m[i]),
            float(comparison.spectral_log_misfit[i]),
        ]
    )
print()
print(render_table(
    ["station", "pgd_point_m", "pgd_okada_m", "time_rms_m", "spec_misfit_log10"],
    rows,
    precision=4,
))

# Relative disagreement shrinks with distance.
rel = comparison.time_rms_m / np.maximum(point_ws.pgd_m(), 1e-9)
print()
print("relative time-domain misfit along the transect:",
      "  ".join(f"{name}={value:.0%}" for name, value in zip(stations.names, rel)))
print("-> the point-source Phase B is adequate beyond the coast; near-fault")
print("   studies should switch FakeQuakesParameters(gf_method='okada').")

# Both engines produce physically low-frequency-dominated records.
best = stations.names[int(np.argmax(point_ws.pgd_m()))]
print(f"\nspectral falloff at {best}: point "
      f"{spectral_falloff(point_ws, best):.3f}, okada "
      f"{spectral_falloff(okada_ws, best):.3f} (<1 = displacement-like)")
