#!/usr/bin/env python
"""Train and evaluate an EEW magnitude estimator on FDW products.

The paper's whole motivation in one script: synthetic large-earthquake
catalogs exist to train earthquake-early-warning models (Lin et al.
2021). Here we

1. generate a Chilean Mw 7.6-9.1 catalog with the real kernels,
2. fit the PGD scaling law (the operational GNSS EEW algorithm) on a
   training split,
3. estimate magnitudes of held-out events from their *evolving* peak
   ground displacement — what a warning system sees in real time,
4. report accuracy and time-to-stable-estimate, and show one event's
   estimate sharpening second by second.
"""

from __future__ import annotations

import numpy as np

from repro.eew import PgdMagnitudeEstimator, train_test_evaluate
from repro.eew.features import detection_times
from repro.seismo import FakeQuakes, FakeQuakesParameters
from repro.seismo.validation import pgd_regression

params = FakeQuakesParameters(
    n_ruptures=24,
    n_stations=14,
    mw_range=(7.6, 9.1),
    mesh=(16, 8),
    seed=2021,  # Lin et al.'s year
)
fq = FakeQuakes.from_parameters(params)
print(f"generating {params.n_ruptures}-event catalog on {fq.geometry.name} "
      f"({len(fq.network)} stations)...")
waveform_sets = fq.run_sequential()
ruptures = fq.phase_a_ruptures()

# Train/test evaluation.
evaluation = train_test_evaluate(fq, ruptures, waveform_sets, train_fraction=0.7)
print()
print(evaluation.report())

# Real-time view of the largest held-out event.
n_train = int(round(0.7 * len(ruptures)))
test_pairs = list(zip(ruptures[n_train:], waveform_sets[n_train:]))
rupture, ws = max(test_pairs, key=lambda pair: pair[0].actual_mw)

fit = pgd_regression(
    waveform_sets[:n_train], ruptures[:n_train], fq.geometry, fq.network,
    min_pgd_m=1e-4,
)
estimator = PgdMagnitudeEstimator.from_fit(fit, min_pgd_m=1e-3)
evolving = estimator.evolving_estimate(ws, rupture, fq.geometry, fq.network)

first_trigger = float(np.min(detection_times(ws, threshold_m=1e-3)))
print()
print(f"largest test event: {rupture.rupture_id}, true Mw {rupture.actual_mw:.2f}, "
      f"source duration {rupture.duration_s:.0f} s")
print(f"first station trigger at {first_trigger:.0f} s after origin")
print(f"{'t (s)':>6} {'Mw estimate':>12} {'error':>7}")
for t in (30, 60, 90, 120, 180, 240, ws.n_samples - 1):
    if t >= evolving.size:
        break
    value = evolving[t]
    if np.isfinite(value):
        print(f"{t:>6} {value:12.2f} {value - rupture.actual_mw:+7.2f}")
    else:
        print(f"{t:>6} {'(no data)':>12} {'-':>7}")

converged = estimator.time_to_within(evolving, rupture.actual_mw, 0.3, ws.dt_s)
print(f"\nestimate stable within +/-0.3 Mw from t = {converged:.0f} s — "
      "minutes before shaking ends at distant population centers, which "
      "is the early-warning value of these synthetic catalogs.")
