"""Crash-consistent checkpoints for local FDW runs.

The local analogue of a rescue DAG: :class:`RunCheckpoint` keeps a
per-chunk progress manifest inside the run's archive directory so an
interrupted :meth:`~repro.core.local.LocalRunner.run` can be re-invoked
with ``resume=True`` and skip every chunk whose products already landed
on disk. Because Phase A keys its RNG per catalog *index* and Phase C is
a pure function of the rupture chunk, regenerating only the missing
chunks yields byte-identical products to an uninterrupted run.

Crash consistency comes from two rules:

* every write is *temp-then-rename* (``os.replace`` after an fsync), so
  a file either has its complete new content or its old one;
* products are written **before** the manifest records their chunk as
  done, so a crash between the two merely re-executes one chunk on
  resume (idempotent — the rewrite replaces identical bytes).

Integrity (PR 8): the manifest and every chunk file carry a sha256
sidecar (:mod:`repro.integrity`) written with the same atomicity.
Resume verifies before trusting: a tampered/truncated manifest is
quarantined into ``<archive_dir>/_quarantine/`` and the run starts
fresh; a damaged chunk file is quarantined and its chunk silently
re-executed (:meth:`RunCheckpoint.try_load_a_chunk` /
:meth:`~RunCheckpoint.try_load_c_chunk`) — corruption degrades to
recompute, never a wrong archive.

Layout under ``<archive_dir>/_checkpoint/``::

    manifest.json       # version, config digest, chunk counts, done sets
    manifest.json.sha256
    A_00000.pkl         # pickled rupture list of one Phase-A chunk
    A_00000.pkl.sha256
    C_00000.pkl         # (rupture_id, pgd, mw, filename) rows of one C chunk
    waveforms/<id>.npz  # per-rupture waveform products of done C chunks

The directory is removed by :meth:`RunCheckpoint.finalize` once the
archive has been assembled.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path

from repro.errors import CheckpointError, IntegrityError
from repro.core.config import FdwConfig
from repro.integrity import (
    quarantine_artifact,
    read_verified,
    sha256_bytes,
    write_digest,
)
from repro.seismo.mudpy_io import ProductArchive
from repro.seismo.ruptures import Rupture

__all__ = ["RunCheckpoint", "config_digest", "atomic_write_bytes"]

#: Rows of one Phase-C chunk: (rupture_id, max PGD, target Mw, filename).
CRow = tuple[str, float, float, "str | None"]


def config_digest(config: FdwConfig) -> str:
    """Content digest of a configuration.

    ``FdwConfig`` is a frozen dataclass, so its ``repr`` enumerates every
    field deterministically; hashing it pins a checkpoint to the exact
    configuration that produced it.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file-then-rename.

    The temp file lives in the same directory (``os.replace`` must not
    cross filesystems) and is fsynced before the rename, so ``path``
    never exposes a torn write.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class RunCheckpoint:
    """Chunk-granular progress manifest for one local run.

    Parameters
    ----------
    archive_dir:
        The run's archive directory; the checkpoint lives in its
        ``_checkpoint/`` subdirectory.
    config:
        The run's configuration; its digest must match on resume.
    n_a_chunks, n_c_chunks:
        The run's chunk plan; must match on resume (a chunk-size change
        would misalign the done sets).
    resume:
        ``True`` loads an existing manifest (validating it); ``False``
        discards any stale checkpoint and starts fresh.
    """

    DIRNAME = "_checkpoint"
    QUARANTINE_DIRNAME = "_quarantine"
    VERSION = 1

    def __init__(
        self,
        archive_dir: str | Path,
        config: FdwConfig,
        n_a_chunks: int,
        n_c_chunks: int,
        resume: bool = False,
    ) -> None:
        self.archive_dir = Path(archive_dir)
        self.dir = self.archive_dir / self.DIRNAME
        self.manifest_path = self.dir / "manifest.json"
        self.waveforms_dir = self.dir / "waveforms"
        self.quarantine_dir = self.archive_dir / self.QUARANTINE_DIRNAME
        self.digest = config_digest(config)
        self.n_chunks = {"A": n_a_chunks, "C": n_c_chunks}
        self.done: dict[str, set[int]] = {"A": set(), "C": set()}
        #: Paths of quarantined checkpoint artifacts, in order.
        self.quarantined: list[Path] = []
        if resume and self.manifest_path.exists() and self._try_load():
            return
        if self.dir.exists():
            shutil.rmtree(self.dir)
        self.waveforms_dir.mkdir(parents=True)
        self._flush()

    # -- manifest ----------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantined.append(
            quarantine_artifact(
                path, quarantine_dir=self.quarantine_dir, reason=reason
            )
        )

    def _try_load(self) -> bool:
        """Verified manifest load for a resume.

        Returns ``False`` — after quarantining the damaged manifest —
        when the manifest fails its digest check or is unparseable, so
        the resume degrades to a fresh run instead of crashing. A
        *valid* manifest that belongs to a different configuration or
        chunk plan still raises :class:`CheckpointError`: that is a
        user mistake, not corruption.
        """
        try:
            manifest = json.loads(
                read_verified(self.manifest_path).decode("utf-8")
            )
        except (IntegrityError, ValueError) as exc:
            self._quarantine(
                self.manifest_path, f"unreadable checkpoint manifest: {exc}"
            )
            return False
        self._validate(manifest)
        return True

    def _validate(self, manifest: dict) -> None:
        if manifest.get("version") != self.VERSION:
            raise CheckpointError(
                f"checkpoint version {manifest.get('version')} != {self.VERSION}"
            )
        if manifest.get("config_digest") != self.digest:
            raise CheckpointError(
                "checkpoint belongs to a different configuration "
                f"(digest {manifest.get('config_digest')!r} != {self.digest!r})"
            )
        for phase in ("A", "C"):
            if manifest.get(f"n_{phase.lower()}_chunks") != self.n_chunks[phase]:
                raise CheckpointError(
                    f"checkpoint chunk plan changed for phase {phase}: "
                    f"{manifest.get(f'n_{phase.lower()}_chunks')} != {self.n_chunks[phase]}"
                )
            done = set(manifest.get(f"done_{phase.lower()}", []))
            bad = [i for i in done if not (0 <= i < self.n_chunks[phase])]
            if bad:
                raise CheckpointError(f"done indices out of range for {phase}: {bad}")
            self.done[phase] = done
        self.waveforms_dir.mkdir(parents=True, exist_ok=True)

    def _write_artifact(self, path: Path, data: bytes) -> None:
        """Atomic write plus the sha256 sidecar resume will verify."""
        atomic_write_bytes(path, data)
        write_digest(path, sha256_bytes(data))

    def _flush(self) -> None:
        manifest = {
            "version": self.VERSION,
            "config_digest": self.digest,
            "n_a_chunks": self.n_chunks["A"],
            "n_c_chunks": self.n_chunks["C"],
            "done_a": sorted(self.done["A"]),
            "done_c": sorted(self.done["C"]),
        }
        self._write_artifact(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )

    # -- queries -----------------------------------------------------------

    def is_done(self, phase: str, index: int) -> bool:
        """Whether one chunk's products are durably recorded."""
        return index in self.done[phase]

    def n_done(self, phase: str) -> int:
        """Completed chunks of one phase."""
        return len(self.done[phase])

    def _chunk_path(self, phase: str, index: int) -> Path:
        return self.dir / f"{phase}_{index:05d}.pkl"

    # -- Phase A -----------------------------------------------------------

    def store_a_chunk(self, index: int, ruptures: list[Rupture]) -> None:
        """Persist one Phase-A chunk, then mark it done."""
        self._write_artifact(
            self._chunk_path("A", index),
            pickle.dumps(ruptures, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.done["A"].add(index)
        self._flush()

    def _read_chunk(self, phase: str, index: int) -> object:
        """Digest-verified unpickle of one chunk file.

        Every corruption mode — sidecar mismatch, truncation, a pickle
        stream that no longer parses — surfaces as one typed
        :class:`~repro.errors.IntegrityError`.
        """
        path = self._chunk_path(phase, index)
        data = read_verified(path)
        try:
            return pickle.loads(data)
        except Exception as exc:  # pickle's failure surface is open-ended
            raise IntegrityError(
                f"corrupt checkpoint chunk {path.name}: {exc}"
            ) from exc

    def _discard_chunk(self, phase: str, index: int, exc: IntegrityError) -> None:
        """Quarantine a damaged chunk and un-mark it done (→ re-execute)."""
        self._quarantine(self._chunk_path(phase, index), str(exc))
        self.done[phase].discard(index)
        self._flush()

    def load_a_chunk(self, index: int) -> list[Rupture]:
        """Reload one completed Phase-A chunk (digest-verified)."""
        if not self.is_done("A", index):
            raise CheckpointError(f"A chunk {index} is not checkpointed")
        return self._read_chunk("A", index)  # type: ignore[return-value]

    def try_load_a_chunk(self, index: int) -> list[Rupture] | None:
        """Degraded-mode reload: ``None`` (after quarantining, with the
        chunk un-marked done) when the checkpointed chunk is corrupt."""
        try:
            return self.load_a_chunk(index)
        except IntegrityError as exc:
            self._discard_chunk("A", index, exc)
            return None

    # -- Phase C -----------------------------------------------------------

    def store_c_chunk(self, index: int, rows: list[CRow]) -> None:
        """Persist one Phase-C chunk's rows, then mark it done.

        Call only after the chunk's waveform ``.npz`` products are on
        disk in :attr:`waveforms_dir` (product-before-manifest ordering).
        Paths in ``rows`` are normalized to bare filenames so the
        checkpoint stays relocatable.
        """
        normalized = [
            (rid, pgd, mw, Path(path).name if path is not None else None)
            for rid, pgd, mw, path in rows
        ]
        self._write_artifact(
            self._chunk_path("C", index),
            pickle.dumps(normalized, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.done["C"].add(index)
        self._flush()

    def load_c_chunk(self, index: int) -> list[CRow]:
        """Reload one completed Phase-C chunk (absolute waveform paths)."""
        if not self.is_done("C", index):
            raise CheckpointError(f"C chunk {index} is not checkpointed")
        rows = self._read_chunk("C", index)
        out: list[CRow] = []
        for rid, pgd, mw, name in rows:  # type: ignore[union-attr]
            path = str(self.waveforms_dir / name) if name is not None else None
            if path is not None and not Path(path).exists():
                raise CheckpointError(
                    f"C chunk {index}: checkpointed waveform missing: {path}"
                )
            out.append((rid, pgd, mw, path))
        return out

    def try_load_c_chunk(self, index: int) -> list[CRow] | None:
        """Degraded-mode reload of a Phase-C chunk (see
        :meth:`try_load_a_chunk`)."""
        try:
            return self.load_c_chunk(index)
        except IntegrityError as exc:
            self._discard_chunk("C", index, exc)
            return None

    # -- archive assembly --------------------------------------------------

    def reset_archive(self) -> None:
        """Remove a partial archive so reassembly is idempotent.

        Only the archive's own manifest and product subdirectories are
        touched; the checkpoint directory survives.
        """
        for kind in ("waveforms", "ruptures"):
            shutil.rmtree(self.archive_dir / kind, ignore_errors=True)
        manifest = self.archive_dir / ProductArchive.MANIFEST
        if manifest.exists():
            manifest.unlink()

    def finalize(self) -> None:
        """Delete the checkpoint after the archive is fully assembled."""
        shutil.rmtree(self.dir, ignore_errors=True)
