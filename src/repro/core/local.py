"""Single-machine FDW execution (the paper's AWS control).

The paper's baseline runs "an automated version of MudPy's FakeQuakes on
a single host" — an AWS instance with 4 CPUs. :class:`LocalRunner`
plays that role two ways:

* :meth:`LocalRunner.run` executes the *real* seismic kernels of
  :mod:`repro.seismo` through the same phase/chunk structure the OSG
  jobs use, sequentially or with a process pool, and returns the actual
  products. This is feasible at example/test scale.
* :func:`estimate_sequential_runtime_s` predicts what the full-scale
  workload would take on the single host by summing the calibrated
  per-job costs — this is the control number the
  ``bench_single_machine_vs_osg`` benchmark compares against (the
  56.8 % headline).

The pool path shares one Green's-function bank across all workers
through :mod:`repro.core.gfcache`: the parent computes (or cache-loads)
the bank once, publishes its arrays into ``multiprocessing``
shared-memory segments, and ships workers only a small picklable
:class:`~repro.core.gfcache.SharedBankHandle` plus the pre-generated
rupture chunk. Workers never rebuild geometry, distances, ruptures, or
the bank — the in-process equivalent of every Phase-C job pulling the
Phase-B archive from the Stash/OSDF cache instead of recomputing it.
"""

from __future__ import annotations

import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import resource_tracker
from pathlib import Path

from repro import obs
from repro.errors import ConfigError
from repro.resilience import RetryPolicy, retry_call
from repro.core.checkpoint import RunCheckpoint
from repro.core.config import FdwConfig
from repro.core.gfcache import (
    GFCache,
    SharedBankHandle,
    attach_shared_bank,
    gf_bank_key,
    publish_shared_bank,
)
from repro.core.phases import chunk_bounds, plan_phases
from repro.osg.runtimes import RuntimeModel
from repro.rng import RngFactory
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters
from repro.seismo.klcache import KLCache
from repro.seismo.mudpy_io import ProductArchive, write_rupt
from repro.seismo.ruptures import Rupture
from repro.seismo.waveforms import GnssNoiseModel, WaveformSynthesizer

__all__ = ["LocalRunResult", "LocalRunner", "estimate_sequential_runtime_s"]


@dataclass(frozen=True)
class LocalRunResult:
    """Products and timings of one local FDW run.

    ``chunks_executed``/``chunks_skipped`` count A/C chunks actually
    computed vs restored from a checkpoint — the manifest accounting
    that lets recovery tests assert no completed work was redone.
    """

    config: FdwConfig
    n_waveform_sets: int
    phase_seconds: dict[str, float]
    archive_root: Path | None = None
    pgd_by_rupture: dict[str, float] = field(default_factory=dict)
    chunks_executed: dict[str, int] = field(default_factory=dict)
    chunks_skipped: dict[str, int] = field(default_factory=dict)
    #: Chunk re-attempts absorbed by the retry wrapper, per phase.
    chunk_retries: dict[str, int] = field(default_factory=dict)
    #: Deterministic backoff seconds those retries accounted (not slept).
    retry_backoff_s: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Wall time across all phases."""
        return sum(self.phase_seconds.values())


def _fakequakes_for(
    config: FdwConfig,
    gf_cache: GFCache | None = None,
    kl_cache: KLCache | None = None,
) -> FakeQuakes:
    params = FakeQuakesParameters(
        n_ruptures=config.n_waveforms,
        n_stations=config.n_stations,
        mw_range=config.mw_range,
        mesh=config.mesh,
        gf_dtype=config.gf_dtype,
        seed=config.seed,
    )
    return FakeQuakes.from_parameters(params, gf_cache=gf_cache, kl_cache=kl_cache)


def _run_c_chunk(args: tuple[FdwConfig, int, int]) -> list[float]:
    """Legacy worker: rebuild everything, synthesize one C chunk.

    This is the seed pool path — every worker re-derives geometry,
    distances, the rupture chunk, *and the full GF bank* per chunk. Kept
    only as the "before" arm of ``benchmarks/bench_kernels.py``;
    :class:`LocalRunner` now dispatches :func:`_synthesize_chunk_shared`
    instead.
    """
    config, start, count = args
    fq = _fakequakes_for(config)
    fq.phase_a_distances()
    ruptures = fq.phase_a_ruptures(start, count)
    sets = fq.phase_c_waveforms(ruptures)
    return [float(ws.pgd_m().max()) for ws in sets]


#: Pool task for one Phase-A chunk: (parameters, start, count, K-L dir).
_AChunkTask = tuple[FakeQuakesParameters, int, int, "str | None"]

#: Worker-side Phase-A session cache: (parameters, K-L dir) -> FakeQuakes.
#: Kept for the life of the worker process so geometry, distance
#: matrices, the rupture generator and its K-L basis cache are built
#: once per worker, not once per chunk (the Phase-A analog of the
#: cached shared-bank attachment below).
_A_SESSIONS: dict[tuple[FakeQuakesParameters, str | None], FakeQuakes] = {}


def _run_a_chunk(task: _AChunkTask) -> list[Rupture]:
    """Worker: generate one Phase-A rupture chunk.

    Safe to fan out because :meth:`FakeQuakes.phase_a_ruptures` derives
    an independent RNG from each rupture's *catalog index* — chunk
    [start, start+count) produces the identical ruptures in any process,
    so the pooled catalog is bit-identical to the sequential one. Each
    worker keeps its session for the life of the process, with an
    exact-mode K-L cache over ``kl_dir`` (the runner's disk store) —
    a basis eigendecomposed by *any* worker is a disk hit for every
    other worker and every later run of the same configuration.
    """
    params, start, count, kl_dir = task
    fq = _A_SESSIONS.get((params, kl_dir))
    if fq is None:
        fq = FakeQuakes.from_parameters(params, kl_cache=KLCache(cache_dir=kl_dir))
        fq.phase_a_distances()
        _A_SESSIONS[(params, kl_dir)] = fq
    return fq.phase_a_ruptures(start, count)


#: Pool task: (shared-bank handle, parameters, rupture chunk, spool dir).
_ChunkTask = tuple[SharedBankHandle, FakeQuakesParameters, list[Rupture], str | None]


def _synthesize_chunk_shared(
    task: _ChunkTask,
) -> list[tuple[str, float, float, str | None]]:
    """Worker: synthesize one C chunk against the shared GF bank.

    Attaches the published bank (idempotent per worker process — the
    segments are mapped once and reused for every subsequent chunk),
    runs the batched synthesis kernel, and spools each product to
    ``spool_dir`` when the run archives. Returns one row per rupture:
    ``(rupture_id, max PGD, target Mw, spooled path or None)``.
    """
    handle, params, ruptures, spool_dir = task
    bank = attach_shared_bank(handle)
    noise = GnssNoiseModel() if params.with_noise else None
    synth = WaveformSynthesizer(bank, dt_s=params.dt_s, noise=noise)
    rngs = (
        [RngFactory(params.seed).generator("noise", r.rupture_id) for r in ruptures]
        if params.with_noise
        else None
    )
    rows: list[tuple[str, float, float, str | None]] = []
    for ws in synth.synthesize_batch(ruptures, rngs=rngs):
        path: str | None = None
        if spool_dir is not None:
            path = str(Path(spool_dir) / f"{ws.rupture_id}.npz")
            ws.save(path)
        rows.append(
            (
                ws.rupture_id,
                float(ws.pgd_m().max()),
                float(ws.metadata.get("target_mw", 0.0)),
                path,
            )
        )
    return rows


def _release_state(state: dict) -> None:
    """Tear down a runner's pool and unlink its shared-memory segments."""
    pool = state.get("pool")
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
        state["pool"] = None
    for shm in state.get("segments", ()):
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - double free
            pass
    state["segments"] = []


class LocalRunner:
    """Run an FDW configuration on this machine with real kernels.

    Parameters
    ----------
    n_workers:
        1 (default) mirrors MudPy's native sequential behaviour; >1
        fans A chunks out over a persistent process pool (each worker
        caching its Phase-A session) and C chunks over the same pool
        reading one shared-memory copy of the GF bank (see module
        docstring). Both pooled phases are bit-identical to sequential.
    gf_cache:
        The :class:`~repro.core.gfcache.GFCache` Phase B routes
        through. ``None`` builds a private cache (which still honours
        ``REPRO_GF_CACHE_DIR``); pass a shared instance to reuse banks
        across runners.
    kl_cache:
        The :class:`~repro.seismo.klcache.KLCache` the *parent-side*
        Phase A routes through (sequential runs and the single-chunk
        fall-through). ``None`` builds a private exact-mode cache
        (which still honours ``REPRO_KL_CACHE_DIR``). Pool workers
        always build their own per-process exact-mode caches.

    The pool and the published shared-memory segments persist across
    :meth:`run` calls — repeated runs of the same configuration skip
    Phase B entirely and re-dispatch against the already-published
    bank. Call :meth:`close` (or use the runner as a context manager)
    to release them; a finalizer also releases on garbage collection.
    """

    def __init__(
        self,
        n_workers: int = 1,
        gf_cache: GFCache | None = None,
        kl_cache: KLCache | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.gf_cache = gf_cache if gf_cache is not None else GFCache()
        self.kl_cache = kl_cache if kl_cache is not None else KLCache()
        #: Backoff applied to retryable chunk failures (injected flakes);
        #: schedules derive from the run config's seed, so they are as
        #: reproducible as the catalog itself.
        self.retry_policy = retry_policy or RetryPolicy()
        self._published: dict[str, SharedBankHandle] = {}
        self._state: dict = {"pool": None, "segments": []}
        self._finalizer = weakref.finalize(self, _release_state, self._state)

    # -- pool / shared-bank lifecycle ----------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._state["pool"] is None:
            # Start the shared-memory resource tracker before forking:
            # workers forked without one lazily spawn their own, which
            # double-books the bank segments and warns at worker exit.
            resource_tracker.ensure_running()
            self._state["pool"] = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._state["pool"]

    def _shared_handle(self, key: str, fq: FakeQuakes) -> SharedBankHandle:
        """Publish the bank for ``key`` once; reuse the handle afterwards."""
        handle = self._published.get(key)
        if handle is None:
            handle, segments = publish_shared_bank(fq.phase_b_greens_functions(), key)
            self._published[key] = handle
            self._state["segments"].extend(segments)
        return handle

    def close(self) -> None:
        """Shut the pool down and unlink the shared-memory segments."""
        self._published.clear()
        self._finalizer()

    def __enter__(self) -> "LocalRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ------------------------------------------------------------

    def run(
        self,
        config: FdwConfig,
        archive_dir: str | Path | None = None,
        *,
        checkpoint: bool = False,
        resume: bool = False,
        faults: "object | None" = None,
    ) -> LocalRunResult:
        """Execute all three phases; optionally archive the products.

        With ``checkpoint=True`` (implied by ``resume=True``) the run
        keeps a chunk-granular :class:`~repro.core.checkpoint.RunCheckpoint`
        under ``archive_dir`` and assembles the product archive only once
        every chunk is done. ``resume=True`` reloads a previous run's
        checkpoint and skips its completed chunks; because Phase A keys
        its RNG per catalog index and Phase C is a pure function of the
        rupture chunk, a resumed run's archive is byte-identical to an
        uninterrupted run's. ``faults`` takes a
        :class:`~repro.faults.FaultPlan` whose ``chunk_completed`` hook
        is called after each executed (and checkpointed) chunk — the
        crash-injection point for recovery tests — and whose
        ``chunk_attempt`` hook fires before each attempt: retryable
        :class:`~repro.faults.TransientFault` flakes are absorbed by
        the runner's :attr:`retry_policy` (re-executing just the flaked
        chunk, with seed-derived backoff accounted in the result), so a
        flaky run's archive is byte-identical to a clean run's. A
        checkpointed chunk that fails its integrity check on resume is
        quarantined and transparently re-executed.
        """
        if (checkpoint or resume) and archive_dir is None:
            raise ConfigError("checkpoint/resume requires an archive_dir")
        fq = _fakequakes_for(config, gf_cache=self.gf_cache, kl_cache=self.kl_cache)
        timings: dict[str, float] = {}
        executed = {"A": 0, "C": 0}
        skipped = {"A": 0, "C": 0}
        a_chunks = chunk_bounds(config.n_waveforms, config.chunk_a)
        c_chunks = chunk_bounds(config.n_waveforms, config.chunk_c)
        ckpt: RunCheckpoint | None = None
        if checkpoint or resume:
            ckpt = RunCheckpoint(
                Path(archive_dir),  # type: ignore[arg-type]
                config,
                n_a_chunks=len(a_chunks),
                n_c_chunks=len(c_chunks),
                resume=resume,
            )
        # Checkpointed runs assemble the archive only after every chunk
        # is durable, so a crash never leaves a partial manifest behind.
        archive = (
            ProductArchive(Path(archive_dir), name=config.name)
            if archive_dir is not None and ckpt is None
            else None
        )

        t0 = time.perf_counter()
        fq.phase_a_distances()
        timings["dist"] = time.perf_counter() - t0
        # Phase spans carry wall time; ``ts`` is the perf_counter origin
        # the tracer's default clock also uses, so runner spans line up
        # with any surrounding obs.span() blocks on the same timeline.
        obs.complete("phase:dist", ts=t0, dur=timings["dist"],
                     category="local", track="runner")

        retries = {"A": 0, "C": 0}
        backoff_s = [0.0]
        attempt_hook = (
            getattr(faults, "chunk_attempt", None) if faults is not None else None
        )

        def attempted(phase, index, fn, resubmit=None):
            """One chunk's execution, retry-wrapped when a fault plan
            can inject flakes. Without a plan the call is direct — the
            legacy path stays byte-for-byte untouched."""
            if attempt_hook is None:
                return fn()

            def once():
                attempt_hook(phase, index)
                return fn()

            def on_retry(_attempt, _exc, delay):
                retries[phase] += 1
                backoff_s[0] += delay
                if obs.enabled():
                    obs.counter_add(
                        "repro_local_chunk_retries_total", 1, {"phase": phase}
                    )
                    obs.counter_add(
                        "repro_local_retry_backoff_seconds_total", delay
                    )
                if resubmit is not None:
                    resubmit()

            outcome = retry_call(
                once,
                policy=self.retry_policy,
                seed=config.seed,
                keys=("chunk", phase, index),
                on_retry=on_retry,
            )
            return outcome.value

        t0 = time.perf_counter()
        chunks_a: list[list[Rupture]] = [[] for _ in a_chunks]
        pending_a: list[int] = []
        for i in range(len(a_chunks)):
            chunk = ckpt.try_load_a_chunk(i) if ckpt is not None and ckpt.is_done("A", i) else None
            if chunk is not None:
                chunks_a[i] = chunk
                skipped["A"] += 1
                obs.counter_add(
                    "repro_local_chunks_total", 1,
                    {"phase": "A", "outcome": "skipped"},
                )
            else:
                pending_a.append(i)

        def a_done(index: int, chunk: list[Rupture]) -> None:
            chunks_a[index] = chunk
            if ckpt is not None:
                ckpt.store_a_chunk(index, chunk)
            executed["A"] += 1
            obs.counter_add(
                "repro_local_chunks_total", 1,
                {"phase": "A", "outcome": "executed"},
            )
            if faults is not None:
                faults.chunk_completed("A")

        if self.n_workers == 1 or len(pending_a) <= 1:
            for i in pending_a:
                start, count = a_chunks[i]
                a_done(
                    i,
                    attempted(
                        "A", i, lambda s=start, c=count: fq.phase_a_ruptures(s, c)
                    ),
                )
        else:
            # Pooled Phase-A fan-out: per-index RNG keying makes chunks
            # process-independent, so the catalog is bit-identical to
            # the sequential loop above (ids, slip, kinematics). Workers
            # share the runner's disk K-L store when one is configured.
            pool = self._ensure_pool()
            kl_dir = (
                str(self.kl_cache.cache_dir)
                if self.kl_cache.cache_dir is not None
                else None
            )
            a_tasks: dict[int, _AChunkTask] = {
                i: (fq.params, *a_chunks[i], kl_dir) for i in pending_a
            }
            if attempt_hook is None:
                for i, chunk in zip(
                    pending_a, pool.map(_run_a_chunk, list(a_tasks.values()))
                ):
                    a_done(i, chunk)
            else:
                # Per-chunk futures so a flaked chunk can be resubmitted
                # alone while the rest of the fan-out keeps running.
                a_futs = {i: pool.submit(_run_a_chunk, a_tasks[i]) for i in pending_a}
                for i in pending_a:
                    a_done(
                        i,
                        attempted(
                            "A",
                            i,
                            lambda i=i: a_futs[i].result(),
                            resubmit=lambda i=i: a_futs.__setitem__(
                                i, pool.submit(_run_a_chunk, a_tasks[i])
                            ),
                        ),
                    )
        ruptures: list[Rupture] = [r for chunk in chunks_a for r in chunk]
        timings["A"] = time.perf_counter() - t0
        obs.complete("phase:A", ts=t0, dur=timings["A"],
                     category="local", track="runner",
                     args={"executed": executed["A"], "skipped": skipped["A"]})

        t0 = time.perf_counter()
        fq.phase_b_greens_functions()
        timings["B"] = time.perf_counter() - t0
        obs.complete("phase:B", ts=t0, dur=timings["B"],
                     category="local", track="runner")

        t0 = time.perf_counter()
        rows_by_chunk: list[list[tuple[str, float, float, "str | None"]]] = [
            [] for _ in c_chunks
        ]
        pending_c: list[int] = []
        for i in range(len(c_chunks)):
            c_rows = ckpt.try_load_c_chunk(i) if ckpt is not None and ckpt.is_done("C", i) else None
            if c_rows is not None:
                rows_by_chunk[i] = c_rows
                skipped["C"] += 1
                obs.counter_add(
                    "repro_local_chunks_total", 1,
                    {"phase": "C", "outcome": "skipped"},
                )
            else:
                pending_c.append(i)

        def c_done(index: int, rows: list[tuple[str, float, float, "str | None"]]) -> None:
            rows_by_chunk[index] = rows
            if ckpt is not None:
                ckpt.store_c_chunk(index, rows)
            executed["C"] += 1
            obs.counter_add(
                "repro_local_chunks_total", 1,
                {"phase": "C", "outcome": "executed"},
            )
            if faults is not None:
                faults.chunk_completed("C")

        if self.n_workers == 1:

            def run_c_chunk(start: int, count: int) -> list[tuple[str, float, float, "str | None"]]:
                sets = fq.phase_c_waveforms(ruptures[start : start + count])
                rows: list[tuple[str, float, float, "str | None"]] = []
                for ws in sets:
                    path: str | None = None
                    if ckpt is not None:
                        path = str(ckpt.waveforms_dir / f"{ws.rupture_id}.npz")
                        ws.save(path)
                    elif archive is not None:
                        tmp = archive.root / f"_tmp_{ws.rupture_id}.npz"
                        ws.save(tmp)
                        archive.add_file(
                            tmp,
                            kind="waveforms",
                            label=ws.rupture_id,
                            metadata={"mw": round(ws.metadata.get("target_mw", 0.0), 3)},
                            move=True,
                        )
                    rows.append(
                        (
                            ws.rupture_id,
                            float(ws.pgd_m().max()),
                            float(ws.metadata.get("target_mw", 0.0)),
                            path,
                        )
                    )
                return rows

            for i in pending_c:
                start, count = c_chunks[i]
                c_done(
                    i,
                    attempted(
                        "C", i, lambda s=start, c=count: run_c_chunk(s, c)
                    ),
                )
        else:
            key = gf_bank_key(
                fq.geometry,
                fq.network,
                gf_method=fq.params.gf_method,
                dtype=fq.params.gf_dtype,
            )
            handle = self._shared_handle(key, fq)
            spool: Path | None = None
            if ckpt is not None:
                spool = ckpt.waveforms_dir
            elif archive is not None:
                spool = archive.root / "_spool"
                spool.mkdir(parents=True, exist_ok=True)
            c_tasks: dict[int, _ChunkTask] = {
                i: (
                    handle,
                    fq.params,
                    ruptures[c_chunks[i][0] : c_chunks[i][0] + c_chunks[i][1]],
                    str(spool) if spool is not None else None,
                )
                for i in pending_c
            }
            pool = self._ensure_pool()
            if attempt_hook is None:
                chunk_results = zip(
                    pending_c, pool.map(_synthesize_chunk_shared, list(c_tasks.values()))
                )
            else:
                c_futs = {
                    i: pool.submit(_synthesize_chunk_shared, c_tasks[i])
                    for i in pending_c
                }
                chunk_results = (
                    (
                        i,
                        attempted(
                            "C",
                            i,
                            lambda i=i: c_futs[i].result(),
                            resubmit=lambda i=i: c_futs.__setitem__(
                                i, pool.submit(_synthesize_chunk_shared, c_tasks[i])
                            ),
                        ),
                    )
                    for i in pending_c
                )
            for i, chunk_rows in chunk_results:
                if archive is not None:
                    for rupture_id, pgd_max, target_mw, path in chunk_rows:
                        if path is not None:
                            # Workers spool; the parent owns the manifest (the
                            # archive index is not multiprocess-safe).
                            archive.add_file(
                                Path(path),
                                kind="waveforms",
                                label=rupture_id,
                                metadata={"mw": round(target_mw, 3)},
                                move=True,
                            )
                c_done(i, chunk_rows)
            if archive is not None and spool is not None:
                try:
                    spool.rmdir()
                except OSError:  # pragma: no cover - stray spool files
                    pass
        pgd: dict[str, float] = {}
        n_sets = 0
        for chunk_rows in rows_by_chunk:
            for rupture_id, pgd_max, _target_mw, _path in chunk_rows:
                pgd[rupture_id] = pgd_max
                n_sets += 1
        timings["C"] = time.perf_counter() - t0
        obs.complete("phase:C", ts=t0, dur=timings["C"],
                     category="local", track="runner",
                     args={"executed": executed["C"], "skipped": skipped["C"]})

        if ckpt is not None:
            # All chunks durable: rebuild the archive from the checkpoint
            # in canonical order (waveforms in catalog order, then
            # ruptures) so the manifest matches an uninterrupted run's
            # byte for byte, then retire the checkpoint.
            ckpt.reset_archive()
            archive = ProductArchive(Path(archive_dir), name=config.name)  # type: ignore[arg-type]
            for chunk_rows in rows_by_chunk:
                for rupture_id, _pgd_max, target_mw, path in chunk_rows:
                    if path is not None:
                        archive.add_file(
                            Path(path),
                            kind="waveforms",
                            label=rupture_id,
                            metadata={"mw": round(target_mw, 3)},
                            move=False,
                        )
        if archive is not None:
            for rupture in ruptures:
                tmp = archive.root / f"_tmp_{rupture.rupture_id}.rupt"
                write_rupt(rupture, fq.geometry, tmp)
                archive.add_file(
                    tmp,
                    kind="ruptures",
                    label=rupture.rupture_id,
                    metadata={"mw": round(rupture.actual_mw, 3)},
                    move=True,
                )
        if ckpt is not None:
            ckpt.finalize()

        return LocalRunResult(
            config=config,
            n_waveform_sets=n_sets,
            phase_seconds=timings,
            archive_root=archive.root if archive is not None else None,
            pgd_by_rupture=pgd,
            chunks_executed=dict(executed),
            chunks_skipped=dict(skipped),
            chunk_retries=dict(retries),
            retry_backoff_s=backoff_s[0],
        )


def estimate_sequential_runtime_s(
    config: FdwConfig,
    runtime: RuntimeModel | None = None,
    n_cpus: int = 4,
) -> float:
    """Predicted single-host runtime of the full workload in seconds.

    The control machine is the paper's AWS instance (4 Xeon 8175M CPUs)
    running "an automated version of MudPy's FakeQuakes". Two facts
    calibrate the estimate:

    * the paper measured that host's per-chunk costs when deriving the
      bursting constants — 287 s per rupture job's quantity (16
      ruptures) and 144 s per waveform job's quantity (2 waveforms at
      121 stations) — so per-item costs on the host are 287/16 s per
      rupture and 72 s per full-input waveform (scaled by station
      count);
    * MudPy natively incorporates MPI ("MudPy already incorporates MPI
      and has some parallelism", §2), so the sequential host spreads
      the phase work over its ``n_cpus`` cores.

    GF and distance-matrix costs use the OSG runtime model's means
    (those phases run once and are equally parallelized).
    """
    from repro.bursting.cloud import RUPTURE_CLOUD_SECONDS, WAVEFORM_CLOUD_SECONDS

    if n_cpus < 1:
        raise ConfigError(f"n_cpus must be >= 1, got {n_cpus}")
    n_stations = getattr(config, "n_stations", None)
    if n_stations is None or n_stations <= 0:
        raise ConfigError(
            f"config.n_stations must be > 0 to scale the per-waveform cost, "
            f"got {n_stations}"
        )
    runtime = runtime or RuntimeModel()
    per_rupture = RUPTURE_CLOUD_SECONDS / 16.0
    per_waveform = (WAVEFORM_CLOUD_SECONDS / 2.0) * (n_stations / 121.0)
    plan = plan_phases(config)
    total = config.n_waveforms * (per_rupture + per_waveform)
    total += runtime.mean_seconds(plan.b_job.payload)  # type: ignore[arg-type]
    total += runtime.dist_base_s  # the host builds the matrices once
    return total / n_cpus
