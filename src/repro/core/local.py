"""Single-machine FDW execution (the paper's AWS control).

The paper's baseline runs "an automated version of MudPy's FakeQuakes on
a single host" — an AWS instance with 4 CPUs. :class:`LocalRunner`
plays that role two ways:

* :meth:`LocalRunner.run` executes the *real* seismic kernels of
  :mod:`repro.seismo` through the same phase/chunk structure the OSG
  jobs use, sequentially or with a process pool, and returns the actual
  products. This is feasible at example/test scale.
* :func:`estimate_sequential_runtime_s` predicts what the full-scale
  workload would take on the single host by summing the calibrated
  per-job costs — this is the control number the
  ``bench_single_machine_vs_osg`` benchmark compares against (the
  56.8 % headline).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.core.config import FdwConfig
from repro.core.phases import chunk_bounds, plan_phases
from repro.osg.runtimes import RuntimeModel
from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters
from repro.seismo.mudpy_io import ProductArchive, write_rupt

__all__ = ["LocalRunResult", "LocalRunner", "estimate_sequential_runtime_s"]


@dataclass(frozen=True)
class LocalRunResult:
    """Products and timings of one local FDW run."""

    config: FdwConfig
    n_waveform_sets: int
    phase_seconds: dict[str, float]
    archive_root: Path | None = None
    pgd_by_rupture: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall time across all phases."""
        return sum(self.phase_seconds.values())


def _fakequakes_for(config: FdwConfig) -> FakeQuakes:
    params = FakeQuakesParameters(
        n_ruptures=config.n_waveforms,
        n_stations=config.n_stations,
        mw_range=config.mw_range,
        mesh=config.mesh,
        seed=config.seed,
    )
    return FakeQuakes.from_parameters(params)


def _run_c_chunk(args: tuple[FdwConfig, int, int]) -> list[float]:
    """Worker: synthesize one C chunk, return max PGDs (for the pool path)."""
    config, start, count = args
    fq = _fakequakes_for(config)
    fq.phase_a_distances()
    ruptures = fq.phase_a_ruptures(start, count)
    sets = fq.phase_c_waveforms(ruptures)
    return [float(ws.pgd_m().max()) for ws in sets]


class LocalRunner:
    """Run an FDW configuration on this machine with real kernels.

    Parameters
    ----------
    n_workers:
        1 (default) mirrors MudPy's native sequential behaviour; >1
        fans C chunks out over a process pool (each worker rebuilds the
        GF bank, so this pays off only for CPU-bound catalogs).
    """

    def __init__(self, n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers

    def run(
        self, config: FdwConfig, archive_dir: str | Path | None = None
    ) -> LocalRunResult:
        """Execute all three phases; optionally archive the products."""
        fq = _fakequakes_for(config)
        timings: dict[str, float] = {}
        archive = (
            ProductArchive(Path(archive_dir), name=config.name)
            if archive_dir is not None
            else None
        )

        t0 = time.perf_counter()
        fq.phase_a_distances()
        timings["dist"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        ruptures = []
        for start, count in chunk_bounds(config.n_waveforms, config.chunk_a):
            ruptures.extend(fq.phase_a_ruptures(start, count))
        timings["A"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fq.phase_b_greens_functions()
        timings["B"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        pgd: dict[str, float] = {}
        n_sets = 0
        if self.n_workers == 1:
            for start, count in chunk_bounds(config.n_waveforms, config.chunk_c):
                sets = fq.phase_c_waveforms(ruptures[start : start + count])
                for ws in sets:
                    pgd[ws.rupture_id] = float(ws.pgd_m().max())
                    n_sets += 1
                    if archive is not None:
                        tmp = archive.root / f"_tmp_{ws.rupture_id}.npz"
                        ws.save(tmp)
                        archive.add_file(
                            tmp,
                            kind="waveforms",
                            label=ws.rupture_id,
                            metadata={"mw": round(ws.metadata.get("target_mw", 0.0), 3)},
                            move=True,
                        )
        else:
            chunks = [
                (config, start, count)
                for start, count in chunk_bounds(config.n_waveforms, config.chunk_c)
            ]
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                for chunk, maxima in zip(chunks, pool.map(_run_c_chunk, chunks)):
                    _, start, _ = chunk
                    for offset, value in enumerate(maxima):
                        pgd[f"{fq.geometry.name}.{start + offset:06d}"] = value
                        n_sets += 1
        timings["C"] = time.perf_counter() - t0

        if archive is not None:
            for rupture in ruptures:
                tmp = archive.root / f"_tmp_{rupture.rupture_id}.rupt"
                write_rupt(rupture, fq.geometry, tmp)
                archive.add_file(
                    tmp,
                    kind="ruptures",
                    label=rupture.rupture_id,
                    metadata={"mw": round(rupture.actual_mw, 3)},
                    move=True,
                )

        return LocalRunResult(
            config=config,
            n_waveform_sets=n_sets,
            phase_seconds=timings,
            archive_root=archive.root if archive is not None else None,
            pgd_by_rupture=pgd,
        )


def estimate_sequential_runtime_s(
    config: FdwConfig,
    runtime: RuntimeModel | None = None,
    n_cpus: int = 4,
) -> float:
    """Predicted single-host runtime of the full workload in seconds.

    The control machine is the paper's AWS instance (4 Xeon 8175M CPUs)
    running "an automated version of MudPy's FakeQuakes". Two facts
    calibrate the estimate:

    * the paper measured that host's per-chunk costs when deriving the
      bursting constants — 287 s per rupture job's quantity (16
      ruptures) and 144 s per waveform job's quantity (2 waveforms at
      121 stations) — so per-item costs on the host are 287/16 s per
      rupture and 72 s per full-input waveform (scaled by station
      count);
    * MudPy natively incorporates MPI ("MudPy already incorporates MPI
      and has some parallelism", §2), so the sequential host spreads
      the phase work over its ``n_cpus`` cores.

    GF and distance-matrix costs use the OSG runtime model's means
    (those phases run once and are equally parallelized).
    """
    from repro.bursting.cloud import RUPTURE_CLOUD_SECONDS, WAVEFORM_CLOUD_SECONDS

    if n_cpus < 1:
        raise ConfigError(f"n_cpus must be >= 1, got {n_cpus}")
    runtime = runtime or RuntimeModel()
    per_rupture = RUPTURE_CLOUD_SECONDS / 16.0
    per_waveform = (WAVEFORM_CLOUD_SECONDS / 2.0) * (config.n_stations / 121.0)
    plan = plan_phases(config)
    total = config.n_waveforms * (per_rupture + per_waveform)
    total += runtime.mean_seconds(plan.b_job.payload)  # type: ignore[arg-type]
    total += runtime.dist_base_s  # the host builds the matrices once
    return total / n_cpus
