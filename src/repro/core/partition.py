"""Partitioned parallel DAGMans (the paper's §4.2 study).

:func:`partition_config` splits one FDW workload into ``k`` smaller,
independent FDW configurations that run as concurrent DAGMans and
jointly produce the original catalog. Waveform counts are split as
evenly as possible (remainders distributed to the first partitions) and
seeds are derived per partition so the joint catalog remains
deterministic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.core.config import FdwConfig
from repro.rng import derive_seed

__all__ = ["partition_config"]


def partition_config(config: FdwConfig, k: int) -> list[FdwConfig]:
    """Split ``config`` into ``k`` concurrent-DAGMan configurations.

    Raises
    ------
    ConfigError
        If ``k`` is not in ``1..n_waveforms``.
    """
    if k < 1:
        raise ConfigError(f"partition count must be >= 1, got {k}")
    if k > config.n_waveforms:
        raise ConfigError(
            f"cannot split {config.n_waveforms} waveforms across {k} DAGMans"
        )
    base, extra = divmod(config.n_waveforms, k)
    out: list[FdwConfig] = []
    for i in range(k):
        n = base + (1 if i < extra else 0)
        out.append(
            replace(
                config,
                n_waveforms=n,
                name=f"{config.name}_p{i:02d}" if k > 1 else config.name,
                seed=derive_seed(config.seed, "partition", i) if k > 1 else config.seed,
            )
        )
    assert sum(c.n_waveforms for c in out) == config.n_waveforms
    return out
