"""The paper's statistics equations (1)-(7), as named functions.

Keeping these as standalone, unit-tested functions means every
experiment reports numbers computed exactly the way Section 4 defines
them:

* eq. (1)/(3): average total runtime,
* eq. (2)/(4): average total throughput (jobs/minute),
* eq. (5): instant throughput,
* eq. (6): average instant throughput,
* eq. (7): bursting cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.units import jobs_per_minute

__all__ = [
    "average_total_runtime",
    "average_total_throughput",
    "instant_throughput",
    "average_instant_throughput",
    "bursting_cost_usd",
    "SeriesSummary",
    "summarize",
    "EC2_A1_XLARGE_USD_PER_MINUTE",
]

#: Amazon EC2 on-demand price used by the paper (a1.xlarge, 4 CPU/8 GB).
EC2_A1_XLARGE_USD_PER_MINUTE = 0.0017


def average_total_runtime(runtimes_s: list[float]) -> float:
    """Eq. (1)/(3): ``sum(r_i) / N`` in seconds."""
    if not runtimes_s:
        raise SimulationError("no runtimes given")
    if any(r <= 0 for r in runtimes_s):
        raise SimulationError("runtimes must be positive")
    return float(np.mean(runtimes_s))


def average_total_throughput(job_counts: list[int], runtimes_s: list[float]) -> float:
    """Eq. (2)/(4): ``sum(j_i / r_i) / N`` in jobs/minute."""
    if not job_counts or len(job_counts) != len(runtimes_s):
        raise SimulationError("job_counts and runtimes_s must be equal-length, non-empty")
    return float(
        np.mean([jobs_per_minute(j, r) for j, r in zip(job_counts, runtimes_s)])
    )


def instant_throughput(completed_jobs: int, elapsed_s: float) -> float:
    """Eq. (5): ``omega = j / m`` with m the current runtime in minutes."""
    if completed_jobs < 0:
        raise SimulationError(f"completed_jobs must be >= 0, got {completed_jobs}")
    return jobs_per_minute(completed_jobs, elapsed_s)


def average_instant_throughput(series_jpm: np.ndarray) -> float:
    """Eq. (6): mean of the per-second instant-throughput series."""
    series = np.asarray(series_jpm, dtype=float)
    if series.size == 0:
        raise SimulationError("empty instant-throughput series")
    if np.any(series < 0):
        raise SimulationError("instant throughput cannot be negative")
    return float(np.mean(series))


def bursting_cost_usd(
    cloud_minutes: float, usd_per_minute: float = EC2_A1_XLARGE_USD_PER_MINUTE
) -> float:
    """Eq. (7): ``delta = C_m * c``."""
    if cloud_minutes < 0:
        raise SimulationError(f"cloud_minutes must be >= 0, got {cloud_minutes}")
    if usd_per_minute < 0:
        raise SimulationError(f"usd_per_minute must be >= 0, got {usd_per_minute}")
    return cloud_minutes * usd_per_minute


@dataclass(frozen=True)
class SeriesSummary:
    """Mean / SD / min / max of a dataset, the paper's reporting unit."""

    mean: float
    sd: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.2f} sd={self.sd:.2f} "
            f"min={self.minimum:.2f} max={self.maximum:.2f} (n={self.n})"
        )


def summarize(values: list[float] | np.ndarray) -> SeriesSummary:
    """Summary statistics; population SD like the paper's small-n tables."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise SimulationError("cannot summarize an empty dataset")
    return SeriesSummary(
        mean=float(np.mean(arr)),
        sd=float(np.std(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        n=int(arr.size),
    )
