"""Running FDW workloads on the simulated OSPool.

:func:`run_fdw_batch` is the experiment driver every benchmark uses: it
takes one or more FDW configurations (one per concurrent DAGMan),
submits them to a fresh :class:`~repro.osg.pool.OSPoolSimulator`, runs
to completion, and returns the metrics plus per-DAGMan summaries and the
HTCondor-style user logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import SimulationError
from repro.condor.dagman import DagmanOptions
from repro.core.config import FdwConfig
from repro.core.workflow import build_fdw_dag
from repro.osg.capacity import CapacityProcess
from repro.osg.metrics import PoolMetrics
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.units import jobs_per_minute

__all__ = ["FdwBatchResult", "run_fdw_batch"]


@dataclass(frozen=True)
class FdwBatchResult:
    """Outcome of one pool run of one or more concurrent DAGMans."""

    metrics: PoolMetrics
    user_logs: dict[str, str] = field(repr=False, default_factory=dict)
    #: Rescue files written for DAGMans that failed terminally (only
    #: populated when the batch ran with a ``rescue_dir``).
    rescue_files: dict[str, Path] = field(default_factory=dict)

    @property
    def dagman_names(self) -> list[str]:
        """Names of the DAGMans in the batch."""
        return sorted(self.metrics.dagmans)

    def runtime_s(self, dagman: str) -> float:
        """Total runtime of one DAGMan."""
        return self.metrics.dagmans[dagman].runtime_s

    def throughput_jpm(self, dagman: str) -> float:
        """Total throughput (jobs/min) of one DAGMan — eq. (2) term."""
        return self.metrics.dagmans[dagman].throughput_jpm

    def batch_makespan_s(self) -> float:
        """Time from first submit to last completion across the batch."""
        subs = [d.submit_time for d in self.metrics.dagmans.values()]
        ends = [d.end_time for d in self.metrics.dagmans.values()]
        return max(ends) - min(subs)

    def batch_throughput_jpm(self) -> float:
        """Aggregate jobs/min across the whole batch."""
        n = sum(d.n_jobs for d in self.metrics.dagmans.values())
        return jobs_per_minute(n, self.batch_makespan_s())

    def mean_runtime_s(self) -> float:
        """Eq. (3): mean per-DAGMan runtime in the batch."""
        return float(np.mean([self.runtime_s(n) for n in self.dagman_names]))

    def mean_throughput_jpm(self) -> float:
        """Eq. (4) inner term: mean per-DAGMan total throughput."""
        return float(np.mean([self.throughput_jpm(n) for n in self.dagman_names]))


def run_fdw_batch(
    configs: list[FdwConfig] | FdwConfig,
    pool_config: OSPoolConfig | None = None,
    capacity: CapacityProcess | None = None,
    seed: int = 0,
    stagger_s: float = 0.0,
    rescue_dir: str | Path | None = None,
    transfer_faults: "object | None" = None,
    engine: str = "vector",
) -> FdwBatchResult:
    """Run FDW configuration(s) as concurrent DAGMans on a fresh pool.

    Parameters
    ----------
    configs:
        One config (single DAGMan) or a list (concurrent DAGMans, e.g.
        from :func:`~repro.core.partition.partition_config`).
    pool_config, capacity:
        Pool model overrides.
    seed:
        Pool-side randomness seed (capacity, runtimes, transfers). The
        workflow-side seed lives in each config.
    stagger_s:
        Submission stagger between successive DAGMans ("launch
        simultaneously" is 0, the paper's setup).
    rescue_dir:
        When given, the pool snapshots a rescue file for any DAGMan
        that dies (see :mod:`repro.condor.rescue`); the written paths
        come back in :attr:`FdwBatchResult.rescue_files` for a
        follow-up ``recover`` run.
    transfer_faults:
        Optional :class:`~repro.faults.TransferFaults` chaos model on
        the pool's Stash delivery path (see
        :class:`~repro.osg.transfer.StashCache`).
    engine:
        Pool event-loop implementation, forwarded to
        :class:`~repro.osg.pool.OSPoolSimulator`: ``"vector"`` (default)
        or the scalar ``"reference"`` oracle — bit-identical outputs.
    """
    if isinstance(configs, FdwConfig):
        configs = [configs]
    if not configs:
        raise SimulationError("need at least one FDW configuration")
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate DAGMan names in batch: {names}")
    if stagger_s < 0:
        raise SimulationError(f"stagger_s must be >= 0, got {stagger_s}")

    pool = OSPoolSimulator(
        config=pool_config,
        capacity=capacity,
        seed=seed,
        rescue_dir=rescue_dir,
        engine=engine,
        transfer_faults=transfer_faults,
    )
    for i, config in enumerate(configs):
        dag = build_fdw_dag(config)
        pool.submit_dagman(
            dag,
            options=DagmanOptions(max_idle=config.max_idle),
            name=config.name,
            at_time=i * stagger_s,
        )
    metrics = pool.run()
    logs = {name: run.user_log.render() for name, run in pool.dagman_runs.items()}
    rescues = {
        name: run.rescue_file
        for name, run in pool.dagman_runs.items()
        if run.rescue_file is not None
    }
    return FdwBatchResult(metrics=metrics, user_logs=logs, rescue_files=rescues)
