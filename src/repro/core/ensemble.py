"""Repeated-run experiment aggregation.

The paper runs every configuration three times and reports eq. (1)/(2)
averages with standard deviations. This module is that experimental
protocol as a library: :func:`run_repeated` executes N independent pool
runs of a configuration (derived seeds) and returns a
:class:`RepeatedRuns` exposing exactly the statistics the paper tables
use. The figure exporters and benchmarks build on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.core.config import FdwConfig
from repro.core.partition import partition_config
from repro.core.stats import (
    SeriesSummary,
    average_total_runtime,
    average_total_throughput,
    summarize,
)
from repro.core.submit_osg import FdwBatchResult, run_fdw_batch
from repro.osg.capacity import CapacityProcess
from repro.osg.pool import OSPoolConfig
from repro.rng import derive_seed
from repro.units import to_hours

__all__ = ["RepeatedRuns", "run_repeated"]


@dataclass(frozen=True)
class RepeatedRuns:
    """Aggregated outcome of N repeats of one experiment point.

    Per-DAGMan values are pooled across repeats (with k concurrent
    DAGMans and N repeats there are k*N samples), matching how the
    paper aggregates its partitioned batches.
    """

    config: FdwConfig
    n_dagmans: int
    results: tuple[FdwBatchResult, ...]
    runtimes_s: tuple[float, ...]
    job_counts: tuple[int, ...]

    @property
    def n_repeats(self) -> int:
        """Number of independent pool runs."""
        return len(self.results)

    def average_total_runtime_s(self) -> float:
        """Eq. (1)/(3)."""
        return average_total_runtime(list(self.runtimes_s))

    def average_total_throughput_jpm(self) -> float:
        """Eq. (2)/(4)."""
        return average_total_throughput(list(self.job_counts), list(self.runtimes_s))

    def runtime_summary_h(self) -> SeriesSummary:
        """Mean/SD/min/max of runtimes in hours (the paper's unit)."""
        return summarize([to_hours(r) for r in self.runtimes_s])

    def throughput_summary_jpm(self) -> SeriesSummary:
        """Mean/SD/min/max of per-DAGMan throughputs."""
        return summarize(
            [60.0 * j / r for j, r in zip(self.job_counts, self.runtimes_s)]
        )

    def row(self) -> tuple[float, float, float, float]:
        """(runtime_h, runtime_sd_h, jpm, jpm_sd) — one table row."""
        r = self.runtime_summary_h()
        t = self.throughput_summary_jpm()
        return (r.mean, r.sd, t.mean, t.sd)


def run_repeated(
    config: FdwConfig,
    repeats: int = 3,
    n_dagmans: int = 1,
    seed_key: str | None = None,
    pool_config: OSPoolConfig | None = None,
    capacity: CapacityProcess | None = None,
) -> RepeatedRuns:
    """Run one experiment point ``repeats`` times with derived seeds.

    Parameters
    ----------
    config:
        The workload (total waveforms across all DAGMans).
    repeats:
        Independent pool runs (the paper uses 3).
    n_dagmans:
        Concurrency level; the workload is partitioned evenly.
    seed_key:
        Experiment identity for seed derivation; defaults to the config
        name, so same-named experiments reproduce and differently-named
        ones are independent.
    """
    if repeats < 1:
        raise SimulationError(f"repeats must be >= 1, got {repeats}")
    key = seed_key or config.name
    results = []
    runtimes: list[float] = []
    jobs: list[int] = []
    for repeat in range(repeats):
        parts = partition_config(config, n_dagmans)
        result = run_fdw_batch(
            parts,
            pool_config=pool_config,
            capacity=capacity,
            seed=derive_seed(0xE5, key, n_dagmans, repeat),
        )
        results.append(result)
        for name in result.dagman_names:
            runtimes.append(result.runtime_s(name))
            jobs.append(result.metrics.dagmans[name].n_jobs)
    return RepeatedRuns(
        config=config,
        n_dagmans=n_dagmans,
        results=tuple(results),
        runtimes_s=tuple(runtimes),
        job_counts=tuple(jobs),
    )
