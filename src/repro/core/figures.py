"""Plot-ready data series for every figure in the paper.

The benchmarks in ``benchmarks/`` print and assert the figures' shapes;
this module produces the *data artifacts* — one CSV per figure series,
ready for any plotting tool. The CLI exposes it as
``python -m repro.cli figures``.

All generators take a ``scale`` in (0, 1] that multiplies the waveform
counts (1.0 = paper scale) and derive their seeds from the figure name,
so outputs are deterministic and independent.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.bursting import BurstingSimulator, LowThroughputPolicy, QueueTimePolicy
from repro.core.config import FdwConfig
from repro.core.partition import partition_config
from repro.core.stats import summarize
from repro.core.submit_osg import run_fdw_batch
from repro.core.traces import BatchTrace, JobTrace
from repro.rng import derive_seed
from repro.units import minutes, to_hours

__all__ = [
    "FigureSeries",
    "fig2_series",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "export_all_figures",
]


@dataclass(frozen=True)
class FigureSeries:
    """One tabular data series of a figure."""

    name: str
    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def __post_init__(self) -> None:
        for i, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ConfigError(
                    f"{self.name}: row {i} has {len(row)} cells, "
                    f"expected {len(self.columns)}"
                )

    def write_csv(self, directory: str | Path) -> Path:
        """Write ``<name>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path


def _check_scale(scale: float) -> None:
    if not (0.0 < scale <= 1.0):
        raise ConfigError(f"scale must be in (0, 1], got {scale}")


def _scaled(n: int, scale: float) -> int:
    return max(16, int(round(n * scale)))


def fig2_series(
    scale: float = 1.0,
    quantities: tuple[int, ...] = (1024, 2000, 5120, 10000, 24960, 50000),
    repeats: int = 3,
) -> FigureSeries:
    """Fig 2: runtime/throughput vs quantity for both station lists."""
    _check_scale(scale)
    rows = []
    for n_stations, label in ((2, "small"), (121, "full")):
        for quantity in quantities:
            runtimes, jpms = [], []
            for repeat in range(repeats):
                config = FdwConfig(
                    n_waveforms=_scaled(quantity, scale),
                    n_stations=n_stations,
                    name=f"f2_{label}_{quantity}",
                )
                result = run_fdw_batch(
                    config, seed=derive_seed(2, label, quantity, repeat)
                )
                summary = result.metrics.dagmans[config.name]
                runtimes.append(to_hours(summary.runtime_s))
                jpms.append(summary.throughput_jpm)
            r, t = summarize(runtimes), summarize(jpms)
            rows.append(
                (label, quantity, round(r.mean, 3), round(r.sd, 3),
                 round(t.mean, 3), round(t.sd, 3))
            )
    return FigureSeries(
        name="fig2_quantities",
        columns=("input", "waveforms", "runtime_h", "runtime_sd_h", "jpm", "jpm_sd"),
        rows=tuple(rows),
    )


def fig3_series(
    scale: float = 1.0,
    total_waveforms: int = 16000,
    levels: tuple[int, ...] = (1, 2, 4, 8),
    repeats: int = 3,
) -> FigureSeries:
    """Fig 3: per-DAGMan runtime/throughput vs concurrency."""
    _check_scale(scale)
    rows = []
    for k in levels:
        runtimes, jpms = [], []
        for repeat in range(repeats):
            config = FdwConfig(
                n_waveforms=_scaled(total_waveforms, scale),
                n_stations=121,
                name=f"f3_k{k}",
            )
            result = run_fdw_batch(
                partition_config(config, k), seed=derive_seed(3, k, repeat)
            )
            for name in result.dagman_names:
                runtimes.append(to_hours(result.runtime_s(name)))
                jpms.append(result.throughput_jpm(name))
        r, t = summarize(runtimes), summarize(jpms)
        rows.append(
            (k, round(r.mean, 3), round(r.sd, 3), round(t.mean, 3), round(t.sd, 3))
        )
    return FigureSeries(
        name="fig3_concurrent_dagmans",
        columns=("dagmans", "runtime_h", "runtime_sd_h", "jpm", "jpm_sd"),
        rows=tuple(rows),
    )


def fig4_series(
    scale: float = 1.0,
    total_waveforms: int = 16000,
    concurrency: int = 1,
    max_points: int = 2000,
) -> list[FigureSeries]:
    """Fig 4: sorted exec/wait curves + per-second series for one level.

    Long series are decimated to at most ``max_points`` rows.
    """
    _check_scale(scale)
    config = FdwConfig(
        n_waveforms=_scaled(total_waveforms, scale), n_stations=121,
        name=f"f4_k{concurrency}",
    )
    result = run_fdw_batch(
        partition_config(config, concurrency), seed=derive_seed(4, concurrency)
    )
    metrics = result.metrics
    first = sorted(metrics.dagmans)[0]

    def decimate(arr: np.ndarray) -> np.ndarray:
        if arr.size <= max_points:
            return arr
        idx = np.linspace(0, arr.size - 1, max_points).astype(int)
        return arr[idx]

    out = []
    for label, series in (
        ("exec_sorted_s", metrics.exec_times_s(phase="C")),
        ("wait_sorted_s", metrics.wait_times_s(phase="C")),
        ("instant_throughput_jpm", metrics.instant_throughput_jpm(first)),
        ("running_jobs", metrics.running_jobs()),
    ):
        values = decimate(np.asarray(series, dtype=float))
        out.append(
            FigureSeries(
                name=f"fig4_k{concurrency}_{label}",
                columns=("index", label),
                rows=tuple((i, round(float(v), 4)) for i, v in enumerate(values)),
            )
        )
    return out


def _trace_from_result(result, name: str) -> BatchTrace:
    records = sorted(
        (r for r in result.metrics.for_dagman(name) if r.success),
        key=lambda r: r.submit_time,
    )
    summary = result.metrics.dagmans[name]
    return BatchTrace(
        dagman=name,
        submit_s=summary.submit_time,
        first_execute_s=min(r.start_time for r in records),
        end_s=summary.end_time,
        jobs=tuple(
            JobTrace(
                node=r.node_name, phase=r.phase, submit_s=r.submit_time,
                start_s=r.start_time, end_s=r.end_time,
            )
            for r in records
        ),
    )


def fig5_series(
    scale: float = 1.0,
    total_waveforms: int = 16000,
    probes: tuple[int, ...] = (1, 2, 5, 10, 30, 60, 120),
    queue_caps_min: tuple[int, ...] = (90, 120),
    threshold_jpm: float = 34.0,
) -> FigureSeries:
    """Fig 5: bursting AIT and VDC usage across the policy grid."""
    _check_scale(scale)
    rows = []
    for batch_id in (1, 2):
        config = FdwConfig(
            n_waveforms=_scaled(total_waveforms, scale), n_stations=121,
            name=f"f5_b{batch_id}",
        )
        result = run_fdw_batch(config, seed=derive_seed(5, batch_id))
        trace = _trace_from_result(result, config.name)
        control = BurstingSimulator(trace, policies=[]).run()
        threshold = threshold_jpm
        if scale < 1.0:
            threshold = max(0.5, 0.6 * float(control.throughput_series_jpm.max()))
        rows.append(
            (batch_id, "control", 0, round(control.average_instant_throughput_jpm, 3),
             0.0, round(control.runtime_s / 3600.0, 3))
        )
        for cap in queue_caps_min:
            for probe in probes:
                r = BurstingSimulator(
                    trace,
                    policies=[
                        LowThroughputPolicy(probe_s=float(probe), threshold_jpm=threshold),
                        QueueTimePolicy(max_queue_s=minutes(cap)),
                    ],
                ).run()
                rows.append(
                    (batch_id, f"q{cap}", probe,
                     round(r.average_instant_throughput_jpm, 3),
                     round(r.vdc_usage_percent, 3),
                     round(r.runtime_s / 3600.0, 3))
                )
    return FigureSeries(
        name="fig5_bursting",
        columns=("batch", "config", "probe_s", "ait_jpm", "vdc_percent", "runtime_h"),
        rows=tuple(rows),
    )


def export_all_figures(directory: str | Path, scale: float = 1.0) -> list[Path]:
    """Regenerate and write every figure's data CSVs; returns the paths."""
    _check_scale(scale)
    directory = Path(directory)
    paths = [fig2_series(scale).write_csv(directory)]
    paths.append(fig3_series(scale).write_csv(directory))
    for k in (1, 4):
        for series in fig4_series(scale, concurrency=k):
            paths.append(series.write_csv(directory))
    paths.append(fig5_series(scale).write_csv(directory))
    return paths
