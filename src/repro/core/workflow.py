"""FDW DAG construction.

Wires the planned phase jobs into the DAGMan structure of paper §3.0.1:

* the optional distance bootstrap is the root; every A job depends on
  it (they consume the recyclable ``.npy`` pair),
* the single B job depends on every A job (phases run sequentially),
* every C job depends on the B job (C consumes the GF archive).

The resulting :class:`~repro.condor.dagfile.DagDescription` is engine-
and pool-agnostic: it can be written out as literal ``.dag`` + submit
files, run locally, or handed to the OSPool simulator.
"""

from __future__ import annotations

from repro.condor.dagfile import DagDescription
from repro.core.config import FdwConfig
from repro.core.phases import PhasePlan, plan_phases

__all__ = ["build_fdw_dag"]


def build_fdw_dag(config: FdwConfig, plan: PhasePlan | None = None) -> DagDescription:
    """Build the FDW DAG for a configuration.

    Parameters
    ----------
    config:
        The validated run configuration.
    plan:
        A pre-computed phase plan; planned from ``config`` when omitted
        (passing one avoids re-planning in partition studies).
    """
    plan = plan or plan_phases(config)
    dag = DagDescription(name=config.name)

    a_names: list[str] = []
    if plan.dist_job is not None:
        dag.add_job(plan.dist_job.name, plan.dist_job, retries=config.retries)
    for spec in plan.a_jobs:
        dag.add_job(spec.name, spec, retries=config.retries)
        a_names.append(spec.name)
        if plan.dist_job is not None:
            dag.add_edge(plan.dist_job.name, spec.name)

    dag.add_job(plan.b_job.name, plan.b_job, retries=config.retries)
    dag.add_edges(a_names, [plan.b_job.name])

    for spec in plan.c_jobs:
        dag.add_job(spec.name, spec, retries=config.retries)
        dag.add_edge(plan.b_job.name, spec.name)

    dag.validate()
    return dag
