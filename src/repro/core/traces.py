"""CSV traces: the bursting simulator's input format.

Paper §3.1: "This bursting simulator requires two .csv files as input
that contain the submission, execution, and termination times of an
actual DAGMan batch and the same information for individual jobs within
it." This module defines that format, exports it from simulated pool
runs, and reads it back.

``<name>_batch.csv``::

    dagman,submit_s,first_execute_s,end_s,n_jobs
    fdw,0.0,95.0,50760.0,9001

``<name>_jobs.csv``::

    node,phase,submit_s,start_s,end_s
    fdw_A_00000,A,30.0,95.0,245.0
    ...
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TraceError
from repro.core.submit_osg import FdwBatchResult

__all__ = ["JobTrace", "BatchTrace", "export_traces", "read_traces"]

_BATCH_HEADER = ["dagman", "submit_s", "first_execute_s", "end_s", "n_jobs"]
_JOBS_HEADER = ["node", "phase", "submit_s", "start_s", "end_s"]


@dataclass(frozen=True)
class JobTrace:
    """Timing of one job inside a traced batch."""

    node: str
    phase: str
    submit_s: float
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not (self.submit_s <= self.start_s <= self.end_s):
            raise TraceError(
                f"job {self.node}: non-monotone times "
                f"({self.submit_s}, {self.start_s}, {self.end_s})"
            )

    @property
    def exec_s(self) -> float:
        """Execution duration."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class BatchTrace:
    """One DAGMan batch: header info plus all job timings."""

    dagman: str
    submit_s: float
    first_execute_s: float
    end_s: float
    jobs: tuple[JobTrace, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise TraceError(f"batch {self.dagman}: no jobs")
        if not (self.submit_s <= self.first_execute_s <= self.end_s):
            raise TraceError(f"batch {self.dagman}: non-monotone batch times")

    @property
    def n_jobs(self) -> int:
        """Jobs in the batch."""
        return len(self.jobs)

    @property
    def runtime_s(self) -> float:
        """Batch runtime (submit to last termination)."""
        return self.end_s - self.submit_s

    def phase_jobs(self, phase: str) -> list[JobTrace]:
        """Jobs of one FDW phase."""
        return [j for j in self.jobs if j.phase == phase]


def export_traces(
    result: FdwBatchResult, dagman: str, directory: str | Path, name: str | None = None
) -> tuple[Path, Path]:
    """Write the two CSVs for one DAGMan of a pool run.

    Only successful completions are exported (the bursting simulator
    replays the batch's real completions, as the paper's did).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = name or dagman
    summary = result.metrics.dagmans.get(dagman)
    if summary is None:
        raise TraceError(f"no DAGMan {dagman!r} in batch result")
    all_records = result.metrics.for_dagman(dagman)
    records = [r for r in all_records if r.success]
    if not records:
        raise TraceError(f"DAGMan {dagman!r} has no successful jobs to trace")
    # The batch header's first EXECUTE must match the log-derived
    # semantics of DagmanStats: the earliest start across *all* attempts,
    # including failed/retried ones — a batch whose earliest EXECUTE
    # belonged to a failed attempt would otherwise export a wrong header.
    first_execute_s = min(r.start_time for r in all_records)

    batch_path = directory / f"{name}_batch.csv"
    jobs_path = directory / f"{name}_jobs.csv"

    with batch_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_BATCH_HEADER)
        writer.writerow(
            [
                dagman,
                f"{summary.submit_time:.3f}",
                f"{first_execute_s:.3f}",
                f"{summary.end_time:.3f}",
                str(len(records)),
            ]
        )
    with jobs_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_JOBS_HEADER)
        for r in sorted(records, key=lambda r: r.submit_time):
            writer.writerow(
                [
                    r.node_name,
                    r.phase,
                    f"{r.submit_time:.3f}",
                    f"{r.start_time:.3f}",
                    f"{r.end_time:.3f}",
                ]
            )
    return batch_path, jobs_path


def _read_csv_rows(path: Path, header: list[str]) -> list[dict[str, str]]:
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            got_header = next(reader)
        except StopIteration:
            raise TraceError(f"{path}: empty trace file") from None
        if got_header != header:
            raise TraceError(f"{path}: bad header {got_header!r}, expected {header!r}")
        rows = [dict(zip(header, row)) for row in reader if row]
    if not rows:
        raise TraceError(f"{path}: no data rows")
    return rows


def read_traces(batch_csv: str | Path, jobs_csv: str | Path) -> BatchTrace:
    """Read the CSV pair back into a :class:`BatchTrace`.

    Raises
    ------
    TraceError
        On missing files, malformed headers or rows, or inconsistent
        job counts.
    """
    batch_csv, jobs_csv = Path(batch_csv), Path(jobs_csv)
    batch_rows = _read_csv_rows(batch_csv, _BATCH_HEADER)
    if len(batch_rows) != 1:
        raise TraceError(f"{batch_csv}: expected exactly one batch row")
    b = batch_rows[0]
    job_rows = _read_csv_rows(jobs_csv, _JOBS_HEADER)
    try:
        jobs = tuple(
            JobTrace(
                node=row["node"],
                phase=row["phase"],
                submit_s=float(row["submit_s"]),
                start_s=float(row["start_s"]),
                end_s=float(row["end_s"]),
            )
            for row in job_rows
        )
        trace = BatchTrace(
            dagman=b["dagman"],
            submit_s=float(b["submit_s"]),
            first_execute_s=float(b["first_execute_s"]),
            end_s=float(b["end_s"]),
            jobs=jobs,
        )
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed trace row: {exc}") from exc
    if trace.n_jobs != int(b["n_jobs"]):
        raise TraceError(
            f"batch header says {b['n_jobs']} jobs, jobs file has {trace.n_jobs}"
        )
    return trace


def render_trace_csvs(trace: BatchTrace) -> tuple[str, str]:
    """Render a :class:`BatchTrace` back to CSV text (round-trip tests)."""
    batch_buf = io.StringIO()
    writer = csv.writer(batch_buf)
    writer.writerow(_BATCH_HEADER)
    writer.writerow(
        [
            trace.dagman,
            f"{trace.submit_s:.3f}",
            f"{trace.first_execute_s:.3f}",
            f"{trace.end_s:.3f}",
            str(trace.n_jobs),
        ]
    )
    jobs_buf = io.StringIO()
    writer = csv.writer(jobs_buf)
    writer.writerow(_JOBS_HEADER)
    for j in trace.jobs:
        writer.writerow(
            [j.node, j.phase, f"{j.submit_s:.3f}", f"{j.start_s:.3f}", f"{j.end_s:.3f}"]
        )
    return batch_buf.getvalue(), jobs_buf.getvalue()
