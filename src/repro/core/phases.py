"""Phase planning: turn an :class:`~repro.core.config.FdwConfig` into jobs.

The FDW has three sequential phases whose *jobs* run in parallel
(paper §3.0.1):

* **A** — rupture scenarios, ``chunk_a`` per job, preceded by a single
  distance-matrix bootstrap job when the ``.npy`` pair is not recycled;
* **B** — one Green's-function job whose cost scales with the station
  list and whose output is the large ``.mseed`` archive;
* **C** — waveform synthesis, ``chunk_c`` ruptures per job, each job
  pulling the GF archive (Stash-cached) plus its rupture chunk.

Input-file sizes are derived from the physical product shapes so the
transfer model charges realistic costs (e.g. the full-input GF archive
lands near the paper's ">1 GB").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.condor.jobs import JobPayload, JobSpec
from repro.core.config import FdwConfig

__all__ = ["PhasePlan", "plan_phases", "chunk_bounds", "gf_product_id"]

#: Bytes per float64 sample; sizes below are reported in MB.
_B = 8
_MB = 1024.0 * 1024.0

#: Nominal samples per GF trace (used only for sizing the archive).
_GF_SAMPLES = 512
_COMPONENTS = 3


def chunk_bounds(total: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``total`` items into (start, count) chunks of size ``chunk``.

    The final chunk may be short. Deterministic, order-preserving — the
    same function the local runner and the OSG job payloads use, so any
    partition produces the identical catalog.
    """
    if total < 1 or chunk < 1:
        raise ConfigError(f"need positive total/chunk, got {total}/{chunk}")
    return [(start, min(chunk, total - start)) for start in range(0, total, chunk)]


@dataclass(frozen=True)
class PhasePlan:
    """The complete job plan of one FDW instance."""

    config: FdwConfig
    dist_job: JobSpec | None
    a_jobs: list[JobSpec]
    b_job: JobSpec
    c_jobs: list[JobSpec]

    @property
    def n_jobs(self) -> int:
        """Total jobs in the DAG."""
        return (
            (1 if self.dist_job is not None else 0)
            + len(self.a_jobs)
            + 1
            + len(self.c_jobs)
        )

    def all_specs(self) -> list[JobSpec]:
        """Every job spec in phase order."""
        specs: list[JobSpec] = []
        if self.dist_job is not None:
            specs.append(self.dist_job)
        specs.extend(self.a_jobs)
        specs.append(self.b_job)
        specs.extend(self.c_jobs)
        return specs


def _distance_npy_mb(config: FdwConfig) -> float:
    """Size of one distance ``.npy`` (n_subfaults^2 float64)."""
    n = config.n_subfaults
    return n * n * _B / _MB


def gf_archive_mb(config: FdwConfig) -> float:
    """Size of the Phase-B GF archive in MB.

    Modelled as full 3-component time-series banks per (station,
    subfault) pair, which is what MudPy's ``.mseed`` archives hold —
    121 stations x 450 subfaults gives ~0.64 GB, the ">1 GB" class of
    file the paper stages through Stash Cache.
    """
    return (
        config.n_stations * config.n_subfaults * _GF_SAMPLES * _COMPONENTS * _B / _MB
    )


def gf_product_id(config: FdwConfig) -> str:
    """Logical product id of the Phase-B GF archive.

    One name ties the delivery layers together: it is the staged input
    file of every C job (charged to the Stash transfer model), and the
    id the VDC catalog/storage layers register the archive under when
    they route its bytes through :mod:`repro.core.gfcache`.
    """
    return f"{config.name}_gf.mseed.npz"


def plan_phases(config: FdwConfig) -> PhasePlan:
    """Build every job spec for one FDW DAG."""
    name = config.name
    dist_files = {
        f"{name}_distances_strike.npy": _distance_npy_mb(config),
        f"{name}_distances_dip.npy": _distance_npy_mb(config),
    }

    dist_job: JobSpec | None = None
    if not config.recycle_distances:
        dist_job = JobSpec(
            name=f"{name}_dist",
            arguments="--phase dist",
            payload=JobPayload(phase="dist", n_items=1, n_stations=config.n_stations),
            input_files={},
            request_memory_mb=16384,  # "up to 16GB ... large matrix files"
        )

    a_jobs = [
        JobSpec(
            name=f"{name}_A_{i:05d}",
            arguments=f"--phase A --start {start} --count {count}",
            payload=JobPayload(
                phase="A", n_items=count, n_stations=config.n_stations
            ),
            input_files=dict(dist_files),
        )
        for i, (start, count) in enumerate(chunk_bounds(config.n_waveforms, config.chunk_a))
    ]

    b_job = JobSpec(
        name=f"{name}_B",
        arguments="--phase B",
        payload=JobPayload(phase="B", n_items=config.n_stations, n_stations=config.n_stations),
        input_files={f"{name}_stations.gflist": 0.01},
        request_memory_mb=16384,
    )

    gf_mb = gf_archive_mb(config)
    # Each C job stages the GF archive plus its rupture chunk (.rupt
    # files are small text tables).
    c_jobs = [
        JobSpec(
            name=f"{name}_C_{i:05d}",
            arguments=f"--phase C --start {start} --count {count}",
            payload=JobPayload(
                phase="C", n_items=count, n_stations=config.n_stations
            ),
            input_files={
                gf_product_id(config): gf_mb,
                f"{name}_ruptures_{i:05d}.tar": 0.2 * count,
            },
        )
        for i, (start, count) in enumerate(chunk_bounds(config.n_waveforms, config.chunk_c))
    ]

    return PhasePlan(
        config=config, dist_job=dist_job, a_jobs=a_jobs, b_job=b_job, c_jobs=c_jobs
    )
