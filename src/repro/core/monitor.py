"""Monitoring: statistics from HTCondor user logs.

The paper built "a system to monitor the progress of running and
completed DAGMans ... Shell scripts parse HTCondor log files to extract
information (e.g., runtime, wait times, and complete/failed job count)
and compute job states and durations". :class:`DagmanStats` is that
system: it consumes only the *log text* (never simulator internals), so
the statistics path is exactly the paper's — and the tests cross-check
it against the simulator's own records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import LogParseError
from repro.condor.events import JobEventType, parse_user_log
from repro.units import jobs_per_minute

__all__ = ["JobTiming", "DagmanStats"]


@dataclass(frozen=True)
class JobTiming:
    """Reconstructed timing of one job (cluster) from its log events."""

    cluster_id: int
    submit_time: float
    start_time: float | None
    end_time: float | None
    return_value: int | None
    n_evictions: int
    n_holds: int = 0

    @property
    def completed(self) -> bool:
        """Normal termination with return value 0."""
        return self.end_time is not None and self.return_value == 0

    @property
    def failed(self) -> bool:
        """Terminated abnormally.

        A TERMINATED event whose detail line is missing or unparseable
        leaves ``return_value`` as ``None``; such jobs cannot be counted
        as completed, so they are classified failed (otherwise they
        silently vanish from both counters).
        """
        return self.end_time is not None and self.return_value != 0

    @property
    def wait_s(self) -> float | None:
        """Queue wait (first execute - submit)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def exec_s(self) -> float | None:
        """Execution time (terminate - last execute)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class DagmanStats:
    """All statistics derivable from one DAGMan's user log."""

    jobs: dict[int, JobTiming] = field(default_factory=dict)

    @classmethod
    def from_log_text(cls, text: str, source: str = "<string>") -> "DagmanStats":
        """Parse a user log and reconstruct per-job timings.

        The *last* EXECUTE before termination defines the execution
        interval (earlier ones were evicted attempts), matching how the
        paper's scripts compute durations.
        """
        events = parse_user_log(text, source=source)
        submit: dict[int, float] = {}
        last_exec: dict[int, float] = {}
        term: dict[int, tuple[float, int | None]] = {}
        evictions: dict[int, int] = {}
        holds: dict[int, int] = {}
        for ev in events:
            if ev.event_type is JobEventType.SUBMIT:
                if ev.cluster_id in submit:
                    raise LogParseError(
                        f"{source}: duplicate submit for cluster {ev.cluster_id}"
                    )
                submit[ev.cluster_id] = ev.time_s
            elif ev.event_type is JobEventType.EXECUTE:
                last_exec[ev.cluster_id] = ev.time_s
            elif ev.event_type is JobEventType.EVICTED:
                evictions[ev.cluster_id] = evictions.get(ev.cluster_id, 0) + 1
            elif ev.event_type is JobEventType.HELD:
                holds[ev.cluster_id] = holds.get(ev.cluster_id, 0) + 1
            elif ev.event_type is JobEventType.TERMINATED:
                term[ev.cluster_id] = (ev.time_s, ev.return_value)
        jobs: dict[int, JobTiming] = {}
        for cluster_id, sub_t in submit.items():
            end = term.get(cluster_id)
            jobs[cluster_id] = JobTiming(
                cluster_id=cluster_id,
                submit_time=sub_t,
                start_time=last_exec.get(cluster_id),
                end_time=end[0] if end else None,
                return_value=end[1] if end else None,
                n_evictions=evictions.get(cluster_id, 0),
                n_holds=holds.get(cluster_id, 0),
            )
        return cls(jobs=jobs)

    @classmethod
    def from_log_file(cls, path: str | Path) -> "DagmanStats":
        """Parse a user log file from disk."""
        path = Path(path)
        if not path.exists():
            raise LogParseError(f"log file not found: {path}")
        return cls.from_log_text(path.read_text(), source=str(path))

    # -- headline statistics -------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Jobs ever submitted."""
        return len(self.jobs)

    @property
    def n_completed(self) -> int:
        """Jobs that terminated normally."""
        return sum(1 for j in self.jobs.values() if j.completed)

    @property
    def n_failed(self) -> int:
        """Jobs that terminated abnormally."""
        return sum(1 for j in self.jobs.values() if j.failed)

    def runtime_s(self) -> float:
        """DAGMan runtime: first submit to last termination."""
        if not self.jobs:
            raise LogParseError("no jobs in log")
        first = min(j.submit_time for j in self.jobs.values())
        ends = [j.end_time for j in self.jobs.values() if j.end_time is not None]
        if not ends:
            raise LogParseError("no terminations in log")
        return max(ends) - first

    def total_throughput_jpm(self) -> float:
        """Completed jobs per minute of DAGMan runtime (eq. 2 term)."""
        return jobs_per_minute(self.n_completed, self.runtime_s())

    def wait_times_s(self) -> np.ndarray:
        """Sorted queue waits of jobs that started."""
        return np.sort(
            np.array([j.wait_s for j in self.jobs.values() if j.wait_s is not None])
        )

    def exec_times_s(self) -> np.ndarray:
        """Sorted execution times of terminated jobs."""
        return np.sort(
            np.array([j.exec_s for j in self.jobs.values() if j.exec_s is not None])
        )

    def report(self, name: str = "dagman") -> str:
        """Human-readable monitoring report (what the FDW prints)."""
        from repro.units import format_duration, to_minutes

        waits = self.wait_times_s()
        execs = self.exec_times_s()
        lines = [
            f"=== DAGMan {name} ===",
            f"jobs: {self.n_jobs} submitted, {self.n_completed} completed, "
            f"{self.n_failed} failed",
            f"runtime: {format_duration(self.runtime_s())}",
            f"total throughput: {self.total_throughput_jpm():.2f} jobs/min",
        ]
        if waits.size:
            lines.append(
                f"wait times (min): mean {to_minutes(float(np.mean(waits))):.1f}, "
                f"max {to_minutes(float(np.max(waits))):.1f}"
            )
        if execs.size:
            lines.append(
                f"exec times (min): mean {to_minutes(float(np.mean(execs))):.1f}, "
                f"max {to_minutes(float(np.max(execs))):.1f}"
            )
        return "\n".join(lines)
