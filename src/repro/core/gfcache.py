"""Green's-function bank cache: the in-process analog of Stash/OSDF.

The paper's single biggest engineering lever is computing the expensive
Phase-B Green's-function archive *once* and amortizing it across
thousands of Phase-C waveform jobs via the OSG's Stash/OSDF cache
("recycling them is crucial"; the >1 GB ``.mseed`` archive is staged to
every C job from cache, not recomputed). This module gives the library
the same lever for in-process execution:

* a **content-addressed key** derived from exactly the inputs that
  determine a bank — fault geometry, station network, and the GF model
  parameters — so two configurations that would produce the same bank
  share one cache entry and any change invalidates it;
* a two-level :class:`GFCache` — an in-memory LRU over
  :class:`~repro.seismo.greens.GreensFunctionBank` objects backed by an
  optional on-disk ``.npz`` store (the OSDF-origin analog; point it at a
  shared directory to reuse banks across processes and runs);
* :func:`publish_shared_bank` / :func:`attach_shared_bank` — zero-copy
  sharing of the large bank arrays across worker processes through
  ``multiprocessing.shared_memory``, so a process pool synthesizing
  Phase-C chunks reads one physical copy instead of rebuilding
  O(n_stations x n_subfaults) arrays per worker per chunk.

:class:`repro.core.local.LocalRunner` and the VDC layer
(:mod:`repro.vdc.storage`, :mod:`repro.vdc.prefetch`) both route through
this one implementation.
"""

from __future__ import annotations

import hashlib
import io
import os
import zipfile
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import CacheError, IntegrityError, ReproError
from repro.integrity import (
    quarantine_artifact,
    read_verified,
    sha256_bytes,
    write_digest,
)
from repro.seismo.geometry import FaultGeometry
from repro.seismo.greens import (
    DEFAULT_RAKE_DEG,
    GreensFunctionBank,
    compute_gf_bank,
)
from repro.seismo.kinematics import DEFAULT_SHEAR_VELOCITY_KMS
from repro.seismo.stations import StationNetwork

__all__ = [
    "gf_bank_key",
    "GFCacheStats",
    "GFCache",
    "SharedBankHandle",
    "publish_shared_bank",
    "attach_shared_bank",
    "detach_shared_banks",
]

#: Environment variable naming a default on-disk store directory.
CACHE_DIR_ENV = "REPRO_GF_CACHE_DIR"


def gf_bank_key(
    geometry: FaultGeometry,
    network: StationNetwork,
    gf_method: str = "point",
    rake_deg: float = DEFAULT_RAKE_DEG,
    shear_velocity_kms: float = DEFAULT_SHEAR_VELOCITY_KMS,
    min_distance_km: float = 1.0,
    dtype: str = "float64",
) -> str:
    """Content-addressed cache key of a GF bank.

    The key hashes every input that flows into
    :func:`~repro.seismo.greens.compute_gf_bank` (or the Okada variant):
    the full subfault table, the ordered station list, the scalar model
    parameters, and the bank dtype. Any change to any of them — a
    different mesh, one moved station, another rake, a float32 bank —
    yields a different key, which is the cache-invalidation rule (and
    what makes a float32 run unable to silently hit a float64 entry).
    """
    h = hashlib.sha256()
    h.update(b"gfbank-v1\x1f")
    h.update(geometry.name.encode("utf-8") + b"\x1f")
    h.update(np.int64([geometry.n_strike, geometry.n_dip]).tobytes())
    for arr in (
        geometry.lon,
        geometry.lat,
        geometry.depth_km,
        geometry.strike_deg,
        geometry.dip_deg,
        geometry.length_km,
        geometry.width_km,
    ):
        h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    h.update(("\x1f".join(network.names)).encode("utf-8") + b"\x1f")
    h.update(np.ascontiguousarray(network.lons, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(network.lats, dtype=np.float64).tobytes())
    h.update(
        np.float64(
            [rake_deg, shear_velocity_kms, min_distance_km]
        ).tobytes()
    )
    h.update(str(gf_method).encode("utf-8") + b"\x1f")
    h.update(str(np.dtype(dtype)).encode("utf-8"))
    return h.hexdigest()


@dataclass
class GFCacheStats:
    """Hit/miss counters of one :class:`GFCache` (mutable, cumulative)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Disk entries that failed digest verification or parsing and were
    #: quarantined (each such lookup also counts as a miss — the
    #: degraded-mode contract: corruption becomes a recompute).
    integrity_failures: int = 0

    @property
    def hits(self) -> int:
        """All hits, either level."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses


def _observe_lookup(cache: str, outcome: str, bank) -> None:
    """Emit one cache lookup into the obs registry (no-op when disabled)."""
    if not obs.enabled():
        return
    obs.counter_add(
        "repro_cache_lookups_total", 1, {"cache": cache, "outcome": outcome}
    )
    if bank is not None:
        obs.counter_add(
            "repro_cache_bytes_total",
            bank.statics.nbytes + bank.travel_time_s.nbytes,
            {"cache": cache, "event": "hit"},
        )


class GFCache:
    """Two-level (memory LRU + disk ``.npz``) Green's-function bank cache.

    Parameters
    ----------
    cache_dir:
        Directory of the on-disk store. ``None`` reads the
        ``REPRO_GF_CACHE_DIR`` environment variable; when that is unset
        too, the cache is memory-only (still amortizes within a
        process).
    max_memory_entries:
        LRU capacity. Banks evicted from memory survive on disk when a
        ``cache_dir`` is configured.
    verify_digests:
        Verify each disk entry's sha256 sidecar on load (default). A
        failed check — or an entry that cannot be parsed at all — is
        quarantined (moved into ``cache_dir/quarantine/``, never
        deleted) and treated as a miss, so corruption degrades to a
        recompute. ``False`` skips only the hash comparison (the
        ``bench-resilience`` baseline arm); parse failures still
        quarantine.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_memory_entries: int = 8,
        verify_digests: bool = True,
    ) -> None:
        if max_memory_entries < 1:
            raise CacheError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        if cache_dir is None:
            env = os.environ.get(CACHE_DIR_ENV, "").strip()
            cache_dir = env or None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = int(max_memory_entries)
        self.verify_digests = bool(verify_digests)
        self._memory: OrderedDict[str, GreensFunctionBank] = OrderedDict()
        self.stats = GFCacheStats()
        #: Paths of quarantined artifacts, in quarantine order.
        self.quarantined: list[Path] = []

    # -- paths ---------------------------------------------------------------

    def disk_path(self, key: str) -> Path | None:
        """On-disk location of a key, or ``None`` for memory-only caches."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"gf_{key}.npz"

    # -- primitive get/put ---------------------------------------------------

    def get(self, key: str) -> GreensFunctionBank | None:
        """Look a key up (memory first, then disk); ``None`` on miss.

        A disk entry that fails its digest check or cannot be parsed
        (truncated/bit-flipped ``.npz``) is quarantined and reported as
        a miss — the caller recomputes and re-stores, so a corrupted
        cache entry never surfaces as a wrong answer or a raw
        ``zipfile.BadZipFile``.
        """
        bank = self._memory.get(key)
        if bank is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup("gf", "memory_hit", bank)
            return bank
        path = self.disk_path(key)
        if path is not None and path.exists():
            try:
                bank = self._load_disk(path)
            except IntegrityError as exc:
                self._quarantine(path, exc)
            else:
                self._remember(key, bank)
                self.stats.disk_hits += 1
                _observe_lookup("gf", "disk_hit", bank)
                return bank
        self.stats.misses += 1
        _observe_lookup("gf", "miss", None)
        return None

    def _load_disk(self, path: Path) -> GreensFunctionBank:
        """Digest-verified parse of one disk entry.

        Every failure mode — sidecar mismatch, zip/npz damage, missing
        arrays, values the bank validation rejects — surfaces as one
        typed :class:`~repro.errors.IntegrityError`.
        """
        data = read_verified(path, verify=self.verify_digests)
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                return GreensFunctionBank(
                    statics=npz["statics"],
                    travel_time_s=npz["travel_time_s"],
                    station_names=tuple(str(n) for n in npz["station_names"]),
                    fault_name=str(npz["fault_name"]),
                )
        except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError,
                ReproError) as exc:
            raise IntegrityError(f"corrupt GF bank {path.name}: {exc}") from exc

    def _quarantine(self, path: Path, exc: IntegrityError) -> None:
        self.stats.integrity_failures += 1
        obs.counter_add(
            "repro_cache_integrity_failures_total", 1, {"cache": "gf"}
        )
        self.quarantined.append(quarantine_artifact(path, reason=str(exc)))

    def put(self, key: str, bank: GreensFunctionBank) -> None:
        """Insert a bank under a key in both levels."""
        if not key:
            raise CacheError("cache key must be non-empty")
        self._remember(key, bank)
        self.ensure_on_disk(key)
        self.stats.stores += 1
        if obs.enabled():
            obs.counter_add("repro_cache_stores_total", 1, {"cache": "gf"})
            obs.counter_add(
                "repro_cache_bytes_total",
                bank.statics.nbytes + bank.travel_time_s.nbytes,
                {"cache": "gf", "event": "store"},
            )

    def _remember(self, key: str, bank: GreensFunctionBank) -> None:
        self._memory[key] = bank
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def ensure_on_disk(self, key: str) -> Path | None:
        """Materialize a memory-resident bank into the disk store.

        This is what a Stash/OSDF *prefetch* amounts to in-process:
        making the product durable and shareable ahead of demand.
        Returns the written (or existing) path, or ``None`` when the
        cache has no disk store or the key is unknown.
        """
        path = self.disk_path(key)
        if path is None:
            return None
        if path.exists():
            return path
        bank = self._memory.get(key)
        if bank is None:
            return None
        tmp = path.with_suffix(".tmp.npz")
        try:
            bank.save(tmp)
            digest = sha256_bytes(tmp.read_bytes())
            os.replace(tmp, path)  # atomic against concurrent readers
            write_digest(path, digest)
        except OSError as exc:
            raise CacheError(
                f"cannot write GF bank to cache_dir {self.cache_dir}: {exc}"
            ) from exc
        return path

    def contains(self, key: str, on_disk: bool = False) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        if not on_disk and key in self._memory:
            return True
        path = self.disk_path(key)
        return path is not None and path.exists()

    # -- the main entry point ------------------------------------------------

    def get_or_compute(
        self,
        geometry: FaultGeometry,
        network: StationNetwork,
        gf_method: str = "point",
        rake_deg: float = DEFAULT_RAKE_DEG,
        shear_velocity_kms: float = DEFAULT_SHEAR_VELOCITY_KMS,
        min_distance_km: float = 1.0,
        dtype: str = "float64",
        compute: Callable[[], GreensFunctionBank] | None = None,
    ) -> GreensFunctionBank:
        """Return the bank for these inputs, computing it at most once.

        ``compute`` overrides the default kernel call (used by the Okada
        flavour and by tests); its result is stored under the
        content-addressed key of the inputs. ``dtype`` is part of that
        key, so float32 and float64 banks of the same physics occupy
        distinct entries.
        """
        key = gf_bank_key(
            geometry,
            network,
            gf_method=gf_method,
            rake_deg=rake_deg,
            shear_velocity_kms=shear_velocity_kms,
            min_distance_km=min_distance_km,
            dtype=dtype,
        )
        bank = self.get(key)
        if bank is not None:
            return bank
        if compute is not None:
            bank = compute()
        elif gf_method == "okada":
            from repro.seismo.okada import compute_okada_gf_bank

            bank = compute_okada_gf_bank(geometry, network, dtype=dtype)
        else:
            bank = compute_gf_bank(
                geometry,
                network,
                rake_deg=rake_deg,
                shear_velocity_kms=shear_velocity_kms,
                min_distance_km=min_distance_km,
                dtype=dtype,
            )
        self.put(key, bank)
        return bank

    # -- maintenance ---------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory level; with ``disk=True`` also the disk store.

        Digest sidecars go with their artifacts; the quarantine
        directory is never touched (evidence outlives cache resets).
        """
        self._memory.clear()
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("gf_*.npz"):
                path.unlink()
            for path in self.cache_dir.glob("gf_*.npz.sha256"):
                path.unlink()

    def memory_keys(self) -> list[str]:
        """Keys currently resident in memory, LRU-oldest first."""
        return list(self._memory)

    def disk_keys(self) -> list[str]:
        """Keys present in the disk store."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return []
        return sorted(
            p.name[len("gf_") : -len(".npz")]
            for p in self.cache_dir.glob("gf_*.npz")
        )


# -- shared-memory bank sharing ---------------------------------------------


@dataclass(frozen=True)
class SharedBankHandle:
    """Picklable descriptor of a bank published into shared memory.

    Small enough to travel in every pool task; workers attach the named
    segments once and cache the attachment for the life of the process.
    """

    key: str
    statics_name: str
    travel_name: str
    statics_shape: tuple[int, int, int]
    travel_shape: tuple[int, int]
    dtype: str
    station_names: tuple[str, ...]
    fault_name: str


def publish_shared_bank(
    bank: GreensFunctionBank, key: str
) -> tuple[SharedBankHandle, list[shared_memory.SharedMemory]]:
    """Copy a bank's arrays into shared-memory segments.

    Returns the picklable handle plus the segment objects; the caller
    owns the segments and must ``close()``/``unlink()`` them when the
    pool is done (:class:`repro.core.local.LocalRunner` does this).
    """
    segments: list[shared_memory.SharedMemory] = []

    def _publish(arr: np.ndarray) -> shared_memory.SharedMemory:
        src = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=max(1, src.nbytes))
        dst = np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf)
        dst[...] = src
        segments.append(shm)
        return shm

    if bank.statics.dtype != bank.travel_time_s.dtype:
        raise CacheError(
            "statics and travel times must share a dtype to be published, "
            f"got {bank.statics.dtype} / {bank.travel_time_s.dtype}"
        )
    statics_shm = _publish(bank.statics)
    travel_shm = _publish(bank.travel_time_s)
    handle = SharedBankHandle(
        key=key,
        statics_name=statics_shm.name,
        travel_name=travel_shm.name,
        statics_shape=tuple(bank.statics.shape),  # type: ignore[arg-type]
        travel_shape=tuple(bank.travel_time_s.shape),  # type: ignore[arg-type]
        dtype=str(bank.statics.dtype),
        station_names=tuple(bank.station_names),
        fault_name=bank.fault_name,
    )
    return handle, segments


#: Worker-side attachment cache: handle key -> (bank, segments). Kept for
#: the life of the worker process so each bank is mapped exactly once.
_ATTACHED: dict[str, tuple[GreensFunctionBank, list[shared_memory.SharedMemory]]] = {}


def attach_shared_bank(handle: SharedBankHandle) -> GreensFunctionBank:
    """Map a published bank in this process (idempotent per key).

    The returned bank's arrays are **read-only views** over the shared
    segments — concurrent readers cannot corrupt them, and no copy of
    the O(n_stations x n_subfaults) data is made.
    """
    cached = _ATTACHED.get(handle.key)
    if cached is not None:
        return cached[0]
    try:
        statics_shm = shared_memory.SharedMemory(name=handle.statics_name)
        travel_shm = shared_memory.SharedMemory(name=handle.travel_name)
    except FileNotFoundError as exc:
        raise CacheError(
            f"shared GF bank {handle.key[:12]} is gone (segments unlinked?)"
        ) from exc
    dtype = np.dtype(handle.dtype)
    statics = np.ndarray(handle.statics_shape, dtype=dtype, buffer=statics_shm.buf)
    travel = np.ndarray(handle.travel_shape, dtype=dtype, buffer=travel_shm.buf)
    statics.flags.writeable = False
    travel.flags.writeable = False
    bank = GreensFunctionBank(
        statics=statics,
        travel_time_s=travel,
        station_names=handle.station_names,
        fault_name=handle.fault_name,
    )
    _ATTACHED[handle.key] = (bank, [statics_shm, travel_shm])
    return bank


def detach_shared_banks() -> None:
    """Drop this process's attachments (close segments, keep them linked)."""
    for _, segments in _ATTACHED.values():
        for shm in segments:
            try:
                shm.close()
            except OSError:  # pragma: no cover - platform-dependent teardown
                pass
    _ATTACHED.clear()
