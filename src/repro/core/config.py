"""The FDW configuration file.

The paper's workflow is driven by "editing a configuration file for
simulation parameters" — this module defines that file. It is a flat
INI document with one ``[fdw]`` section::

    [fdw]
    n_waveforms = 1024
    n_stations = 121
    chunk_a = 16
    chunk_c = 2
    recycle_distances = true
    seed = 7

:class:`FdwConfig` validates everything at construction so a bad config
fails before any jobs are planned.
"""

from __future__ import annotations

import configparser
import hashlib
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["FdwConfig"]


@dataclass(frozen=True)
class FdwConfig:
    """Validated FDW run configuration.

    Attributes
    ----------
    n_waveforms:
        Total waveform scenarios the workflow must produce (the paper's
        experiment axis: 1,024 ... 50,000).
    n_stations:
        GNSS station-list length (121 full / 2 small Chilean input).
    chunk_a:
        Ruptures generated per Phase-A job.
    chunk_c:
        Ruptures waveform-synthesized per Phase-C job.
    recycle_distances:
        When true (default), the recyclable ``.npy`` distance matrices
        are assumed present and the bootstrap job is skipped.
    mesh:
        Fault mesh dimensions (n_strike, n_dip).
    mw_range:
        Target magnitude range of the catalog.
    retries:
        DAG-level retries per node.
    max_idle:
        DAGMan idle-job throttle.
    gf_dtype:
        GF-bank precision handed to Phase B: ``"float64"`` (bit-exact
        default) or ``"float32"`` (half-size banks, ~1e-7 relative
        waveform error).
    seed:
        Root seed of the run.
    name:
        Workflow name (used for DAG/node naming and output labels).
    """

    n_waveforms: int = 1024
    n_stations: int = 121
    chunk_a: int = 16
    chunk_c: int = 2
    recycle_distances: bool = True
    mesh: tuple[int, int] = (30, 15)
    mw_range: tuple[float, float] = (7.5, 9.2)
    retries: int = 3
    max_idle: int = 500
    gf_dtype: str = "float64"
    seed: int = 0
    name: str = "fdw"

    def __post_init__(self) -> None:
        if self.n_waveforms < 1:
            raise ConfigError(f"n_waveforms must be >= 1, got {self.n_waveforms}")
        if self.n_stations < 1:
            raise ConfigError(f"n_stations must be >= 1, got {self.n_stations}")
        if self.chunk_a < 1 or self.chunk_c < 1:
            raise ConfigError(
                f"chunk sizes must be >= 1, got chunk_a={self.chunk_a} "
                f"chunk_c={self.chunk_c}"
            )
        if self.mesh[0] < 2 or self.mesh[1] < 2:
            raise ConfigError(f"mesh must be at least 2x2, got {self.mesh}")
        if self.mw_range[0] > self.mw_range[1]:
            raise ConfigError(f"invalid mw_range {self.mw_range}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.max_idle < 0:
            raise ConfigError(f"max_idle must be >= 0, got {self.max_idle}")
        if self.gf_dtype not in ("float64", "float32"):
            raise ConfigError(
                f"gf_dtype must be 'float64' or 'float32', got {self.gf_dtype!r}"
            )
        if not self.name:
            raise ConfigError("name must be non-empty")

    # -- derived -----------------------------------------------------------

    @property
    def n_subfaults(self) -> int:
        """Fault mesh size."""
        return self.mesh[0] * self.mesh[1]

    def content_digest(self) -> str:
        """Content-addressed sha256 of the full configuration.

        Hashes the canonical file serialization (:meth:`write`'s
        format), so two configs that would produce byte-identical
        products share a digest. This is the coarse key of the service
        layer's request coalescing: the config determines the geometry,
        station network, and seed, and therefore the downstream
        content-addressed GF-bank and K-L keys
        (:func:`~repro.core.gfcache.gf_bank_key`,
        :mod:`repro.seismo.klcache`).
        """
        lines = [
            f"{self.n_waveforms}",
            f"{self.n_stations}",
            f"{self.chunk_a}",
            f"{self.chunk_c}",
            f"{self.recycle_distances}",
            f"{self.mesh[0]}x{self.mesh[1]}",
            f"{self.mw_range[0]!r}-{self.mw_range[1]!r}",
            f"{self.retries}",
            f"{self.max_idle}",
            f"{self.gf_dtype}",
            f"{self.seed}",
            self.name,
        ]
        material = "fdwconfig-v1\x1f" + "\x1f".join(lines)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def with_waveforms(self, n: int, name: str | None = None) -> "FdwConfig":
        """Copy with a different catalog size (and optionally name)."""
        return replace(self, n_waveforms=n, name=name or self.name)

    # -- file round-trip ------------------------------------------------------

    @classmethod
    def read(cls, path: str | Path) -> "FdwConfig":
        """Parse a config file.

        Raises
        ------
        ConfigError
            On missing file/section, unknown keys, or bad values.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"config file not found: {path}")
        parser = configparser.ConfigParser()
        try:
            parser.read_string(path.read_text(), source=str(path))
        except configparser.Error as exc:
            raise ConfigError(f"{path}: {exc}") from exc
        if "fdw" not in parser:
            raise ConfigError(f"{path}: missing [fdw] section")
        section = parser["fdw"]
        known = {
            "n_waveforms",
            "n_stations",
            "chunk_a",
            "chunk_c",
            "recycle_distances",
            "mesh",
            "mw_range",
            "retries",
            "max_idle",
            "gf_dtype",
            "seed",
            "name",
        }
        unknown = set(section) - known
        if unknown:
            raise ConfigError(f"{path}: unknown keys {sorted(unknown)}")
        kwargs: dict = {}
        try:
            for key in ("n_waveforms", "n_stations", "chunk_a", "chunk_c", "retries",
                        "max_idle", "seed"):
                if key in section:
                    kwargs[key] = section.getint(key)
            if "recycle_distances" in section:
                kwargs["recycle_distances"] = section.getboolean("recycle_distances")
            if "mesh" in section:
                parts = [int(x) for x in section["mesh"].split("x")]
                if len(parts) != 2:
                    raise ConfigError(f"{path}: mesh must look like '30x15'")
                kwargs["mesh"] = (parts[0], parts[1])
            if "mw_range" in section:
                parts_f = [float(x) for x in section["mw_range"].split("-")]
                if len(parts_f) != 2:
                    raise ConfigError(f"{path}: mw_range must look like '7.5-9.2'")
                kwargs["mw_range"] = (parts_f[0], parts_f[1])
            if "gf_dtype" in section:
                kwargs["gf_dtype"] = section["gf_dtype"]
            if "name" in section:
                kwargs["name"] = section["name"]
        except ValueError as exc:
            raise ConfigError(f"{path}: {exc}") from exc
        return cls(**kwargs)

    def write(self, path: str | Path) -> Path:
        """Write the config in the file format :meth:`read` parses."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            "[fdw]",
            f"n_waveforms = {self.n_waveforms}",
            f"n_stations = {self.n_stations}",
            f"chunk_a = {self.chunk_a}",
            f"chunk_c = {self.chunk_c}",
            f"recycle_distances = {str(self.recycle_distances).lower()}",
            f"mesh = {self.mesh[0]}x{self.mesh[1]}",
            f"mw_range = {self.mw_range[0]}-{self.mw_range[1]}",
            f"retries = {self.retries}",
            f"max_idle = {self.max_idle}",
            f"gf_dtype = {self.gf_dtype}",
            f"seed = {self.seed}",
            f"name = {self.name}",
        ]
        path.write_text("\n".join(lines) + "\n")
        return path
