"""The FakeQuakes DAGMan Workflow (FDW) — the paper's core contribution.

* :mod:`repro.core.config` — the user-edited configuration file,
* :mod:`repro.core.phases` — job planning for the three phases,
* :mod:`repro.core.workflow` — FDW DAG construction,
* :mod:`repro.core.local` — single-machine execution (the AWS control),
* :mod:`repro.core.submit_osg` — running FDW DAGs on the pool simulator,
* :mod:`repro.core.partition` — partitioned concurrent DAGMans,
* :mod:`repro.core.monitor` — log-based monitoring and statistics,
* :mod:`repro.core.traces` — CSV traces for the bursting simulator,
* :mod:`repro.core.stats` — the paper's equations (1)-(7).
"""

from repro.core.config import FdwConfig
from repro.core.ensemble import RepeatedRuns, run_repeated
from repro.core.local import LocalRunner, LocalRunResult
from repro.core.monitor import DagmanStats
from repro.core.partition import partition_config
from repro.core.phases import PhasePlan, plan_phases
from repro.core.submit_osg import FdwBatchResult, run_fdw_batch
from repro.core.workflow import build_fdw_dag

__all__ = [
    "DagmanStats",
    "FdwBatchResult",
    "FdwConfig",
    "LocalRunner",
    "LocalRunResult",
    "PhasePlan",
    "RepeatedRuns",
    "build_fdw_dag",
    "partition_config",
    "plan_phases",
    "run_fdw_batch",
    "run_repeated",
]
