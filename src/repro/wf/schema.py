"""WfFormat-compatible workflow instances (WfCommons interchange).

WfCommons (Coleman et al., 2021) defines a common JSON format —
*WfFormat* — for workflow instances: tasks with runtimes, parent/child
edges, input/output files with sizes, and the machines they ran on.
This module is our validated in-memory model of that format plus strict
JSON load/dump, so any simulator in this repository can consume (and
produce) instances interchangeably with WfCommons tooling.

The on-disk layout follows WfFormat 1.4::

    {
      "name": "...", "description": "...", "schemaVersion": "1.4",
      "wms": {"name": "...", "version": "..."},
      "workflow": {
        "makespanInSeconds": 1234.5,
        "machines": [{"nodeName": "...", "cpu": {"count": 4, "speed": 2400}}],
        "tasks": [
          {"name": "...", "category": "...", "type": "compute",
           "runtimeInSeconds": 150.0,
           "parents": [...], "children": [...],
           "files": [{"name": "...", "sizeInBytes": 1048576, "link": "input"}],
           "cores": 4, "memoryInBytes": 8589934592,
           "command": {"program": "...", "arguments": [...]}}
        ]
      }
    }

Two documented extensions carry what the FDW round-trip needs and plain
WfFormat has no slot for: a per-task ``"retries"`` count plus an FDW
``"payload"`` (phase / nItems / nStations), and an instance-level
``"attributes"`` object (e.g. the DAGMan ``max_idle`` throttle and the
pool seed). Both are omitted from the JSON when empty, so exported
instances stay readable by WfCommons parsers, and unknown keys in
*loaded* documents are ignored, so real downloaded WfCommons traces
parse. Known keys are validated strictly: wrong types, negative sizes
or runtimes, dangling parent/child references, asymmetric edges, and
cycles all raise :class:`~repro.errors.WfFormatError`.

File sizes are kept in **bytes** (ints in typical WfFormat documents,
floats allowed); because 1 MB = 2**20 bytes is a power of two, the
MB<->bytes conversions used by the importer/exporter are exact in
binary floating point, which is what makes the export→import→replay
round trip bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import WfFormatError

__all__ = [
    "SCHEMA_VERSION",
    "WfFile",
    "WfMachine",
    "WfPayload",
    "WfTask",
    "WfInstance",
    "load_instance",
    "loads_instance",
    "dump_instance",
    "dumps_instance",
]

#: WfFormat schema version this module reads and writes.
SCHEMA_VERSION = "1.4"

_LINKS = ("input", "output")


@dataclass(frozen=True)
class WfFile:
    """One file a task reads (``link="input"``) or writes (``"output"``)."""

    name: str
    size_bytes: float
    link: str = "input"

    def __post_init__(self) -> None:
        if not self.name:
            raise WfFormatError("file name must be non-empty")
        if self.size_bytes < 0:
            raise WfFormatError(f"file {self.name!r}: negative size {self.size_bytes}")
        if self.link not in _LINKS:
            raise WfFormatError(f"file {self.name!r}: link must be one of {_LINKS}")

    @property
    def size_mb(self) -> float:
        """Size in MB (exact: 2**20 divides binary floats exactly)."""
        return self.size_bytes / 1048576.0


@dataclass(frozen=True)
class WfMachine:
    """A machine specification (informational; the pool model is capacity-based)."""

    name: str
    cpu_cores: int = 1
    cpu_speed_mhz: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WfFormatError("machine name must be non-empty")
        if self.cpu_cores < 1:
            raise WfFormatError(f"machine {self.name!r}: cpu_cores must be >= 1")


@dataclass(frozen=True)
class WfPayload:
    """FDW payload extension: what the task computes (phase semantics).

    Present on instances exported from FDW runs; absent on generic
    WfCommons traces. The importer turns it back into a
    :class:`~repro.condor.jobs.JobPayload` so the calibrated runtime
    model and the phase-aware bursting policies keep working.
    """

    phase: str
    n_items: int = 1
    n_stations: int = 1

    def __post_init__(self) -> None:
        if not self.phase:
            raise WfFormatError("payload phase must be non-empty")
        if self.n_items < 1 or self.n_stations < 1:
            raise WfFormatError("payload sizes must be >= 1")


@dataclass(frozen=True)
class WfTask:
    """One task of a workflow instance."""

    name: str
    category: str
    runtime_s: float
    parents: tuple[str, ...] = ()
    children: tuple[str, ...] = ()
    files: tuple[WfFile, ...] = ()
    cores: int = 1
    memory_mb: int | None = None
    retries: int = 0
    program: str | None = None
    arguments: tuple[str, ...] = ()
    payload: WfPayload | None = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise WfFormatError(f"bad task name {self.name!r}")
        if not self.category:
            raise WfFormatError(f"task {self.name!r}: category must be non-empty")
        if self.runtime_s < 0:
            raise WfFormatError(f"task {self.name!r}: negative runtime {self.runtime_s}")
        if self.cores < 1:
            raise WfFormatError(f"task {self.name!r}: cores must be >= 1")
        if self.memory_mb is not None and self.memory_mb < 1:
            raise WfFormatError(f"task {self.name!r}: memory_mb must be >= 1")
        if self.retries < 0:
            raise WfFormatError(f"task {self.name!r}: retries must be >= 0")

    def input_files(self) -> tuple[WfFile, ...]:
        """The task's staged inputs."""
        return tuple(f for f in self.files if f.link == "input")


@dataclass(frozen=True)
class WfInstance:
    """A validated workflow instance: tasks, edges, files, machines."""

    name: str
    tasks: tuple[WfTask, ...]
    description: str = ""
    schema_version: str = SCHEMA_VERSION
    wms_name: str = "repro-osg-sim"
    wms_version: str = "1.0"
    makespan_s: float | None = None
    machines: tuple[WfMachine, ...] = ()
    attributes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WfFormatError("instance name must be non-empty")
        if not self.tasks:
            raise WfFormatError(f"instance {self.name!r} has no tasks")
        if self.makespan_s is not None and self.makespan_s < 0:
            raise WfFormatError(f"instance {self.name!r}: negative makespan")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise WfFormatError(f"instance {self.name!r}: duplicate tasks {dupes}")
        by_name = {t.name: t for t in self.tasks}
        # Membership goes against per-task sets, not the parents/children
        # tuples: a wide fan-in (the FDW's all-to-all B stage) would make
        # tuple scans quadratic in the edge count at million-task scale.
        parent_sets = {t.name: frozenset(t.parents) for t in self.tasks}
        child_sets = {t.name: frozenset(t.children) for t in self.tasks}
        for task in self.tasks:
            for ref in (*task.parents, *task.children):
                if ref not in by_name:
                    raise WfFormatError(
                        f"task {task.name!r} references unknown task {ref!r}"
                    )
            for parent in task.parents:
                if task.name not in child_sets[parent]:
                    raise WfFormatError(
                        f"asymmetric edge: {task.name!r} lists parent {parent!r} "
                        f"but {parent!r} does not list it as a child"
                    )
            for child in task.children:
                if task.name not in parent_sets[child]:
                    raise WfFormatError(
                        f"asymmetric edge: {task.name!r} lists child {child!r} "
                        f"but {child!r} does not list it as a parent"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Kahn's algorithm; raises on a cycle (schema-level, no networkx)."""
        in_deg = {t.name: len(t.parents) for t in self.tasks}
        queue = [n for n, d in in_deg.items() if d == 0]
        seen = 0
        by_name = {t.name: t for t in self.tasks}
        while queue:
            name = queue.pop()
            seen += 1
            for child in by_name[name].children:
                in_deg[child] -= 1
                if in_deg[child] == 0:
                    queue.append(child)
        if seen != len(self.tasks):
            stuck = sorted(n for n, d in in_deg.items() if d > 0)
            raise WfFormatError(
                f"instance {self.name!r} contains a cycle (involving {stuck[:5]})"
            )

    # -- queries ------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """Tasks in the instance."""
        return len(self.tasks)

    def task(self, name: str) -> WfTask:
        """Task by name."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise WfFormatError(f"unknown task {name!r}")

    def n_edges(self) -> int:
        """Parent->child edge count."""
        return sum(len(t.parents) for t in self.tasks)

    def categories(self) -> list[str]:
        """Distinct task categories, sorted."""
        return sorted({t.category for t in self.tasks})

    def levels(self) -> dict[str, int]:
        """Longest-path depth of every task (roots are level 0)."""
        by_name = {t.name: t for t in self.tasks}
        level: dict[str, int] = {}
        in_deg = {t.name: len(t.parents) for t in self.tasks}
        queue = [n for n, d in in_deg.items() if d == 0]
        for name in queue:
            level[name] = 0
        while queue:
            name = queue.pop()
            for child in by_name[name].children:
                level[child] = max(level.get(child, 0), level[name] + 1)
                in_deg[child] -= 1
                if in_deg[child] == 0:
                    queue.append(child)
        return level


# -- JSON load/dump ----------------------------------------------------------


def _num(value: object, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WfFormatError(f"{where}: expected a number, got {value!r}")
    return float(value)


def _str(value: object, where: str) -> str:
    if not isinstance(value, str):
        raise WfFormatError(f"{where}: expected a string, got {value!r}")
    return value


def _str_list(value: object, where: str) -> tuple[str, ...]:
    if not isinstance(value, list) or any(not isinstance(v, str) for v in value):
        raise WfFormatError(f"{where}: expected a list of strings, got {value!r}")
    return tuple(value)


def _parse_file(raw: object, where: str) -> WfFile:
    if not isinstance(raw, dict):
        raise WfFormatError(f"{where}: file entry must be an object, got {raw!r}")
    if "sizeInBytes" in raw:
        size = _num(raw["sizeInBytes"], f"{where}.sizeInBytes")
    elif "size" in raw:  # WfFormat <= 1.3
        size = _num(raw["size"], f"{where}.size")
    else:
        raise WfFormatError(f"{where}: file entry missing sizeInBytes")
    return WfFile(
        name=_str(raw.get("name", ""), f"{where}.name"),
        size_bytes=size,
        link=_str(raw.get("link", "input"), f"{where}.link"),
    )


def _parse_task(raw: object, where: str) -> WfTask:
    if not isinstance(raw, dict):
        raise WfFormatError(f"{where}: task must be an object, got {raw!r}")
    name = _str(raw.get("name", ""), f"{where}.name")
    if "runtimeInSeconds" in raw:
        runtime = _num(raw["runtimeInSeconds"], f"{where}.runtimeInSeconds")
    elif "runtime" in raw:  # WfFormat <= 1.3
        runtime = _num(raw["runtime"], f"{where}.runtime")
    else:
        raise WfFormatError(f"{where} ({name!r}): missing runtimeInSeconds")
    memory_mb: int | None = None
    if raw.get("memoryInBytes") is not None:
        memory_mb = int(_num(raw["memoryInBytes"], f"{where}.memoryInBytes") / 1048576.0)
    program: str | None = None
    arguments: tuple[str, ...] = ()
    command = raw.get("command")
    if command is not None:
        if not isinstance(command, dict):
            raise WfFormatError(f"{where}.command: expected an object")
        if command.get("program") is not None:
            program = _str(command["program"], f"{where}.command.program")
        if "arguments" in command:
            arguments = _str_list(command["arguments"], f"{where}.command.arguments")
    payload: WfPayload | None = None
    raw_payload = raw.get("payload")
    if raw_payload is not None:
        if not isinstance(raw_payload, dict):
            raise WfFormatError(f"{where}.payload: expected an object")
        payload = WfPayload(
            phase=_str(raw_payload.get("phase", ""), f"{where}.payload.phase"),
            n_items=int(_num(raw_payload.get("nItems", 1), f"{where}.payload.nItems")),
            n_stations=int(
                _num(raw_payload.get("nStations", 1), f"{where}.payload.nStations")
            ),
        )
    return WfTask(
        name=name,
        category=_str(raw.get("category", name), f"{where}.category"),
        runtime_s=runtime,
        parents=_str_list(raw.get("parents", []), f"{where}.parents"),
        children=_str_list(raw.get("children", []), f"{where}.children"),
        files=tuple(
            _parse_file(f, f"{where}.files[{i}]")
            for i, f in enumerate(raw.get("files", []))
        ),
        cores=int(_num(raw.get("cores", 1), f"{where}.cores")),
        memory_mb=memory_mb,
        retries=int(_num(raw.get("retries", 0), f"{where}.retries")),
        program=program,
        arguments=arguments,
        payload=payload,
    )


def _parse_machine(raw: object, where: str) -> WfMachine:
    if not isinstance(raw, dict):
        raise WfFormatError(f"{where}: machine must be an object, got {raw!r}")
    cpu = raw.get("cpu", {})
    if not isinstance(cpu, dict):
        raise WfFormatError(f"{where}.cpu: expected an object")
    cores = cpu.get("count", cpu.get("coreCount", 1))
    speed = cpu.get("speed", cpu.get("speedInMHz"))
    return WfMachine(
        name=_str(raw.get("nodeName", raw.get("name", "")), f"{where}.nodeName"),
        cpu_cores=int(_num(cores, f"{where}.cpu.count")),
        cpu_speed_mhz=None if speed is None else int(_num(speed, f"{where}.cpu.speed")),
    )


def loads_instance(text: str, source: str = "<string>") -> WfInstance:
    """Parse a WfFormat JSON document from a string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WfFormatError(f"{source}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise WfFormatError(f"{source}: top level must be an object")
    workflow = doc.get("workflow")
    if not isinstance(workflow, dict):
        raise WfFormatError(f"{source}: missing 'workflow' object")
    raw_tasks = workflow.get("tasks")
    if not isinstance(raw_tasks, list):
        raise WfFormatError(f"{source}: workflow.tasks must be a list")
    tasks = [_parse_task(t, f"{source}: tasks[{i}]") for i, t in enumerate(raw_tasks)]
    # Tolerate instances that only declare one edge direction (some
    # generators emit parents only): derive the missing side.
    tasks = _symmetrize(tasks)
    wms = doc.get("wms", {})
    if not isinstance(wms, dict):
        raise WfFormatError(f"{source}: wms must be an object")
    makespan = workflow.get("makespanInSeconds", workflow.get("makespan"))
    attributes = doc.get("attributes", {})
    if not isinstance(attributes, dict):
        raise WfFormatError(f"{source}: attributes must be an object")
    return WfInstance(
        name=_str(doc.get("name", "workflow"), f"{source}: name"),
        description=_str(doc.get("description", ""), f"{source}: description"),
        schema_version=_str(
            doc.get("schemaVersion", SCHEMA_VERSION), f"{source}: schemaVersion"
        ),
        wms_name=_str(wms.get("name", "unknown"), f"{source}: wms.name"),
        wms_version=_str(wms.get("version", "0"), f"{source}: wms.version"),
        makespan_s=None if makespan is None else _num(makespan, f"{source}: makespan"),
        machines=tuple(
            _parse_machine(m, f"{source}: machines[{i}]")
            for i, m in enumerate(workflow.get("machines", []))
        ),
        tasks=tuple(tasks),
        attributes=dict(attributes),
    )


def _symmetrize(tasks: list[WfTask]) -> list[WfTask]:
    """Fill in missing parent/child back-references (tolerant load)."""
    parents: dict[str, set[str]] = {t.name: set(t.parents) for t in tasks}
    children: dict[str, set[str]] = {t.name: set(t.children) for t in tasks}
    for t in tasks:
        for p in t.parents:
            if p in children:
                children[p].add(t.name)
        for c in t.children:
            if c in parents:
                parents[c].add(t.name)
    out = []
    for t in tasks:
        want_parents = tuple(sorted(parents[t.name]))
        want_children = tuple(sorted(children[t.name]))
        if t.parents != want_parents or t.children != want_children:
            t = WfTask(
                name=t.name,
                category=t.category,
                runtime_s=t.runtime_s,
                parents=want_parents,
                children=want_children,
                files=t.files,
                cores=t.cores,
                memory_mb=t.memory_mb,
                retries=t.retries,
                program=t.program,
                arguments=t.arguments,
                payload=t.payload,
            )
        out.append(t)
    return out


def load_instance(path: str | Path) -> WfInstance:
    """Load and validate a WfFormat JSON file."""
    path = Path(path)
    if not path.exists():
        raise WfFormatError(f"instance file not found: {path}")
    return loads_instance(path.read_text(), source=str(path))


def _size_json(size_bytes: float) -> int | float:
    return int(size_bytes) if float(size_bytes).is_integer() else size_bytes


def _task_json(task: WfTask) -> dict:
    out: dict = {
        "name": task.name,
        "category": task.category,
        "type": "compute",
        "runtimeInSeconds": task.runtime_s,
        "parents": list(task.parents),
        "children": list(task.children),
        "files": [
            {"name": f.name, "sizeInBytes": _size_json(f.size_bytes), "link": f.link}
            for f in task.files
        ],
        "cores": task.cores,
    }
    if task.memory_mb is not None:
        out["memoryInBytes"] = task.memory_mb * 1048576
    if task.program is not None or task.arguments:
        out["command"] = {"program": task.program, "arguments": list(task.arguments)}
    if task.retries:
        out["retries"] = task.retries
    if task.payload is not None:
        out["payload"] = {
            "phase": task.payload.phase,
            "nItems": task.payload.n_items,
            "nStations": task.payload.n_stations,
        }
    return out


def dumps_instance(instance: WfInstance) -> str:
    """Render an instance as canonical WfFormat JSON text.

    The rendering is deterministic (stable key and task order, no
    timestamps), so identical instances produce byte-identical
    documents — the basis of the CI round-trip diff.
    """
    workflow: dict = {}
    if instance.makespan_s is not None:
        workflow["makespanInSeconds"] = instance.makespan_s
    if instance.machines:
        workflow["machines"] = [
            {
                "nodeName": m.name,
                "cpu": {"count": m.cpu_cores}
                | ({} if m.cpu_speed_mhz is None else {"speed": m.cpu_speed_mhz}),
            }
            for m in instance.machines
        ]
    workflow["tasks"] = [_task_json(t) for t in instance.tasks]
    doc: dict = {
        "name": instance.name,
        "description": instance.description,
        "schemaVersion": instance.schema_version,
        "wms": {"name": instance.wms_name, "version": instance.wms_version},
        "workflow": workflow,
    }
    if instance.attributes:
        doc["attributes"] = instance.attributes
    return json.dumps(doc, indent=2) + "\n"


def dump_instance(instance: WfInstance, path: str | Path) -> Path:
    """Write an instance to a WfFormat JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_instance(instance))
    return path
