"""WfFormat workflow interchange (paper §2.2's WfCommons connection).

The :mod:`repro.wf` package speaks the WfCommons community trace format
(WfFormat): it exports completed simulated FDW runs as WfFormat
instances, imports any WfFormat instance back into the simulators'
native structures, generates WfChef-style synthetic instances at
arbitrary scale, and replays imported or generated instances through
the OSPool and bursting simulators. See DESIGN.md ("Workflow
interchange") for the concept mapping and the round-trip guarantee.
"""

from repro.wf.export import export_fdw_run, instance_from_dag, runtimes_from_metrics
from repro.wf.generate import generate_instance, partition_instance
from repro.wf.importer import ImportedWorkflow, import_instance
from repro.wf.replay import (
    CategoryCloudModel,
    ReplayResult,
    TraceRuntimeModel,
    metrics_to_batch_trace,
    replay_bursting,
    replay_instance,
    replay_study,
)
from repro.wf.schema import (
    SCHEMA_VERSION,
    WfFile,
    WfInstance,
    WfMachine,
    WfPayload,
    WfTask,
    dump_instance,
    dumps_instance,
    load_instance,
    loads_instance,
)

__all__ = [
    "SCHEMA_VERSION",
    "WfFile",
    "WfMachine",
    "WfPayload",
    "WfTask",
    "WfInstance",
    "load_instance",
    "loads_instance",
    "dump_instance",
    "dumps_instance",
    "instance_from_dag",
    "export_fdw_run",
    "runtimes_from_metrics",
    "ImportedWorkflow",
    "import_instance",
    "generate_instance",
    "partition_instance",
    "TraceRuntimeModel",
    "CategoryCloudModel",
    "ReplayResult",
    "replay_instance",
    "replay_study",
    "metrics_to_batch_trace",
    "replay_bursting",
]
