"""WfChef-style synthetic instance generation.

WfCommons' WfChef builds recipes by detecting the recurring task
patterns of a real instance and replicating them to arbitrary scale.
This module implements that mechanism over :class:`~repro.wf.schema.
WfInstance` directly:

* tasks are grouped into **types** — (topological level, category)
  pairs — the pattern occurrences WfChef replicates;
* singleton types (the FDW's distance bootstrap and Phase-B bottleneck,
  or any once-per-workflow stage) stay singletons; multi-task types
  scale proportionally to the requested size (largest-remainder
  apportionment, deterministic);
* per generated task, a *template* task of its type is drawn with
  :mod:`repro.rng`, resampling runtime, resources, payload, and unique
  input files from the source's empirical joint distribution;
* files staged by more than one source task (the recyclable ``.npy``
  pair, the GF archive) are kept **shared** — same logical name and
  size — so Stash-cache warm-up dynamics survive scaling;
* edges replicate the source's type-to-type wiring: all-to-all fan-ins
  stay all-to-all (A -> B, B -> C), anything sparser samples the
  source's in-degree distribution.

The whole construction is a pure function of ``(source, n_tasks,
seed)``: the same arguments produce a byte-identical instance.
"""

from __future__ import annotations

import math

from repro.errors import WfFormatError
from repro.rng import RngFactory, derive_seed
from repro.wf.schema import WfFile, WfInstance, WfTask

__all__ = ["generate_instance", "partition_instance"]


def _sanitize(category: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in category) or "task"


def _target_counts(
    ordered_types: list[tuple[int, str]], counts: dict[tuple[int, str], int], n_tasks: int
) -> dict[tuple[int, str], int]:
    """Apportion ``n_tasks`` across types (largest-remainder, deterministic)."""
    if n_tasks < len(ordered_types):
        raise WfFormatError(
            f"cannot generate {n_tasks} tasks: the source pattern has "
            f"{len(ordered_types)} task types"
        )
    singles = [t for t in ordered_types if counts[t] == 1]
    scalable = [t for t in ordered_types if counts[t] > 1]
    if not scalable:  # e.g. a pure chain: every stage replicates
        singles, scalable = [], list(ordered_types)
    out = {t: 1 for t in singles}
    remaining = n_tasks - len(singles)
    total = sum(counts[t] for t in scalable)
    raw = {t: remaining * counts[t] / total for t in scalable}
    for t in scalable:
        out[t] = max(1, math.floor(raw[t]))
    diff = remaining - sum(out[t] for t in scalable)
    # Hand out the leftover (or claw back the overshoot) by fractional
    # remainder; ties break on type order, so the result is deterministic.
    by_frac = sorted(scalable, key=lambda t: (-(raw[t] - math.floor(raw[t])), t))
    while diff != 0:
        progressed = False
        for t in by_frac if diff > 0 else reversed(by_frac):
            if diff > 0:
                out[t] += 1
                diff -= 1
                progressed = True
            elif out[t] > 1:
                out[t] -= 1
                diff += 1
                progressed = True
            if diff == 0:
                break
        if not progressed:
            raise WfFormatError(
                f"cannot reduce the source pattern to {n_tasks} tasks"
            )
    return out


def generate_instance(
    source: WfInstance, n_tasks: int, seed: int, *, name: str | None = None
) -> WfInstance:
    """Generate a synthetic instance of ``n_tasks`` tasks from a pattern.

    Deterministic: the same ``(source, n_tasks, seed)`` always yields an
    identical instance (asserted by the regression tests).
    """
    if n_tasks < 1:
        raise WfFormatError(f"n_tasks must be >= 1, got {n_tasks}")
    rng = RngFactory(seed).generator("wf", "generate")
    levels = source.levels()
    type_of = {t.name: (levels[t.name], t.category) for t in source.tasks}
    groups: dict[tuple[int, str], list[WfTask]] = {}
    for task in source.tasks:
        groups.setdefault(type_of[task.name], []).append(task)
    ordered_types = sorted(groups)
    counts = {t: len(g) for t, g in groups.items()}
    targets = _target_counts(ordered_types, counts, n_tasks)

    # Files staged by more than one source task keep their identity.
    usage: dict[str, int] = {}
    for task in source.tasks:
        for f in task.files:
            usage[f.name] = usage.get(f.name, 0) + 1
    shared = {fname for fname, n in usage.items() if n > 1}

    gen_name = name or f"{source.name}_gen{n_tasks}"
    gen_tasks: dict[tuple[int, str], list[dict]] = {}
    for wtype in ordered_types:
        level, category = wtype
        group = groups[wtype]
        slug = _sanitize(category)
        tasks_of_type: list[dict] = []
        for i in range(targets[wtype]):
            template = group[int(rng.integers(len(group)))]
            task_name = f"{gen_name}_{slug}_L{level}_{i:05d}"
            files = [f for f in template.files if f.name in shared]
            unique = [f for f in template.files if f.name not in shared]
            files += [
                WfFile(
                    name=f"{task_name}_in{j}", size_bytes=f.size_bytes, link=f.link
                )
                for j, f in enumerate(unique)
            ]
            tasks_of_type.append(
                {
                    "name": task_name,
                    "category": category,
                    "runtime_s": template.runtime_s,
                    "files": tuple(files),
                    "cores": template.cores,
                    "memory_mb": template.memory_mb,
                    "retries": template.retries,
                    "program": template.program,
                    "payload": template.payload,
                    "parents": set(),
                }
            )
        gen_tasks[wtype] = tasks_of_type

    # Type-to-type wiring observed in the source.
    for wtype in ordered_types:
        group = groups[wtype]
        parent_types = sorted(
            {type_of[p] for task in group for p in task.parents}
        )
        children = gen_tasks[wtype]
        for ptype in parent_types:
            pgroup = groups[ptype]
            in_degrees = [
                sum(1 for p in task.parents if type_of[p] == ptype) for task in group
            ]
            all_to_all = all(d == len(pgroup) for d in in_degrees)
            parents = gen_tasks[ptype]
            for child in children:
                if all_to_all:
                    chosen = range(len(parents))
                else:
                    d = int(in_degrees[int(rng.integers(len(in_degrees)))])
                    d = min(d, len(parents))
                    chosen = sorted(
                        int(k) for k in rng.choice(len(parents), size=d, replace=False)
                    )
                for k in chosen:
                    child["parents"].add(parents[k]["name"])
        # A type whose source tasks all had parents must not generate
        # orphan roots (that would shift every downstream level).
        if parent_types and all(len(t.parents) > 0 for t in group):
            fallback = gen_tasks[parent_types[0]]
            for child in children:
                if not child["parents"]:
                    child["parents"].add(
                        fallback[int(rng.integers(len(fallback)))]["name"]
                    )

    # Materialize WfTasks with symmetric parent/child tuples.
    all_gen = [t for wtype in ordered_types for t in gen_tasks[wtype]]
    children_of: dict[str, set[str]] = {t["name"]: set() for t in all_gen}
    for t in all_gen:
        for p in t["parents"]:
            children_of[p].add(t["name"])
    tasks = tuple(
        WfTask(
            name=t["name"],
            category=t["category"],
            runtime_s=t["runtime_s"],
            parents=tuple(sorted(t["parents"])),
            children=tuple(sorted(children_of[t["name"]])),
            files=t["files"],
            cores=t["cores"],
            memory_mb=t["memory_mb"],
            retries=t["retries"],
            program=t["program"],
            payload=t["payload"],
        )
        for t in all_gen
    )
    return WfInstance(
        name=gen_name,
        description=f"synthetic instance generated from {source.name!r} "
        f"(n_tasks={n_tasks}, seed={seed})",
        tasks=tasks,
        machines=source.machines,
        attributes={"generatedFrom": source.name, "seed": seed, "nTasks": n_tasks},
    )


def partition_instance(
    source: WfInstance, k: int, seed: int = 0
) -> list[WfInstance]:
    """Split a workload into ``k`` same-pattern instances (the paper's
    1/2/4/8 concurrent-DAGMan study, generalized to any instance).

    Task counts split as evenly as possible (remainders to the first
    partitions, like :func:`repro.core.partition.partition_config`) and
    each partition is generated with a derived seed, so the joint
    workload is deterministic.
    """
    if k < 1:
        raise WfFormatError(f"partition count must be >= 1, got {k}")
    if k == 1:
        return [source]
    n = source.n_tasks
    n_types = len({(lvl, source.task(t).category) for t, lvl in source.levels().items()})
    base, extra = divmod(n, k)
    counts = [base + (1 if i < extra else 0) for i in range(k)]
    if min(counts) < n_types:
        raise WfFormatError(
            f"cannot split {n} tasks across {k} DAGMans: each partition needs "
            f"at least {n_types} tasks (one per pattern type)"
        )
    return [
        generate_instance(
            source,
            counts[i],
            derive_seed(seed, "wf-partition", i),
            name=f"{source.name}_p{i:02d}",
        )
        for i in range(k)
    ]
