"""Universal replay: any WfFormat instance through the simulators.

``replay_instance`` drives an imported (or generated) instance through
the :class:`~repro.osg.pool.OSPoolSimulator` — including the paper's
1/2/4/8 concurrent-DAGMan partitioning study via
:func:`~repro.wf.generate.partition_instance` — and
``replay_bursting`` synthesizes the batch + per-job traces from the
resulting metrics so Policies 1–3 run on workloads that never came from
the FDW.

Two runtime modes:

``"trace"`` (default)
    Each task runs for exactly its recorded ``runtimeInSeconds`` (a
    :class:`TraceRuntimeModel` replaces the calibrated lognormal
    model) and jobs never fail — replay of what actually happened,
    which is also the only meaningful mode for non-FDW instances.

``"model"``
    The pool's calibrated stochastic :class:`~repro.osg.runtimes.
    RuntimeModel` runs unchanged. For an instance exported from an FDW
    simulation, replaying in model mode with the same pool
    configuration, capacity process, and seed consumes the exact same
    RNG streams and therefore reproduces the original simulated
    makespan **bit-identically** (asserted by the round-trip tests).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.errors import PolicyError, TraceError, WfFormatError
from repro.bursting.cloud import CloudJobModel
from repro.bursting.policies import (
    LowThroughputPolicy,
    QueueTimePolicy,
    SubmissionGapPolicy,
)
from repro.bursting.simulator import BurstingResult, BurstingSimulator
from repro.condor.dagman import DagmanOptions
from repro.condor.events import UserLog
from repro.core.stats import EC2_A1_XLARGE_USD_PER_MINUTE, bursting_cost_usd
from repro.core.traces import BatchTrace, JobTrace
from repro.osg.capacity import CapacityProcess
from repro.osg.metrics import PoolMetrics
from repro.osg.pool import OSPoolConfig, OSPoolSimulator
from repro.wf.generate import partition_instance
from repro.wf.importer import ImportedWorkflow, import_instance
from repro.wf.schema import WfInstance

__all__ = [
    "TraceRuntimeModel",
    "CategoryCloudModel",
    "ReplayResult",
    "replay_instance",
    "replay_study",
    "metrics_to_batch_trace",
    "replay_bursting",
]

_FDW_PHASES = frozenset({"A", "B", "C", "dist"})


@dataclass(frozen=True)
class TraceRuntimeModel:
    """Runtime model that replays traced per-task runtimes verbatim.

    Duck-types :class:`~repro.osg.runtimes.RuntimeModel` for the pool
    simulator: ``sample_seconds`` looks the job up by name and returns
    its recorded duration (clamped to the simulator's 1 s floor),
    consuming no randomness. Tasks absent from the table — e.g. nodes
    added after an import — fall back to ``default_s``.
    """

    runtimes: Mapping[str, float]
    default_s: float = 300.0

    def sample_seconds(self, spec, rng) -> float:
        """Recorded duration of ``spec.name`` (``rng`` is untouched)."""
        return max(1.0, float(self.runtimes.get(spec.name, self.default_s)))


@dataclass(frozen=True)
class CategoryCloudModel:
    """Constant-time cloud model for arbitrary task categories.

    Duck-types :class:`~repro.bursting.cloud.CloudJobModel` for the
    bursting simulator: any category present in ``durations_s`` is
    burstable and completes on VDC in its constant recorded time —
    the paper's 287 s / 144 s mechanism generalized beyond rupture and
    waveform jobs.
    """

    durations_s: Mapping[str, float]
    usd_per_minute: float = EC2_A1_XLARGE_USD_PER_MINUTE

    def __post_init__(self) -> None:
        if not self.durations_s:
            raise PolicyError("CategoryCloudModel needs at least one category")
        bad = {c: d for c, d in self.durations_s.items() if d <= 0}
        if bad:
            raise PolicyError(f"cloud durations must be positive: {bad}")
        if self.usd_per_minute < 0:
            raise PolicyError("cloud price must be non-negative")

    # The bursting simulator sizes its replay horizon from these two
    # attributes; the extremes bound every category's duration.
    @property
    def rupture_seconds(self) -> float:
        """Longest per-category cloud duration (horizon bound)."""
        return max(self.durations_s.values())

    @property
    def waveform_seconds(self) -> float:
        """Shortest per-category cloud duration (horizon bound)."""
        return min(self.durations_s.values())

    def is_burstable(self, phase: str) -> bool:
        """True when ``phase`` (a task category) has a cloud duration."""
        return phase in self.durations_s

    def duration_s(self, phase: str) -> float:
        """Constant cloud completion time for the category.

        Raises
        ------
        PolicyError
            For categories without a recorded duration.
        """
        try:
            return self.durations_s[phase]
        except KeyError:
            raise PolicyError(f"category {phase!r} is not burstable") from None

    def cost_usd(self, cloud_seconds: float) -> float:
        """Eq. (7): price of the consumed cloud time."""
        return bursting_cost_usd(cloud_seconds / 60.0, self.usd_per_minute)

    @classmethod
    def from_trace(
        cls, trace: BatchTrace, *, speedup: float = 1.0
    ) -> "CategoryCloudModel":
        """Derive per-category durations from a traced batch.

        Each category's cloud time is its mean traced execution time
        divided by ``speedup`` (1.0 models a cloud node on par with the
        mean OSG node; bursting still shortens the makespan by absorbing
        queue waits and stragglers).
        """
        if speedup <= 0:
            raise PolicyError(f"speedup must be positive, got {speedup}")
        sums: dict[str, list[float]] = {}
        for job in trace.jobs:
            sums.setdefault(job.phase, []).append(job.exec_s)
        durations = {
            phase: max(1.0, float(np.mean(values)) / speedup)
            for phase, values in sorted(sums.items())
        }
        return cls(durations_s=durations)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one :func:`replay_instance` call."""

    #: The source instance (the original when ``n_dagmans == 1``).
    instance: WfInstance
    #: One imported workflow per concurrent DAGMan.
    workflows: tuple[ImportedWorkflow, ...]
    metrics: PoolMetrics
    #: Per-DAGMan HTCondor-style user logs (monitoring-pipeline input).
    user_logs: dict[str, UserLog] = field(repr=False)
    seed: int
    runtime_mode: str

    @property
    def n_dagmans(self) -> int:
        """Concurrent DAGMans in the replay."""
        return len(self.workflows)

    @property
    def makespan_s(self) -> float:
        """First submission to last DAGMan completion."""
        summaries = self.metrics.dagmans.values()
        return max(s.end_time for s in summaries) - min(
            s.submit_time for s in summaries
        )

    @property
    def dagman_names(self) -> tuple[str, ...]:
        """Names of the replayed DAGMans, in submission order."""
        return tuple(w.name for w in self.workflows)


def _resolve_workflows(
    source: WfInstance | ImportedWorkflow | str | Path,
    n_dagmans: int,
    seed: int,
) -> tuple[WfInstance, list[ImportedWorkflow]]:
    if isinstance(source, ImportedWorkflow):
        instance = source.instance
        if n_dagmans == 1:
            return instance, [source]
    else:
        imported = import_instance(source)
        instance = imported.instance
        if n_dagmans == 1:
            return instance, [imported]
    parts = partition_instance(instance, n_dagmans, seed)
    return instance, [import_instance(part) for part in parts]


def replay_instance(
    source: WfInstance | ImportedWorkflow | str | Path,
    *,
    n_dagmans: int = 1,
    seed: int = 0,
    runtime: str = "trace",
    config: OSPoolConfig | None = None,
    capacity: CapacityProcess | None = None,
    options: DagmanOptions | None = None,
    stagger_s: float = 0.0,
    engine: str = "vector",
) -> ReplayResult:
    """Run a WfFormat instance through the OSPool simulator.

    Parameters
    ----------
    source:
        A :class:`~repro.wf.schema.WfInstance`, an already-imported
        workflow, or a path to a WfFormat JSON document.
    n_dagmans:
        Concurrent DAGMans. Above 1 the instance is re-generated into
        that many same-pattern partitions (the paper's partitioning
        study applied to arbitrary instances).
    runtime:
        ``"trace"`` or ``"model"`` — see the module docstring.
    config / capacity / options:
        Pool overrides. In trace mode the config's runtime model is
        replaced by a :class:`TraceRuntimeModel` and jobs never fail
        (``success_prob`` forced to 1): the trace already embodies the
        retries that happened.
    stagger_s:
        Submission offset between consecutive DAGMans.
    engine:
        Pool simulator engine — ``"vector"`` (default) or
        ``"reference"``; both are bit-identical (see
        :class:`~repro.osg.pool.OSPoolSimulator`).
    """
    if n_dagmans < 1:
        raise WfFormatError(f"n_dagmans must be >= 1, got {n_dagmans}")
    if runtime not in ("trace", "model"):
        raise WfFormatError(f"runtime must be 'trace' or 'model', got {runtime!r}")
    if stagger_s < 0:
        raise WfFormatError(f"stagger_s must be >= 0, got {stagger_s}")
    instance, workflows = _resolve_workflows(source, n_dagmans, seed)
    if options is None and "maxIdle" in instance.attributes:
        # Exported FDW runs record their DAGMan idle throttle; honouring
        # it is part of the bit-identical round-trip contract.
        options = DagmanOptions(max_idle=int(instance.attributes["maxIdle"]))
    pool_config = config or OSPoolConfig()
    if runtime == "trace":
        merged: dict[str, float] = {}
        for wf in workflows:
            merged.update(wf.runtimes)
        pool_config = replace(
            pool_config,
            runtime=TraceRuntimeModel(runtimes=merged),
            success_prob=1.0,
        )
    pool = OSPoolSimulator(
        config=pool_config, capacity=capacity, seed=seed, engine=engine
    )
    for i, wf in enumerate(workflows):
        pool.submit_dagman(wf.dag, options, name=wf.name, at_time=i * stagger_s)
    metrics = pool.run()
    user_logs = {name: run.user_log for name, run in pool.dagman_runs.items()}
    return ReplayResult(
        instance=instance,
        workflows=tuple(workflows),
        metrics=metrics,
        user_logs=user_logs,
        seed=seed,
        runtime_mode=runtime,
    )


def replay_study(
    source: WfInstance | str | Path,
    counts: Sequence[int] = (1, 2, 4, 8),
    *,
    seed: int = 0,
    runtime: str = "trace",
    config: OSPoolConfig | None = None,
    capacity: CapacityProcess | None = None,
    options: DagmanOptions | None = None,
    stagger_s: float = 0.0,
    engine: str = "vector",
) -> dict[int, ReplayResult]:
    """The paper's concurrent-DAGMan study on an arbitrary instance.

    Replays the same workload split across each DAGMan count in
    ``counts`` (default 1/2/4/8) and returns the results keyed by
    count — makespans compare exactly like Figure 4's.
    """
    if not counts:
        raise WfFormatError("counts must not be empty")
    instance = (
        source if isinstance(source, WfInstance) else import_instance(source).instance
    )
    return {
        k: replay_instance(
            instance,
            n_dagmans=k,
            seed=seed,
            runtime=runtime,
            config=config,
            capacity=capacity,
            options=options,
            stagger_s=stagger_s,
            engine=engine,
        )
        for k in counts
    }


def metrics_to_batch_trace(metrics: PoolMetrics, dagman: str) -> BatchTrace:
    """Synthesize one DAGMan's bursting trace directly from pool metrics.

    The in-memory equivalent of :func:`repro.core.traces.export_traces`
    + :func:`~repro.core.traces.read_traces`: successful completions
    become the per-job trace, and the batch header takes the DAGMan's
    submit/end times with the earliest EXECUTE across *all* attempts.

    Raises
    ------
    TraceError
        If the DAGMan is unknown or has no successful jobs.
    """
    summary = metrics.dagmans.get(dagman)
    if summary is None:
        raise TraceError(f"no DAGMan {dagman!r} in the metrics")
    all_records = metrics.for_dagman(dagman)
    records = [r for r in all_records if r.success]
    if not records:
        raise TraceError(f"DAGMan {dagman!r} has no successful jobs to trace")
    jobs = tuple(
        JobTrace(
            node=r.node_name,
            phase=r.phase,
            submit_s=r.submit_time,
            start_s=r.start_time,
            end_s=r.end_time,
        )
        for r in sorted(records, key=lambda r: r.submit_time)
    )
    return BatchTrace(
        dagman=dagman,
        submit_s=summary.submit_time,
        first_execute_s=min(r.start_time for r in all_records),
        end_s=summary.end_time,
        jobs=jobs,
    )


def _default_policies() -> list:
    return [LowThroughputPolicy(), QueueTimePolicy(), SubmissionGapPolicy()]


def replay_bursting(
    result: ReplayResult,
    policies: list | None = None,
    cloud: CloudJobModel | CategoryCloudModel | None = None,
    *,
    max_burst_fraction: float | None = None,
    cloud_speedup: float = 1.0,
) -> dict[str, BurstingResult]:
    """Run the bursting policies over every DAGMan of a replay.

    ``policies`` defaults to fresh instances of Policies 1–3. ``cloud``
    defaults to the paper's :class:`~repro.bursting.cloud.CloudJobModel`
    when the replay's jobs are FDW-phased, and to a
    :class:`CategoryCloudModel` derived from each batch's own traced
    durations otherwise — so Policies 1–3 run unmodified on workloads
    that never came from the FDW.
    """
    results: dict[str, BurstingResult] = {}
    for wf in result.workflows:
        trace = metrics_to_batch_trace(result.metrics, wf.name)
        if cloud is not None:
            batch_cloud = cloud
        elif {j.phase for j in trace.jobs} <= _FDW_PHASES:
            batch_cloud = CloudJobModel()
        else:
            batch_cloud = CategoryCloudModel.from_trace(trace, speedup=cloud_speedup)
        sim = BurstingSimulator(
            trace,
            policies=policies if policies is not None else _default_policies(),
            cloud=batch_cloud,
            max_burst_fraction=max_burst_fraction,
        )
        results[wf.name] = sim.run()
    return results
