"""Export completed runs as WfFormat instances.

Serializes a :class:`~repro.condor.dagfile.DagDescription` plus the
per-node runtimes observed by a pool run
(:class:`~repro.osg.metrics.PoolMetrics`, or any name->seconds mapping,
e.g. one derived from :class:`~repro.core.monitor.JobTiming`) into a
:class:`~repro.wf.schema.WfInstance`. Everything the simulators need to
reproduce the run bit-identically round-trips: task order, edges,
retries, FDW payloads, commands, resource requests, and input-file
sizes (MB -> bytes conversion is exact, see :mod:`repro.wf.schema`).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import WfFormatError
from repro.condor.dagfile import DagDescription
from repro.osg.metrics import PoolMetrics
from repro.wf.schema import WfFile, WfInstance, WfMachine, WfPayload, WfTask

__all__ = [
    "instance_from_dag",
    "export_fdw_run",
    "runtimes_from_metrics",
]

#: Default machine entry for instances exported from the pool simulator
#: (the calibrated 4-core OSG node of the runtime model).
_OSG_MACHINE = WfMachine(name="ospool-sim", cpu_cores=4)


def runtimes_from_metrics(
    metrics: PoolMetrics, dagman: str | None = None
) -> dict[str, float]:
    """Per-node observed runtimes: the successful attempt's wall time.

    Raises
    ------
    WfFormatError
        When a node succeeded more than once (merged metrics from
        overlapping attempts would silently pick one).
    """
    runtimes: dict[str, float] = {}
    for record in metrics.records:
        if dagman is not None and record.dagman != dagman:
            continue
        if not record.success:
            continue
        if record.node_name in runtimes:
            raise WfFormatError(
                f"node {record.node_name!r} succeeded more than once in the metrics"
            )
        runtimes[record.node_name] = record.exec_s
    return runtimes


def instance_from_dag(
    dag: DagDescription,
    runtimes: Mapping[str, float],
    *,
    name: str | None = None,
    description: str = "",
    makespan_s: float | None = None,
    attributes: dict[str, object] | None = None,
) -> WfInstance:
    """Build a WfFormat instance from a DAG and per-node runtimes.

    Every DAG node must have a runtime; task order follows the DAG's
    node insertion order so an import rebuilds the exact same
    :class:`~repro.condor.dagman.DagmanEngine` ready-FIFO.
    """
    missing = [n for n in dag.node_names if n not in runtimes]
    if missing:
        raise WfFormatError(
            f"no runtime for {len(missing)} node(s), e.g. {missing[:3]} — "
            "export requires a completed run"
        )
    tasks = []
    for node_name in dag.node_names:
        node = dag.node(node_name)
        spec = node.spec
        payload = None
        if spec.payload is not None:
            payload = WfPayload(
                phase=spec.payload.phase,
                n_items=spec.payload.n_items,
                n_stations=spec.payload.n_stations,
            )
        tasks.append(
            WfTask(
                name=node_name,
                category=spec.payload.phase if spec.payload else "generic",
                runtime_s=float(runtimes[node_name]),
                parents=tuple(dag.parents(node_name)),
                children=tuple(dag.children(node_name)),
                files=tuple(
                    WfFile(name=fname, size_bytes=size_mb * 1048576.0, link="input")
                    for fname, size_mb in spec.input_files.items()
                ),
                cores=spec.request_cpus,
                memory_mb=spec.request_memory_mb,
                retries=node.retries,
                program=spec.executable,
                arguments=tuple(spec.arguments.split()),
                payload=payload,
            )
        )
    return WfInstance(
        name=name or dag.name,
        description=description,
        tasks=tuple(tasks),
        makespan_s=makespan_s,
        machines=(_OSG_MACHINE,),
        attributes=dict(attributes or {}),
    )


def export_fdw_run(
    dag: DagDescription,
    metrics: PoolMetrics,
    dagman: str | None = None,
    *,
    attributes: dict[str, object] | None = None,
) -> WfInstance:
    """Export one completed DAGMan of a pool run.

    ``dagman`` defaults to the DAG's own name. The instance records the
    DAGMan's makespan and each node's observed (successful-attempt)
    runtime.
    """
    dagman = dagman or dag.name
    summary = metrics.dagmans.get(dagman)
    if summary is None:
        raise WfFormatError(f"no DAGMan {dagman!r} in the metrics")
    runtimes = runtimes_from_metrics(metrics, dagman)
    return instance_from_dag(
        dag,
        runtimes,
        name=dagman,
        description=f"FDW run exported from the OSPool simulator ({dagman})",
        makespan_s=summary.runtime_s,
        attributes=attributes,
    )
