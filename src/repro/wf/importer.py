"""Import WfFormat instances into the simulators' native structures.

Turns any :class:`~repro.wf.schema.WfInstance` — an exported FDW run, a
downloaded WfCommons trace, or a generated synthetic instance — into:

* a :class:`~repro.condor.dagfile.DagDescription` whose nodes carry
  fully-formed :class:`~repro.condor.jobs.JobSpec`\\ s (input files in
  MB, payloads, resource requests, retries),
* the per-task traced runtimes (seconds), and
* a transfer manifest (logical file name -> size in MB) for the
  :class:`~repro.osg.transfer.StashCache`.

The existing :class:`~repro.osg.pool.OSPoolSimulator` consumes the
result unchanged — jobs stage their declared inputs through the cache
model and the DAGMan engine enforces the imported edges. Tasks are
added in instance order and edges in sorted-parent order, which is
exactly the order :func:`repro.wf.export.instance_from_dag` emits, so
an export -> import round trip rebuilds a DAG whose engine behaves
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.condor.dagfile import DagDescription, DagNode
from repro.condor.jobs import JobPayload, JobSpec
from repro.wf.schema import WfInstance, load_instance

__all__ = ["ImportedWorkflow", "import_instance"]

#: FDW phases the calibrated runtime model understands; other categories
#: import without a payload and replay from their traced runtimes.
_FDW_PHASES = ("A", "B", "C", "dist")


@dataclass(frozen=True)
class ImportedWorkflow:
    """A WfFormat instance translated to the simulators' structures."""

    instance: WfInstance
    dag: DagDescription
    #: Task name -> traced runtime in seconds (drives trace-mode replay).
    runtimes: dict[str, float]
    #: Logical file name -> size in MB (the Stash transfer manifest).
    files_mb: dict[str, float]

    @property
    def name(self) -> str:
        """The instance name."""
        return self.instance.name

    @property
    def n_tasks(self) -> int:
        """Tasks in the imported DAG."""
        return len(self.dag)


def _task_payload(task) -> JobPayload | None:
    if task.payload is not None:
        return JobPayload(
            phase=task.payload.phase,
            n_items=task.payload.n_items,
            n_stations=task.payload.n_stations,
        )
    if task.category in _FDW_PHASES:
        # FDW-categorised instances without the payload extension (e.g.
        # hand-written) still map onto the calibrated runtime model.
        return JobPayload(phase=task.category)
    return None


def import_instance(source: WfInstance | str | Path) -> ImportedWorkflow:
    """Translate an instance (or a WfFormat JSON path) for the pool.

    Raises
    ------
    WfFormatError
        On a malformed document (via :func:`repro.wf.schema.load_instance`).
    DagError
        If the edge structure is not a DAG (defence in depth; the
        schema already rejects cycles).
    """
    instance = (
        source if isinstance(source, WfInstance) else load_instance(source)
    )
    dag = DagDescription(name=instance.name)
    runtimes: dict[str, float] = {}
    files_mb: dict[str, float] = {}
    for task in instance.tasks:
        input_files = {f.name: f.size_mb for f in task.input_files()}
        for f in task.files:
            files_mb[f.name] = f.size_mb
        spec = JobSpec(
            name=task.name,
            executable=task.program or "run_fdw_phase.sh",
            arguments=" ".join(task.arguments),
            request_cpus=task.cores,
            request_memory_mb=task.memory_mb if task.memory_mb is not None else 8192,
            input_files=input_files,
            payload=_task_payload(task),
        )
        dag.add_node(DagNode(name=task.name, spec=spec, retries=task.retries))
        runtimes[task.name] = task.runtime_s
    for task in instance.tasks:
        for parent in sorted(task.parents):
            dag.add_edge(parent, task.name)
    dag.validate()
    return ImportedWorkflow(
        instance=instance, dag=dag, runtimes=runtimes, files_mb=files_mb
    )
