"""Time-unit helpers used throughout the workflow and pool simulators.

All simulators in :mod:`repro` keep time internally in **seconds** (floats
for the seismic kernels, integers for the per-second bursting replay).
The paper, however, reports runtimes in hours, job durations in minutes
and throughput in jobs/minute (JPM), so conversion helpers live here to
keep the unit discipline in one place.
"""

from __future__ import annotations

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "MINUTES_PER_HOUR",
    "seconds",
    "minutes",
    "hours",
    "to_minutes",
    "to_hours",
    "jobs_per_minute",
    "format_duration",
]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
MINUTES_PER_HOUR = 60.0


def seconds(value: float) -> float:
    """Identity helper so call sites can spell the unit explicitly."""
    return float(value)


def minutes(value: float) -> float:
    """Convert a duration expressed in minutes to seconds."""
    return float(value) * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert a duration expressed in hours to seconds."""
    return float(value) * SECONDS_PER_HOUR


def to_minutes(value_seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return float(value_seconds) / SECONDS_PER_MINUTE


def to_hours(value_seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return float(value_seconds) / SECONDS_PER_HOUR


def jobs_per_minute(jobs: float, runtime_seconds: float) -> float:
    """Throughput in jobs/minute, the paper's unit (eq. 2/4/5).

    Raises
    ------
    ValueError
        If ``runtime_seconds`` is not positive; a throughput over an
        empty or negative interval is meaningless and always a caller bug.
    """
    if runtime_seconds <= 0:
        raise ValueError(f"runtime must be positive, got {runtime_seconds!r}")
    return float(jobs) / to_minutes(runtime_seconds)


def format_duration(value_seconds: float) -> str:
    """Render a duration as ``1h 02m 03s`` for human-readable reports."""
    total = int(round(value_seconds))
    sign = "-" if total < 0 else ""
    total = abs(total)
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{sign}{h}h {m:02d}m {s:02d}s"
    if m:
        return f"{sign}{m}m {s:02d}s"
    return f"{sign}{s}s"
