"""HTCondor substrate: jobs, submit descriptions, DAGs, user logs.

A from-scratch model of the HTCondor pieces the FDW uses:

* :mod:`repro.condor.classads` — a ClassAd-lite attribute/expression
  model used for requirements matching,
* :mod:`repro.condor.submit` — submit description files,
* :mod:`repro.condor.jobs` — job records with the HTCondor state machine,
* :mod:`repro.condor.events` — user-log event writing/parsing (what the
  paper's monitoring shell scripts consume),
* :mod:`repro.condor.dagfile` — ``.dag`` files and the DAG structure,
* :mod:`repro.condor.dagman` — the DAGMan engine (ready-set release,
  throttles, retries).

The engine is deliberately decoupled from wall-clock time: it is driven
by the discrete-event pool simulator in :mod:`repro.osg`.
"""

from repro.condor.dagfile import DagDescription, DagNode
from repro.condor.dagman import DagmanEngine, DagmanOptions
from repro.condor.events import JobEvent, JobEventType, UserLog, parse_user_log
from repro.condor.jobs import Job, JobSpec, JobState
from repro.condor.rescue import apply_rescue, read_rescue_file, write_rescue_file
from repro.condor.submit import SubmitDescription

__all__ = [
    "DagDescription",
    "DagNode",
    "DagmanEngine",
    "DagmanOptions",
    "Job",
    "JobEvent",
    "JobEventType",
    "JobSpec",
    "JobState",
    "SubmitDescription",
    "UserLog",
    "apply_rescue",
    "parse_user_log",
    "read_rescue_file",
    "write_rescue_file",
]
