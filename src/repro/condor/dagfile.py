"""DAG descriptions and ``.dag`` files.

A :class:`DagDescription` is the static workflow structure DAGMan
executes: named nodes, each bound to a :class:`~repro.condor.jobs.JobSpec`,
plus PARENT/CHILD edges. The structure is backed by a
:class:`networkx.DiGraph` for cycle detection and traversal.

``.dag`` file round-tripping follows HTCondor's syntax::

    JOB A_0000 a_0000.sub
    JOB B b.sub
    PARENT A_0000 CHILD B
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import networkx as nx

from repro.errors import DagError
from repro.condor.jobs import JobSpec
from repro.condor.submit import SubmitDescription

__all__ = ["DagNode", "DagDescription", "ScriptSpec"]


@dataclass(frozen=True)
class ScriptSpec:
    """A DAGMan PRE or POST script.

    In real DAGMan these are arbitrary executables run on the submit
    host; in the simulator a script is its command line, a duration,
    and a deterministic exit code. The FDW uses them for the per-phase
    folder setup and output-compression steps (paper §3.0.1: each phase
    script "establish[es] the required, 'rigid' MudPy folder structure
    ... and compress[es] the output").
    """

    command: str
    duration_s: float = 5.0
    exit_code: int = 0

    def __post_init__(self) -> None:
        if not self.command:
            raise DagError("script command must be non-empty")
        if self.duration_s < 0:
            raise DagError(f"script duration must be >= 0, got {self.duration_s}")

    @property
    def succeeds(self) -> bool:
        """True when the script exits 0."""
        return self.exit_code == 0


@dataclass(frozen=True)
class DagNode:
    """One DAG node: a name, the job it submits, optional PRE/POST
    scripts and a retry budget.

    Semantics match DAGMan: the PRE script runs before job submission
    and its failure fails the node without running the job; the POST
    script runs after the job terminates and its exit code *becomes*
    the node's result (a successful POST masks a failed job, a failing
    POST fails a successful job).
    """

    name: str
    spec: JobSpec
    retries: int = 0
    pre_script: ScriptSpec | None = None
    post_script: ScriptSpec | None = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise DagError(f"bad node name {self.name!r}")
        if self.retries < 0:
            raise DagError(f"{self.name}: retries must be >= 0")


class DagDescription:
    """A named DAG of job nodes."""

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._nodes: dict[str, DagNode] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: DagNode) -> None:
        """Add a node; duplicate names are an error."""
        if node.name in self._nodes:
            raise DagError(f"duplicate DAG node {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)

    def add_job(self, name: str, spec: JobSpec, retries: int = 0) -> DagNode:
        """Convenience: build and add a node in one step."""
        node = DagNode(name=name, spec=spec, retries=retries)
        self.add_node(node)
        return node

    def set_script(self, name: str, when: str, script: ScriptSpec) -> DagNode:
        """Attach a PRE or POST script to an existing node.

        Returns the updated (replaced) node. ``when`` is ``"PRE"`` or
        ``"POST"``.
        """
        node = self.node(name)
        when = when.upper()
        if when == "PRE":
            updated = DagNode(
                name=node.name,
                spec=node.spec,
                retries=node.retries,
                pre_script=script,
                post_script=node.post_script,
            )
        elif when == "POST":
            updated = DagNode(
                name=node.name,
                spec=node.spec,
                retries=node.retries,
                pre_script=node.pre_script,
                post_script=script,
            )
        else:
            raise DagError(f"script kind must be PRE or POST, got {when!r}")
        self._nodes[name] = updated
        return updated

    def add_edge(self, parent: str, child: str, check: bool = False) -> None:
        """Declare ``parent`` must complete before ``child`` starts.

        Cycle detection per edge is O(V+E), so it is opt-in via
        ``check=True``; :meth:`validate` always performs one full
        acyclicity check before a DAG is executed.
        """
        for name in (parent, child):
            if name not in self._nodes:
                raise DagError(f"unknown DAG node {name!r}")
        if parent == child:
            raise DagError(f"self-edge on {parent!r}")
        self._graph.add_edge(parent, child)
        if check and not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(parent, child)
            raise DagError(f"edge {parent!r} -> {child!r} would create a cycle")

    def add_edges(self, parents: list[str], children: list[str]) -> None:
        """All-to-all PARENT..CHILD edges (HTCondor's multi-name form)."""
        for p in parents:
            for c in children:
                self.add_edge(p, c)

    # -- queries -------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """Node names in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def node(self, name: str) -> DagNode:
        """Node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise DagError(f"unknown DAG node {name!r}") from None

    def parents(self, name: str) -> list[str]:
        """Direct parents of a node."""
        self.node(name)
        return sorted(self._graph.predecessors(name))

    def children(self, name: str) -> list[str]:
        """Direct children of a node."""
        self.node(name)
        return sorted(self._graph.successors(name))

    def roots(self) -> list[str]:
        """Nodes with no parents (initially ready)."""
        return [n for n in self._nodes if self._graph.in_degree(n) == 0]

    def topological_order(self) -> list[str]:
        """A topological ordering of node names.

        Raises
        ------
        DagError
            If the DAG contains a cycle (instead of leaking networkx's
            ``NetworkXUnfeasible``).
        """
        try:
            return list(nx.topological_sort(self._graph))
        except nx.NetworkXUnfeasible:
            raise DagError(
                f"DAG {self.name!r} contains a cycle; no topological order exists"
            ) from None

    def validate(self) -> None:
        """Raise :class:`DagError` if the DAG is empty or cyclic."""
        if not self._nodes:
            raise DagError(f"DAG {self.name!r} has no nodes")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise DagError(f"DAG {self.name!r} contains a cycle")

    # -- .dag file round-trip ---------------------------------------------------

    def write(self, directory: str | Path) -> Path:
        """Write ``<name>.dag`` plus one submit file per node."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        lines = [f"# DAGMan file for {self.name}"]
        for node in self._nodes.values():
            sub = SubmitDescription.from_job_spec(node.spec)
            sub_path = directory / f"{node.name}.sub"
            sub.write(sub_path)
            lines.append(f"JOB {node.name} {sub_path.name}")
            if node.retries:
                lines.append(f"RETRY {node.name} {node.retries}")
            for when, script in (("PRE", node.pre_script), ("POST", node.post_script)):
                if script is not None:
                    lines.append(f"SCRIPT {when} {node.name} {script.command}")
        for parent, child in self._graph.edges:
            lines.append(f"PARENT {parent} CHILD {child}")
        dag_path = directory / f"{self.name}.dag"
        dag_path.write_text("\n".join(lines) + "\n")
        return dag_path

    @classmethod
    def read(cls, dag_path: str | Path) -> "DagDescription":
        """Parse a ``.dag`` file written by :meth:`write`."""
        dag_path = Path(dag_path)
        if not dag_path.exists():
            raise DagError(f"DAG file not found: {dag_path}")
        dag = cls(name=dag_path.stem)
        retries: dict[str, int] = {}
        edges: list[tuple[list[str], list[str]]] = []
        scripts: list[tuple[str, str, str]] = []
        for lineno, raw in enumerate(dag_path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            keyword = parts[0].upper()
            if keyword == "JOB":
                if len(parts) != 3:
                    raise DagError(f"{dag_path}:{lineno}: bad JOB line {raw!r}")
                name, sub_file = parts[1], parts[2]
                sub = SubmitDescription.read(dag_path.parent / sub_file)
                dag.add_job(name, sub.to_job_spec(name))
            elif keyword == "RETRY":
                if len(parts) != 3 or not parts[2].isdigit():
                    raise DagError(f"{dag_path}:{lineno}: bad RETRY line {raw!r}")
                retries[parts[1]] = int(parts[2])
            elif keyword == "SCRIPT":
                if len(parts) < 4 or parts[1].upper() not in ("PRE", "POST"):
                    raise DagError(f"{dag_path}:{lineno}: bad SCRIPT line {raw!r}")
                scripts.append((parts[2], parts[1].upper(), " ".join(parts[3:])))
            elif keyword == "PARENT":
                if "CHILD" not in [p.upper() for p in parts]:
                    raise DagError(f"{dag_path}:{lineno}: PARENT without CHILD")
                split = [p.upper() for p in parts].index("CHILD")
                edges.append((parts[1:split], parts[split + 1 :]))
            else:
                raise DagError(f"{dag_path}:{lineno}: unknown keyword {keyword!r}")
        for parents, children in edges:
            dag.add_edges(parents, children)
        for name, count in retries.items():
            node = dag.node(name)
            dag._nodes[name] = DagNode(
                name=node.name,
                spec=node.spec,
                retries=count,
                pre_script=node.pre_script,
                post_script=node.post_script,
            )
        for name, when, command in scripts:
            dag.set_script(name, when, ScriptSpec(command=command))
        dag.validate()
        return dag
