"""The DAGMan engine: dependency-driven job release with throttles.

DAGMan's job is simple but load-bearing for the paper's results: it only
submits a node once all its parents completed, it throttles how many
idle jobs it keeps in the schedd queue (``DAGMAN_MAX_JOBS_IDLE``), and
it submits in periodic batches rather than all at once. Those throttles
are one of the mechanisms behind the partitioned-DAGMan behaviour in
Figs 3-4 (each concurrent DAGMan keeps its own idle window, but the pool
drains all windows from a shared capacity).

The engine is time-free: the pool simulator (or any driver) repeatedly
calls :meth:`pull_submissions` and reports results with
:meth:`on_node_result`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import DagError
from repro.condor.dagfile import DagDescription

__all__ = ["NodeStatus", "DagmanOptions", "DagmanEngine"]


class NodeStatus(enum.Enum):
    """Lifecycle of a DAG node inside the engine."""

    WAITING = "waiting"  # parents not yet done
    READY = "ready"  # eligible, not yet submitted
    SUBMITTED = "submitted"  # handed to the schedd
    DONE = "done"
    FAILED = "failed"  # terminal failure (retries exhausted)


@dataclass(frozen=True)
class DagmanOptions:
    """Engine throttles.

    Attributes
    ----------
    max_idle:
        Maximum jobs the engine keeps idle in the queue at once (0
        disables the cap). HTCondor's modern default is 1000; the FDW
        runs with 500, fitted to the paper's wait-time statistics (see
        DESIGN.md).
    submit_batch:
        Maximum submissions per :meth:`pull_submissions` call, modelling
        DAGMan's per-cycle submit rate.
    """

    max_idle: int = 500
    submit_batch: int = 200

    def __post_init__(self) -> None:
        if self.max_idle < 0:
            raise DagError(f"max_idle must be >= 0, got {self.max_idle}")
        if self.submit_batch < 1:
            raise DagError(f"submit_batch must be >= 1, got {self.submit_batch}")


class DagmanEngine:
    """Executable state of one DAGMan instance.

    Parameters
    ----------
    dag:
        The validated workflow structure.
    options:
        Throttling configuration.
    """

    def __init__(self, dag: DagDescription, options: DagmanOptions | None = None) -> None:
        dag.validate()
        self.dag = dag
        self.options = options or DagmanOptions()
        self._status: dict[str, NodeStatus] = {}
        self._remaining_parents: dict[str, int] = {}
        self._retries_left: dict[str, int] = {}
        # A deque: at million-root scale, pull_submissions slicing a
        # list left-shifts every remaining name each cycle (quadratic).
        self._ready_fifo: deque[str] = deque()
        self._n_done = 0
        self._n_failed = 0
        for name in dag.topological_order():
            n_parents = len(dag.parents(name))
            self._remaining_parents[name] = n_parents
            self._retries_left[name] = dag.node(name).retries
            if n_parents == 0:
                self._status[name] = NodeStatus.READY
                self._ready_fifo.append(name)
            else:
                self._status[name] = NodeStatus.WAITING

    # -- queries ------------------------------------------------------------

    def status(self, name: str) -> NodeStatus:
        """Status of one node."""
        try:
            return self._status[name]
        except KeyError:
            raise DagError(f"unknown DAG node {name!r}") from None

    def counts(self) -> dict[NodeStatus, int]:
        """Node counts per status."""
        out = {status: 0 for status in NodeStatus}
        for status in self._status.values():
            out[status] += 1
        return out

    @property
    def is_complete(self) -> bool:
        """True when every node is DONE."""
        return self._n_done == len(self._status)

    @property
    def has_failed(self) -> bool:
        """True when any node failed terminally.

        Like real DAGMan, in-flight work may continue, but the DAG can
        no longer complete.
        """
        return self._n_failed > 0

    @property
    def n_ready(self) -> int:
        """Nodes currently eligible for submission."""
        return len(self._ready_fifo)

    def retries_left(self, name: str) -> int:
        """Remaining DAG-level retries for a node."""
        self.status(name)  # validates the name
        return self._retries_left[name]

    # -- driving ------------------------------------------------------------

    def pull_submissions(self, current_idle: int) -> list[str]:
        """Names to submit this cycle, FIFO within the throttles.

        Parameters
        ----------
        current_idle:
            How many of this DAGMan's jobs are currently idle in the
            schedd queue; used to honour ``max_idle``.
        """
        if current_idle < 0:
            raise DagError(f"current_idle must be >= 0, got {current_idle}")
        budget = self.options.submit_batch
        if self.options.max_idle:
            budget = min(budget, max(0, self.options.max_idle - current_idle))
        n = min(budget, len(self._ready_fifo))
        popleft = self._ready_fifo.popleft
        batch = [popleft() for _ in range(n)]
        for name in batch:
            self._status[name] = NodeStatus.SUBMITTED
        return batch

    def mark_done(self, name: str) -> list[str]:
        """Fast-forward a node to DONE without submitting it.

        Used by rescue-DAG application (:mod:`repro.condor.rescue`) to
        skip work a previous attempt already completed. Only WAITING or
        READY nodes can be fast-forwarded, and — as with a real
        completion — children become READY when their last parent is
        done; the newly ready names are returned.
        """
        status = self.status(name)
        if status not in (NodeStatus.WAITING, NodeStatus.READY):
            raise DagError(
                f"cannot fast-forward node {name!r} from state {status.value}"
            )
        if status is NodeStatus.READY:
            self._ready_fifo.remove(name)
        self._status[name] = NodeStatus.SUBMITTED  # legal path to DONE
        return self.on_node_result(name, success=True)

    def on_node_result(self, name: str, success: bool) -> list[str]:
        """Report a node's terminal job result.

        On success, children whose parents are now all done become
        READY (their names are returned). On failure, the node is
        re-queued while retries remain, else marked FAILED.
        """
        if self.status(name) is not NodeStatus.SUBMITTED:
            raise DagError(
                f"node {name!r} reported result while {self.status(name).value}"
            )
        if not success:
            if self._retries_left[name] > 0:
                self._retries_left[name] -= 1
                self._status[name] = NodeStatus.READY
                self._ready_fifo.append(name)
                return [name]
            self._status[name] = NodeStatus.FAILED
            self._n_failed += 1
            return []
        self._status[name] = NodeStatus.DONE
        self._n_done += 1
        newly_ready: list[str] = []
        for child in self.dag.children(name):
            self._remaining_parents[child] -= 1
            if self._remaining_parents[child] < 0:
                raise DagError(f"parent accounting underflow on {child!r}")
            if self._remaining_parents[child] == 0 and self._status[child] is NodeStatus.WAITING:
                self._status[child] = NodeStatus.READY
                self._ready_fifo.append(child)
                newly_ready.append(child)
        return newly_ready
