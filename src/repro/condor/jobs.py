"""Job specifications and the HTCondor job state machine.

A :class:`JobSpec` is the static description a submit file carries
(executable, resource requests, input files, and an FDW payload telling
the runtime model what the job computes). A :class:`Job` is the dynamic
record: state, timestamps, and the slot it ran on.

State transitions follow HTCondor's job lifecycle; illegal transitions
raise :class:`~repro.errors.JobStateError`, which is how the simulator
catches its own bookkeeping bugs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import JobStateError

__all__ = ["JobState", "JobSpec", "Job", "JobPayload"]


class JobState(enum.Enum):
    """HTCondor job states (subset used by the simulator)."""

    UNSUBMITTED = "unsubmitted"
    IDLE = "idle"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    HELD = "held"
    REMOVED = "removed"


#: Legal transitions of the job lifecycle.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.UNSUBMITTED: frozenset({JobState.IDLE}),
    JobState.IDLE: frozenset({JobState.RUNNING, JobState.HELD, JobState.REMOVED}),
    JobState.RUNNING: frozenset(
        {JobState.COMPLETED, JobState.FAILED, JobState.IDLE, JobState.HELD, JobState.REMOVED}
    ),
    JobState.HELD: frozenset({JobState.IDLE, JobState.REMOVED}),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset({JobState.IDLE}),  # retry re-queues
    JobState.REMOVED: frozenset(),
}


@dataclass(frozen=True)
class JobPayload:
    """What an FDW job computes — consumed by the runtime model.

    Attributes
    ----------
    phase:
        ``"A"`` (ruptures), ``"B"`` (Green's functions), ``"C"``
        (waveforms), or ``"dist"`` (distance-matrix bootstrap).
    n_items:
        Work items in the chunk (ruptures for A/C; stations for B).
    n_stations:
        Station-list length, the dominant cost knob.
    """

    phase: str
    n_items: int = 1
    n_stations: int = 121

    def __post_init__(self) -> None:
        if self.phase not in ("A", "B", "C", "dist"):
            raise JobStateError(f"unknown FDW phase {self.phase!r}")
        if self.n_items < 1 or self.n_stations < 1:
            raise JobStateError("payload sizes must be >= 1")


@dataclass(frozen=True)
class JobSpec:
    """Static job description (the submit-file content).

    ``input_files`` maps logical file names to sizes in MB; the transfer
    model charges for delivering them (via Stash Cache when eligible).
    """

    name: str
    executable: str = "run_fdw_phase.sh"
    arguments: str = ""
    request_cpus: int = 4
    request_memory_mb: int = 8192
    request_disk_mb: int = 16384
    requirements: str | None = None
    input_files: dict[str, float] = field(default_factory=dict)
    payload: JobPayload | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise JobStateError("job name must be non-empty")
        if self.request_cpus < 1:
            raise JobStateError(f"{self.name}: request_cpus must be >= 1")
        if self.request_memory_mb < 1 or self.request_disk_mb < 1:
            raise JobStateError(f"{self.name}: resource requests must be >= 1 MB")
        for fname, size in self.input_files.items():
            if size < 0:
                raise JobStateError(f"{self.name}: negative size for input {fname!r}")


_cluster_counter = itertools.count(1)


@dataclass
class Job:
    """Dynamic job record tracked by the schedd and the simulator.

    Timestamps are simulation seconds; ``None`` until the corresponding
    event happens. ``submit_time``/``start_time``/``end_time`` are what
    the bursting-trace CSVs export.
    """

    spec: JobSpec
    cluster_id: int = field(default_factory=lambda: next(_cluster_counter))
    state: JobState = JobState.UNSUBMITTED
    submit_time: float | None = None
    start_time: float | None = None
    end_time: float | None = None
    slot_name: str | None = None
    n_retries: int = 0
    owner: str = "fdw"

    def transition(self, new_state: JobState, time: float) -> None:
        """Move to ``new_state`` at simulation time ``time``.

        Updates the timestamp that corresponds to the entered state and
        enforces the legal-transition table.
        """
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise JobStateError(
                f"job {self.spec.name} (cluster {self.cluster_id}): illegal "
                f"transition {self.state.value} -> {new_state.value}"
            )
        if new_state is JobState.IDLE and self.state is JobState.UNSUBMITTED:
            self.submit_time = time
        elif new_state is JobState.IDLE and self.state in (
            JobState.RUNNING,
            JobState.FAILED,
            JobState.HELD,
        ):
            # Re-queue (eviction, retry, or release): clear the execution record.
            self.start_time = None
            self.slot_name = None
        elif new_state is JobState.RUNNING:
            self.start_time = time
        elif new_state in (JobState.COMPLETED, JobState.FAILED, JobState.REMOVED):
            self.end_time = time
        self.state = new_state

    # -- derived --------------------------------------------------------------

    @property
    def wait_time(self) -> float | None:
        """Queue wait (start - submit) in seconds, when both are known."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def execution_time(self) -> float | None:
        """Execution wall time (end - start) in seconds, when known."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def is_terminal(self) -> bool:
        """True in COMPLETED or REMOVED (no further transitions expected)."""
        return self.state in (JobState.COMPLETED, JobState.REMOVED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.spec.name}, cluster={self.cluster_id}, "
            f"state={self.state.value})"
        )
