"""HTCondor user-log events: writing and parsing.

The paper's monitoring system works by parsing HTCondor log files with
shell scripts "to extract information (e.g., runtime, wait times, and
complete/failed job count) and compute job states and durations". We
reproduce that pipeline in Python: the pool simulator writes an
HTCondor-style user log and :func:`parse_user_log` recovers per-job
timing records from the text alone — the statistics layer never peeks at
simulator internals, so the monitoring path is honest.

The log format mirrors HTCondor's classic user log closely enough to be
recognizable::

    000 (0042.000.000) 2023-01-01 00:10:17 Job submitted from host: <schedd-0>
    ...
    001 (0042.000.000) 2023-01-01 00:23:05 Job executing on host: <slot-17>
    ...
    005 (0042.000.000) 2023-01-01 00:41:55 Job terminated.
        (1) Normal termination (return value 0)
    ...

Timestamps encode simulation seconds from an arbitrary epoch.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LogParseError

__all__ = ["JobEventType", "JobEvent", "UserLog", "parse_user_log"]

_EPOCH_FMT = "2023-01-01"


class JobEventType(enum.Enum):
    """Event codes, matching HTCondor's triplet numbering."""

    SUBMIT = 0
    EXECUTE = 1
    TERMINATED = 5
    ABORTED = 9
    HELD = 12
    RELEASED = 13
    EVICTED = 4

    @property
    def code(self) -> str:
        """Zero-padded three-digit code as it appears in the log."""
        return f"{self.value:03d}"


_DESCRIPTIONS = {
    JobEventType.SUBMIT: "Job submitted from host: <{host}>",
    JobEventType.EXECUTE: "Job executing on host: <{host}>",
    JobEventType.TERMINATED: "Job terminated.",
    JobEventType.ABORTED: "Job was aborted by the user.",
    JobEventType.HELD: "Job was held.",
    JobEventType.RELEASED: "Job was released.",
    JobEventType.EVICTED: "Job was evicted.",
}


@dataclass(frozen=True)
class JobEvent:
    """One parsed log event."""

    event_type: JobEventType
    cluster_id: int
    time_s: float
    host: str = ""
    return_value: int | None = None


def _format_timestamp(time_s: float) -> str:
    total = int(round(time_s))
    days, rem = divmod(total, 86400)
    h, rem = divmod(rem, 3600)
    m, s = divmod(rem, 60)
    return f"{_EPOCH_FMT}+{days} {h:02d}:{m:02d}:{s:02d}"


_TS_RE = re.compile(
    r"^(?P<code>\d{3}) \((?P<cluster>\d+)\.000\.000\) "
    rf"{re.escape(_EPOCH_FMT)}\+(?P<days>\d+) "
    r"(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2}) (?P<rest>.*)$"
)
_HOST_RE = re.compile(r"<(?P<host>[^>]*)>")
_RETVAL_RE = re.compile(r"return value (?P<rv>-?\d+)")


#: Event-code strings precomputed per type (render-time lookup).
_CODES = {etype: f"{etype.value:03d}" for etype in JobEventType}


class UserLog:
    """Writer producing HTCondor-style user-log text.

    Events are stored columnar as plain tuples; text is formatted
    lazily in :meth:`render`. At million-job scale the simulator records
    ~3 events per job on its hot path, so deferring the string work
    (and the per-event timestamp arithmetic) to the one consumer that
    actually reads the log keeps ``record`` to a tuple append. The
    rendered text is byte-identical to the eager writer's.
    """

    def __init__(self) -> None:
        self._events: list[tuple[JobEventType, int, float, str, int | None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def record(
        self,
        event_type: JobEventType,
        cluster_id: int,
        time_s: float,
        host: str = "",
        return_value: int | None = None,
    ) -> None:
        """Append one event."""
        if time_s < 0:
            raise LogParseError(f"negative event time {time_s}")
        self._events.append((event_type, cluster_id, time_s, host, return_value))

    def render(self) -> str:
        """Full log text."""
        if not self._events:
            return ""
        lines: list[str] = []
        append = lines.append
        terminated = JobEventType.TERMINATED
        for event_type, cluster_id, time_s, host, return_value in self._events:
            desc = _DESCRIPTIONS[event_type].format(host=host)
            append(
                f"{_CODES[event_type]} ({cluster_id:04d}.000.000) "
                f"{_format_timestamp(time_s)} {desc}"
            )
            if event_type is terminated:
                rv = 0 if return_value is None else return_value
                kind = "Normal termination" if rv == 0 else "Abnormal termination"
                append(f"\t(1) {kind} (return value {rv})")
            append("...")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the log to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


def parse_user_log(text: str, source: str = "<string>") -> list[JobEvent]:
    """Parse user-log text into a list of :class:`JobEvent`.

    Tolerates the ``...`` separators and indented detail lines; raises
    :class:`~repro.errors.LogParseError` on structurally bad event lines.
    """
    events: list[JobEvent] = []
    # Index (not value) of the TERMINATED event awaiting its detail line.
    # Matching by value (`events.index`) would attach a duplicated
    # TERMINATED line's return value to the wrong event and makes the
    # parse O(n^2) on large logs.
    pending_terminated: int | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip() or raw.strip() == "...":
            pending_terminated = None
            continue
        if raw.startswith(("\t", " ")):
            # Detail line; attach return value to a pending termination.
            if pending_terminated is not None:
                match = _RETVAL_RE.search(raw)
                if match:
                    pending = events[pending_terminated]
                    events[pending_terminated] = JobEvent(
                        event_type=pending.event_type,
                        cluster_id=pending.cluster_id,
                        time_s=pending.time_s,
                        host=pending.host,
                        return_value=int(match.group("rv")),
                    )
                    pending_terminated = None
            continue
        match = _TS_RE.match(raw)
        if match is None:
            raise LogParseError(f"{source}:{lineno}: unrecognized event line {raw!r}")
        code = int(match.group("code"))
        try:
            etype = JobEventType(code)
        except ValueError as exc:
            raise LogParseError(f"{source}:{lineno}: unknown event code {code}") from exc
        time_s = (
            int(match.group("days")) * 86400
            + int(match.group("h")) * 3600
            + int(match.group("m")) * 60
            + int(match.group("s"))
        )
        rest = match.group("rest")
        host_match = _HOST_RE.search(rest)
        event = JobEvent(
            event_type=etype,
            cluster_id=int(match.group("cluster")),
            time_s=float(time_s),
            host=host_match.group("host") if host_match else "",
        )
        events.append(event)
        pending_terminated = (
            len(events) - 1 if etype is JobEventType.TERMINATED else None
        )
    return events
