"""HTCondor submit description files.

The FDW drives OSG through submit description files ("HTCondor uses
'submit description files' to specify job compute requirements,
orchestrate scripts on OSG nodes, and handle input files"). This module
round-trips the subset of the format the workflow uses:

* ``key = value`` assignments (case-insensitive keys),
* ``transfer_input_files`` as a comma list,
* a trailing ``queue [N]`` statement,
* ``#`` comments and blank lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import SubmitError
from repro.condor.jobs import JobPayload, JobSpec

__all__ = ["SubmitDescription"]

_KNOWN_KEYS = {
    "executable",
    "arguments",
    "request_cpus",
    "request_memory",
    "request_disk",
    "requirements",
    "transfer_input_files",
    "should_transfer_files",
    "when_to_transfer_output",
    "output",
    "error",
    "log",
    "universe",
    "+singularityimage",
    "+projectname",
    "+fdw_phase",
    "+fdw_n_items",
    "+fdw_n_stations",
}


@dataclass
class SubmitDescription:
    """Parsed submit description.

    ``commands`` holds the raw key/value pairs (keys lower-cased);
    ``queue_count`` is the N of the ``queue`` statement.
    """

    commands: dict[str, str] = field(default_factory=dict)
    queue_count: int = 1

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str, source: str = "<string>") -> "SubmitDescription":
        """Parse submit-file text.

        Raises
        ------
        SubmitError
            On malformed lines, unknown commands, duplicate keys, or a
            missing/invalid ``queue`` statement.
        """
        commands: dict[str, str] = {}
        queue_count: int | None = None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            lowered = line.lower()
            if lowered == "queue" or lowered.startswith("queue "):
                parts = line.split()
                if len(parts) == 1:
                    queue_count = 1
                elif len(parts) == 2 and parts[1].isdigit():
                    queue_count = int(parts[1])
                else:
                    raise SubmitError(f"{source}:{lineno}: bad queue statement {raw!r}")
                continue
            if "=" not in line:
                raise SubmitError(f"{source}:{lineno}: expected 'key = value', got {raw!r}")
            key, _, value = line.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key not in _KNOWN_KEYS:
                raise SubmitError(f"{source}:{lineno}: unknown submit command {key!r}")
            if key in commands:
                raise SubmitError(f"{source}:{lineno}: duplicate command {key!r}")
            commands[key] = value
        if queue_count is None:
            raise SubmitError(f"{source}: missing queue statement")
        if queue_count < 1:
            raise SubmitError(f"{source}: queue count must be >= 1")
        return cls(commands=commands, queue_count=queue_count)

    @classmethod
    def read(cls, path: str | Path) -> "SubmitDescription":
        """Parse a submit file from disk."""
        path = Path(path)
        return cls.parse(path.read_text(), source=str(path))

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """Serialize back to submit-file text."""
        lines = [f"{key} = {value}" for key, value in self.commands.items()]
        lines.append(f"queue {self.queue_count}" if self.queue_count != 1 else "queue")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the rendered text to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path

    # -- conversion ----------------------------------------------------------

    @staticmethod
    def _parse_mb(value: str, key: str) -> int:
        v = value.strip().upper()
        try:
            if v.endswith("GB"):
                return int(float(v[:-2]) * 1024)
            if v.endswith("MB"):
                return int(float(v[:-2]))
            return int(float(v))
        except ValueError as exc:
            raise SubmitError(f"bad {key} value {value!r}") from exc

    def to_job_spec(self, name: str) -> JobSpec:
        """Build a :class:`JobSpec` named ``name`` from the description."""
        c = self.commands
        payload = None
        if "+fdw_phase" in c:
            payload = JobPayload(
                phase=c["+fdw_phase"].strip('"'),
                n_items=int(c.get("+fdw_n_items", "1")),
                n_stations=int(c.get("+fdw_n_stations", "121")),
            )
        input_files: dict[str, float] = {}
        for item in c.get("transfer_input_files", "").split(","):
            item = item.strip()
            if item:
                input_files[item] = 0.0  # sizes attached by the workflow builder
        return JobSpec(
            name=name,
            executable=c.get("executable", "run_fdw_phase.sh"),
            arguments=c.get("arguments", ""),
            request_cpus=int(c.get("request_cpus", "4")),
            request_memory_mb=self._parse_mb(c.get("request_memory", "8192"), "request_memory"),
            request_disk_mb=self._parse_mb(c.get("request_disk", "16384"), "request_disk"),
            requirements=c.get("requirements"),
            input_files=input_files,
            payload=payload,
        )

    @classmethod
    def from_job_spec(cls, spec: JobSpec) -> "SubmitDescription":
        """Render a :class:`JobSpec` as a submit description."""
        commands = {
            "universe": "vanilla",
            "executable": spec.executable,
            "arguments": spec.arguments,
            "request_cpus": str(spec.request_cpus),
            "request_memory": f"{spec.request_memory_mb}MB",
            "request_disk": f"{spec.request_disk_mb}MB",
            "should_transfer_files": "YES",
            "when_to_transfer_output": "ON_EXIT",
        }
        if spec.requirements:
            commands["requirements"] = spec.requirements
        if spec.input_files:
            commands["transfer_input_files"] = ",".join(spec.input_files)
        if spec.payload is not None:
            commands["+fdw_phase"] = f'"{spec.payload.phase}"'
            commands["+fdw_n_items"] = str(spec.payload.n_items)
            commands["+fdw_n_stations"] = str(spec.payload.n_stations)
        return cls(commands=commands, queue_count=1)
