"""ClassAd-lite: attribute dictionaries with boolean requirement expressions.

HTCondor matches jobs to machines by evaluating each side's
``Requirements`` expression against the other side's attributes. We
implement the small subset the FDW needs: numeric/string/bool
attributes, comparisons, arithmetic, and the ``&&`` / ``||`` / ``!``
connectives.

Expressions are parsed with :mod:`ast` after translating the C-style
connectives, then evaluated over a whitelisted node set — no arbitrary
code execution.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping

from repro.errors import SubmitError

__all__ = ["ClassAd", "evaluate_expression"]

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.UnaryOp,
    ast.Not,
    ast.USub,
    ast.BinOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.Compare,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.Name,
    ast.Load,
    ast.Constant,
)


def _translate(expr: str) -> str:
    """Translate ClassAd connectives to Python syntax."""
    out = (
        expr.replace("&&", " and ")
        .replace("||", " or ")
        .replace("=?=", "==")
        .replace("=!=", "!=")
    )
    # ClassAd uses '!' for negation but '!=' must survive; replace a '!'
    # not followed by '='.
    chars = []
    for i, ch in enumerate(out):
        if ch == "!" and (i + 1 >= len(out) or out[i + 1] != "="):
            chars.append(" not ")
        else:
            chars.append(ch)
    return "".join(chars)


def evaluate_expression(expr: str, attributes: Mapping[str, object]) -> bool | float:
    """Evaluate a requirement expression against an attribute mapping.

    Identifiers resolve case-insensitively (ClassAd semantics); unknown
    identifiers evaluate to ``False`` (ClassAd ``UNDEFINED`` collapses
    to not-matching under the operations we support).

    Raises
    ------
    SubmitError
        On syntax errors or disallowed constructs.
    """
    lowered = {str(k).lower(): v for k, v in attributes.items()}
    try:
        tree = ast.parse(_translate(expr).strip(), mode="eval")
    except SyntaxError as exc:
        raise SubmitError(f"bad ClassAd expression {expr!r}: {exc}") from exc
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise SubmitError(
                f"disallowed construct {type(node).__name__} in ClassAd "
                f"expression {expr!r}"
            )

    def ev(node: ast.AST) -> object:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            key = node.id.lower()
            if key == "true":
                return True
            if key == "false":
                return False
            return lowered.get(key, False)
        if isinstance(node, ast.UnaryOp):
            val = ev(node.operand)
            if isinstance(node.op, ast.Not):
                return not val
            return -val  # type: ignore[operator]
        if isinstance(node, ast.BoolOp):
            vals = [ev(v) for v in node.values]
            if isinstance(node.op, ast.And):
                return all(vals)
            return any(vals)
        if isinstance(node, ast.BinOp):
            left, right = ev(node.left), ev(node.right)
            try:
                if isinstance(node.op, ast.Add):
                    return left + right  # type: ignore[operator]
                if isinstance(node.op, ast.Sub):
                    return left - right  # type: ignore[operator]
                if isinstance(node.op, ast.Mult):
                    return left * right  # type: ignore[operator]
                return left / right  # type: ignore[operator]
            except TypeError as exc:
                raise SubmitError(f"type error in {expr!r}: {exc}") from exc
        if isinstance(node, ast.Compare):
            left = ev(node.left)
            result = True
            for op, comparator in zip(node.ops, node.comparators):
                right = ev(comparator)
                try:
                    if isinstance(op, ast.Eq):
                        ok = left == right
                    elif isinstance(op, ast.NotEq):
                        ok = left != right
                    elif isinstance(op, ast.Lt):
                        ok = left < right  # type: ignore[operator]
                    elif isinstance(op, ast.LtE):
                        ok = left <= right  # type: ignore[operator]
                    elif isinstance(op, ast.Gt):
                        ok = left > right  # type: ignore[operator]
                    else:
                        ok = left >= right  # type: ignore[operator]
                except TypeError:
                    ok = False  # UNDEFINED comparisons don't match
                result = result and bool(ok)
                left = right
            return result
        raise SubmitError(f"unhandled node in ClassAd expression {expr!r}")

    return ev(tree)  # type: ignore[return-value]


class ClassAd(dict):
    """An attribute dictionary with requirement evaluation.

    Keys are stored as given but matched case-insensitively via
    :func:`evaluate_expression`.
    """

    def matches(self, requirements: str | None) -> bool:
        """True when ``requirements`` evaluates truthy against this ad.

        ``None`` or empty requirements always match (HTCondor's default
        ``Requirements = true``).
        """
        if not requirements:
            return True
        return bool(evaluate_expression(requirements, self))
