"""DAGMan rescue files.

When a real DAGMan exits with failed nodes it writes a *rescue DAG*: a
file recording which nodes already completed, so resubmission skips the
finished work. FDW runs of tens of thousands of jobs make this
essential — a transient failure near the end must not redo days of
computation.

Format (matching HTCondor's rescue semantics, simplified syntax)::

    # Rescue DAG for fdw, attempt 1
    DONE fdw_A_00000
    DONE fdw_A_00001
    ...

:func:`write_rescue_file` snapshots an engine; :func:`apply_rescue`
fast-forwards the DONE nodes on a fresh engine so only the remainder
runs.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DagError
from repro.condor.dagman import DagmanEngine, NodeStatus

__all__ = ["write_rescue_file", "read_rescue_file", "apply_rescue", "rescue_path"]


def rescue_path(dag_path: str | Path, attempt: int = 1) -> Path:
    """Conventional rescue filename: ``<dag>.rescue<NNN>``."""
    if attempt < 1:
        raise DagError(f"rescue attempt must be >= 1, got {attempt}")
    dag_path = Path(dag_path)
    return dag_path.with_name(f"{dag_path.name}.rescue{attempt:03d}")


def write_rescue_file(
    engine: DagmanEngine, path: str | Path, attempt: int = 1
) -> Path:
    """Write the DONE-node snapshot of an engine.

    Any engine state can be snapshotted (HTCondor writes rescue files
    on abort as well as failure); an engine with nothing done yields an
    empty-but-valid rescue file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    done = [
        name
        for name in engine.dag.node_names
        if engine.status(name) is NodeStatus.DONE
    ]
    lines = [f"# Rescue DAG for {engine.dag.name}, attempt {attempt}"]
    lines += [f"DONE {name}" for name in done]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_rescue_file(path: str | Path) -> list[str]:
    """Node names recorded DONE in a rescue file.

    Raises
    ------
    DagError
        On missing files or malformed lines.
    """
    path = Path(path)
    if not path.exists():
        raise DagError(f"rescue file not found: {path}")
    done: list[str] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0].upper() != "DONE":
            raise DagError(f"{path}:{lineno}: expected 'DONE <node>', got {raw!r}")
        done.append(parts[1])
    return done


def apply_rescue(engine: DagmanEngine, done_nodes: list[str]) -> int:
    """Fast-forward rescued nodes on a *fresh* engine.

    Nodes are applied in topological order via
    :meth:`~repro.condor.dagman.DagmanEngine.mark_done`. A rescued node
    whose parents are not all rescued is an inconsistent rescue file
    (it could never have completed) and raises :class:`DagError`.
    Returns the number of nodes fast-forwarded.

    The engine must be freshly constructed (no submissions yet) —
    rescue is a start-time operation, as in DAGMan.
    """
    done = set(done_nodes)
    unknown = done - set(engine.dag.node_names)
    if unknown:
        raise DagError(f"rescue file names unknown nodes: {sorted(unknown)}")
    counts = engine.counts()
    if counts[NodeStatus.SUBMITTED] or counts[NodeStatus.DONE] or counts[NodeStatus.FAILED]:
        raise DagError("rescue must be applied to a freshly constructed engine")
    applied = 0
    for name in engine.dag.topological_order():
        if name not in done:
            continue
        missing = [p for p in engine.dag.parents(name) if p not in done]
        if missing:
            raise DagError(
                f"inconsistent rescue: {name!r} is DONE but parents "
                f"{missing} are not"
            )
        engine.mark_done(name)
        applied += 1
    return applied
