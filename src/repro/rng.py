"""Deterministic random-number management.

Every stochastic component in the library (slip generation, pool capacity
churn, job runtime sampling...) draws from a :class:`numpy.random.Generator`
handed to it explicitly — no module imports global random state. This
module provides a small utility for deriving independent child streams
from a single experiment seed so that

* results are reproducible given one integer seed, and
* adding a new consumer of randomness does not perturb existing streams
  (each consumer derives its stream from a stable string key).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["RngFactory", "derive_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: str | int) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a key path.

    The derivation is stable across processes and Python versions (it
    does not use :func:`hash`, whose string hashing is salted).
    """
    material = str(int(root_seed)) + "\x1f" + "\x1f".join(str(k) for k in keys)
    # FNV-1a over the utf-8 bytes: tiny, stable, and good enough to seed
    # PCG64 (which applies its own scrambling to the seed).
    acc = 0xCBF29CE484222325
    for byte in material.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & _MASK64
    return acc


class RngFactory:
    """Factory of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment. Two factories with the same seed
        yield identical streams for identical key paths.

    Examples
    --------
    >>> rngs = RngFactory(1234)
    >>> slip_rng = rngs.generator("seismo", "slip", 0)
    >>> pool_rng = rngs.generator("osg", "capacity")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def child_seed(self, *keys: str | int) -> int:
        """Return the derived integer seed for a key path."""
        return derive_seed(self.seed, *keys)

    def generator(self, *keys: str | int) -> np.random.Generator:
        """Return a fresh :class:`~numpy.random.Generator` for a key path."""
        return np.random.default_rng(self.child_seed(*keys))

    def spawn(self, *keys: str | int) -> "RngFactory":
        """Return a sub-factory rooted at a key path (for subsystems)."""
        return RngFactory(self.child_seed(*keys))

    def generators(self, prefix: str, count: int) -> list[np.random.Generator]:
        """Return ``count`` generators keyed ``(prefix, 0..count-1)``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.generator(prefix, i) for i in range(count)]

    @staticmethod
    def independent(seeds: Iterable[int]) -> list[np.random.Generator]:
        """Generators from explicit seeds (escape hatch for tests)."""
        return [np.random.default_rng(int(s)) for s in seeds]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed})"
