"""Stash/OSDF cache model: input-file delivery times.

Every FDW job ships a 928 MB Singularity image plus phase inputs (the
recyclable ``.npy`` matrices, and for Phase C the multi-GB ``.mseed`` GF
archives). The OSG distributes these through Stash Cache: the first
delivery of a file to a cache site pays origin bandwidth; subsequent
deliveries hit the regional cache and are much faster.

We model a configurable number of cache *sites*; each job lands at a
random site, and the cache state is per (file, site). Transfer time is
``size / bandwidth`` plus a fixed per-job setup overhead (scheduling,
container start). The resulting cold-start ramp is visible in DAGMan
instant-throughput traces and is ablated by ``bench_ablation_cache``.

Resilience (PR 8): a cache built with a
:class:`~repro.faults.TransferFaults` model retries failed attempts
under a seeded :class:`~repro.resilience.RetryPolicy` — each failed
attempt costs its elapsed time plus a deterministic backoff delay, and
a job that exhausts its retries degrades to pulling everything straight
from the origin (slow, but the workflow always completes). Without a
fault model the delivery path is bit-identical to the pre-resilience
simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.condor.jobs import JobSpec
from repro.resilience import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import TransferFaults

__all__ = ["TransferConfig", "StashCache", "SINGULARITY_IMAGE_MB"]

#: The MudPy Singularity image from the paper (Section 3).
SINGULARITY_IMAGE_MB = 928.0


@dataclass(frozen=True)
class TransferConfig:
    """Bandwidths and overheads of the delivery path.

    Attributes
    ----------
    origin_mb_per_s:
        Origin (cold) bandwidth per transfer.
    cache_mb_per_s:
        Cache-hit (warm) bandwidth.
    n_cache_sites:
        Number of regional cache sites jobs can land near.
    setup_overhead_s:
        Fixed per-job overhead: claim activation, container start.
    include_image:
        Charge the Singularity image on every job (it is cached like any
        other file).
    max_entries_per_site:
        Optional cap on warm entries per cache site. When set, each site
        evicts its least-recently-used file once the cap is exceeded
        (real Stash caches have finite disk); evicted files pay origin
        bandwidth again on their next delivery. ``None`` (default)
        disables eviction entirely, preserving the unbounded-cache
        behaviour bit-identically.
    """

    origin_mb_per_s: float = 25.0
    cache_mb_per_s: float = 250.0
    n_cache_sites: int = 12
    setup_overhead_s: float = 35.0
    include_image: bool = True
    max_entries_per_site: int | None = None

    def __post_init__(self) -> None:
        if self.origin_mb_per_s <= 0 or self.cache_mb_per_s <= 0:
            raise SimulationError("bandwidths must be positive")
        if self.n_cache_sites < 1:
            raise SimulationError("need at least one cache site")
        if self.setup_overhead_s < 0:
            raise SimulationError("setup overhead must be non-negative")
        if self.max_entries_per_site is not None and self.max_entries_per_site < 1:
            raise SimulationError(
                f"max_entries_per_site must be >= 1 or None, "
                f"got {self.max_entries_per_site}"
            )


class StashCache:
    """Stateful cache: tracks which files are warm at which sites.

    Parameters
    ----------
    config:
        Bandwidths/overheads of the delivery path.
    faults:
        Optional :class:`~repro.faults.TransferFaults` model. ``None``
        (default) keeps the delivery path bit-identical to the
        fault-free simulator — no extra RNG draws, no retry loop.
    retry_policy:
        Backoff applied when an injected fault fails an attempt;
        default :class:`~repro.resilience.RetryPolicy`.
    retry_seed:
        Root of the deterministic per-job backoff schedules
        (``schedule(retry_seed, "transfer", job_name)``).
    """

    def __init__(
        self,
        config: TransferConfig | None = None,
        faults: "TransferFaults | None" = None,
        retry_policy: RetryPolicy | None = None,
        retry_seed: int = 0,
    ) -> None:
        self.config = config or TransferConfig()
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.retry_seed = retry_seed
        # Per-site LRU ordering: oldest entry first. Without a
        # max_entries_per_site cap nothing is ever evicted and the dicts
        # behave exactly like the former (file, site) membership set.
        self._warm: dict[int, OrderedDict[str, None]] = {}
        self.n_cold_transfers = 0
        self.n_warm_transfers = 0
        self.n_evictions = 0
        self.n_transfer_faults = 0
        self.n_transfer_retries = 0
        self.n_degraded_transfers = 0
        self.cold_mb_total = 0.0
        self.warm_mb_total = 0.0
        self.degraded_mb_total = 0.0
        self.total_transfer_seconds = 0.0
        self.total_backoff_seconds = 0.0
        self._obs_flushed: dict[str, float] = {}

    def reset(self) -> None:
        """Drop all cache state (a fresh campaign)."""
        self._warm.clear()
        self.n_cold_transfers = 0
        self.n_warm_transfers = 0
        self.n_evictions = 0
        self.n_transfer_faults = 0
        self.n_transfer_retries = 0
        self.n_degraded_transfers = 0
        self.cold_mb_total = 0.0
        self.warm_mb_total = 0.0
        self.degraded_mb_total = 0.0
        self.total_transfer_seconds = 0.0
        self.total_backoff_seconds = 0.0
        self._obs_flushed = {}
        if self.faults is not None:
            self.faults.reset()

    def is_warm(self, filename: str, site: int) -> bool:
        """True when ``filename`` is cached at ``site``."""
        return filename in self._warm.get(site, ())

    def _job_files(self, spec: JobSpec) -> dict[str, float]:
        files = dict(spec.input_files)
        if self.config.include_image:
            files.setdefault("singularity.sif", SINGULARITY_IMAGE_MB)
        return files

    def _stage_at(self, files: dict[str, float], site: int) -> float:
        """Stage a file set at one site; returns elapsed seconds
        (including the setup overhead) and marks the files warm."""
        cfg = self.config
        total = cfg.setup_overhead_s
        site_cache = self._warm.setdefault(site, OrderedDict())
        for filename, size_mb in files.items():
            if size_mb < 0:
                raise SimulationError(f"negative file size for {filename!r}")
            if filename in site_cache:
                bw = cfg.cache_mb_per_s
                self.n_warm_transfers += 1
                self.warm_mb_total += size_mb
                site_cache.move_to_end(filename)
            else:
                bw = cfg.origin_mb_per_s
                site_cache[filename] = None
                self.n_cold_transfers += 1
                self.cold_mb_total += size_mb
                if (
                    cfg.max_entries_per_site is not None
                    and len(site_cache) > cfg.max_entries_per_site
                ):
                    site_cache.popitem(last=False)
                    self.n_evictions += 1
            total += size_mb / bw
        # Bandwidth-bound time only; the fixed setup overhead is not a
        # transfer and would dilute cache-efficiency accounting.
        self.total_transfer_seconds += total - cfg.setup_overhead_s
        return total

    def observe_flush(self) -> None:
        """Emit obs counters for transfer activity since the last flush.

        The per-file delivery loop only bumps plain attributes (which it
        tracked already); obs counters are emitted here, once per pool
        run, so an observed replay's per-job hot path pays nothing —
        the obs-overhead budget could not absorb a counter per file.
        Deltas against the last flush keep repeated runs over one cache
        from double-counting.
        """
        if not obs.enabled():
            return
        for name, labels, value in (
            ("repro_transfer_files_total", {"temperature": "cold"},
             float(self.n_cold_transfers)),
            ("repro_transfer_files_total", {"temperature": "warm"},
             float(self.n_warm_transfers)),
            ("repro_transfer_mb_total", {"temperature": "cold"},
             self.cold_mb_total),
            ("repro_transfer_mb_total", {"temperature": "warm"},
             self.warm_mb_total),
            ("repro_transfer_mb_total", {"temperature": "degraded"},
             self.degraded_mb_total),
            ("repro_transfer_evictions_total", {}, float(self.n_evictions)),
            ("repro_transfer_faults_total", {}, float(self.n_transfer_faults)),
            ("repro_transfer_retries_total", {},
             float(self.n_transfer_retries)),
            ("repro_transfer_degraded_total", {},
             float(self.n_degraded_transfers)),
            ("repro_transfer_backoff_seconds_total", {},
             self.total_backoff_seconds),
        ):
            key = name + "|" + "|".join(sorted(labels.values()))
            delta = value - self._obs_flushed.get(key, 0.0)
            if delta > 0.0:
                obs.counter_add(name, delta, labels)
                self._obs_flushed[key] = value

    def transfer_time(self, spec: JobSpec, rng: np.random.Generator) -> float:
        """Seconds to stage all of a job's inputs at a random site.

        Marks each delivered file warm at the chosen site, so later jobs
        landing there hit the cache. With a fault model installed, a
        failed attempt still costs its (possibly slowed) elapsed time,
        then the job backs off per its deterministic retry schedule and
        re-pulls at the *same* site (the job is pinned to its execute
        point; the re-pull is mostly warm). A job whose retries are all
        doomed falls back to a direct origin pull.
        """
        cfg = self.config
        site = int(rng.integers(cfg.n_cache_sites))
        files = self._job_files(spec)
        if self.faults is None:
            return self._stage_at(files, site)
        total = 0.0
        delays = self.retry_policy.schedule(self.retry_seed, "transfer", spec.name)
        for attempt in range(self.retry_policy.max_attempts):
            elapsed = self._stage_at(files, site)
            fails, slow = self.faults.draw()
            # The multiplier degrades bandwidth, not the fixed setup.
            total += cfg.setup_overhead_s + (elapsed - cfg.setup_overhead_s) * slow
            if not fails:
                return total
            self.n_transfer_faults += 1
            if attempt < len(delays):
                self.n_transfer_retries += 1
                total += delays[attempt]
                self.total_backoff_seconds += delays[attempt]
        # Retries exhausted: the job pulls everything straight from the
        # origin, bypassing the cache path. Expensive but always lands.
        self.n_degraded_transfers += 1
        self.degraded_mb_total += sum(files.values())
        direct = sum(files.values()) / cfg.origin_mb_per_s
        self.total_transfer_seconds += direct
        return total + cfg.setup_overhead_s + direct
