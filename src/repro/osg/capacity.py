"""Time-varying pool capacity: how many slots one user can occupy.

On the OSPool the effective capacity of a single submitter swings with
glidein churn and competing workloads — the paper repeatedly attributes
result variance to "OSG's variable resources". We model the per-user
slot count as a piecewise-constant stochastic process:

* :class:`FixedCapacity` — a constant, for controlled tests and
  ablations,
* :class:`MarkovModulatedCapacity` — a finite-state Markov process over
  capacity levels with exponential dwell times, the default. Its states
  are fitted so a single full-input DAGMan sees the paper's ~10.7
  jobs/min average with running-job peaks above 400 (Fig 4).

Processes yield ``(dwell_seconds, new_capacity)`` steps; the pool
simulator schedules a change event per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import CapacityError

__all__ = [
    "CapacityProcess",
    "FixedCapacity",
    "MarkovModulatedCapacity",
    "default_ospool_capacity",
]


class CapacityProcess(Protocol):
    """Protocol for capacity processes consumed by the pool simulator."""

    def initial(self, rng: np.random.Generator) -> int:
        """Capacity at time zero."""
        ...

    def next_change(self, rng: np.random.Generator) -> tuple[float, int]:
        """Return (dwell_seconds_until_change, new_capacity)."""
        ...


@dataclass
class FixedCapacity:
    """A constant capacity (no churn)."""

    slots: int

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise CapacityError(f"capacity must be >= 1 slot, got {self.slots}")

    def initial(self, rng: np.random.Generator) -> int:
        """Always ``slots``."""
        del rng
        return self.slots

    def next_change(self, rng: np.random.Generator) -> tuple[float, int]:
        """Re-assert the same capacity once a (simulated) day."""
        del rng
        return 86400.0, self.slots


class MarkovModulatedCapacity:
    """Finite-state Markov-modulated capacity.

    Parameters
    ----------
    levels:
        Capacity (slots) of each state, low to high.
    mean_dwell_s:
        Mean exponential dwell time per state.
    transition:
        Row-stochastic matrix; ``transition[i, j]`` is the probability
        of jumping to state j when leaving state i. Defaults to a
        nearest-neighbour random walk (reflecting at the ends), which
        produces the slow wander with occasional bursts seen in the
        paper's running-job footprints.
    jitter:
        Multiplicative uniform jitter (+/- fraction) applied to the
        capacity on each change, so repeated visits to a state differ.
    """

    def __init__(
        self,
        levels: list[int],
        mean_dwell_s: list[float] | float = 1800.0,
        transition: np.ndarray | None = None,
        jitter: float = 0.1,
    ) -> None:
        if len(levels) < 1:
            raise CapacityError("need at least one capacity level")
        if any(lv < 1 for lv in levels):
            raise CapacityError(f"levels must be >= 1, got {levels}")
        if not (0.0 <= jitter < 1.0):
            raise CapacityError(f"jitter must be in [0, 1), got {jitter}")
        self.levels = [int(lv) for lv in levels]
        n = len(levels)
        if isinstance(mean_dwell_s, (int, float)):
            self.mean_dwell_s = [float(mean_dwell_s)] * n
        else:
            self.mean_dwell_s = [float(d) for d in mean_dwell_s]
        if len(self.mean_dwell_s) != n:
            raise CapacityError("mean_dwell_s length must match levels")
        if any(d <= 0 for d in self.mean_dwell_s):
            raise CapacityError("dwell times must be positive")
        if transition is None:
            transition = np.zeros((n, n))
            for i in range(n):
                if n == 1:
                    transition[i, i] = 1.0
                elif i == 0:
                    transition[i, 1] = 1.0
                elif i == n - 1:
                    transition[i, n - 2] = 1.0
                else:
                    transition[i, i - 1] = 0.5
                    transition[i, i + 1] = 0.5
        transition = np.asarray(transition, dtype=float)
        if transition.shape != (n, n):
            raise CapacityError(f"transition must be {n}x{n}, got {transition.shape}")
        rowsums = transition.sum(axis=1)
        if not np.allclose(rowsums, 1.0):
            raise CapacityError("transition rows must sum to 1")
        if np.any(transition < 0):
            raise CapacityError("transition probabilities must be non-negative")
        self.transition = transition
        self.jitter = float(jitter)
        self._state = 0

    def _jittered(self, rng: np.random.Generator, level: int) -> int:
        if self.jitter == 0.0:
            return level
        factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(1, int(round(level * factor)))

    def initial(self, rng: np.random.Generator) -> int:
        """Start in a uniformly random state."""
        self._state = int(rng.integers(len(self.levels)))
        return self._jittered(rng, self.levels[self._state])

    def next_change(self, rng: np.random.Generator) -> tuple[float, int]:
        """Exponential dwell in the current state, then jump."""
        dwell = float(rng.exponential(self.mean_dwell_s[self._state]))
        # A zero dwell would make the event loop livelock on pathological
        # RNG draws; floor at one second.
        dwell = max(1.0, dwell)
        self._state = int(rng.choice(len(self.levels), p=self.transition[self._state]))
        return dwell, self._jittered(rng, self.levels[self._state])


def default_ospool_capacity() -> MarkovModulatedCapacity:
    """The calibrated OSPool capacity process (see DESIGN.md).

    Five levels between starved and burst; the stationary mean is about
    250 slots, with excursions past 450 that produce the >400
    running-job peaks in Fig 4.
    """
    return MarkovModulatedCapacity(
        levels=[90, 170, 250, 340, 470],
        mean_dwell_s=[1500.0, 2100.0, 2700.0, 2100.0, 1200.0],
        jitter=0.12,
    )
