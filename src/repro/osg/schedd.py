"""Schedd: the per-submitter job queue.

Each DAGMan in our experiments gets its own submitter queue (in OSG
terms they share a user but the negotiator interleaves their job
streams; modelling each as a queue captures the observed fair
interleaving directly). The schedd tracks idle jobs FIFO and per-queue
idle counts so DAGMan's ``max_idle`` throttle can be honoured.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.condor.jobs import Job, JobState

__all__ = ["ScheddQueue"]


class ScheddQueue:
    """FIFO idle queue for one submitter (one DAGMan instance)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._idle: deque[tuple[str, Job]] = deque()

    def __len__(self) -> int:
        return len(self._idle)

    @property
    def n_idle(self) -> int:
        """Jobs currently idle in this queue."""
        return len(self._idle)

    def enqueue(self, node_name: str, job: Job, front: bool = False) -> None:
        """Add an idle job; ``front=True`` re-queues an evicted job with
        its original priority (HTCondor keeps the original queue
        position on eviction)."""
        if job.state is not JobState.IDLE:
            raise SimulationError(
                f"job {job.spec.name} enqueued while {job.state.value}"
            )
        if front:
            self._idle.appendleft((node_name, job))
        else:
            self._idle.append((node_name, job))

    def pop(self) -> tuple[str, Job]:
        """Remove and return the oldest idle job."""
        if not self._idle:
            raise SimulationError(f"schedd {self.name}: pop from empty queue")
        return self._idle.popleft()

    def peek_oldest_wait(self, now: float) -> float | None:
        """Queue age in seconds of the oldest idle job, or None."""
        if not self._idle:
            return None
        _, job = self._idle[0]
        if job.submit_time is None:
            return None
        return now - job.submit_time
