"""Schedd: the per-submitter job queue.

Each DAGMan in our experiments gets its own submitter queue (in OSG
terms they share a user but the negotiator interleaves their job
streams; modelling each as a queue captures the observed fair
interleaving directly). The schedd tracks idle jobs FIFO and per-queue
idle counts so DAGMan's ``max_idle`` throttle can be honoured.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.condor.jobs import Job, JobState

__all__ = ["ScheddQueue"]


class ScheddQueue:
    """FIFO idle queue for one submitter (one DAGMan instance)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._idle: deque[tuple[str, Job]] = deque()

    def __len__(self) -> int:
        return len(self._idle)

    @property
    def n_idle(self) -> int:
        """Jobs currently idle in this queue."""
        return len(self._idle)

    def enqueue(self, node_name: str, job: Job, front: bool = False) -> None:
        """Add an idle job; ``front=True`` re-queues an evicted job with
        its original priority (HTCondor keeps the original queue
        position on eviction)."""
        if job.state is not JobState.IDLE:
            raise SimulationError(
                f"job {job.spec.name} enqueued while {job.state.value}"
            )
        if front:
            self._idle.appendleft((node_name, job))
        else:
            self._idle.append((node_name, job))

    def enqueue_many(self, entries: list[tuple[str, Job]]) -> None:
        """Append a batch of freshly-submitted idle jobs (FIFO order).

        Batch counterpart of :meth:`enqueue` for the vectorized pool
        engine. The caller guarantees every job is IDLE — the batch
        submit path creates them in that state immediately before the
        call, so re-validating each would only re-check the invariant
        the table transition just enforced.
        """
        self._idle.extend(entries)

    def pop(self) -> tuple[str, Job]:
        """Remove and return the oldest idle job."""
        if not self._idle:
            raise SimulationError(f"schedd {self.name}: pop from empty queue")
        return self._idle.popleft()

    def pop_many(self, n: int) -> list[tuple[str, Job]]:
        """Remove and return the ``n`` oldest idle jobs, FIFO.

        Batch counterpart of :meth:`pop` used by the vectorized
        negotiator, which computes each queue's per-cycle match count
        up front and slices the queue once.
        """
        if n < 0:
            raise SimulationError(f"schedd {self.name}: pop_many({n})")
        if n > len(self._idle):
            raise SimulationError(
                f"schedd {self.name}: pop_many({n}) from a queue of {len(self._idle)}"
            )
        popleft = self._idle.popleft
        return [popleft() for _ in range(n)]

    def peek_oldest_wait(self, now: float) -> float | None:
        """Queue age in seconds of the oldest idle job, or None.

        Entries whose job has no ``submit_time`` yet are skipped rather
        than masking the jobs queued behind them — the throttle probe
        must see the oldest *timed* wait, not give up at an untimed
        head entry.
        """
        for _, job in self._idle:
            if job.submit_time is not None:
                return now - job.submit_time
        return None
