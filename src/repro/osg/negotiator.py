"""The negotiator: periodic fair matchmaking across submitter queues.

HTCondor's negotiator runs in cycles: each cycle it computes how many
slots are free and hands them out across submitters by fair share. Two
properties matter for the paper's results and are modelled here:

* **fair interleaving** — with k active DAGMans, each receives roughly
  1/k of the matches per cycle (round-robin), which is the mechanism
  behind the per-DAGMan throughput collapse of Fig 3;
* **per-cycle match limit** — a cap on matches per cycle bounds the
  claim ramp-up rate, producing the gradual running-job ramps (rather
  than instant jumps to capacity) seen in Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.condor.jobs import Job
from repro.osg.schedd import ScheddQueue

__all__ = ["NegotiatorConfig", "negotiate", "negotiate_vectorized"]


@dataclass(frozen=True)
class NegotiatorConfig:
    """Matchmaking knobs.

    Attributes
    ----------
    cycle_s:
        Seconds between negotiation cycles.
    match_limit_per_cycle:
        Maximum matches per cycle across all submitters.
    """

    cycle_s: float = 60.0
    match_limit_per_cycle: int = 400

    def __post_init__(self) -> None:
        if self.cycle_s <= 0:
            raise SimulationError(f"cycle_s must be positive, got {self.cycle_s}")
        if self.match_limit_per_cycle < 1:
            raise SimulationError("match_limit_per_cycle must be >= 1")


def negotiate(
    queues: list[ScheddQueue],
    free_slots: int,
    config: NegotiatorConfig,
) -> list[tuple[ScheddQueue, str, Job]]:
    """Run one negotiation cycle.

    Round-robins over the queues, taking the oldest idle job from each
    in turn, until free slots run out, the cycle match limit trips, or
    every queue is empty. Returns the matches as
    ``(queue, node_name, job)`` tuples; the caller starts the jobs.
    """
    if free_slots < 0:
        raise SimulationError(f"free_slots must be >= 0, got {free_slots}")
    budget = min(free_slots, config.match_limit_per_cycle)
    matches: list[tuple[ScheddQueue, str, Job]] = []
    active = [q for q in queues if q.n_idle > 0]
    while budget > 0 and active:
        next_round: list[ScheddQueue] = []
        for queue in active:
            if budget == 0:
                break
            node_name, job = queue.pop()
            matches.append((queue, node_name, job))
            budget -= 1
            if queue.n_idle > 0:
                next_round.append(queue)
        active = [q for q in next_round if q.n_idle > 0]
    return matches


def _apportion(counts: np.ndarray, budget: int) -> np.ndarray:
    """Fair-share apportionment of ``budget`` matches across queues.

    Vectorized closed form of the scalar round-robin: find the largest
    number of *complete* rounds ``t`` the budget affords — i.e. the
    largest ``t`` with ``sum(min(counts, t)) <= budget`` (monotone, so a
    binary search over ``[0, max(counts)]``) — then hand the leftover
    matches one each to the earliest queues that still have a job past
    round ``t``, exactly the order the scalar loop would cut off
    mid-round. Returns the per-queue match counts.
    """
    lo, hi = 0, int(counts.max())
    while lo < hi:  # largest t with the clipped sum within budget
        mid = (lo + hi + 1) // 2
        if int(np.minimum(counts, mid).sum()) <= budget:
            lo = mid
        else:
            hi = mid - 1
    base = np.minimum(counts, lo)
    leftover = budget - int(base.sum())
    extra_idx = np.flatnonzero(counts > lo)[:leftover]
    m = base.copy()
    m[extra_idx] += 1
    return m


def negotiate_vectorized(
    queues: list[ScheddQueue],
    free_slots: int,
    config: NegotiatorConfig,
) -> list[tuple[ScheddQueue, str, Job]]:
    """Run one negotiation cycle as array operations.

    Produces the *identical* match sequence as the scalar
    :func:`negotiate` oracle (asserted by a randomized property test),
    but in O(k log k + matches) instead of one queue-list rebuild per
    round: per-queue idle counts -> :func:`_apportion` fair share ->
    one batched FIFO slice per queue -> interleaved (round, queue)
    ordering reconstructed with a lexsort.
    """
    if free_slots < 0:
        raise SimulationError(f"free_slots must be >= 0, got {free_slots}")
    budget = min(free_slots, config.match_limit_per_cycle)
    active = [q for q in queues if q.n_idle > 0]
    if budget <= 0 or not active:
        return []
    counts = np.fromiter((q.n_idle for q in active), dtype=np.int64, count=len(active))
    m = _apportion(counts, budget)
    total = int(m.sum())
    if total == 0:
        return []
    popped = [q.pop_many(int(n)) for q, n in zip(active, m)]
    # Each queue's slice is FIFO; the scalar loop emits them interleaved
    # round by round, queues in original order within a round.
    queue_pos = np.repeat(np.arange(len(active)), m)
    slice_starts = np.cumsum(m) - m
    rounds = np.arange(total) - np.repeat(slice_starts, m)
    order = np.lexsort((queue_pos, rounds))
    matches: list[tuple[ScheddQueue, str, Job]] = []
    append = matches.append
    for flat in order:
        qi = int(queue_pos[flat])
        node_name, job = popped[qi][int(rounds[flat])]
        append((active[qi], node_name, job))
    return matches
