"""The negotiator: periodic fair matchmaking across submitter queues.

HTCondor's negotiator runs in cycles: each cycle it computes how many
slots are free and hands them out across submitters by fair share. Two
properties matter for the paper's results and are modelled here:

* **fair interleaving** — with k active DAGMans, each receives roughly
  1/k of the matches per cycle (round-robin), which is the mechanism
  behind the per-DAGMan throughput collapse of Fig 3;
* **per-cycle match limit** — a cap on matches per cycle bounds the
  claim ramp-up rate, producing the gradual running-job ramps (rather
  than instant jumps to capacity) seen in Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.condor.jobs import Job
from repro.osg.schedd import ScheddQueue

__all__ = ["NegotiatorConfig", "negotiate"]


@dataclass(frozen=True)
class NegotiatorConfig:
    """Matchmaking knobs.

    Attributes
    ----------
    cycle_s:
        Seconds between negotiation cycles.
    match_limit_per_cycle:
        Maximum matches per cycle across all submitters.
    """

    cycle_s: float = 60.0
    match_limit_per_cycle: int = 400

    def __post_init__(self) -> None:
        if self.cycle_s <= 0:
            raise SimulationError(f"cycle_s must be positive, got {self.cycle_s}")
        if self.match_limit_per_cycle < 1:
            raise SimulationError("match_limit_per_cycle must be >= 1")


def negotiate(
    queues: list[ScheddQueue],
    free_slots: int,
    config: NegotiatorConfig,
) -> list[tuple[ScheddQueue, str, Job]]:
    """Run one negotiation cycle.

    Round-robins over the queues, taking the oldest idle job from each
    in turn, until free slots run out, the cycle match limit trips, or
    every queue is empty. Returns the matches as
    ``(queue, node_name, job)`` tuples; the caller starts the jobs.
    """
    if free_slots < 0:
        raise SimulationError(f"free_slots must be >= 0, got {free_slots}")
    budget = min(free_slots, config.match_limit_per_cycle)
    matches: list[tuple[ScheddQueue, str, Job]] = []
    active = [q for q in queues if q.n_idle > 0]
    while budget > 0 and active:
        next_round: list[ScheddQueue] = []
        for queue in active:
            if budget == 0:
                break
            node_name, job = queue.pop()
            matches.append((queue, node_name, job))
            budget -= 1
            if queue.n_idle > 0:
                next_round.append(queue)
        active = [q for q in next_round if q.n_idle > 0]
    return matches
