"""Per-job records and pool-level statistics.

:class:`PoolMetrics` is the analysis surface for everything Figures 2-4
report: per-job execution and wait times, instant throughput (paper
eq. 5), running-job counts per second, and per-DAGMan total runtime and
throughput. All series are computed vectorized from the job records
after the simulation ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.obs.stats import percentiles
from repro.units import jobs_per_minute

__all__ = ["JobRecord", "DagmanSummary", "PoolMetrics"]


@dataclass(frozen=True)
class JobRecord:
    """Final timing record of one job attempt that completed."""

    node_name: str
    dagman: str
    phase: str
    cluster_id: int
    submit_time: float
    start_time: float
    end_time: float
    n_evictions: int = 0
    success: bool = True

    def __post_init__(self) -> None:
        if not (self.submit_time <= self.start_time <= self.end_time):
            raise SimulationError(
                f"job {self.node_name}: non-monotone times "
                f"({self.submit_time}, {self.start_time}, {self.end_time})"
            )

    @property
    def wait_s(self) -> float:
        """Queue wait in seconds."""
        return self.start_time - self.submit_time

    @property
    def exec_s(self) -> float:
        """Execution wall time in seconds."""
        return self.end_time - self.start_time


@dataclass(frozen=True)
class DagmanSummary:
    """Per-DAGMan totals (inputs to the paper's eqs. 1-4)."""

    name: str
    submit_time: float
    end_time: float
    n_jobs: int

    @property
    def runtime_s(self) -> float:
        """Total DAGMan runtime in seconds."""
        return self.end_time - self.submit_time

    @property
    def throughput_jpm(self) -> float:
        """Total throughput in jobs/minute (eq. 2 numerator term)."""
        return jobs_per_minute(self.n_jobs, self.runtime_s)


@dataclass
class PoolMetrics:
    """All job records plus per-DAGMan summaries for one pool run."""

    records: list[JobRecord] = field(default_factory=list)
    dagmans: dict[str, DagmanSummary] = field(default_factory=dict)
    capacity_trace: list[tuple[float, int]] = field(default_factory=list)

    # -- aggregation across attempts -----------------------------------------

    @classmethod
    def merged(cls, attempts: "list[PoolMetrics]") -> "PoolMetrics":
        """Merge metrics from successive rescue attempts of a batch.

        Job records and capacity traces concatenate; a DAGMan appearing
        in several attempts (the original run plus its rescues) merges
        into one summary spanning first submit to last end, with the job
        count summed so every-node-exactly-once accounting still holds.
        """
        if not attempts:
            raise SimulationError("no metrics to merge")
        merged = cls()
        for m in attempts:
            merged.records.extend(m.records)
            merged.capacity_trace.extend(m.capacity_trace)
            for name, s in m.dagmans.items():
                prev = merged.dagmans.get(name)
                if prev is None:
                    merged.dagmans[name] = s
                else:
                    merged.dagmans[name] = DagmanSummary(
                        name=name,
                        submit_time=min(prev.submit_time, s.submit_time),
                        end_time=max(prev.end_time, s.end_time),
                        n_jobs=prev.n_jobs + s.n_jobs,
                    )
        return merged

    # -- selection ---------------------------------------------------------

    def for_dagman(self, name: str) -> list[JobRecord]:
        """Completed-job records of one DAGMan."""
        if name not in self.dagmans:
            raise SimulationError(f"unknown DAGMan {name!r}")
        return [r for r in self.records if r.dagman == name]

    def phase_records(self, phase: str, dagman: str | None = None) -> list[JobRecord]:
        """Records filtered by FDW phase (and optionally DAGMan)."""
        return [
            r
            for r in self.records
            if r.phase == phase and (dagman is None or r.dagman == dagman)
        ]

    # -- scalar statistics ---------------------------------------------------

    def wait_times_s(self, phase: str | None = None, dagman: str | None = None) -> np.ndarray:
        """Sorted queue waits in seconds."""
        vals = [
            r.wait_s
            for r in self.records
            if (phase is None or r.phase == phase)
            and (dagman is None or r.dagman == dagman)
        ]
        return np.sort(np.array(vals))

    def exec_times_s(self, phase: str | None = None, dagman: str | None = None) -> np.ndarray:
        """Sorted execution times in seconds."""
        vals = [
            r.exec_s
            for r in self.records
            if (phase is None or r.phase == phase)
            and (dagman is None or r.dagman == dagman)
        ]
        return np.sort(np.array(vals))

    def wait_percentiles(
        self,
        ps: tuple[float, ...] = (50.0, 90.0, 99.0),
        phase: str | None = None,
        dagman: str | None = None,
    ) -> list[float]:
        """Nearest-rank queue-wait percentiles (shared obs.stats math)."""
        return percentiles(self.wait_times_s(phase, dagman), ps)

    def exec_percentiles(
        self,
        ps: tuple[float, ...] = (50.0, 90.0, 99.0),
        phase: str | None = None,
        dagman: str | None = None,
    ) -> list[float]:
        """Nearest-rank execution-time percentiles (shared obs.stats math)."""
        return percentiles(self.exec_times_s(phase, dagman), ps)

    # -- time series ------------------------------------------------------------

    def _window(self, dagman: str | None) -> tuple[float, float]:
        if dagman is not None:
            s = self.dagmans[dagman]
            return s.submit_time, s.end_time
        if not self.dagmans:
            raise SimulationError("no DAGMans recorded")
        return (
            min(s.submit_time for s in self.dagmans.values()),
            max(s.end_time for s in self.dagmans.values()),
        )

    def instant_throughput_jpm(self, dagman: str | None = None) -> np.ndarray:
        """Instant throughput per second of runtime (paper eq. 5).

        ``omega[t] = completions(<= t) / minutes elapsed`` relative to
        the (DAGMan's) submit time. Index 0 is the first second.
        """
        t0, t1 = self._window(dagman)
        n = max(1, int(np.ceil(t1 - t0)))
        selected = [
            r
            for r in self.records
            if (dagman is None or r.dagman == dagman) and r.success
        ]
        ends = np.fromiter(
            (r.end_time - t0 for r in selected), dtype=float, count=len(selected)
        )
        counts = np.zeros(n + 1)
        if ends.size:
            idx = np.clip(np.ceil(ends).astype(int), 0, n)
            np.add.at(counts, idx, 1.0)
        cumulative = np.cumsum(counts)[1:]
        minutes = (np.arange(1, n + 1)) / 60.0
        return cumulative / minutes

    def running_jobs(self, dagman: str | None = None) -> np.ndarray:
        """Running jobs sampled at each integer second of the window.

        A job contributes to second ``t`` iff ``start <= t < end``
        (exact sampling, so the series never exceeds the instantaneous
        slot occupancy — back-to-back claim reuse does not double-count
        the handover second).
        """
        t0, t1 = self._window(dagman)
        n = max(1, int(np.ceil(t1 - t0)))
        selected = (
            self.records
            if dagman is None
            else [r for r in self.records if r.dagman == dagman]
        )
        delta = np.zeros(n + 2)
        if selected:
            # Vectorized difference array: one clip/ceil pass instead
            # of a Python loop per record (the loop dominated analysis
            # time on million-record runs).
            starts = np.fromiter(
                (r.start_time for r in selected), dtype=float, count=len(selected)
            )
            ends = np.fromiter(
                (r.end_time for r in selected), dtype=float, count=len(selected)
            )
            a = np.clip(np.ceil(starts - t0), 0, n).astype(np.int64)
            b = np.clip(np.ceil(ends - t0), 0, n + 1).astype(np.int64)
            occupied = b > a
            np.add.at(delta, a[occupied], 1.0)
            np.add.at(delta, b[occupied], -1.0)
        return np.cumsum(delta)[:n]

    # -- aggregation over repeated runs (the paper's eqs. 1-4) -------------------

    @staticmethod
    def average_total_runtime_s(runtimes_s: list[float]) -> float:
        """Eq. (1)/(3): mean of total runtimes."""
        if not runtimes_s:
            raise SimulationError("no runtimes to average")
        return float(np.mean(runtimes_s))

    @staticmethod
    def average_total_throughput_jpm(
        jobs: list[int], runtimes_s: list[float]
    ) -> float:
        """Eq. (2)/(4): mean of per-run (jobs / runtime) in jobs/minute."""
        if len(jobs) != len(runtimes_s) or not jobs:
            raise SimulationError("jobs and runtimes must be equal-length, non-empty")
        return float(
            np.mean([jobs_per_minute(j, r) for j, r in zip(jobs, runtimes_s)])
        )
