"""Job execution-time model, calibrated to the paper's phase costs.

Each FDW job's wall time on an execute node is sampled from a lognormal
distribution around a deterministic mean that scales with the job's
payload (phase, chunk size, station count) and the node's speed factor.
The central values are fitted to the paper's Section 5.2.3 observations:

* rupture (Phase A) jobs: "consistently executed in around 2.5 minutes"
  for the default 16-rupture chunk;
* waveform (Phase C) jobs: "typically took 15 to 20 minutes" with the
  121-station list, "often completed in under 1 minute" with 2 stations,
  for the default 2-rupture chunk;
* GF (Phase B) jobs: "can span multiple hours depending on the length of
  a required input list of GNSS stations";
* the distance-matrix bootstrap: a one-off ~10-minute matrix build.

:meth:`RuntimeModel.calibrate_from_kernels` optionally re-derives the
per-item coefficients by timing the *real* seismic kernels at small
scale and extrapolating linearly — keeping the simulated costs anchored
to actual computation in this repository.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError
from repro.condor.jobs import JobPayload, JobSpec

__all__ = ["RuntimeModel"]


@dataclass(frozen=True)
class RuntimeModel:
    """Sampling model for job execution times.

    Mean wall time per payload::

        dist:  t = dist_base_s
        A:     t = a_base_s + n_items * a_per_rupture_s
        B:     t = b_base_s + n_stations * b_per_station_s
        C:     t = c_base_s + n_items * (c_per_station_s * n_stations
                                          + c_per_rupture_s)

    then multiplied by lognormal noise with ``sigma_log`` and the node
    speed factor drawn uniformly from ``speed_range`` (heterogeneous
    OSPool hardware).
    """

    dist_base_s: float = 600.0
    a_base_s: float = 15.0
    a_per_rupture_s: float = 8.4
    b_base_s: float = 300.0
    b_per_station_s: float = 52.0
    c_base_s: float = 6.0
    c_per_rupture_s: float = 4.0
    c_per_station_s: float = 4.25
    sigma_log: float = 0.18
    speed_range: tuple[float, float] = (0.85, 1.30)

    def __post_init__(self) -> None:
        values = (
            self.dist_base_s,
            self.a_base_s,
            self.a_per_rupture_s,
            self.b_base_s,
            self.b_per_station_s,
            self.c_base_s,
            self.c_per_rupture_s,
            self.c_per_station_s,
        )
        if any(v < 0 for v in values):
            raise SimulationError("runtime coefficients must be non-negative")
        if self.sigma_log < 0:
            raise SimulationError(f"sigma_log must be >= 0, got {self.sigma_log}")
        lo, hi = self.speed_range
        if not (0 < lo <= hi):
            raise SimulationError(f"bad speed range {self.speed_range}")

    # -- deterministic means ---------------------------------------------------

    def mean_seconds(self, payload: JobPayload) -> float:
        """Central execution time for a payload (no noise)."""
        if payload.phase == "dist":
            return self.dist_base_s
        if payload.phase == "A":
            return self.a_base_s + payload.n_items * self.a_per_rupture_s
        if payload.phase == "B":
            return self.b_base_s + payload.n_stations * self.b_per_station_s
        # Phase C
        return self.c_base_s + payload.n_items * (
            self.c_per_station_s * payload.n_stations + self.c_per_rupture_s
        )

    # -- sampling ------------------------------------------------------------

    def sample_seconds(self, spec: JobSpec, rng: np.random.Generator) -> float:
        """Draw one execution time for a job.

        Jobs without an FDW payload get a 5-minute generic duration —
        they only appear in substrate-level tests.
        """
        if spec.payload is None:
            mean = 300.0
        else:
            mean = self.mean_seconds(spec.payload)
        noise = float(rng.lognormal(mean=-0.5 * self.sigma_log**2, sigma=self.sigma_log))
        speed = float(rng.uniform(*self.speed_range))
        return max(1.0, mean * noise / speed)

    # -- calibration against the real kernels --------------------------------------

    @classmethod
    def calibrate_from_kernels(
        cls,
        n_probe_ruptures: int = 2,
        n_probe_stations: int = 6,
        mesh: tuple[int, int] = (12, 8),
        reference: "RuntimeModel | None" = None,
    ) -> "RuntimeModel":
        """Derive per-item coefficients by timing the real seismo kernels.

        Runs tiny Phase A/B/C workloads from :mod:`repro.seismo`, then
        scales the measured per-item costs so that the canonical paper
        workload (16-rupture A chunks, 121 stations, 2-rupture C chunks)
        lands on the reference means. This keeps *relative* costs (e.g.
        station scaling) anchored to actual computation while absolute
        values match the paper's observed wall times.
        """
        # Imported here: runtimes must stay importable without the
        # seismic stack in play (substrate layering).
        from repro.seismo.fakequakes import FakeQuakes, FakeQuakesParameters

        ref = reference or cls()
        params = FakeQuakesParameters(
            n_ruptures=n_probe_ruptures, n_stations=n_probe_stations, mesh=mesh, seed=7
        )
        fq = FakeQuakes.from_parameters(params)

        t0 = time.perf_counter()
        fq.phase_a_distances()
        t_dist = time.perf_counter() - t0

        t0 = time.perf_counter()
        ruptures = fq.phase_a_ruptures()
        t_a = (time.perf_counter() - t0) / n_probe_ruptures

        t0 = time.perf_counter()
        fq.phase_b_greens_functions()
        t_b = (time.perf_counter() - t0) / n_probe_stations

        t0 = time.perf_counter()
        fq.phase_c_waveforms(ruptures[:1])
        t_c = (time.perf_counter() - t0) / n_probe_stations

        # Scale measured per-item times onto the reference magnitudes,
        # preserving measured *ratios* between phases.
        measured = np.array([t_dist, t_a, t_b, t_c])
        if np.any(measured <= 0):
            raise SimulationError("kernel probe produced non-positive timings")
        reference_vec = np.array(
            [
                ref.dist_base_s,
                ref.a_per_rupture_s,
                ref.b_per_station_s,
                ref.c_per_station_s,
            ]
        )
        # One global scale maps the probe machine onto the paper's
        # 4-core OSG nodes (least-squares in log space).
        scale = float(np.exp(np.mean(np.log(reference_vec) - np.log(measured))))
        return replace(
            ref,
            dist_base_s=t_dist * scale,
            a_per_rupture_s=t_a * scale,
            b_per_station_s=t_b * scale,
            c_per_station_s=t_c * scale,
        )
