"""Discrete-event simulator of an OSG-style high-throughput pool.

The Open Science Pool is shared, opportunistic infrastructure: the
capacity a single user sees fluctuates as other workloads and glideins
come and go, a negotiator matches idle jobs to slots in periodic cycles,
and large input files are delivered through a Stash/OSDF cache. This
subpackage models exactly those mechanisms:

* :mod:`repro.osg.des` — the event-queue core,
* :mod:`repro.osg.capacity` — time-varying per-user slot capacity,
* :mod:`repro.osg.transfer` — the Stash-cache file delivery model,
* :mod:`repro.osg.runtimes` — job execution-time sampling calibrated to
  the paper's observed phase costs,
* :mod:`repro.osg.schedd` / :mod:`repro.osg.negotiator` — queueing and
  matchmaking (scalar oracle plus the vectorized cycle matcher),
* :mod:`repro.osg.jobtable` — struct-of-arrays job state behind the
  vectorized pool engine,
* :mod:`repro.osg.metrics` — per-job and per-second statistics,
* :mod:`repro.osg.pool` — the :class:`OSPoolSimulator` facade that runs
  DAGMan engines to completion.

Calibration targets and the mechanisms behind each reproduced figure are
documented in DESIGN.md.
"""

from repro.osg.capacity import CapacityProcess, FixedCapacity, MarkovModulatedCapacity
from repro.osg.des import EventHandle, Simulator
from repro.osg.jobtable import JobTable, JobView
from repro.osg.metrics import JobRecord, PoolMetrics
from repro.osg.negotiator import NegotiatorConfig, negotiate, negotiate_vectorized
from repro.osg.pool import DagmanRun, OSPoolConfig, OSPoolSimulator
from repro.osg.runtimes import RuntimeModel
from repro.osg.transfer import StashCache, TransferConfig

__all__ = [
    "CapacityProcess",
    "DagmanRun",
    "EventHandle",
    "FixedCapacity",
    "JobRecord",
    "JobTable",
    "JobView",
    "MarkovModulatedCapacity",
    "NegotiatorConfig",
    "OSPoolConfig",
    "OSPoolSimulator",
    "PoolMetrics",
    "RuntimeModel",
    "Simulator",
    "StashCache",
    "TransferConfig",
    "negotiate",
    "negotiate_vectorized",
]
