"""Discrete-event simulation core.

A minimal, deterministic event queue: callbacks scheduled at absolute or
relative simulation times, executed in (time, sequence) order so ties
break by scheduling order and runs are exactly reproducible. No
wall-clock coupling anywhere.

The event store is a *slab*: the heap holds compact ``(time, seq)``
tuples (compared at C speed by ``heapq``) while callbacks live in a flat
``seq``-keyed table. The table holds exactly the live events, so

* ``pending`` is O(1) — it is just the table size;
* cancellation is O(1) and lazy — the callback is dropped from the table
  and the heap tuple becomes a tombstone, discarded when it surfaces;
* when tombstones outnumber live entries (heavy eviction/re-scheduling
  workloads), the heap is compacted in one O(n) filter+heapify pass, so
  memory stays proportional to the *live* event count.

At million-job scale this core processes events several times faster
than the previous one-dataclass-per-event design and is the foundation
of the pool simulator's vectorized engine (see ``repro.osg.pool``).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["EventHandle", "Simulator"]

#: Below this heap size compaction is pointless bookkeeping.
_COMPACT_MIN_HEAP = 64


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule` for cancelling."""

    __slots__ = ("_sim", "_seq", "_time", "_cancelled")

    def __init__(self, sim: "Simulator", seq: int, time: float) -> None:
        self._sim = sim
        self._seq = seq
        self._time = time
        self._cancelled = False

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """True once cancelled."""
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "scheduled"
        return f"EventHandle(t={self._time}, seq={self._seq}, {state})"


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int]] = []
        self._callbacks: dict[int, Callable[[], None]] = {}
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events. O(1)."""
        return len(self._callbacks)

    @property
    def n_tombstones(self) -> int:
        """Cancelled heap entries awaiting lazy discard (introspection)."""
        return len(self._heap) - len(self._callbacks)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        seq = self.post_at(time, callback)
        return EventHandle(self, seq, float(time))

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule` (hot path for events never cancelled)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.post_at(self._now + delay, callback)

    def post_at(self, time: float, callback: Callable[[], None]) -> int:
        """Handle-free :meth:`schedule_at`; returns the event's sequence id."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._callbacks[seq] = callback
        heapq.heappush(self._heap, (float(time), seq))
        return seq

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        if handle._cancelled:
            return
        handle._cancelled = True
        sim = handle._sim
        if sim._callbacks.pop(handle._seq, None) is not None:
            sim._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once tombstones outnumber live entries."""
        heap = self._heap
        n_live = len(self._callbacks)
        if len(heap) > _COMPACT_MIN_HEAP and (len(heap) - n_live) * 2 > len(heap):
            live = self._callbacks
            # In place: run() holds a reference to this list across callbacks.
            heap[:] = [entry for entry in heap if entry[1] in live]
            heapq.heapify(heap)

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events in order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly after this time (the
            clock is left at ``until``).
        stop_when:
            Predicate checked after every event; truthy stops the run.
        max_events:
            Safety valve against runaway self-rescheduling loops.

        Raises
        ------
        SimulationError
            On re-entrant ``run`` calls or when ``max_events`` trips.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        processed = 0
        heap = self._heap
        callbacks = self._callbacks
        heappop = heapq.heappop
        try:
            while heap:
                time, seq = heap[0]
                callback = callbacks.get(seq)
                if callback is None:  # tombstone of a cancelled event
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = max(self._now, until)
                    return
                heappop(heap)
                del callbacks[seq]
                self._now = time
                callback()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                if stop_when is not None and stop_when():
                    return
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
