"""Discrete-event simulation core.

A minimal, deterministic event queue: callbacks scheduled at absolute or
relative simulation times, executed in (time, sequence) order so ties
break by scheduling order and runs are exactly reproducible. No
wall-clock coupling anywhere — simulating a 35-hour DAGMan batch takes
milliseconds per thousand events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule` for cancelling."""

    _event: _Event = field(repr=False)

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True once cancelled."""
        return self._event.cancelled


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _Event(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        handle._event.cancelled = True

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events in order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly after this time (the
            clock is left at ``until``).
        stop_when:
            Predicate checked after every event; truthy stops the run.
        max_events:
            Safety valve against runaway self-rescheduling loops.

        Raises
        ------
        SimulationError
            On re-entrant ``run`` calls or when ``max_events`` trips.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    return
                heapq.heappop(self._queue)
                self._now = event.time
                event.callback()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                if stop_when is not None and stop_when():
                    return
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
