"""Struct-of-arrays job state for the vectorized pool engine.

At million-job scale, one :class:`~repro.condor.jobs.Job` dataclass per
job attempt dominates memory and allocator time. :class:`JobTable`
stores the dynamic record columnwise instead — numpy arrays for state,
timestamps, sampled runtime, retries, slot, cluster id, and owning
DAGMan index, plus parallel Python lists for the spec and node name —
and :class:`JobView` is a two-word handle that duck-types ``Job`` over
one row. Everything downstream of the simulator (schedd queues,
``DagmanRun.jobs``, metrics, rescue, fault injection) accepts a view
wherever it accepted a ``Job``.

The state machine is *identical* to ``Job.transition``: same legal
transition table, same timestamp side effects (submit set on first
IDLE, start set on RUNNING, start/slot cleared on re-queue, end set on
the terminal states), same :class:`~repro.errors.JobStateError` on
illegal moves. The bit-identical reference-vs-vector pool tests lean on
this equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import JobStateError
from repro.condor.jobs import JobSpec, JobState, _TRANSITIONS

__all__ = ["JobTable", "JobView"]

#: Fixed state encoding: index into this tuple == the int8 code stored
#: in ``JobTable.state``. Order matches the JobState declaration so code
#: 0 is UNSUBMITTED.
STATES: tuple[JobState, ...] = tuple(JobState)
_CODE: dict[JobState, int] = {s: i for i, s in enumerate(STATES)}
_ALLOWED: tuple[frozenset[int], ...] = tuple(
    frozenset(_CODE[t] for t in _TRANSITIONS[s]) for s in STATES
)

_UNSUBMITTED = _CODE[JobState.UNSUBMITTED]
_IDLE = _CODE[JobState.IDLE]
_RUNNING = _CODE[JobState.RUNNING]
_COMPLETED = _CODE[JobState.COMPLETED]
_FAILED = _CODE[JobState.FAILED]
_HELD = _CODE[JobState.HELD]
_REMOVED = _CODE[JobState.REMOVED]
_REQUEUE_FROM = frozenset({_RUNNING, _FAILED, _HELD})
_TERMINAL = frozenset({_COMPLETED, _FAILED, _REMOVED})


class JobTable:
    """Columnar dynamic job state (one row per job attempt).

    Unset timestamps are NaN; slot 0 means "no slot". Rows are append-
    only; arrays grow by doubling so a million adds amortize to O(n).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise JobStateError(f"capacity must be >= 1, got {capacity}")
        self.n = 0
        self.state = np.full(capacity, _UNSUBMITTED, dtype=np.int8)
        self.submit_time = np.full(capacity, np.nan)
        self.start_time = np.full(capacity, np.nan)
        self.end_time = np.full(capacity, np.nan)
        self.runtime_s = np.full(capacity, np.nan)  # sampled transfer+exec duration
        self.retries = np.zeros(capacity, dtype=np.int32)  # re-queues (evict/release)
        self.n_evictions = np.zeros(capacity, dtype=np.int32)
        self.slot = np.zeros(capacity, dtype=np.int64)
        self.cluster_id = np.zeros(capacity, dtype=np.int64)
        self.dagman = np.zeros(capacity, dtype=np.int32)  # index of the owning run
        self.specs: list[JobSpec] = []
        self.node_names: list[str] = []

    def __len__(self) -> int:
        return self.n

    def _grow_to(self, need: int) -> None:
        cap = len(self.state)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for column in (
            "state",
            "submit_time",
            "start_time",
            "end_time",
            "runtime_s",
            "retries",
            "n_evictions",
            "slot",
            "cluster_id",
            "dagman",
        ):
            old = getattr(self, column)
            new = np.empty(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            if old.dtype.kind == "f":
                new[self.n:] = np.nan
            else:
                new[self.n:] = 0
            setattr(self, column, new)
        self.state[self.n:] = _UNSUBMITTED

    def add_batch(
        self,
        node_names: list[str],
        specs: list[JobSpec],
        dagman_index: int,
        cluster_start: int,
        submit_time: float,
    ) -> range:
        """Append one submit-cycle batch of jobs, already IDLE.

        Jobs enter the table the way the scalar path creates them —
        freshly submitted at ``submit_time`` with consecutive cluster
        ids from ``cluster_start`` — skipping the UNSUBMITTED->IDLE
        transition they would all take immediately. Returns the row
        index range.
        """
        if len(node_names) != len(specs):
            raise JobStateError("node_names and specs must be equal length")
        k = len(node_names)
        start, end = self.n, self.n + k
        self._grow_to(end)
        self.state[start:end] = _IDLE
        self.submit_time[start:end] = submit_time
        self.cluster_id[start:end] = np.arange(cluster_start, cluster_start + k)
        self.dagman[start:end] = dagman_index
        self.node_names.extend(node_names)
        self.specs.extend(specs)
        self.n = end
        return range(start, end)

    def transition(self, index: int, new_state: JobState, time: float) -> None:
        """Row-wise ``Job.transition`` with identical rules and effects."""
        code = self.state[index]
        new_code = _CODE[new_state]
        if new_code not in _ALLOWED[code]:
            raise JobStateError(
                f"job {self.specs[index].name} (cluster {self.cluster_id[index]}): "
                f"illegal transition {STATES[code].value} -> {new_state.value}"
            )
        if new_code == _IDLE and code == _UNSUBMITTED:
            self.submit_time[index] = time
        elif new_code == _IDLE and code in _REQUEUE_FROM:
            self.start_time[index] = np.nan
            self.slot[index] = 0
            self.retries[index] += 1
        elif new_code == _RUNNING:
            self.start_time[index] = time
        elif new_code in _TERMINAL:
            self.end_time[index] = time
        self.state[index] = np.int8(new_code)

    def view(self, index: int) -> "JobView":
        """A ``Job``-compatible view over one row."""
        if not 0 <= index < self.n:
            raise JobStateError(f"row {index} out of range (table has {self.n})")
        return JobView(self, index)


class JobView:
    """Thin ``Job``-compatible window onto one :class:`JobTable` row.

    Two words of state (table reference + row index); every attribute
    the rest of the simulator reads off a ``Job`` resolves against the
    columns. Views compare by identity, matching how the pool tracks
    job objects in queues and held lists.
    """

    __slots__ = ("_table", "index")

    owner = "fdw"

    def __init__(self, table: JobTable, index: int) -> None:
        self._table = table
        self.index = index

    @property
    def spec(self) -> JobSpec:
        return self._table.specs[self.index]

    @property
    def cluster_id(self) -> int:
        return int(self._table.cluster_id[self.index])

    @property
    def state(self) -> JobState:
        return STATES[self._table.state[self.index]]

    @property
    def submit_time(self) -> float | None:
        t = self._table.submit_time[self.index]
        return None if np.isnan(t) else float(t)

    @property
    def start_time(self) -> float | None:
        t = self._table.start_time[self.index]
        return None if np.isnan(t) else float(t)

    @property
    def end_time(self) -> float | None:
        t = self._table.end_time[self.index]
        return None if np.isnan(t) else float(t)

    @property
    def slot_name(self) -> str | None:
        slot = self._table.slot[self.index]
        return None if slot == 0 else f"slot-{int(slot)}"

    @property
    def n_retries(self) -> int:
        return int(self._table.retries[self.index])

    def transition(self, new_state: JobState, time: float) -> None:
        self._table.transition(self.index, new_state, time)

    # -- derived (mirrors Job) ---------------------------------------------

    @property
    def wait_time(self) -> float | None:
        """Queue wait (start - submit) in seconds, when both are known."""
        submit, start = self.submit_time, self.start_time
        if submit is None or start is None:
            return None
        return start - submit

    @property
    def execution_time(self) -> float | None:
        """Execution wall time (end - start) in seconds, when known."""
        start, end = self.start_time, self.end_time
        if start is None or end is None:
            return None
        return end - start

    @property
    def is_terminal(self) -> bool:
        """True in COMPLETED or REMOVED (no further transitions expected)."""
        return self._table.state[self.index] in (_COMPLETED, _REMOVED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobView({self.spec.name}, cluster={self.cluster_id}, "
            f"state={self.state.value})"
        )
