"""The OSPool simulator facade.

:class:`OSPoolSimulator` wires the event core, capacity process,
negotiator, Stash cache, and runtime model together and runs one or
more DAGMan engines to completion, producing:

* a :class:`~repro.osg.metrics.PoolMetrics` with every job record,
* an HTCondor-style user log per DAGMan (the input to the monitoring
  pipeline of :mod:`repro.core.monitor`).

Mechanisms modelled (each is load-bearing for a figure — see DESIGN.md):
time-varying capacity with optional preemption, negotiation cycles with
fair round-robin across DAGMans and a per-cycle match limit, DAGMan
submit cycles with idle throttling, cold/warm input staging, lognormal
execution times, and rare job failure with DAG-level retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.condor.dagfile import DagDescription
from repro.condor.dagman import DagmanEngine, DagmanOptions
from repro.condor.events import JobEventType, UserLog
from repro.condor.jobs import Job, JobState
from repro.condor.rescue import apply_rescue, read_rescue_file, rescue_path, write_rescue_file
from repro.osg.capacity import CapacityProcess, default_ospool_capacity
from repro.osg.des import EventHandle, Simulator
from repro.osg.jobtable import JobTable, JobView
from repro.osg.metrics import DagmanSummary, JobRecord, PoolMetrics
from repro.osg.negotiator import NegotiatorConfig, negotiate, negotiate_vectorized
from repro.osg.runtimes import RuntimeModel
from repro.osg.schedd import ScheddQueue
from repro.osg.transfer import StashCache, TransferConfig
from repro.rng import RngFactory

__all__ = [
    "OSPoolConfig",
    "OSPoolSimulator",
    "DagmanRun",
    "resubmit_with_rescue",
    "verify_exactly_once",
]


@dataclass(frozen=True)
class OSPoolConfig:
    """Pool-wide configuration.

    Attributes
    ----------
    negotiator:
        Matchmaking cadence and per-cycle limit.
    dagman_cycle_s:
        Seconds between DAGMan submit cycles.
    transfer:
        Stash-cache bandwidths/overheads.
    runtime:
        Job execution-time model.
    success_prob:
        Per-attempt success probability (OSG jobs do occasionally fail;
        DAG retries absorb them).
    preemption:
        Evict the newest running jobs when capacity drops below the
        running count (glidein churn).
    max_job_holds:
        When > 0, a job failure that would exhaust the node's DAG-level
        retries is instead put on HOLD (up to this many times per node)
        and released after ``hold_release_s`` — HTCondor's last line of
        defence before the DAG fails terminally. 0 (default) disables
        holds, preserving the pre-hold simulator behaviour exactly.
    hold_release_s:
        Seconds a held job waits before automatic release back to IDLE.
    max_sim_time_s:
        Hard guard against deadlocked configurations.
    """

    negotiator: NegotiatorConfig = field(default_factory=NegotiatorConfig)
    dagman_cycle_s: float = 30.0
    transfer: TransferConfig = field(default_factory=TransferConfig)
    runtime: RuntimeModel = field(default_factory=RuntimeModel)
    success_prob: float = 0.985
    preemption: bool = True
    max_job_holds: int = 0
    hold_release_s: float = 300.0
    max_sim_time_s: float = 30.0 * 86400.0

    def __post_init__(self) -> None:
        if self.dagman_cycle_s <= 0:
            raise SimulationError("dagman_cycle_s must be positive")
        if not (0.0 < self.success_prob <= 1.0):
            raise SimulationError(f"success_prob must be in (0, 1], got {self.success_prob}")
        if self.max_job_holds < 0:
            raise SimulationError(f"max_job_holds must be >= 0, got {self.max_job_holds}")
        if self.hold_release_s <= 0:
            raise SimulationError("hold_release_s must be positive")
        if self.max_sim_time_s <= 0:
            raise SimulationError("max_sim_time_s must be positive")


@dataclass
class DagmanRun:
    """Live state of one submitted DAGMan.

    ``jobs`` holds one entry per attempt, in submission order: full
    :class:`~repro.condor.jobs.Job` objects under the reference engine,
    :class:`~repro.osg.jobtable.JobView` rows (same attribute surface)
    under the vectorized one.
    """

    name: str
    engine: DagmanEngine
    queue: ScheddQueue
    user_log: UserLog
    submit_time: float
    index: int = 0  # submission ordinal (the JobTable's dagman column)
    end_time: float | None = None
    dead: bool = False  # terminal failure (retries exhausted)
    jobs: dict[str, list[Job | JobView]] = field(default_factory=dict)
    rescue_file: Path | None = None
    holds: dict[str, int] = field(default_factory=dict)  # node -> times held
    held: list[tuple[str, Job]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """Completed or terminally failed."""
        return self.end_time is not None

    @property
    def n_jobs(self) -> int:
        """DAG size (the paper's per-DAGMan job count j_n)."""
        return len(self.engine.dag)

    @property
    def n_held(self) -> int:
        """Jobs currently on HOLD."""
        return len(self.held)


class OSPoolSimulator:
    """Run DAGMan workflows on a simulated OSPool.

    Parameters
    ----------
    config:
        Pool configuration; defaults are the calibrated OSPool model.
    capacity:
        Capacity process; defaults to the calibrated Markov-modulated
        OSPool process. Passed separately from the config because the
        process object is stateful.
    seed:
        Root seed for all stochastic components.
    rescue_dir:
        When set, the simulator writes a rescue file (DONE-node
        snapshot, see :mod:`repro.condor.rescue`) whenever a DAGMan
        dies terminally, is killed with :meth:`kill_dagman`, or is left
        unfinished by a bounded ``run(until=...)`` — the recovery input
        for :func:`resubmit_with_rescue`.
    engine:
        ``"vector"`` (default) runs the struct-of-arrays hot path:
        jobs live in a :class:`~repro.osg.jobtable.JobTable`, whole
        negotiation cycles match as array operations, the running set
        is an O(1)-removal token map, and jobs with equal finish times
        share one coalesced completion event. ``"reference"`` runs the
        original one-object-per-job loop. Both engines consume the
        RNG streams in the same order and produce bit-identical
        metrics, logs, and rescue files (asserted by the equivalence
        tests); the reference engine is kept as the oracle and as the
        ``bench-des-scale`` baseline.
    transfer_faults:
        Optional :class:`~repro.faults.TransferFaults` chaos model for
        the Stash delivery path; see :class:`~repro.osg.transfer.StashCache`.
    """

    def __init__(
        self,
        config: OSPoolConfig | None = None,
        capacity: CapacityProcess | None = None,
        seed: int = 0,
        rescue_dir: str | Path | None = None,
        engine: str = "vector",
        transfer_faults: "object | None" = None,
    ) -> None:
        if engine not in ("vector", "reference"):
            raise SimulationError(
                f"engine must be 'vector' or 'reference', got {engine!r}"
            )
        self.engine_kind = engine
        self._vector = engine == "vector"
        self.config = config or OSPoolConfig()
        self.rescue_dir = Path(rescue_dir) if rescue_dir is not None else None
        self.capacity_process = capacity or default_ospool_capacity()
        self.rngs = RngFactory(seed)
        self._rng_capacity = self.rngs.generator("capacity")
        self._rng_runtime = self.rngs.generator("runtime")
        self._rng_transfer = self.rngs.generator("transfer")
        self._rng_failure = self.rngs.generator("failure")
        self.sim = Simulator()
        # transfer_faults takes a repro.faults.TransferFaults model
        # (chaos injection); None keeps the delivery path — and every
        # RNG stream — bit-identical to the fault-free simulator.
        self.cache = StashCache(
            self.config.transfer,
            faults=transfer_faults,  # type: ignore[arg-type]
            retry_seed=seed,
        )
        self._dagmans: dict[str, DagmanRun] = {}
        # Reference engine: (start, run, node, job, completion handle)
        # tuples, rebuilt on every completion. Vector engine: token ->
        # (run, node, view); tokens increase with start time, so dict
        # order doubles as newest-last preemption order, and a token
        # absent from the map makes a stale coalesced completion a no-op.
        self._running: list[tuple[float, DagmanRun, str, Job, EventHandle]] = []
        self._running_v: dict[int, tuple[DagmanRun, str, JobView]] = {}
        self._next_token = 0
        self._table = JobTable()
        self._records: list[JobRecord] = []
        self._evictions: dict[int, int] = {}
        self._capacity = 0
        self._capacity_trace: list[tuple[float, int]] = []
        self._next_slot = 1
        # Per-pool cluster ids keep user logs reproducible run-to-run
        # (the Job default draws from a process-global counter).
        self._next_cluster = 1
        self._started = False

    # -- submission -------------------------------------------------------

    def submit_dagman(
        self,
        dag: DagDescription,
        options: DagmanOptions | None = None,
        name: str | None = None,
        at_time: float = 0.0,
    ) -> DagmanRun:
        """Register a DAGMan to start at ``at_time`` (simulation seconds)."""
        return self.submit_engine(
            DagmanEngine(dag, options), name=name or dag.name, at_time=at_time
        )

    def submit_engine(
        self,
        engine: DagmanEngine,
        name: str,
        at_time: float = 0.0,
    ) -> DagmanRun:
        """Register a pre-built DAGMan engine.

        This is the rescue path: an engine fast-forwarded with
        :func:`repro.condor.rescue.apply_rescue` resubmits only the
        remaining nodes.
        """
        if self._started:
            raise SimulationError("cannot submit after run() started")
        if at_time < 0:
            raise SimulationError(f"at_time must be >= 0, got {at_time}")
        if name in self._dagmans:
            raise SimulationError(f"duplicate DAGMan name {name!r}")
        run = DagmanRun(
            name=name,
            engine=engine,
            queue=ScheddQueue(name),
            user_log=UserLog(),
            submit_time=at_time,
            index=len(self._dagmans),
        )
        if engine.is_complete:
            # A fully-rescued DAG has nothing to run.
            run.end_time = at_time
        self._dagmans[name] = run
        cycle = self._dagman_cycle_v if self._vector else self._dagman_cycle
        self.sim.schedule_at(at_time, partial(cycle, run))
        return run

    # -- event handlers ------------------------------------------------------

    def _all_done(self) -> bool:
        return all(d.finished for d in self._dagmans.values())

    def _dagman_cycle(self, run: DagmanRun) -> None:
        """One DAGMan submit cycle: release ready nodes into the queue.

        Nodes with a PRE script run it first (on the submit host); a
        failing PRE fails the node without ever submitting the job —
        DAGMan semantics.
        """
        if run.finished:
            return
        batch = run.engine.pull_submissions(run.queue.n_idle)
        for node_name in batch:
            node = run.engine.dag.node(node_name)
            if node.pre_script is not None:
                script = node.pre_script
                if script.succeeds:
                    self.sim.schedule(
                        script.duration_s,
                        lambda r=run, n=node_name: self._enqueue_job(r, n),
                    )
                else:
                    self.sim.schedule(
                        script.duration_s,
                        lambda r=run, n=node_name: self._report_result(r, n, False),
                    )
            else:
                self._enqueue_job(run, node_name)
        self.sim.schedule(self.config.dagman_cycle_s, lambda: self._dagman_cycle(run))

    def _enqueue_job(self, run: DagmanRun, node_name: str) -> None:
        """Create and queue the job for a (PRE-cleared) node."""
        if run.finished:
            return
        now = self.sim.now
        spec = run.engine.dag.node(node_name).spec
        job = Job(spec, cluster_id=self._next_cluster)
        self._next_cluster += 1
        job.transition(JobState.IDLE, now)
        run.user_log.record(
            JobEventType.SUBMIT, job.cluster_id, now, host=f"schedd-{run.name}"
        )
        run.jobs.setdefault(node_name, []).append(job)
        run.queue.enqueue(node_name, job)

    def _negotiator_cycle(self) -> None:
        """One negotiation cycle across all active DAGMans."""
        if self._all_done():
            return
        free = max(0, self._capacity - len(self._running))
        queues = [d.queue for d in self._dagmans.values() if not d.finished]
        matches = negotiate(queues, free, self.config.negotiator)
        if obs.enabled():
            obs.counter_add("repro_pool_negotiation_cycles_total", 1,
                            {"engine": "reference"})
            if matches:
                obs.counter_add("repro_pool_matches_total", len(matches),
                                {"engine": "reference"})
        for queue, node_name, job in matches:
            run = self._dagmans[queue.name]
            self._start_job(run, node_name, job)
        self.sim.schedule(self.config.negotiator.cycle_s, self._negotiator_cycle)

    def _start_job(self, run: DagmanRun, node_name: str, job: Job) -> None:
        now = self.sim.now
        slot = f"slot-{self._next_slot}"
        self._next_slot += 1
        job.transition(JobState.RUNNING, now)
        job.slot_name = slot
        run.user_log.record(JobEventType.EXECUTE, job.cluster_id, now, host=slot)
        duration = self.cache.transfer_time(
            job.spec, self._rng_transfer
        ) + self.config.runtime.sample_seconds(job.spec, self._rng_runtime)
        handle = self.sim.schedule(
            duration, lambda: self._finish_job(run, node_name, job)
        )
        self._running.append((now, run, node_name, job, handle))

    def _finish_job(self, run: DagmanRun, node_name: str, job: Job) -> None:
        now = self.sim.now
        self._running = [entry for entry in self._running if entry[3] is not job]
        # Claim reuse (HTCondor default): the freed slot immediately runs
        # the submitter's next idle job instead of idling until the next
        # negotiation cycle. This is what lets short small-input jobs
        # sustain the paper's high throughputs.
        if len(self._running) < self._capacity and run.queue.n_idle > 0:
            next_node, next_job = run.queue.pop()
            self._start_job(run, next_node, next_job)
        success = bool(self._rng_failure.random() < self.config.success_prob)
        if (
            not success
            and self.config.max_job_holds > 0
            and run.engine.retries_left(node_name) == 0
            and run.holds.get(node_name, 0) < self.config.max_job_holds
        ):
            # The failure would exhaust the node's DAG retries: hold the
            # job instead of failing the DAG (HTCondor's ON_EXIT_HOLD /
            # periodic-release pattern). No TERMINATED event, no record —
            # like an eviction, the attempt is not terminal.
            self._hold_job(run, node_name, job)
            return
        job.transition(JobState.COMPLETED if success else JobState.FAILED, now)
        run.user_log.record(
            JobEventType.TERMINATED,
            job.cluster_id,
            now,
            return_value=0 if success else 1,
        )
        self._records.append(
            JobRecord(
                node_name=node_name,
                dagman=run.name,
                phase=job.spec.payload.phase if job.spec.payload else "generic",
                cluster_id=job.cluster_id,
                submit_time=job.submit_time or 0.0,
                start_time=job.start_time or 0.0,
                end_time=now,
                n_evictions=self._evictions.get(job.cluster_id, 0),
                success=success,
            )
        )
        node = run.engine.dag.node(node_name)
        if node.post_script is not None:
            # DAGMan semantics: the POST script's exit code becomes the
            # node result (masking or overriding the job's own).
            final = node.post_script.succeeds
            self.sim.schedule(
                node.post_script.duration_s,
                lambda: self._report_result(run, node_name, final),
            )
        else:
            self._report_result(run, node_name, success)

    # -- vectorized engine -------------------------------------------------
    #
    # Same protocol as the reference handlers above, restructured for
    # throughput: jobs are rows in self._table, submissions append in
    # one batch, negotiation matches a whole cycle as array ops, and
    # completions scheduled in one cycle with equal finish times share a
    # single coalesced heap event. Per-job RNG draws (transfer site,
    # runtime lognormal+uniform, failure) stay scalar *in match order* —
    # batching them would interleave the streams differently and break
    # bit-identity with the reference engine.

    def _dagman_cycle_v(self, run: DagmanRun) -> None:
        """Vector counterpart of :meth:`_dagman_cycle`."""
        if run.finished:
            return
        batch = run.engine.pull_submissions(run.queue.n_idle)
        if batch:
            dag_node = run.engine.dag.node
            plain: list[str] = []
            for node_name in batch:
                node = dag_node(node_name)
                if node.pre_script is not None:
                    script = node.pre_script
                    if script.succeeds:
                        self.sim.post(
                            script.duration_s,
                            partial(self._enqueue_single_v, run, node_name),
                        )
                    else:
                        self.sim.post(
                            script.duration_s,
                            partial(self._report_result, run, node_name, False),
                        )
                else:
                    # Plain nodes batch into one table append below; PRE
                    # nodes take their cluster ids at script completion,
                    # so deferring keeps the id sequence identical.
                    plain.append(node_name)
            if plain:
                self._enqueue_batch_v(run, plain)
        self.sim.post(self.config.dagman_cycle_s, partial(self._dagman_cycle_v, run))

    def _enqueue_batch_v(self, run: DagmanRun, node_names: list[str]) -> None:
        """Append one submit batch to the job table and the queue."""
        now = self.sim.now
        dag_node = run.engine.dag.node
        specs = [dag_node(n).spec for n in node_names]
        first_cluster = self._next_cluster
        self._next_cluster += len(node_names)
        table = self._table
        rows = table.add_batch(node_names, specs, run.index, first_cluster, now)
        record = run.user_log.record
        host = f"schedd-{run.name}"
        jobs = run.jobs
        entries: list[tuple[str, JobView]] = []
        cluster = first_cluster
        for row, node_name in zip(rows, node_names):
            view = JobView(table, row)
            record(JobEventType.SUBMIT, cluster, now, host=host)
            cluster += 1
            jobs.setdefault(node_name, []).append(view)
            entries.append((node_name, view))
        run.queue.enqueue_many(entries)

    def _enqueue_single_v(self, run: DagmanRun, node_name: str) -> None:
        """Queue one PRE-cleared node (vector counterpart of _enqueue_job)."""
        if run.finished:
            return
        self._enqueue_batch_v(run, [node_name])

    def _negotiator_cycle_v(self) -> None:
        """Vector counterpart of :meth:`_negotiator_cycle`."""
        if self._all_done():
            return
        free = max(0, self._capacity - len(self._running_v))
        queues = [d.queue for d in self._dagmans.values() if not d.finished]
        matches = negotiate_vectorized(queues, free, self.config.negotiator)
        if obs.enabled():
            obs.counter_add("repro_pool_negotiation_cycles_total", 1,
                            {"engine": "vector"})
            if matches:
                obs.counter_add("repro_pool_matches_total", len(matches),
                                {"engine": "vector"})
        if matches:
            now = self.sim.now
            dagmans = self._dagmans
            # Coalesce: all matches of this cycle sharing a finish time
            # complete through one heap event, members in match order —
            # the order the reference engine's per-job events fire in.
            groups: dict[float, list[int]] = {}
            for queue, node_name, view in matches:
                run = dagmans[queue.name]
                finish, token = self._claim_v(run, node_name, view, now)
                group = groups.get(finish)
                if group is None:
                    groups[finish] = [token]
                else:
                    group.append(token)
            post_at = self.sim.post_at
            for finish, tokens in groups.items():
                post_at(finish, partial(self._complete_batch_v, tokens))
        self.sim.post(self.config.negotiator.cycle_s, self._negotiator_cycle_v)

    def _claim_v(
        self, run: DagmanRun, node_name: str, view: JobView, now: float
    ) -> tuple[float, int]:
        """Start a matched job; returns (finish time, running-set token)."""
        table = self._table
        row = view.index
        slot = self._next_slot
        self._next_slot += 1
        table.transition(row, JobState.RUNNING, now)
        table.slot[row] = slot
        run.user_log.record(
            JobEventType.EXECUTE,
            int(table.cluster_id[row]),
            now,
            host=f"slot-{slot}",
        )
        duration = self.cache.transfer_time(
            view.spec, self._rng_transfer
        ) + self.config.runtime.sample_seconds(view.spec, self._rng_runtime)
        table.runtime_s[row] = duration
        token = self._next_token
        self._next_token = token + 1
        self._running_v[token] = (run, node_name, view)
        return now + duration, token

    def _start_single_v(self, run: DagmanRun, node_name: str, view: JobView) -> None:
        """Claim-reuse start: one job, its own (uncoalesced) completion."""
        now = self.sim.now
        finish, token = self._claim_v(run, node_name, view, now)
        self.sim.post_at(finish, partial(self._complete_batch_v, [token]))

    def _complete_batch_v(self, tokens: list[int]) -> None:
        """Finish a coalesced batch of jobs sharing one finish time.

        Each member replays :meth:`_finish_job` exactly — running-set
        removal, claim reuse, failure draw, hold-or-terminate, record,
        POST/report — so the event order and RNG streams match the
        reference engine. A token no longer in the running map belongs
        to a job evicted/held/removed after this event was scheduled:
        stale members are skipped, which is how the vector engine
        "cancels" completions without touching the heap.
        """
        running = self._running_v
        table = self._table
        config = self.config
        now = self.sim.now
        for token in tokens:
            entry = running.pop(token, None)
            if entry is None:
                continue
            run, node_name, view = entry
            row = view.index
            # Claim reuse (HTCondor default): the freed slot immediately
            # runs the submitter's next idle job instead of idling until
            # the next negotiation cycle.
            if len(running) < self._capacity and run.queue.n_idle > 0:
                next_node, next_view = run.queue.pop()
                self._start_single_v(run, next_node, next_view)
            success = bool(self._rng_failure.random() < config.success_prob)
            if (
                not success
                and config.max_job_holds > 0
                and run.engine.retries_left(node_name) == 0
                and run.holds.get(node_name, 0) < config.max_job_holds
            ):
                self._hold_job(run, node_name, view)
                continue
            table.transition(
                row, JobState.COMPLETED if success else JobState.FAILED, now
            )
            cluster = int(table.cluster_id[row])
            run.user_log.record(
                JobEventType.TERMINATED,
                cluster,
                now,
                return_value=0 if success else 1,
            )
            spec = table.specs[row]
            submit = table.submit_time[row]
            start = table.start_time[row]
            self._records.append(
                JobRecord(
                    node_name=node_name,
                    dagman=run.name,
                    phase=spec.payload.phase if spec.payload else "generic",
                    cluster_id=cluster,
                    submit_time=float(submit) if submit == submit else 0.0,
                    start_time=float(start) if start == start else 0.0,
                    end_time=now,
                    n_evictions=int(table.n_evictions[row]),
                    success=success,
                )
            )
            node = run.engine.dag.node(node_name)
            if node.post_script is not None:
                final = node.post_script.succeeds
                self.sim.post(
                    node.post_script.duration_s,
                    partial(self._report_result, run, node_name, final),
                )
            else:
                self._report_result(run, node_name, success)

    def _evict_entries_v(self, entries: list[tuple[DagmanRun, str, JobView]]) -> None:
        """Vector counterpart of :meth:`_evict_entries` (tokens already popped)."""
        now = self.sim.now
        table = self._table
        for run, node_name, view in entries:
            row = view.index
            table.transition(row, JobState.IDLE, now)
            run.user_log.record(
                JobEventType.EVICTED, int(table.cluster_id[row]), now
            )
            table.n_evictions[row] += 1
            run.queue.enqueue(node_name, view, front=True)

    def _pop_newest_v(self, count: int) -> list[tuple[DagmanRun, str, JobView]]:
        """Remove and return the ``count`` newest running entries.

        Tokens are issued in start order, so the map's insertion order
        is the reference engine's start-time sort (stable on ties).
        """
        items = list(self._running_v.items())[-count:] if count > 0 else []
        for token, _ in items:
            del self._running_v[token]
        return [entry for _, entry in items]

    def _hold_job(self, run: DagmanRun, node_name: str, job: Job | JobView) -> None:
        """Put a job on HOLD; it auto-releases after ``hold_release_s``.

        Shared by both engines — everything here goes through the
        ``Job`` attribute surface, which views implement.
        """
        now = self.sim.now
        job.transition(JobState.HELD, now)
        run.user_log.record(JobEventType.HELD, job.cluster_id, now)
        run.holds[node_name] = run.holds.get(node_name, 0) + 1
        run.held.append((node_name, job))
        self.sim.schedule(
            self.config.hold_release_s,
            lambda: self._release_job(run, node_name, job),
        )

    def _release_job(self, run: DagmanRun, node_name: str, job: Job | JobView) -> None:
        """Release a held job back to IDLE (front of its queue)."""
        if run.finished or job.state is not JobState.HELD:
            return  # the DAGMan ended (e.g. killed) while the job was held
        now = self.sim.now
        run.held.remove((node_name, job))
        job.transition(JobState.IDLE, now)
        run.user_log.record(JobEventType.RELEASED, job.cluster_id, now)
        run.queue.enqueue(node_name, job, front=True)

    def _report_result(self, run: DagmanRun, node_name: str, success: bool) -> None:
        """Deliver a node's final result to its DAGMan engine."""
        if run.finished:
            return
        now = self.sim.now
        run.engine.on_node_result(node_name, success)
        if run.engine.is_complete:
            run.end_time = now
        elif run.engine.has_failed and self._no_inflight(run):
            run.end_time = now
            run.dead = True
            self._write_rescue(run)

    def _no_inflight(self, run: DagmanRun) -> bool:
        if run.queue.n_idle > 0 or run.engine.n_ready > 0 or run.held:
            return False
        if self._vector:
            return all(entry[0] is not run for entry in self._running_v.values())
        return all(entry[1] is not run for entry in self._running)

    def _write_rescue(self, run: DagmanRun) -> Path | None:
        """Snapshot a DAGMan's DONE nodes into the next free rescue file."""
        if self.rescue_dir is None:
            return None
        base = self.rescue_dir / f"{run.name}.dag"
        attempt = 1
        while rescue_path(base, attempt).exists():
            attempt += 1
        run.rescue_file = write_rescue_file(run.engine, rescue_path(base, attempt), attempt)
        return run.rescue_file

    def _capacity_step(self, first: bool = False) -> None:
        if first:
            self._capacity = self.capacity_process.initial(self._rng_capacity)
        self._capacity_trace.append((self.sim.now, self._capacity))
        dwell, new_capacity = self.capacity_process.next_change(self._rng_capacity)

        def change() -> None:
            self._capacity = new_capacity
            if self.config.preemption:
                self._preempt_to_capacity()
            self._capacity_step()

        self.sim.schedule(dwell, change)

    def _evict_entries(
        self, victims: list[tuple[float, DagmanRun, str, Job, EventHandle]]
    ) -> None:
        now = self.sim.now
        for _, run, node_name, job, handle in victims:
            Simulator.cancel(handle)
            job.transition(JobState.IDLE, now)
            run.user_log.record(JobEventType.EVICTED, job.cluster_id, now)
            self._evictions[job.cluster_id] = self._evictions.get(job.cluster_id, 0) + 1
            run.queue.enqueue(node_name, job, front=True)

    def _preempt_to_capacity(self) -> None:
        if self._vector:
            overflow = len(self._running_v) - self._capacity
            if overflow > 0:
                self._evict_entries_v(self._pop_newest_v(overflow))
            return
        overflow = len(self._running) - self._capacity
        if overflow <= 0:
            return
        # Evict the newest claims first (glideins that just vanished).
        self._running.sort(key=lambda entry: entry[0])
        victims = self._running[-overflow:]
        del self._running[-overflow:]
        self._evict_entries(victims)

    # -- fault injection ---------------------------------------------------------

    def inject_eviction(self, count: int = 1) -> int:
        """Forcibly evict the ``count`` newest running jobs.

        Fault-injection hook (used by :mod:`repro.faults`): behaves
        exactly like a capacity-drop preemption, independent of the
        capacity process. Returns how many jobs were actually evicted.
        """
        if count < 1:
            raise SimulationError(f"count must be >= 1, got {count}")
        if self._vector:
            victims_v = self._pop_newest_v(count)
            self._evict_entries_v(victims_v)
            return len(victims_v)
        self._running.sort(key=lambda entry: entry[0])
        victims = self._running[-count:]
        del self._running[len(self._running) - len(victims):]
        self._evict_entries(victims)
        return len(victims)

    def inject_hold(self, count: int = 1, dagman: str | None = None) -> int:
        """Forcibly put the ``count`` newest running jobs on HOLD.

        Fault-injection hook: the jobs release automatically after
        ``hold_release_s`` like any held job. Returns how many jobs
        were actually held.
        """
        if count < 1:
            raise SimulationError(f"count must be >= 1, got {count}")
        if self._vector:
            items = [
                (token, entry)
                for token, entry in self._running_v.items()
                if dagman is None or entry[0].name == dagman
            ]
            victims_v = items[-count:]
            for token, (run, node_name, view) in victims_v:
                del self._running_v[token]
                self._hold_job(run, node_name, view)
            return len(victims_v)
        candidates = [
            entry for entry in self._running
            if dagman is None or entry[1].name == dagman
        ]
        candidates.sort(key=lambda entry: entry[0])
        victims = candidates[-count:]
        for entry in victims:
            self._running.remove(entry)
            _, run, node_name, job, handle = entry
            Simulator.cancel(handle)
            self._hold_job(run, node_name, job)
        return len(victims)

    def kill_dagman(self, name: str) -> Path | None:
        """Abort a DAGMan mid-flight (``condor_rm`` of the DAGMan job).

        Running jobs are cancelled and REMOVED (ABORTED in the user
        log), idle and held jobs likewise; the run is marked dead and —
        when a ``rescue_dir`` is configured — a rescue file snapshotting
        the DONE nodes is written and returned.
        """
        run = self._dagmans.get(name)
        if run is None:
            raise SimulationError(f"unknown DAGMan {name!r}")
        if run.finished:
            raise SimulationError(f"DAGMan {name!r} already finished")
        now = self.sim.now
        if self._vector:
            tokens = [
                token for token, entry in self._running_v.items() if entry[0] is run
            ]
            for token in tokens:
                _, _, view = self._running_v.pop(token)
                view.transition(JobState.REMOVED, now)
                run.user_log.record(JobEventType.ABORTED, view.cluster_id, now)
        else:
            victims = [entry for entry in self._running if entry[1] is run]
            self._running = [entry for entry in self._running if entry[1] is not run]
            for _, _, _, job, handle in victims:
                Simulator.cancel(handle)
                job.transition(JobState.REMOVED, now)
                run.user_log.record(JobEventType.ABORTED, job.cluster_id, now)
        while run.queue.n_idle:
            _, job = run.queue.pop()
            job.transition(JobState.REMOVED, now)
            run.user_log.record(JobEventType.ABORTED, job.cluster_id, now)
        for _, job in run.held:
            job.transition(JobState.REMOVED, now)
            run.user_log.record(JobEventType.ABORTED, job.cluster_id, now)
        run.held.clear()
        run.end_time = now
        run.dead = True
        return self._write_rescue(run)

    # -- running -----------------------------------------------------------------

    def run(self, until: float | None = None) -> PoolMetrics:
        """Run to completion (or ``until``); returns the metrics.

        Raises
        ------
        SimulationError
            If no DAGMan was submitted, or the simulation hits the
            ``max_sim_time_s`` guard without completing.
        """
        if not self._dagmans:
            raise SimulationError("no DAGMans submitted")
        if self._started:
            raise SimulationError("run() already called")
        self._started = True
        self._capacity_step(first=True)
        self.sim.schedule_at(
            0.0, self._negotiator_cycle_v if self._vector else self._negotiator_cycle
        )
        horizon = until if until is not None else self.config.max_sim_time_s
        self.sim.run(until=horizon, stop_when=self._all_done)
        if not self._all_done():
            if until is None:
                unfinished = [n for n, d in self._dagmans.items() if not d.finished]
                raise SimulationError(
                    f"simulation hit the {horizon}s guard with unfinished "
                    f"DAGMans: {unfinished}"
                )
            # Bounded run interrupted mid-flight: snapshot each unfinished
            # DAGMan's progress so a later attempt can resume from it.
            for d in self._dagmans.values():
                if not d.finished:
                    self._write_rescue(d)
        metrics = PoolMetrics(
            records=list(self._records),
            dagmans={
                name: DagmanSummary(
                    name=name,
                    submit_time=d.submit_time,
                    end_time=d.end_time if d.end_time is not None else self.sim.now,
                    n_jobs=d.n_jobs,
                )
                for name, d in self._dagmans.items()
            },
            capacity_trace=list(self._capacity_trace),
        )
        self._observe_run(metrics)
        return metrics

    def _observe_run(self, metrics: PoolMetrics) -> None:
        """Emit the finished run's telemetry (both engines, virtual time).

        Per-DAGMan spans carry *simulation* timestamps, and the queue
        waits / exec times come from the final records — so the trace is
        a pure function of the seeded simulation, byte-identical across
        repeats, and identical between the reference and vector engines
        (which produce identical records by construction).
        """
        if not obs.enabled():
            return
        self.cache.observe_flush()
        engine = "vector" if self._vector else "reference"
        for name in sorted(metrics.dagmans):
            s = metrics.dagmans[name]
            obs.complete(
                f"dagman:{name}",
                ts=s.submit_time,
                dur=max(0.0, s.end_time - s.submit_time),
                category="pool",
                track=f"dagman:{name}",
                args={"n_jobs": s.n_jobs, "engine": engine},
            )
        if metrics.records:
            obs.histogram_observe_many(
                "repro_pool_queue_wait_seconds",
                np.fromiter((r.wait_s for r in metrics.records), dtype=float,
                            count=len(metrics.records)),
            )
            obs.histogram_observe_many(
                "repro_pool_exec_seconds",
                np.fromiter((r.exec_s for r in metrics.records), dtype=float,
                            count=len(metrics.records)),
            )
            n_success = sum(1 for r in metrics.records if r.success)
            if n_success:
                obs.counter_add("repro_pool_jobs_total", n_success,
                                {"outcome": "success"})
            if n_success < len(metrics.records):
                obs.counter_add("repro_pool_jobs_total",
                                len(metrics.records) - n_success,
                                {"outcome": "failed"})

    # -- introspection --------------------------------------------------------------

    @property
    def dagman_runs(self) -> dict[str, DagmanRun]:
        """Submitted DAGMan states (for logs and assertions)."""
        return dict(self._dagmans)

    @property
    def current_capacity(self) -> int:
        """Capacity at the current simulation time."""
        return self._capacity

    def mean_capacity(self) -> float:
        """Time-weighted mean capacity over the recorded trace."""
        if len(self._capacity_trace) < 2:
            return float(self._capacity)
        times = np.array([t for t, _ in self._capacity_trace] + [self.sim.now])
        caps = np.array([c for _, c in self._capacity_trace], dtype=float)
        dt = np.diff(times)
        if dt.sum() <= 0:
            return float(caps[-1])
        return float(np.sum(caps * dt) / dt.sum())


# -- recovery ------------------------------------------------------------------


def resubmit_with_rescue(
    dag: DagDescription,
    rescue_file: str | Path,
    *,
    options: DagmanOptions | None = None,
    name: str | None = None,
    config: OSPoolConfig | None = None,
    capacity: CapacityProcess | None = None,
    seed: int = 0,
    rescue_dir: str | Path | None = None,
    engine: str = "vector",
) -> tuple[OSPoolSimulator, DagmanRun]:
    """Resubmit a DAG from a rescue file on a fresh pool.

    Constructs a fresh :class:`~repro.condor.dagman.DagmanEngine`,
    fast-forwards the rescue file's DONE nodes via
    :func:`~repro.condor.rescue.apply_rescue`, and submits it to a new
    :class:`OSPoolSimulator` — the driver then calls ``run()`` on the
    returned simulator. Passing ``rescue_dir`` lets the resubmission
    itself write further rescue files, chaining attempts. ``engine``
    selects the pool's execution engine as in :class:`OSPoolSimulator`.
    """
    dagman_engine = DagmanEngine(dag, options)
    apply_rescue(dagman_engine, read_rescue_file(rescue_file))
    pool = OSPoolSimulator(
        config=config, capacity=capacity, seed=seed, rescue_dir=rescue_dir, engine=engine
    )
    run = pool.submit_engine(dagman_engine, name=name or dag.name)
    return pool, run


def verify_exactly_once(
    dag: DagDescription, metrics: PoolMetrics, dagman: str | None = None
) -> None:
    """Assert every DAG node succeeded exactly once across attempts.

    ``metrics`` is typically :meth:`PoolMetrics.merged` over the
    original attempt and its rescue resubmissions. Failed attempts of a
    node are expected (retries); *successful* records must number
    exactly one per node — zero means lost work, more than one means a
    rescue re-ran completed work.

    Raises
    ------
    SimulationError
        Listing the offending nodes and their success counts.
    """
    successes: dict[str, int] = {name: 0 for name in dag.node_names}
    for record in metrics.records:
        if dagman is not None and record.dagman != dagman:
            continue
        if record.success and record.node_name in successes:
            successes[record.node_name] += 1
    problems = {name: n for name, n in successes.items() if n != 1}
    if problems:
        raise SimulationError(
            f"nodes did not succeed exactly once across attempts: {problems}"
        )
