"""Deterministic fault injection for recovery testing.

WfBench-style methodology: recovery paths are only trustworthy if they
are exercised by *injected* failures, reproducibly. A
:class:`FaultPlan` bundles two kinds of deterministic faults:

* :class:`ChunkCrash` — kill a :class:`~repro.core.local.LocalRunner`
  run by raising :class:`FaultInjected` after N chunks of a phase have
  completed (and been checkpointed), simulating a mid-run process death;
* :class:`PoolFault` — at a fixed simulation time, evict or hold
  running jobs or kill a whole DAGMan on an
  :class:`~repro.osg.pool.OSPoolSimulator` via its injection hooks.

Plans are plain data plus a little runtime state; :meth:`FaultPlan.seeded`
derives crash points from a seed through the package's
:class:`~repro.rng.RngFactory`, so a test's fault schedule is as
reproducible as the workload it perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.rng import RngFactory

__all__ = ["FaultInjected", "ChunkCrash", "PoolFault", "FaultPlan"]

_POOL_ACTIONS = ("evict", "hold", "kill-dagman")


class FaultInjected(ReproError):
    """Raised (on purpose) when an injected crash point fires."""


@dataclass(frozen=True)
class ChunkCrash:
    """Crash a local run after ``after_chunks`` chunks of ``phase``.

    The crash fires *after* the Nth chunk completes and checkpoints, so
    a resumed run must skip exactly N chunks of that phase.
    """

    phase: str
    after_chunks: int

    def __post_init__(self) -> None:
        if self.phase not in ("A", "C"):
            raise ReproError(f"crashes target chunked phases A/C, got {self.phase!r}")
        if self.after_chunks < 1:
            raise ReproError(f"after_chunks must be >= 1, got {self.after_chunks}")


@dataclass(frozen=True)
class PoolFault:
    """One scheduled pool fault.

    ``action`` is ``"evict"`` / ``"hold"`` (force-evict or force-hold
    the ``count`` newest running jobs) or ``"kill-dagman"`` (abort the
    named DAGMan); ``at_s`` is the simulation time it fires.
    """

    action: str
    at_s: float
    dagman: str | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in _POOL_ACTIONS:
            raise ReproError(f"unknown pool fault action {self.action!r}")
        if self.at_s < 0:
            raise ReproError(f"at_s must be >= 0, got {self.at_s}")
        if self.count < 1:
            raise ReproError(f"count must be >= 1, got {self.count}")
        if self.action == "kill-dagman" and self.dagman is None:
            raise ReproError("kill-dagman requires a dagman name")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one run.

    One plan instance drives one run: :meth:`chunk_completed` keeps
    per-phase counters and each :class:`ChunkCrash` fires at most once.
    """

    crashes: tuple[ChunkCrash, ...] = ()
    pool_faults: tuple[PoolFault, ...] = ()
    _chunk_counts: dict[str, int] = field(default_factory=dict, repr=False)
    _fired: set[ChunkCrash] = field(default_factory=set, repr=False)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_a_chunks: int = 0,
        n_c_chunks: int = 0,
    ) -> "FaultPlan":
        """Derive crash points from a seed.

        For each phase with more than one chunk, the crash lands
        uniformly in ``[1, n_chunks - 1]`` — always mid-phase, so a
        resume has both completed chunks to skip and pending chunks to
        run.
        """
        rng = RngFactory(seed).generator("faults")
        crashes: list[ChunkCrash] = []
        if n_a_chunks > 1:
            crashes.append(ChunkCrash("A", int(rng.integers(1, n_a_chunks))))
        if n_c_chunks > 1:
            crashes.append(ChunkCrash("C", int(rng.integers(1, n_c_chunks))))
        return cls(crashes=tuple(crashes))

    def chunk_completed(self, phase: str) -> None:
        """Notify the plan that one chunk of ``phase`` completed.

        Raises
        ------
        FaultInjected
            When a not-yet-fired :class:`ChunkCrash` for this phase has
            its ``after_chunks`` count reached.
        """
        n = self._chunk_counts.get(phase, 0) + 1
        self._chunk_counts[phase] = n
        for crash in self.crashes:
            if crash.phase == phase and crash.after_chunks == n and crash not in self._fired:
                self._fired.add(crash)
                raise FaultInjected(
                    f"injected crash after {n} completed {phase} chunk(s)"
                )

    def install(self, pool) -> None:
        """Schedule the plan's pool faults on an ``OSPoolSimulator``.

        Call after submissions, before ``pool.run()``.
        """
        for fault in self.pool_faults:
            if fault.action == "evict":
                pool.sim.schedule_at(
                    fault.at_s, lambda f=fault: pool.inject_eviction(f.count)
                )
            elif fault.action == "hold":
                pool.sim.schedule_at(
                    fault.at_s,
                    lambda f=fault: pool.inject_hold(f.count, dagman=f.dagman),
                )
            else:  # kill-dagman
                pool.sim.schedule_at(
                    fault.at_s, lambda f=fault: pool.kill_dagman(f.dagman)
                )
